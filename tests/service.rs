//! Driver-service integration tests: admission control over a shared
//! spare pool, per-job store placement under one root, bit-identity of
//! service-run jobs against their solo runs, and two TCP jobs sharing
//! one reactor thread.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

use acr::pup::{Pup, PupResult, Puper};
use acr::runtime::soak::thread_count;
use acr::runtime::{
    AdmitError, AppMsg, DetectionMethod, DriverService, ExecMode, Job, JobConfig, JobReport,
    Scheme, ServiceConfig, Task, TaskCtx, TaskId, TcpConfig, TransportKind,
};
use bytes::Bytes;

/// TCP jobs spawn real node threads; running several tests' worth at once
/// oversubscribes CI runners into heartbeat false positives. Serialize the
/// wall-clock tests (virtual-time tests don't need the lock).
static JOB_SERIAL: Mutex<()> = Mutex::new(());

/// The usual communicating token ring with float dynamics: final state is
/// a pure function of the iteration count, so any two completed runs of
/// the same shape are bit-comparable.
struct Ring {
    rank: usize,
    iter: u64,
    tokens: u64,
    acc: Vec<f64>,
    total_iters: u64,
}

impl Ring {
    fn new(rank: usize, total_iters: u64) -> Self {
        Self {
            rank,
            iter: 0,
            tokens: 0,
            acc: (0..32).map(|i| (rank * 100 + i) as f64).collect(),
            total_iters,
        }
    }
}

impl Task for Ring {
    fn try_step(&mut self, ctx: &mut TaskCtx<'_>) -> bool {
        if self.done() {
            return false;
        }
        if self.iter > 0 && self.tokens == 0 {
            return false;
        }
        if self.iter > 0 {
            self.tokens -= 1;
        }
        for (i, x) in self.acc.iter_mut().enumerate() {
            *x += ((self.iter as f64 + i as f64) * 1e-3).sin();
        }
        let next = TaskId {
            rank: (self.rank + 1) % ctx.ranks(),
            task: 0,
        };
        ctx.send(next, self.iter, vec![]);
        self.iter += 1;
        true
    }

    fn on_message(&mut self, _msg: AppMsg, _ctx: &mut TaskCtx<'_>) {
        self.tokens += 1;
    }

    fn progress(&self) -> u64 {
        self.iter
    }

    fn done(&self) -> bool {
        self.iter >= self.total_iters
    }

    fn pup(&mut self, p: &mut dyn Puper) -> PupResult {
        p.pup_usize(&mut self.rank)?;
        p.pup_u64(&mut self.iter)?;
        p.pup_u64(&mut self.tokens)?;
        self.acc.pup(p)?;
        p.pup_u64(&mut self.total_iters)
    }
}

const ITERS: u64 = 200;

fn ring_factory(rank: usize, _task: usize) -> Box<dyn Task> {
    Box::new(Ring::new(rank, ITERS)) as Box<dyn Task>
}

fn virtual_cfg(spares: usize) -> JobConfig {
    JobConfig::builder()
        .ranks(2)
        .tasks_per_rank(1)
        .spares(spares)
        .scheme(Scheme::Strong)
        .detection(DetectionMethod::FullCompare)
        .checkpoint_interval(Duration::from_millis(60))
        .heartbeat_period(Duration::from_millis(5))
        .heartbeat_timeout(Duration::from_millis(40))
        .max_duration(Duration::from_secs(30))
        .build()
        .expect("valid virtual config")
}

fn virtual_job(spares: usize) -> acr::runtime::JobBuilder {
    Job::new(virtual_cfg(spares)).mode(ExecMode::virtual_default())
}

/// The comparable fingerprint of a run: completion, agreement, every
/// protocol counter, and the bit-exact final task states.
#[allow(clippy::type_complexity)]
fn outcome_tuple(
    r: &JobReport,
) -> (
    bool,
    bool,
    usize,
    usize,
    usize,
    usize,
    BTreeMap<(u8, usize), Vec<Bytes>>,
) {
    (
        r.completed,
        r.replicas_agree(),
        r.checkpoints_verified,
        r.rollbacks,
        r.hard_errors_recovered,
        r.restarts_from_beginning,
        r.final_states.clone(),
    )
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("acr_service_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Admission is FIFO over `max_concurrent` slots: with one slot, the
/// second submission queues until the first finishes; both complete, and
/// the queue drains to zero.
#[test]
fn single_slot_admission_queues_second_job() {
    let service = DriverService::start(ServiceConfig {
        max_concurrent: 1,
        ..ServiceConfig::default()
    })
    .expect("service starts");
    let a = service
        .submit("job-a", virtual_job(2), ring_factory)
        .expect("admit a");
    let b = service
        .submit("job-b", virtual_job(2), ring_factory)
        .expect("admit b");
    assert_eq!(a.id(), 1);
    assert_eq!(b.id(), 2);
    // With one slot, at most one job runs at any instant.
    assert!(service.running() <= 1);
    let ra = a.wait();
    let rb = b.wait();
    assert!(ra.completed, "{:?}", ra.error);
    assert!(rb.completed, "{:?}", rb.error);
    service.join();
    assert_eq!(service.running(), 0);
    assert_eq!(service.queued(), 0);
    service.shutdown();
}

/// The shared spare pool bounds admission: a job asking for more spares
/// than the whole pool is rejected outright, and two jobs that together
/// exceed the pool still both complete — the second waits for the first
/// to release its reservation.
#[test]
fn spare_pool_is_shared_and_enforced() {
    let service = DriverService::start(ServiceConfig {
        max_concurrent: 4,
        spare_pool: 3,
        ..ServiceConfig::default()
    })
    .expect("service starts");
    match service.submit("greedy", virtual_job(4), ring_factory) {
        Err(AdmitError::SparesExceedPool { requested, pool }) => {
            assert_eq!((requested, pool), (4, 3));
        }
        other => panic!("expected SparesExceedPool, got {other:?}"),
    }
    // 2 + 2 > 3: the pool serializes them; both still finish.
    let a = service
        .submit("a", virtual_job(2), ring_factory)
        .expect("admit a");
    let b = service
        .submit("b", virtual_job(2), ring_factory)
        .expect("admit b");
    assert!(service.spares_reserved() <= 3);
    assert!(a.wait().completed);
    assert!(b.wait().completed);
    service.join();
    assert_eq!(service.spares_reserved(), 0);
    service.shutdown();
}

/// Resume builders own an existing store; the service only runs fresh
/// jobs and must reject them at admission.
#[test]
fn resume_builders_are_rejected() {
    let dir = tmp("resume_reject");
    let service = DriverService::start(ServiceConfig::default()).expect("service starts");
    match service.submit("resumed", Job::resume(&dir), ring_factory) {
        Err(AdmitError::ResumeUnsupported) => {}
        other => panic!("expected ResumeUnsupported, got {other:?}"),
    }
    service.shutdown();
}

/// Two concurrent virtual jobs through the service produce outcome tuples
/// and final states bit-identical to the same jobs run alone, and their
/// stores land in the per-job `jobs/<id>-<name>` layout under the shared
/// root — each an ordinary persist dir a `StoreView` can fold.
#[test]
fn concurrent_service_jobs_match_solo_runs_bit_for_bit() {
    // Solo references: plain Job runs with their own persist dirs.
    let solo_root = tmp("solo_refs");
    let mut solo_a_cfg = virtual_cfg(2);
    solo_a_cfg.persist_dir = Some(solo_root.join("a"));
    let solo_a = Job::new(solo_a_cfg)
        .mode(ExecMode::virtual_default())
        .run(ring_factory);
    let mut solo_b_cfg = virtual_cfg(2);
    solo_b_cfg.persist_dir = Some(solo_root.join("b"));
    let solo_b = Job::new(solo_b_cfg)
        .mode(ExecMode::virtual_default())
        .run(ring_factory);
    assert!(solo_a.completed && solo_b.completed);

    let root = tmp("store_root");
    let service = DriverService::start(ServiceConfig {
        max_concurrent: 2,
        store_root: Some(root.clone()),
        ..ServiceConfig::default()
    })
    .expect("service starts");
    let a = service
        .submit("ring-a", virtual_job(2), ring_factory)
        .expect("admit a");
    let b = service
        .submit("ring-b", virtual_job(2), ring_factory)
        .expect("admit b");
    let a_dir = a
        .store_dir()
        .expect("store root places job a")
        .to_path_buf();
    let b_dir = b
        .store_dir()
        .expect("store root places job b")
        .to_path_buf();
    let ra = a.wait();
    let rb = b.wait();
    assert!(ra.completed, "{:?}", ra.error);
    assert!(rb.completed, "{:?}", rb.error);
    assert_eq!(outcome_tuple(&ra), outcome_tuple(&solo_a));
    assert_eq!(outcome_tuple(&rb), outcome_tuple(&solo_b));

    // Store layout: both jobs listed under <root>/jobs, and each per-job
    // dir folds like any ordinary single-job store.
    let listed = acr::store::list_job_stores(&root).expect("list job stores");
    assert_eq!(listed.len(), 2);
    assert_eq!((listed[0].id, listed[0].name.as_str()), (1, "ring-a"));
    assert_eq!((listed[1].id, listed[1].name.as_str()), (2, "ring-b"));
    assert_eq!(listed[0].dir, a_dir);
    assert_eq!(listed[1].dir, b_dir);
    for dir in [&a_dir, &b_dir] {
        let mut view = acr::runtime::StoreView::open(dir);
        view.refresh().expect("journal reads");
        assert!(view.records() > 0);
        assert_eq!(view.closed(), Some(true), "store marks a completed job");
    }
    // The service store and the solo store hold byte-identical journals.
    assert_eq!(
        std::fs::read(a_dir.join("events.log")).unwrap(),
        std::fs::read(solo_root.join("a").join("events.log")).unwrap(),
        "service placement changed job a's journal bytes"
    );
    service.shutdown();
    let _ = std::fs::remove_dir_all(&root);
    let _ = std::fs::remove_dir_all(&solo_root);
}

/// Two TCP jobs share one reactor: both are admitted onto the same
/// service, the router dials one address, the process thread count stays
/// bounded by the job threads (never O(links)), and both finish with the
/// final states a solo virtual run of the same ring produces.
#[test]
fn two_tcp_jobs_share_one_reactor() {
    let _serial = JOB_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let reference = Job::new(virtual_cfg(1))
        .mode(ExecMode::virtual_default())
        .run(ring_factory);
    assert!(reference.completed);

    let tcp_cfg = || {
        JobConfig::builder()
            .ranks(2)
            .tasks_per_rank(1)
            .spares(1)
            .scheme(Scheme::Strong)
            .detection(DetectionMethod::FullCompare)
            .checkpoint_interval(Duration::from_millis(150))
            .heartbeat_period(Duration::from_millis(10))
            .heartbeat_timeout(Duration::from_millis(400))
            .max_duration(Duration::from_secs(120))
            .transport(TransportKind::Tcp(TcpConfig::default()))
            .build()
            .expect("valid tcp config")
    };
    let before = thread_count();
    let service = DriverService::start(ServiceConfig {
        max_concurrent: 2,
        ..ServiceConfig::default()
    })
    .expect("service starts");
    let a = service
        .submit("tcp-a", Job::new(tcp_cfg()), ring_factory)
        .expect("admit a");
    let b = service
        .submit("tcp-b", Job::new(tcp_cfg()), ring_factory)
        .expect("admit b");
    // Both jobs ride the one lazily-spawned reactor.
    assert!(service.local_addr().is_some());
    let during = thread_count();
    let ra = a.wait();
    let rb = b.wait();
    assert!(ra.completed, "{:?}\n{}", ra.error, ra.trace.join("\n"));
    assert!(rb.completed, "{:?}\n{}", rb.error, rb.trace.join("\n"));
    assert!(ra.replicas_agree() && rb.replicas_agree());
    assert_eq!(ra.final_states, reference.final_states);
    assert_eq!(rb.final_states, reference.final_states);
    if let (Some(before), Some(during)) = (before, during) {
        // 2 jobs × (1 job thread + 6 node-host threads + endpoints) plus
        // ONE reactor; the bound is job-shaped, not link-shaped.
        assert!(
            during <= before + 40,
            "thread count exploded: {before} -> {during}"
        );
    }
    service.shutdown();
}
