//! Differential check: the same fault scenario driven through the analytic
//! timeline simulator (`acr-sim`) and the real message-passing runtime
//! (`acr-runtime` under virtual time) must agree on the protocol-level
//! counts — checkpoints, rollbacks, restarts — per recovery scheme.
//!
//! The two engines share nothing but the paper's protocol (§2), so count
//! agreement is evidence both implement the *same* protocol rather than
//! two plausible variants of it. The sim runs with a pinned `CostProfile`
//! whose δ is calibrated from fault-free virtual runtime runs, so both
//! engines see the same checkpoint cadence.

use std::time::Duration;

use acr::fault::{FailureTrace, FaultKind, TraceEvent};
use acr::runtime::{
    AppMsg, DetectionMethod, ExecMode, FaultAction, FaultScript, Job, JobConfig, JobReport, Scheme,
    Task, TaskCtx, TaskId, Trigger,
};
use acr::sim::{CostProfile, SimConfig, SimReport, TauPolicy, Timeline};

const RANKS: usize = 2;
const ITERS: u64 = 400;
const TAU: f64 = 0.060;

/// Small communicating ring (one token in flight per rank), enough state
/// for bit flips to matter.
struct MiniRing {
    rank: usize,
    iter: u64,
    tokens: u64,
    acc: Vec<f64>,
}

impl MiniRing {
    fn new(rank: usize) -> Self {
        Self {
            rank,
            iter: 0,
            tokens: 0,
            acc: (0..32).map(|i| (rank * 100 + i) as f64).collect(),
        }
    }
}

impl Task for MiniRing {
    fn try_step(&mut self, ctx: &mut TaskCtx<'_>) -> bool {
        if self.done() {
            return false;
        }
        if self.iter > 0 && self.tokens == 0 {
            return false;
        }
        if self.iter > 0 {
            self.tokens -= 1;
        }
        for (i, x) in self.acc.iter_mut().enumerate() {
            *x += ((self.iter as f64 + i as f64) * 1e-3).sin();
        }
        let next = TaskId {
            rank: (self.rank + 1) % ctx.ranks(),
            task: 0,
        };
        ctx.send(next, self.iter, vec![]);
        self.iter += 1;
        true
    }

    fn on_message(&mut self, _msg: AppMsg, _ctx: &mut TaskCtx<'_>) {
        self.tokens += 1;
    }

    fn progress(&self) -> u64 {
        self.iter
    }

    fn done(&self) -> bool {
        self.iter >= ITERS
    }

    fn pup(&mut self, p: &mut dyn acr::pup::Puper) -> acr::pup::PupResult {
        use acr::pup::Pup;
        p.pup_usize(&mut self.rank)?;
        p.pup_u64(&mut self.iter)?;
        p.pup_u64(&mut self.tokens)?;
        self.acc.pup(p)
    }
}

fn runtime_cfg(scheme: Scheme, interval: Duration) -> JobConfig {
    JobConfig::builder()
        .ranks(RANKS)
        .tasks_per_rank(1)
        .spares(3)
        .scheme(scheme)
        .detection(DetectionMethod::FullCompare)
        .checkpoint_interval(interval)
        .heartbeat_period(Duration::from_millis(5))
        .heartbeat_timeout(Duration::from_millis(40))
        .max_duration(Duration::from_secs(30))
        .build()
        .expect("valid differential config")
}

fn run_runtime(scheme: Scheme, interval: Duration, script: &FaultScript) -> JobReport {
    let report = Job::new(runtime_cfg(scheme, interval))
        .with_faults(script.clone())
        .mode(ExecMode::virtual_default())
        .run(|rank, _| Box::new(MiniRing::new(rank)) as Box<dyn Task>);
    assert!(
        report.completed,
        "runtime run failed: {:?}\n{}",
        report.error,
        report.trace.join("\n")
    );
    report
}

/// Probe calibration from two fault-free virtual runs: `w` is the pure
/// compute time (checkpoints effectively disabled), `delta` the mean cost
/// of one verified round under the real cadence. (The full measured
/// artifact is `acr_core::Calibration`, produced by `acr::runtime::
/// calibrate::measure`; this local pair is the minimal subset the
/// differential needs.)
struct ProbeCal {
    w: f64,
    delta: f64,
}

fn calibrate(scheme: Scheme) -> ProbeCal {
    let free = run_runtime(scheme, Duration::from_secs(10), &FaultScript::new());
    assert_eq!(free.checkpoints_verified, 0);
    let cadenced = run_runtime(scheme, Duration::from_secs_f64(TAU), &FaultScript::new());
    let n = cadenced.checkpoints_verified.max(1) as f64;
    let delta = ((cadenced.duration - free.duration) / n).max(1e-4);
    ProbeCal {
        w: free.duration,
        delta,
    }
}

fn run_sim(scheme: Scheme, cal: &ProbeCal, events: Vec<TraceEvent>) -> SimReport {
    let costs = CostProfile::explicit(cal.delta, cal.delta, cal.delta, RANKS);
    let tl = Timeline::with_costs(
        acr::sim::Machine::bgp(1024, acr::topology::MappingKind::Default),
        acr::apps::TABLE2[0],
        costs,
    );
    tl.run(&SimConfig {
        work: cal.w,
        scheme,
        detection: DetectionMethod::FullCompare,
        tau: TauPolicy::Fixed(TAU),
        trace: FailureTrace::from_events(events),
        alarms: vec![],
    })
}

/// Sim node id for `(replica, rank)` under the explicit-costs convention
/// (`node / ranks` = replica).
fn sim_node(replica: usize, rank: usize) -> usize {
    replica * RANKS + rank
}

/// Fault-free: both engines take the same number of checkpoints for the
/// same work, period, and δ.
#[test]
fn fault_free_checkpoint_counts_agree_across_schemes() {
    for scheme in [Scheme::Strong, Scheme::Medium, Scheme::Weak] {
        let cal = calibrate(scheme);
        let rt = run_runtime(scheme, Duration::from_secs_f64(TAU), &FaultScript::new());
        let sim = run_sim(scheme, &cal, vec![]);
        assert!(
            rt.checkpoints_verified >= 3,
            "cadence too coarse to compare"
        );
        let diff = (sim.checkpoints.len() as i64 - rt.checkpoints_verified as i64).abs();
        assert!(
            diff <= 1,
            "{scheme:?}: sim took {} checkpoints, runtime verified {} \
             (w={:.4}, delta={:.4})",
            sim.checkpoints.len(),
            rt.checkpoints_verified,
            cal.w,
            cal.delta
        );
        assert_eq!(sim.hard_errors, 0);
        assert_eq!(rt.hard_errors_recovered, 0);
    }
}

/// One mid-run SDC under the strong scheme: detected exactly once and
/// rolled back exactly once in both engines, with no escapes.
#[test]
fn single_sdc_strong_detected_once_in_both_engines() {
    let scheme = Scheme::Strong;
    let cal = calibrate(scheme);
    let t_sdc = 0.150;

    let mut script = FaultScript::new();
    script.push(
        Trigger::At(t_sdc),
        FaultAction::Sdc {
            replica: 0,
            rank: 1,
            seed: 9,
            bits: 2,
        },
    );
    let rt = run_runtime(scheme, Duration::from_secs_f64(TAU), &script);

    let sim = run_sim(
        scheme,
        &cal,
        vec![TraceEvent {
            time: t_sdc,
            node: sim_node(0, 1),
            kind: FaultKind::Sdc,
        }],
    );

    assert_eq!(rt.sdc_injected_at.len(), 1, "{}", rt.trace.join("\n"));
    assert_eq!(sim.sdc_detected, 1);
    assert_eq!(sim.sdc_undetected, 0);
    assert_eq!(
        rt.sdc_rounds_detected,
        1,
        "runtime detection count diverged from sim\n{}",
        rt.trace.join("\n")
    );
    assert_eq!(rt.rollbacks, sim.sdc_detected);
    assert_eq!(rt.restarts_from_beginning, sim.restarts_from_beginning);
    assert!(rt.replicas_agree());
}

/// One mid-run crash: one recovered hard error and no restart-from-
/// beginning in both engines; medium/weak additionally install exactly one
/// unverified recovery checkpoint (the §2.3 ship).
#[test]
fn single_crash_counts_agree_per_scheme() {
    let t_crash = 0.150;
    for scheme in [Scheme::Strong, Scheme::Medium, Scheme::Weak] {
        let cal = calibrate(scheme);
        let mut script = FaultScript::new();
        script.push(
            Trigger::At(t_crash),
            FaultAction::Crash {
                replica: 1,
                rank: 0,
            },
        );
        let rt = run_runtime(scheme, Duration::from_secs_f64(TAU), &script);
        let sim = run_sim(
            scheme,
            &cal,
            vec![TraceEvent {
                time: t_crash,
                node: sim_node(1, 0),
                kind: FaultKind::HardError,
            }],
        );

        assert_eq!(sim.hard_errors, 1, "{scheme:?}");
        assert_eq!(
            rt.hard_errors_recovered,
            sim.hard_errors,
            "{scheme:?}: hard-error counts diverged\n{}",
            rt.trace.join("\n")
        );
        assert_eq!(sim.restarts_from_beginning, 0, "{scheme:?}");
        assert_eq!(
            rt.restarts_from_beginning,
            0,
            "{scheme:?}\n{}",
            rt.trace.join("\n")
        );
        let expected_unverified = match scheme {
            Scheme::Strong => 0,
            Scheme::Medium | Scheme::Weak => 1,
        };
        assert_eq!(
            rt.unverified_recoveries,
            expected_unverified,
            "{scheme:?}: ship count wrong\n{}",
            rt.trace.join("\n")
        );
        assert!(rt.replicas_agree(), "{scheme:?}");
    }
}

/// The weak scheme's §2.3 worst case: a second crash hits the *other*
/// replica while the first recovery is parked awaiting the next periodic
/// checkpoint. Neither replica holds a complete state, so both engines
/// must restart the job from the beginning — exactly once.
#[test]
fn weak_cross_replica_double_failure_restarts_in_both_engines() {
    let scheme = Scheme::Weak;
    let cal = calibrate(scheme);
    // First verified round completes shortly after 0.060; the next begins
    // near 0.125. Both crashes land in between, so the second arrives
    // while the first recovery is still parked.
    let (t1, t2) = (0.100, 0.110);

    let mut script = FaultScript::new();
    script.push(
        Trigger::At(t1),
        FaultAction::Crash {
            replica: 0,
            rank: 0,
        },
    );
    script.push(
        Trigger::At(t2),
        FaultAction::Crash {
            replica: 1,
            rank: 1,
        },
    );
    let rt = run_runtime(scheme, Duration::from_secs_f64(TAU), &script);

    let sim = run_sim(
        scheme,
        &cal,
        vec![
            TraceEvent {
                time: t1,
                node: sim_node(0, 0),
                kind: FaultKind::HardError,
            },
            TraceEvent {
                time: t2,
                node: sim_node(1, 1),
                kind: FaultKind::HardError,
            },
        ],
    );

    assert_eq!(rt.crashes_injected_at.len(), 2, "{}", rt.trace.join("\n"));
    assert_eq!(sim.hard_errors, 2);
    assert_eq!(sim.restarts_from_beginning, 1);
    assert_eq!(
        rt.restarts_from_beginning,
        sim.restarts_from_beginning,
        "runtime disagrees with sim on the double-failure restart\n{}",
        rt.trace.join("\n")
    );
    assert!(rt.replicas_agree());
}
