//! Cross-crate integration tests: real mini-apps on the replicated runtime,
//! and the simulator cross-validated against the analytical model.

use std::sync::Mutex;
use std::time::Duration;

/// Jobs spawn ~10 OS threads of busy compute each; running several at once
/// oversubscribes the CPU badly enough to trip heartbeat failure detectors
/// (a *false positive* node death). Real deployments pin one node per core;
/// tests serialize instead.
static JOB_SERIAL: Mutex<()> = Mutex::new(());

use acr::apps::{Hpccg, Jacobi3d, LeanMd, MiniApp, MiniMd};
use acr::integration::{JacobiHaloTask, MiniAppTask};
use acr::runtime::{DetectionMethod, Fault, Job, JobConfig, Scheme};

fn base_cfg(scheme: Scheme, detection: DetectionMethod) -> JobConfig {
    JobConfig::builder()
        .ranks(3)
        .tasks_per_rank(1)
        .spares(1)
        .scheme(scheme)
        .detection(detection)
        .checkpoint_interval(Duration::from_millis(150))
        .heartbeat_timeout(Duration::from_millis(400))
        .max_duration(Duration::from_secs(300))
        .build()
        .expect("valid end-to-end config")
}

#[test]
fn jacobi_halo_exchange_survives_a_crash() {
    let _serial = JOB_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    const RANKS: usize = 3;
    let cfg = base_cfg(Scheme::Strong, DetectionMethod::FullCompare);
    let faults = vec![(
        Duration::from_millis(300),
        Fault::Crash {
            replica: 1,
            rank: 1,
        },
    )];
    let report = Job::new(cfg)
        .with_timed_faults(faults)
        .run(move |rank, _| Box::new(JacobiHaloTask::new(rank, RANKS, 8, 10, 10, 2000)));
    assert!(report.completed, "{:?}", report.error);
    assert_eq!(report.hard_errors_recovered, 1);
    assert!(report.replicas_agree());

    // Physics check: the recovered distributed run must equal a monolithic
    // serial run of the same global domain.
    let mut whole = Jacobi3d::new(8 * RANKS, 10, 10);
    for _ in 0..2000 {
        whole.step();
    }
    // Reconstruct rank 0's block from the report and compare a probe value.
    // (Full-state equality is already covered by replicas_agree; here we
    // check against the independent serial reference.)
    let state = report.task_state(0, 0, 0).expect("rank 0 state");
    let mut restored = JacobiHaloTask::new(0, RANKS, 8, 10, 10, 2000);
    acr::pup::unpack(state, &mut acr_task_mut(&mut restored)).unwrap();
    let block = restored.block();
    for (x, y, z) in [(0, 0, 0), (3, 5, 5), (7, 9, 9)] {
        let a = block.at(x, y, z);
        let b = whole.at(x, y, z);
        assert!((a - b).abs() < 1e-9, "({x},{y},{z}): {a} vs {b}");
    }
}

/// Helper: view a task as a `Pup`-style traversal target.
fn acr_task_mut(t: &mut JacobiHaloTask) -> impl acr::pup::Pup + '_ {
    struct Shim<'a>(&'a mut JacobiHaloTask);
    impl acr::pup::Pup for Shim<'_> {
        fn pup(&mut self, p: &mut dyn acr::pup::Puper) -> acr::pup::PupResult {
            use acr::runtime::Task;
            self.0.pup(p)
        }
    }
    Shim(t)
}

#[test]
fn leanmd_checksum_detection_under_sdc() {
    let _serial = JOB_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let cfg = base_cfg(Scheme::Strong, DetectionMethod::Checksum);
    let faults = vec![(
        Duration::from_millis(300),
        Fault::Sdc {
            replica: 0,
            rank: 2,
            seed: 11,
        },
    )];
    let report = Job::new(cfg)
        .with_timed_faults(faults)
        .run(|rank, _| Box::new(MiniAppTask::new(LeanMd::new(64, rank as u64), 500)));
    assert!(report.completed, "{:?}", report.error);
    assert!(report.sdc_rounds_detected >= 1, "{report:?}");
    assert!(report.replicas_agree());
}

#[test]
fn hpccg_medium_scheme_crash() {
    let _serial = JOB_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let cfg = base_cfg(Scheme::Medium, DetectionMethod::FullCompare);
    let faults = vec![(
        Duration::from_millis(300),
        Fault::Crash {
            replica: 0,
            rank: 0,
        },
    )];
    let report = Job::new(cfg)
        .with_timed_faults(faults)
        .run(|_rank, _| Box::new(MiniAppTask::new(Hpccg::new(12, 12, 12), 800)));
    assert!(report.completed, "{:?}", report.error);
    assert_eq!(report.hard_errors_recovered, 1);
    assert!(report.unverified_recoveries >= 1);
    assert!(report.replicas_agree());
}

#[test]
fn minimd_weak_scheme_crash() {
    let _serial = JOB_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let cfg = base_cfg(Scheme::Weak, DetectionMethod::Checksum);
    let faults = vec![(
        Duration::from_millis(300),
        Fault::Crash {
            replica: 1,
            rank: 0,
        },
    )];
    let report = Job::new(cfg)
        .with_timed_faults(faults)
        .run(|rank, _| Box::new(MiniAppTask::new(MiniMd::new(64, rank as u64), 800)));
    assert!(report.completed, "{:?}", report.error);
    assert_eq!(report.hard_errors_recovered, 1);
    assert!(report.replicas_agree());
}

#[test]
fn recovered_run_matches_undisturbed_run_bit_for_bit() {
    let _serial = JOB_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // The paper's user-oblivious recovery claim: the answer after a crash +
    // restart is the *same answer*.
    let mk = |faults: Vec<(Duration, Fault)>| {
        let cfg = base_cfg(Scheme::Strong, DetectionMethod::FullCompare);
        Job::new(cfg)
            .with_timed_faults(faults)
            .run(|rank, _| Box::new(MiniAppTask::new(LeanMd::new(64, rank as u64), 800)))
    };
    let undisturbed = mk(vec![]);
    let disturbed = mk(vec![
        (
            Duration::from_millis(300),
            Fault::Sdc {
                replica: 1,
                rank: 1,
                seed: 5,
            },
        ),
        (
            Duration::from_millis(600),
            Fault::Crash {
                replica: 0,
                rank: 2,
            },
        ),
    ]);
    assert!(undisturbed.completed && disturbed.completed);
    for rank in 0..3 {
        assert_eq!(
            undisturbed.task_state(0, rank, 0),
            disturbed.task_state(0, rank, 0),
            "rank {rank} answer changed"
        );
    }
}

#[test]
fn sim_and_model_agree_on_scheme_ordering() {
    use acr::fault::{FailureDistribution, FailureProcess, FailureTrace};
    use acr::model::{ModelParams, SchemeModel};
    use acr::sim::{Machine, SimConfig, TauPolicy, Timeline};
    use acr::topology::MappingKind;

    let machine = Machine::bgp(16384, MappingKind::Default);
    let sockets = machine.sockets_per_replica();
    let app = acr::apps::TABLE2[0];
    let timeline = Timeline::new(machine, app);
    let delta =
        acr::sim::checkpoint_breakdown(timeline.machine(), &app, DetectionMethod::FullCompare)
            .total();
    let params = ModelParams::builder()
        .work(8.0 * 3600.0)
        .delta(delta)
        .sockets(sockets)
        .mtbf_years(50.0)
        .sdc_fit(10_000.0)
        .build()
        .expect("machine-derived parameters are positive");
    let model = SchemeModel::new(params);

    let mut sim_overheads = Vec::new();
    let mut model_overheads = Vec::new();
    for scheme in Scheme::ALL {
        let eval = model.optimize(scheme);
        // Average the sim over several seeds for a stable estimate.
        let mut acc = 0.0;
        const SEEDS: u64 = 8;
        for seed in 0..SEEDS {
            let trace = FailureTrace::generate(
                Some(FailureProcess::Renewal(FailureDistribution::exponential(
                    params.m_h,
                ))),
                Some(FailureProcess::Renewal(FailureDistribution::exponential(
                    params.m_s,
                ))),
                10.0 * params.w,
                2 * sockets as usize,
                seed,
            );
            let r = timeline.run(&SimConfig {
                work: params.w,
                scheme,
                detection: DetectionMethod::FullCompare,
                tau: TauPolicy::Fixed(eval.tau),
                trace,
                alarms: Vec::new(),
            });
            acc += r.overhead();
        }
        sim_overheads.push(acc / SEEDS as f64);
        model_overheads.push(eval.overhead);
    }
    // Within a factor ~2 of each other, and the same winner.
    for (s, m) in sim_overheads.iter().zip(&model_overheads) {
        assert!(s / m < 2.5 && m / s < 2.5, "sim {s} vs model {m}");
    }
    let max_sim = sim_overheads.iter().cloned().fold(0.0, f64::max);
    assert_eq!(
        sim_overheads.iter().position(|&x| x == max_sim),
        Some(0),
        "strong should cost the most in both: {sim_overheads:?}"
    );
}

/// The config builder covers the incremental-delta knobs, and the anchor
/// interval is validated up front: delta with a zero anchor interval is a
/// configuration error, not a runtime surprise; the interval is ignored
/// (any value fine) while delta is off.
#[test]
fn builder_covers_delta_knobs_and_validates_anchor_interval() {
    let cfg = JobConfig::builder()
        .ranks(2)
        .delta_checkpoints(true)
        .delta_anchor_interval(8)
        .build()
        .expect("valid delta config");
    assert!(cfg.delta_checkpoints);
    assert_eq!(cfg.delta_anchor_interval, 8);

    let err = JobConfig::builder()
        .ranks(2)
        .delta_checkpoints(true)
        .delta_anchor_interval(0)
        .build()
        .expect_err("zero anchor interval with delta on must not validate");
    assert!(
        err.to_string().contains("anchor"),
        "unexpected error: {err}"
    );

    // Off by default, and the interval is unchecked while off.
    let cfg = JobConfig::builder()
        .ranks(2)
        .delta_anchor_interval(0)
        .build()
        .expect("anchor interval is ignored while delta is off");
    assert!(!cfg.delta_checkpoints);
}
