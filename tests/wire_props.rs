//! Property tests for the TCP transport's frame layer
//! (`acr::runtime::wire`): any sequence of frames survives the stream —
//! whole, byte by byte, or in arbitrary short reads — and the decoder
//! rejects garbage prefixes and corrupted bodies instead of
//! desynchronizing. The super-frame section covers the batching layer:
//! however a frame list is split into flushes and whatever codec each
//! flush negotiates, the receiver sees the same frames in the same order,
//! never pays more bytes than plain per-frame framing, and rejects
//! truncated or structurally corrupt super-frames.

use acr::protocol::{Checkpoint, ChunkTable, Detection, DetectionMethod, SdcDetector};
use acr::pup::{chunk_digests, chunk_span};
use acr::runtime::wire::{
    decode_compare_body, encode_batch, encode_compare_body, encode_frame, Frame, FrameDecoder,
    WireCodec, FRAME_HEADER, FRAME_MAGIC, FRAME_TRAILER, SUPER_HEADER, SUPER_MAGIC,
};
use bytes::Bytes;
use proptest::prelude::*;

fn frame_strategy() -> impl Strategy<Value = Frame> {
    (
        prop::collection::vec(any::<u8>(), 0..200),
        any::<u32>(),
        any::<u64>(),
    )
        .prop_map(|(body, to, seq)| Frame { to, seq, body })
}

/// Split `stream` into chunks whose sizes cycle through `cuts` (1-based so
/// a chunk is never empty), modelling arbitrary partial reads.
fn feed_chunked(dec: &mut FrameDecoder, stream: &[u8], cuts: &[usize]) -> Vec<Frame> {
    let mut out = Vec::new();
    let mut pos = 0;
    let mut i = 0;
    while pos < stream.len() {
        let take = if cuts.is_empty() {
            stream.len()
        } else {
            1 + cuts[i % cuts.len()] % 97
        };
        let end = (pos + take).min(stream.len());
        dec.feed(&stream[pos..end]);
        pos = end;
        i += 1;
        while let Some(f) = dec.next_frame().expect("clean stream must decode") {
            out.push(f);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Whatever the read sizes, the decoder yields exactly the encoded
    /// frames, in order, and ends wanting more — never mid-frame garbage.
    #[test]
    fn frames_roundtrip_under_arbitrary_chunking(
        frames in prop::collection::vec(frame_strategy(), 1..8),
        cuts in prop::collection::vec(0usize..97, 0..12),
    ) {
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&encode_frame(f.to, f.seq, &f.body));
        }
        let mut dec = FrameDecoder::new();
        let decoded = feed_chunked(&mut dec, &stream, &cuts);
        prop_assert_eq!(decoded, frames);
        prop_assert_eq!(dec.next_frame(), Ok(None));
    }

    /// A truncated tail is an incomplete frame, not an error: the decoder
    /// reports `Ok(None)` and waits for the rest.
    #[test]
    fn truncated_frame_is_incomplete_not_an_error(
        frame in frame_strategy(),
        cut_seed in any::<u64>(),
    ) {
        let encoded = encode_frame(frame.to, frame.seq, &frame.body);
        // Keep 1..len-1 bytes — always missing at least the last byte.
        let keep = 1 + (cut_seed as usize) % (encoded.len() - 1);
        let mut dec = FrameDecoder::new();
        dec.feed(&encoded[..keep]);
        prop_assert_eq!(dec.next_frame(), Ok(None));
        // Feeding the remainder completes the frame.
        dec.feed(&encoded[keep..]);
        prop_assert_eq!(dec.next_frame(), Ok(Some(frame)));
    }

    /// A stream that does not open with the frame magic is rejected on the
    /// first complete header — the connection must drop, not resync.
    #[test]
    fn garbage_prefix_is_rejected(
        mut junk in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut prefix = Vec::new();
        // Any first-4-bytes that are not the magic.
        let bad = FRAME_MAGIC.wrapping_add(1 + (junk.len() as u32));
        prefix.extend_from_slice(&bad.to_le_bytes());
        prefix.append(&mut junk);
        // Pad so at least one full header is buffered.
        prefix.resize(prefix.len().max(FRAME_HEADER), 0);
        let mut dec = FrameDecoder::new();
        dec.feed(&prefix);
        prop_assert!(dec.next_frame().is_err(), "garbage prefix accepted");
    }

    /// Any single corrupted body byte trips the Fletcher-64 trailer.
    #[test]
    fn corrupted_body_byte_fails_checksum(
        frame in frame_strategy(),
        pick in any::<u64>(),
    ) {
        prop_assume!(!frame.body.is_empty());
        let mut encoded = encode_frame(frame.to, frame.seq, &frame.body);
        let body_at = FRAME_HEADER + (pick as usize) % frame.body.len();
        let flip = 1u8 << (pick % 8);
        encoded[body_at] ^= flip;
        // A flip that Fletcher-64 cannot see does not exist for single
        // bytes, but guard against the degenerate 0 xor anyway.
        prop_assume!(flip != 0);
        let mut dec = FrameDecoder::new();
        dec.feed(&encoded);
        prop_assert!(
            dec.next_frame().is_err(),
            "corrupted body decoded cleanly"
        );
    }

    /// Corrupting the length field can never make the decoder read past a
    /// sane bound: it either errors (magic/size/checksum) or waits for
    /// bytes that will never come — it does not fabricate a frame.
    #[test]
    fn corrupted_header_never_yields_a_frame(
        frame in frame_strategy(),
        byte in 0usize..FRAME_HEADER,
        flip in 1u8..255,
    ) {
        let mut encoded = encode_frame(frame.to, frame.seq, &frame.body);
        encoded[byte] ^= flip;
        let mut dec = FrameDecoder::new();
        dec.feed(&encoded);
        match dec.next_frame() {
            Err(_) => {}
            Ok(None) => {} // longer length field: waits for more bytes
            Ok(Some(got)) => {
                // The flip landed in `to` or `seq`: payload integrity is
                // still intact, only addressing changed (the trailer does
                // not cover the header by design — seq is rewritten per
                // link on replay).
                prop_assert_eq!(got.body, frame.body);
                let total = FRAME_HEADER + frame.body.len() + FRAME_TRAILER;
                prop_assert_eq!(encoded.len(), total);
            }
        }
    }
}

// --------------------------------------------------------------------------
// Super-frame batching and codecs
// --------------------------------------------------------------------------

fn codec_strategy() -> impl Strategy<Value = WireCodec> {
    prop_oneof![
        Just(WireCodec::None),
        Just(WireCodec::Rle),
        Just(WireCodec::Lz),
    ]
}

/// Bodies in both shapes the codecs care about: uniform noise (which must
/// survive untouched — the encoder keeps the raw payload when compression
/// does not pay) and runny, highly compressible data.
fn mixed_body_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        prop::collection::vec(any::<u8>(), 0..300),
        (any::<u8>(), 1usize..600).prop_map(|(b, n)| vec![b; n]),
        prop::collection::vec((any::<u8>(), 1usize..48), 0..10)
            .prop_map(|runs| { runs.into_iter().flat_map(|(b, n)| vec![b; n]).collect() }),
    ]
}

fn record_strategy() -> impl Strategy<Value = Frame> {
    (mixed_body_strategy(), any::<u32>(), any::<u64>()).prop_map(|(body, to, seq)| Frame {
        to,
        seq,
        body,
    })
}

fn as_records(frames: &[Frame]) -> Vec<(u32, u64, &[u8])> {
    frames
        .iter()
        .map(|f| (f.to, f.seq, f.body.as_slice()))
        .collect()
}

/// What the same frames would cost as one plain frame per message — the
/// bound batching must never exceed.
fn plain_cost(frames: &[Frame]) -> usize {
    frames
        .iter()
        .map(|f| FRAME_HEADER + f.body.len() + FRAME_TRAILER)
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Split/merge round-trip: however the sender partitions a frame list
    /// into flushes, and whatever codec each flush uses, the receiver
    /// reassembles the exact frame sequence from arbitrary partial reads —
    /// and no flush ever costs more than plain per-frame framing.
    #[test]
    fn super_frames_roundtrip_whatever_the_split(
        frames in prop::collection::vec(record_strategy(), 1..20),
        splits in prop::collection::vec(1usize..6, 0..10),
        codec in codec_strategy(),
        cuts in prop::collection::vec(0usize..97, 0..12),
    ) {
        let mut stream = Vec::new();
        let (mut i, mut s) = (0, 0);
        while i < frames.len() {
            let take = if splits.is_empty() {
                frames.len()
            } else {
                splits[s % splits.len()]
            }
            .min(frames.len() - i);
            let chunk = &frames[i..i + take];
            let batch = encode_batch(&as_records(chunk), codec);
            prop_assert!(
                batch.bytes.len() <= plain_cost(chunk),
                "batch of {} frames cost {} bytes, plain framing {}",
                take, batch.bytes.len(), plain_cost(chunk)
            );
            prop_assert_eq!(batch.frames, take);
            stream.extend_from_slice(&batch.bytes);
            i += take;
            s += 1;
        }
        let mut dec = FrameDecoder::new();
        let decoded = feed_chunked(&mut dec, &stream, &cuts);
        prop_assert_eq!(decoded, frames);
        prop_assert_eq!(dec.next_frame(), Ok(None));
    }

    /// Codec round-trip for a single frame, incompressible bodies
    /// included: whatever the encoder chose to store, the decoder hands
    /// back the original body, and the wire never costs more than the
    /// plain encoding.
    #[test]
    fn codec_roundtrips_incompressible_included(
        body in mixed_body_strategy(),
        codec in codec_strategy(),
        to in any::<u32>(),
        seq in any::<u64>(),
    ) {
        let batch = encode_batch(&[(to, seq, body.as_slice())], codec);
        prop_assert!(batch.bytes.len() <= FRAME_HEADER + body.len() + FRAME_TRAILER);
        let mut dec = FrameDecoder::new();
        dec.feed(&batch.bytes);
        prop_assert_eq!(dec.next_frame(), Ok(Some(Frame { to, seq, body })));
        prop_assert_eq!(dec.next_frame(), Ok(None));
    }

    /// A truncated super-frame is an incomplete read, not an error; the
    /// remainder completes it.
    #[test]
    fn truncated_super_frame_is_incomplete_not_an_error(
        frames in prop::collection::vec(record_strategy(), 2..6),
        codec in codec_strategy(),
        cut_seed in any::<u64>(),
    ) {
        let batch = encode_batch(&as_records(&frames), codec);
        let keep = 1 + (cut_seed as usize) % (batch.bytes.len() - 1);
        let mut dec = FrameDecoder::new();
        dec.feed(&batch.bytes[..keep]);
        prop_assert_eq!(dec.next_frame(), Ok(None));
        dec.feed(&batch.bytes[keep..]);
        let mut out = Vec::new();
        while let Some(f) = dec.next_frame().expect("completed super-frame must decode") {
            out.push(f);
        }
        prop_assert_eq!(out, frames);
    }

    /// Any corrupted byte of the stored payload trips the super-frame's
    /// Fletcher-64 trailer, and the poisoned decoder stays down.
    #[test]
    fn corrupted_super_frame_payload_fails_checksum(
        frames in prop::collection::vec(record_strategy(), 2..6),
        codec in codec_strategy(),
        pick in any::<u64>(),
    ) {
        let batch = encode_batch(&as_records(&frames), codec);
        let mut bytes = batch.bytes;
        let stored = bytes.len() - SUPER_HEADER - FRAME_TRAILER;
        let at = SUPER_HEADER + (pick as usize) % stored;
        bytes[at] ^= 1 << (pick % 8);
        let mut dec = FrameDecoder::new();
        dec.feed(&bytes);
        prop_assert!(dec.next_frame().is_err(), "corrupted payload decoded");
        prop_assert!(dec.next_frame().is_err(), "decoder resynced after poison");
    }

    /// Structural garbage the checksum cannot see (the trailer covers only
    /// the stored payload): a zero sub-frame count or an unknown codec tag
    /// must poison the stream, never fabricate frames.
    #[test]
    fn garbage_super_frame_header_is_rejected(
        frames in prop::collection::vec(record_strategy(), 2..4),
        which in any::<u8>(),
    ) {
        let batch = encode_batch(&as_records(&frames), WireCodec::Lz);
        let mut bytes = batch.bytes;
        prop_assert_eq!(&bytes[0..4], &SUPER_MAGIC.to_le_bytes());
        if which % 2 == 0 {
            // Sub-frame count of zero (offset 8..10).
            bytes[8] = 0;
            bytes[9] = 0;
        } else {
            // Unknown codec tag (offset 10).
            bytes[10] = 0x7f;
        }
        let mut dec = FrameDecoder::new();
        dec.feed(&bytes);
        prop_assert!(dec.next_frame().is_err(), "structural garbage accepted");
        prop_assert!(dec.next_frame().is_err(), "decoder resynced after poison");
    }
}

// --------------------------------------------------------------------------
// Delta compare records
// --------------------------------------------------------------------------

/// A structurally valid delta record plus its compare iteration: a random
/// chunking of a random payload length, a strictly increasing dirty subset
/// with correctly sized windows, and a full digest table.
fn delta_record_strategy() -> impl Strategy<Value = (u64, Detection)> {
    (
        any::<u64>(), // compare iteration
        any::<u64>(), // base iteration
        1usize..48,   // chunk size
        0usize..1200, // payload length
        any::<u64>(), // seed: dirty selection + window bytes
    )
        .prop_map(
            |(iteration, base_iteration, chunk_size, payload_len, seed)| {
                let total = payload_len.div_ceil(chunk_size);
                let digests = (0..total as u64)
                    .map(|i| seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(i))
                    .collect();
                let table = ChunkTable {
                    chunk_size: chunk_size as u32,
                    digests,
                };
                let dirty = (0..total as u32)
                    .filter(|i| (seed >> (i % 61)) & 1 == 1)
                    .map(|i| {
                        let window: Vec<u8> = chunk_span(chunk_size, payload_len, i)
                            .map(|b| (b as u8).wrapping_add(seed as u8))
                            .collect();
                        (i, Bytes::from(window))
                    })
                    .collect();
                let record = Detection::Delta {
                    base_iteration,
                    payload_len,
                    digest: seed.rotate_left(17),
                    table,
                    dirty,
                };
                (iteration, record)
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// A well-formed delta record survives the compare-body codec
    /// byte-for-byte: decoding reproduces the record exactly and
    /// re-encoding reproduces the exact wire bytes.
    #[test]
    fn delta_records_roundtrip_byte_for_byte(
        (iteration, record) in delta_record_strategy(),
    ) {
        let body = encode_compare_body(iteration, &record);
        let (got_iter, got) =
            decode_compare_body(&body).expect("valid delta record must decode");
        prop_assert_eq!(got_iter, iteration);
        prop_assert_eq!(&got, &record);
        prop_assert_eq!(encode_compare_body(got_iter, &got), body);
    }

    /// Any proper prefix of a delta compare body is rejected — the strict
    /// structural validation never fabricates a shorter record from a
    /// truncated read.
    #[test]
    fn truncated_delta_record_is_rejected(
        (iteration, record) in delta_record_strategy(),
        cut_seed in any::<u64>(),
    ) {
        let body = encode_compare_body(iteration, &record);
        let keep = (cut_seed as usize) % (body.len() - 1);
        prop_assert!(
            decode_compare_body(&body[..keep]).is_err(),
            "truncated delta record decoded at {keep}/{} bytes",
            body.len()
        );
    }

    /// A delta record whose base the receiver does not hold degrades to a
    /// digest-table-grade comparison — and that fallback must be
    /// verdict-identical to the full digest-table record, clean exactly
    /// when the underlying payloads agree. This is what makes the forced
    /// full-ship fallback safe: no verdict ever depends on the base.
    #[test]
    fn base_epoch_mismatch_falls_back_verdict_identically(
        payload in prop::collection::vec(any::<u8>(), 1..800),
        // The digest pipeline requires 4-byte-aligned chunk sizes.
        chunk_size in (1usize..12).prop_map(|k| k * 4),
        base_iteration in any::<u64>(),
        flip in any::<u64>(),
        mutate in any::<bool>(),
    ) {
        let mut remote = payload.clone();
        if mutate {
            let at = (flip as usize) % remote.len();
            remote[at] ^= 1 | (flip >> 32) as u8;
        }
        let local_chunked = chunk_digests(&payload, chunk_size);
        let local = Checkpoint::with_chunks(
            7,
            Bytes::from(payload.clone()),
            local_chunked.digest,
            ChunkTable {
                chunk_size: chunk_size as u32,
                digests: local_chunked.chunk_digests.clone(),
            },
        );
        let remote_chunked = chunk_digests(&remote, chunk_size);
        let table = ChunkTable {
            chunk_size: chunk_size as u32,
            digests: remote_chunked.chunk_digests.clone(),
        };
        let digest = remote_chunked.digest;
        // The dirty windows are irrelevant to the fallback verdict; carry
        // one real one.
        let span = chunk_span(chunk_size, remote.len(), 0);
        let delta = Detection::Delta {
            base_iteration,
            payload_len: remote.len(),
            digest,
            table: table.clone(),
            dirty: vec![(0, Bytes::from(remote[span].to_vec()))],
        };
        let det = SdcDetector::new(DetectionMethod::FullCompare);
        let via_delta = det.diverged(&local, &delta);
        let via_table = det.diverged(&local, &Detection::DigestTable { digest, table });
        prop_assert_eq!(via_delta.is_clean(), remote == payload);
        prop_assert_eq!(via_delta, via_table);
    }

    /// Flipping any bit of a shipped dirty window poisons the whole frame:
    /// the Fletcher-64 trailer catches it before the record reaches the
    /// protocol layer.
    #[test]
    fn corrupted_delta_window_poisons_frame(
        (iteration, record) in delta_record_strategy(),
        seq in any::<u64>(),
    ) {
        let dirty_len = match &record {
            Detection::Delta { dirty, .. } => dirty.len(),
            _ => 0,
        };
        prop_assume!(dirty_len > 0);
        let body = encode_compare_body(iteration, &record);
        let mut framed = encode_frame(3, seq, &body);
        // The body's final byte is the last byte of the last dirty window.
        let at = FRAME_HEADER + body.len() - 1;
        framed[at] ^= 0x40;
        let mut dec = FrameDecoder::new();
        dec.feed(&framed);
        prop_assert!(
            dec.next_frame().is_err(),
            "flipped delta window decoded cleanly"
        );
    }

    /// Structural corruption the frame checksum was never asked about —
    /// out-of-range chunk indices, non-increasing indices, or a window
    /// whose size does not match its chunk span — is rejected by the body
    /// decoder, never surfaced as a mangled record.
    #[test]
    fn malformed_delta_structure_is_rejected(
        (iteration, record) in delta_record_strategy(),
        which in 0u8..3,
    ) {
        let Detection::Delta { base_iteration, payload_len, digest, table, mut dirty } = record
        else {
            unreachable!("strategy yields Delta records only")
        };
        prop_assume!(!dirty.is_empty());
        let total = table.digests.len() as u32;
        match which {
            0 => dirty[0].0 = total, // out-of-range index
            1 => {
                // Duplicate first index: indices must strictly increase.
                let first = dirty[0].clone();
                dirty.insert(0, first);
            }
            _ => {
                // Window one byte short of its chunk span.
                let mut v = dirty[0].1.to_vec();
                v.pop();
                dirty[0].1 = Bytes::from(v);
            }
        }
        let bad = Detection::Delta { base_iteration, payload_len, digest, table, dirty };
        let body = encode_compare_body(iteration, &bad);
        prop_assert!(
            decode_compare_body(&body).is_err(),
            "structurally malformed delta record decoded"
        );
    }
}
