//! Property tests for the TCP transport's frame layer
//! (`acr::runtime::wire`): any sequence of frames survives the stream —
//! whole, byte by byte, or in arbitrary short reads — and the decoder
//! rejects garbage prefixes and corrupted bodies instead of
//! desynchronizing.

use acr::runtime::wire::{
    encode_frame, Frame, FrameDecoder, FRAME_HEADER, FRAME_MAGIC, FRAME_TRAILER,
};
use proptest::prelude::*;

fn frame_strategy() -> impl Strategy<Value = Frame> {
    (
        prop::collection::vec(any::<u8>(), 0..200),
        any::<u32>(),
        any::<u64>(),
    )
        .prop_map(|(body, to, seq)| Frame { to, seq, body })
}

/// Split `stream` into chunks whose sizes cycle through `cuts` (1-based so
/// a chunk is never empty), modelling arbitrary partial reads.
fn feed_chunked(dec: &mut FrameDecoder, stream: &[u8], cuts: &[usize]) -> Vec<Frame> {
    let mut out = Vec::new();
    let mut pos = 0;
    let mut i = 0;
    while pos < stream.len() {
        let take = if cuts.is_empty() {
            stream.len()
        } else {
            1 + cuts[i % cuts.len()] % 97
        };
        let end = (pos + take).min(stream.len());
        dec.feed(&stream[pos..end]);
        pos = end;
        i += 1;
        while let Some(f) = dec.next_frame().expect("clean stream must decode") {
            out.push(f);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Whatever the read sizes, the decoder yields exactly the encoded
    /// frames, in order, and ends wanting more — never mid-frame garbage.
    #[test]
    fn frames_roundtrip_under_arbitrary_chunking(
        frames in prop::collection::vec(frame_strategy(), 1..8),
        cuts in prop::collection::vec(0usize..97, 0..12),
    ) {
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&encode_frame(f.to, f.seq, &f.body));
        }
        let mut dec = FrameDecoder::new();
        let decoded = feed_chunked(&mut dec, &stream, &cuts);
        prop_assert_eq!(decoded, frames);
        prop_assert_eq!(dec.next_frame(), Ok(None));
    }

    /// A truncated tail is an incomplete frame, not an error: the decoder
    /// reports `Ok(None)` and waits for the rest.
    #[test]
    fn truncated_frame_is_incomplete_not_an_error(
        frame in frame_strategy(),
        cut_seed in any::<u64>(),
    ) {
        let encoded = encode_frame(frame.to, frame.seq, &frame.body);
        // Keep 1..len-1 bytes — always missing at least the last byte.
        let keep = 1 + (cut_seed as usize) % (encoded.len() - 1);
        let mut dec = FrameDecoder::new();
        dec.feed(&encoded[..keep]);
        prop_assert_eq!(dec.next_frame(), Ok(None));
        // Feeding the remainder completes the frame.
        dec.feed(&encoded[keep..]);
        prop_assert_eq!(dec.next_frame(), Ok(Some(frame)));
    }

    /// A stream that does not open with the frame magic is rejected on the
    /// first complete header — the connection must drop, not resync.
    #[test]
    fn garbage_prefix_is_rejected(
        mut junk in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut prefix = Vec::new();
        // Any first-4-bytes that are not the magic.
        let bad = FRAME_MAGIC.wrapping_add(1 + (junk.len() as u32));
        prefix.extend_from_slice(&bad.to_le_bytes());
        prefix.append(&mut junk);
        // Pad so at least one full header is buffered.
        prefix.resize(prefix.len().max(FRAME_HEADER), 0);
        let mut dec = FrameDecoder::new();
        dec.feed(&prefix);
        prop_assert!(dec.next_frame().is_err(), "garbage prefix accepted");
    }

    /// Any single corrupted body byte trips the Fletcher-64 trailer.
    #[test]
    fn corrupted_body_byte_fails_checksum(
        frame in frame_strategy(),
        pick in any::<u64>(),
    ) {
        prop_assume!(!frame.body.is_empty());
        let mut encoded = encode_frame(frame.to, frame.seq, &frame.body);
        let body_at = FRAME_HEADER + (pick as usize) % frame.body.len();
        let flip = 1u8 << (pick % 8);
        encoded[body_at] ^= flip;
        // A flip that Fletcher-64 cannot see does not exist for single
        // bytes, but guard against the degenerate 0 xor anyway.
        prop_assume!(flip != 0);
        let mut dec = FrameDecoder::new();
        dec.feed(&encoded);
        prop_assert!(
            dec.next_frame().is_err(),
            "corrupted body decoded cleanly"
        );
    }

    /// Corrupting the length field can never make the decoder read past a
    /// sane bound: it either errors (magic/size/checksum) or waits for
    /// bytes that will never come — it does not fabricate a frame.
    #[test]
    fn corrupted_header_never_yields_a_frame(
        frame in frame_strategy(),
        byte in 0usize..FRAME_HEADER,
        flip in 1u8..255,
    ) {
        let mut encoded = encode_frame(frame.to, frame.seq, &frame.body);
        encoded[byte] ^= flip;
        let mut dec = FrameDecoder::new();
        dec.feed(&encoded);
        match dec.next_frame() {
            Err(_) => {}
            Ok(None) => {} // longer length field: waits for more bytes
            Ok(Some(got)) => {
                // The flip landed in `to` or `seq`: payload integrity is
                // still intact, only addressing changed (the trailer does
                // not cover the header by design — seq is rewritten per
                // link on replay).
                prop_assert_eq!(got.body, frame.body);
                let total = FRAME_HEADER + frame.body.len() + FRAME_TRAILER;
                prop_assert_eq!(encoded.len(), total);
            }
        }
    }
}
