//! Calibration pipeline: the committed artifacts stay consumable by both
//! predictors, the virtual twin stays reproducible on any machine, and the
//! model × simulator triangle stays closed at the calibrated point.
//!
//! The heavyweight wall-clock measurement and the full gate battery live
//! in `examples/calibration_sweep.rs` (run by the `calibration` CI job);
//! these tier-1 tests cover the deterministic virtual path only.

use std::path::Path;
use std::time::Duration;

use acr::fault::{FailureDistribution, FailureProcess, FailureTrace};
use acr::model::{advise, Calibration, ModelParams, Scenario, SchemeModel, HOUR};
use acr::runtime::calibrate::{measure, CalibrateOptions};
use acr::runtime::{
    DetectionMethod, ExecMode, FaultAction, FaultScript, Job, JobConfig, Scheme, Trigger,
};
use acr::sim::{CostProfile, Machine, SimConfig, TauPolicy, Timeline};
use acr::topology::MappingKind;

fn committed(name: &str) -> Calibration {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("results")
        .join(name);
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    Calibration::from_json(&text).unwrap_or_else(|e| panic!("parse {}: {e}", path.display()))
}

#[test]
fn committed_artifacts_parse_validate_and_round_trip() {
    for (name, clock) in [
        ("calibration.json", "wall"),
        ("calibration_virtual.json", "virtual"),
    ] {
        let cal = committed(name);
        cal.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(cal.clock, clock, "{name}");
        let reparsed = Calibration::from_json(&cal.to_json()).expect("round trip parses");
        assert_eq!(cal, reparsed, "{name}: JSON round trip must be bit-exact");
        for scheme in Scheme::ALL {
            let c = cal.scheme_costs(scheme);
            assert!(c.delta.mean > 0.0, "{name} {scheme:?}");
            assert!(c.hard_restart.mean > 0.0, "{name} {scheme:?}");
        }
    }
}

/// The virtual twin is deterministic: re-measuring on this machine, with
/// the same options the sweep used, reproduces the committed numbers.
#[test]
fn fresh_virtual_measurement_matches_committed_twin() {
    let cal = committed("calibration_virtual.json");
    let mut opts = CalibrateOptions::quick_virtual();
    opts.samples = 2;
    let fresh = measure(&opts).expect("virtual calibration measures");
    assert!(
        (fresh.probe_work_s - cal.probe_work_s).abs() <= 0.05 * cal.probe_work_s,
        "probe work drifted: fresh {} vs committed {}",
        fresh.probe_work_s,
        cal.probe_work_s
    );
    for scheme in Scheme::ALL {
        let a = fresh.scheme_costs(scheme).delta.mean;
        let b = cal.scheme_costs(scheme).delta.mean;
        assert!(
            (a - b).abs() <= 0.05 * b,
            "{scheme:?}: δ drifted: fresh {a} vs committed {b}"
        );
    }
    assert_eq!(fresh.checksum_wins, cal.checksum_wins);
}

/// Triangle closure: the §5 model and the event-driven simulator, both fed
/// from the committed virtual calibration, agree on utilization at the
/// calibrated point within a tolerance band.
#[test]
fn model_and_sim_agree_at_the_calibrated_point() {
    let cal = committed("calibration_virtual.json");
    let work = 400.0 * cal.probe_work_s;
    let mtbf = work / 4.0;
    for scheme in Scheme::ALL {
        let params = ModelParams::builder()
            .work(work)
            .delta(cal.scheme_costs(scheme).delta.mean)
            .hard_restart(cal.scheme_costs(scheme).hard_restart.mean)
            .sdc_restart(cal.scheme_costs(scheme).sdc_restart.mean)
            .system_mtbf(mtbf)
            .system_sdc_mtbf(mtbf)
            .build()
            .expect("calibrated params build");
        let eval = SchemeModel::new(params).optimize(scheme);
        assert!(eval.t_total.is_finite(), "{scheme:?}: model diverged");

        let machine = Machine::bgp(1024, MappingKind::Default).calibrated(&cal);
        let costs = CostProfile::from_calibration(&cal, scheme, cal.probe_state_bytes, None);
        let tl = Timeline::with_costs(machine, acr::apps::TABLE2[0], costs);
        let nodes = tl.machine().torus.len();
        let mut acc = 0.0;
        const SEEDS: u64 = 4;
        for seed in 0..SEEDS {
            let hard = FailureProcess::Renewal(FailureDistribution::exponential(mtbf));
            let sdc = FailureProcess::Renewal(FailureDistribution::exponential(mtbf));
            let trace =
                FailureTrace::generate(Some(hard), Some(sdc), 20.0 * work, nodes, 100 + seed);
            let r = tl.run(&SimConfig::basic(
                work,
                scheme,
                DetectionMethod::FullCompare,
                TauPolicy::Fixed(eval.tau),
                trace,
            ));
            acc += r.utilization();
        }
        let sim_util = acc / SEEDS as f64;
        let rel = (sim_util - eval.utilization).abs() / eval.utilization;
        assert!(
            rel <= 0.25,
            "{scheme:?}: model {} vs sim {} ({:.1}% apart)",
            eval.utilization,
            sim_util,
            100.0 * rel
        );
    }
}

/// The advisor consumes both committed artifacts and lands on the paper's
/// endpoint schemes: a small quiet machine tolerates a relaxed scheme, a
/// huge noisy one needs strong. (Only the wall artifact carries a measured
/// per-byte slope, so only it is extrapolated to 1 GB/socket.)
#[test]
fn advisor_picks_paper_endpoints_from_committed_calibrations() {
    let wall = committed("calibration.json");
    let quiet = Scenario {
        sockets: 1024,
        state_bytes_per_socket: 1e9,
        mtbf_years_per_socket: 50.0,
        sdc_fit_per_socket: 100.0,
        work_s: 24.0 * HOUR,
    };
    let noisy = Scenario {
        sockets: 262_144,
        state_bytes_per_socket: 1e9,
        mtbf_years_per_socket: 50.0,
        sdc_fit_per_socket: 10_000.0,
        work_s: 24.0 * HOUR,
    };
    let a = advise(&wall, &quiet, 0.01).expect("quiet advice");
    let b = advise(&wall, &noisy, 0.01).expect("noisy advice");
    assert_eq!(a.per_scheme.len(), 3);
    assert_ne!(a.scheme, Scheme::Strong, "quiet machine should relax");
    assert_eq!(b.scheme, Scheme::Strong, "noisy machine must go strong");

    let virt = committed("calibration_virtual.json");
    let probe_quiet = Scenario {
        state_bytes_per_socket: virt.probe_state_bytes,
        ..quiet
    };
    let v = advise(&virt, &probe_quiet, 0.01).expect("virtual advice");
    assert!(v.eval.utilization > 0.0 && v.eval.utilization <= 1.0);
}

/// The §2.3 weak-scheme hazard the model prices in is a real runtime
/// behavior: a cross-replica double crash inside one checkpoint interval
/// forces a restart from the beginning — and the job still finishes.
#[test]
fn weak_double_crash_restarts_from_beginning_and_completes() {
    let cfg = JobConfig::builder()
        .ranks(2)
        .tasks_per_rank(1)
        .spares(4)
        .scheme(Scheme::Weak)
        .detection(DetectionMethod::FullCompare)
        .checkpoint_interval(Duration::from_millis(60))
        .heartbeat_period(Duration::from_millis(5))
        .heartbeat_timeout(Duration::from_millis(40))
        .max_duration(Duration::from_secs(60))
        .build()
        .expect("weak hazard config");
    let mut script = FaultScript::new();
    script.push(
        Trigger::At(0.100),
        FaultAction::Crash {
            replica: 0,
            rank: 0,
        },
    );
    script.push(
        Trigger::At(0.110),
        FaultAction::Crash {
            replica: 1,
            rank: 1,
        },
    );
    let report = Job::new(cfg)
        .with_faults(script)
        .mode(ExecMode::virtual_default())
        .run(|rank, _| {
            Box::new(acr::integration::MiniAppTask::new(
                acr::apps::LeanMd::new(48, rank as u64),
                400,
            )) as Box<dyn acr::runtime::Task>
        });
    assert!(report.completed, "{:?}", report.error);
    assert!(
        report.restarts_from_beginning >= 1,
        "double crash must park-and-kill weak: {report:?}"
    );
    assert!(report.replicas_agree());
}
