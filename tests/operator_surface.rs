//! Acceptance battery for the operator surface (PR 8): the deterministic
//! `/status` fold, the live HTTP endpoint under a real TCP run (with an
//! in-test Prometheus exposition linter), and the offline store fold that
//! must mark a killed driver's abandoned capture.
//!
//! The killed stores produced here are left on disk (under
//! `target/operator-surface` by default, `ACR_OPERATOR_SURFACE_DIR` to
//! override) so CI can point `acr-top --store <dir> --snapshot` at them.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use acr::obs::{RecordedEvent, StatusModel};
use acr::pup::{Pup, PupResult, Puper};
use acr::runtime::{
    fold_store, AddrSlot, AppMsg, DetectionMethod, ExecMode, FaultAction, FaultScript, Job,
    JobConfig, JobReport, Scheme, StoreView, Task, TaskCtx, TaskId, TcpConfig, TransportKind,
    Trigger,
};

// ---------------------------------------------------------------------------
// Workload: the same communicating mini-ring the crash-restart battery uses,
// plus an optional hold-gate so the live-endpoint test can keep the job
// running until its scrapes are done.

struct Ring {
    rank: usize,
    iter: u64,
    tokens: u64,
    acc: Vec<f64>,
    total_iters: u64,
    hold_at: u64,
    release: Option<Arc<AtomicBool>>,
}

impl Ring {
    fn new(rank: usize, total_iters: u64) -> Self {
        Self {
            rank,
            iter: 0,
            tokens: 0,
            acc: (0..32).map(|i| (rank * 100 + i) as f64).collect(),
            total_iters,
            hold_at: u64::MAX,
            release: None,
        }
    }

    fn gated(rank: usize, total_iters: u64, hold_at: u64, release: Arc<AtomicBool>) -> Self {
        let mut r = Ring::new(rank, total_iters);
        r.hold_at = hold_at;
        r.release = Some(release);
        r
    }
}

impl Task for Ring {
    fn try_step(&mut self, ctx: &mut TaskCtx<'_>) -> bool {
        if self.done() {
            return false;
        }
        if self.iter >= self.hold_at
            && !self
                .release
                .as_ref()
                .is_some_and(|r| r.load(Ordering::Relaxed))
        {
            return false;
        }
        if self.iter > 0 && self.tokens == 0 {
            return false;
        }
        if self.iter > 0 {
            self.tokens -= 1;
        }
        for (i, x) in self.acc.iter_mut().enumerate() {
            *x += ((self.iter as f64 + i as f64) * 1e-3).sin();
        }
        let next = TaskId {
            rank: (self.rank + 1) % ctx.ranks(),
            task: 0,
        };
        ctx.send(next, self.iter, vec![]);
        self.iter += 1;
        true
    }

    fn on_message(&mut self, _msg: AppMsg, _ctx: &mut TaskCtx<'_>) {
        self.tokens += 1;
    }

    fn progress(&self) -> u64 {
        self.iter
    }

    fn done(&self) -> bool {
        self.iter >= self.total_iters
    }

    fn pup(&mut self, p: &mut dyn Puper) -> PupResult {
        p.pup_usize(&mut self.rank)?;
        p.pup_u64(&mut self.iter)?;
        p.pup_u64(&mut self.tokens)?;
        self.acc.pup(p)?;
        p.pup_u64(&mut self.total_iters)
    }
}

const ITERS: u64 = 300;

fn cfg(scheme: Scheme) -> JobConfig {
    JobConfig::builder()
        .ranks(2)
        .tasks_per_rank(1)
        .spares(2)
        .scheme(scheme)
        .detection(DetectionMethod::FullCompare)
        .checkpoint_interval(Duration::from_millis(60))
        .heartbeat_period(Duration::from_millis(5))
        .heartbeat_timeout(Duration::from_millis(40))
        .max_duration(Duration::from_secs(30))
        .build()
        .expect("valid virtual-time config")
}

fn run_virtual(scheme: Scheme, script: &FaultScript) -> JobReport {
    Job::new(cfg(scheme))
        .with_faults(script.clone())
        .mode(ExecMode::virtual_default())
        .run(|rank, _| Box::new(Ring::new(rank, ITERS)) as Box<dyn Task>)
}

/// Stable store root so CI can run `acr-top --store … --snapshot` against
/// what this battery leaves behind.
fn store_root() -> PathBuf {
    std::env::var_os("ACR_OPERATOR_SURFACE_DIR")
        .map_or_else(|| PathBuf::from("target/operator-surface"), PathBuf::from)
}

fn store_dir(name: &str) -> PathBuf {
    let dir = store_root().join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run_persisted(scheme: Scheme, script: &FaultScript, dir: &Path) -> JobReport {
    let mut c = cfg(scheme);
    c.persist_dir = Some(dir.to_path_buf());
    Job::new(c)
        .with_faults(script.clone())
        .mode(ExecMode::virtual_default())
        .run(|rank, _| Box::new(Ring::new(rank, ITERS)) as Box<dyn Task>)
}

// ---------------------------------------------------------------------------
// Tentpole layer 1: the status fold is deterministic byte-for-byte.

#[test]
fn status_json_is_byte_identical_across_virtual_runs() {
    let mut script = FaultScript::new();
    script.push(
        Trigger::At(0.100),
        FaultAction::Crash {
            replica: 1,
            rank: 1,
        },
    );
    let fold = || {
        let report = run_virtual(Scheme::Strong, &script);
        assert!(report.completed, "error: {:?}", report.error);
        let mut model = StatusModel::fold(report.events.iter());
        model.mark_source_ended();
        model
    };
    let a = fold();
    let b = fold();
    assert_eq!(
        a.to_json(),
        b.to_json(),
        "same virtual run must fold to byte-identical /status JSON"
    );
    assert_eq!(a.render(), b.render());

    // The fold saw the whole story: a completed job is not "interrupted",
    // the crash shows up as a recovery, and an epoch committed.
    let json = a.to_json();
    assert!(json.contains("\"interrupted\":false"), "{json}");
    assert!(a.ended() == Some(true));
    assert!(a.committed_round().is_some());
    assert!(a.abandoned_round().is_none());
    assert!(json.contains("\"recoveries\":1"), "{json}");
    assert!(json.contains("\"role\":\"failed\""), "{json}");
}

#[test]
fn incremental_fold_matches_batch_fold_over_a_real_run() {
    let report = run_virtual(Scheme::Medium, &FaultScript::new());
    assert!(report.completed);
    let batch = StatusModel::fold(report.events.iter()).to_json();
    // Apply in arbitrary chunk sizes — the poller's view.
    let mut inc = StatusModel::default();
    for chunk in report.events.chunks(7) {
        for ev in chunk {
            inc.apply(ev);
        }
    }
    assert_eq!(inc.to_json(), batch);
}

// ---------------------------------------------------------------------------
// In-test Prometheus exposition linter.

/// Validate Prometheus text exposition format: every sample line parses,
/// every family is announced by `# HELP` then `# TYPE` (in that order,
/// once), histogram families carry `_bucket`/`_sum`/`_count` with `le`
/// labels, and nothing is emitted for a family that was never announced.
fn lint_prometheus(text: &str) -> Result<(), String> {
    if text.is_empty() {
        return Err("empty exposition".into());
    }
    if !text.ends_with('\n') {
        return Err("exposition must end with a newline".into());
    }
    fn valid_name(name: &str) -> bool {
        !name.is_empty()
            && name
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }
    let mut helped: BTreeMap<String, ()> = BTreeMap::new();
    let mut typed: BTreeMap<String, String> = BTreeMap::new();
    let mut buckets_seen: BTreeMap<String, bool> = BTreeMap::new();
    for (no, line) in text.lines().enumerate() {
        let ln = no + 1;
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest
                .split_once(' ')
                .ok_or(format!("line {ln}: HELP without text"))?;
            if !valid_name(name) {
                return Err(format!("line {ln}: bad metric name {name:?}"));
            }
            if help.trim().is_empty() {
                return Err(format!("line {ln}: empty HELP text for {name}"));
            }
            if helped.insert(name.to_string(), ()).is_some() {
                return Err(format!("line {ln}: duplicate HELP for {name}"));
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, ty) = rest
                .split_once(' ')
                .ok_or(format!("line {ln}: TYPE without a type"))?;
            if !matches!(
                ty,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err(format!("line {ln}: unknown TYPE {ty:?}"));
            }
            if !helped.contains_key(name) {
                return Err(format!("line {ln}: TYPE {name} precedes its HELP"));
            }
            if typed.insert(name.to_string(), ty.to_string()).is_some() {
                return Err(format!("line {ln}: duplicate TYPE for {name}"));
            }
            continue;
        }
        if line.starts_with('#') {
            return Err(format!("line {ln}: unknown comment form {line:?}"));
        }
        // Sample line: name[{labels}] value
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or(format!("line {ln}: sample without value"))?;
        if value.parse::<f64>().is_err() && value != "+Inf" {
            return Err(format!("line {ln}: unparseable value {value:?}"));
        }
        let name = match series.split_once('{') {
            Some((n, labels)) => {
                if !labels.ends_with('}') {
                    return Err(format!("line {ln}: unterminated label set"));
                }
                n
            }
            None => series,
        };
        if !valid_name(name) {
            return Err(format!("line {ln}: bad metric name {name:?}"));
        }
        // Resolve the family: histogram samples use suffixed series names.
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suffix| {
                let base = name.strip_suffix(suffix)?;
                (typed.get(base).map(String::as_str) == Some("histogram")).then_some(base)
            })
            .unwrap_or(name);
        match typed.get(family).map(String::as_str) {
            None => {
                return Err(format!(
                    "line {ln}: sample {name} for unannounced family {family}"
                ))
            }
            Some("histogram") => {
                if name == format!("{family}_bucket") {
                    if !series.contains("le=\"") {
                        return Err(format!("line {ln}: histogram bucket without le label"));
                    }
                    buckets_seen.insert(family.to_string(), true);
                }
            }
            Some(_) => {}
        }
    }
    for (family, ty) in &typed {
        if ty == "histogram" && !buckets_seen.contains_key(family) {
            return Err(format!("histogram {family} has no _bucket samples"));
        }
    }
    Ok(())
}

#[test]
fn exposition_linter_accepts_expose_and_rejects_malformed_text() {
    // A recorder with one counter and one histogram: the real format.
    let rec = acr::obs::Recorder::new(acr::obs::ObsConfig::default(), 1, Arc::new(|| 0.0));
    rec.inc_counter("acr_pack_total", 2);
    rec.observe("acr_pack_seconds", 0.002);
    let text = rec.expose();
    lint_prometheus(&text).expect("Recorder::expose must be lint-clean");
    // The dropped-events series is always present, even at zero.
    assert!(text.contains("acr_obs_events_dropped_total 0"), "{text}");
    assert!(
        text.contains("# HELP acr_obs_events_dropped_total"),
        "{text}"
    );
    assert!(text.contains("# HELP acr_pack_total"), "{text}");

    // And the linter is not a rubber stamp.
    assert!(lint_prometheus("acr_x 1\n").is_err(), "unannounced family");
    assert!(
        lint_prometheus("# TYPE acr_x counter\nacr_x 1\n").is_err(),
        "TYPE without HELP"
    );
    assert!(
        lint_prometheus("# HELP acr_x h\n# TYPE acr_x wibble\nacr_x 1\n").is_err(),
        "unknown type"
    );
    assert!(
        lint_prometheus("# HELP acr_x h\n# TYPE acr_x counter\nacr_x notanumber\n").is_err(),
        "bad value"
    );
    assert!(lint_prometheus("# HELP acr_x h\n# TYPE acr_x counter\nacr_x 1").is_err());
}

// ---------------------------------------------------------------------------
// Tentpole layer 2: the live endpoint, scraped during a real TCP run.

fn http_get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to endpoint");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: acr\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let code: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .expect("status code");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (code, body)
}

#[test]
fn live_tcp_run_serves_lint_clean_metrics_and_deterministic_status() {
    let slot = AddrSlot::new();
    let release = Arc::new(AtomicBool::new(false));
    let job_release = Arc::clone(&release);
    let job_slot = slot.clone();
    let job = std::thread::spawn(move || {
        let cfg = JobConfig::builder()
            .ranks(2)
            .tasks_per_rank(1)
            .spares(1)
            .scheme(Scheme::Strong)
            .detection(DetectionMethod::FullCompare)
            .checkpoint_interval(Duration::from_millis(25))
            .heartbeat_period(Duration::from_millis(5))
            .heartbeat_timeout(Duration::from_millis(300))
            .max_duration(Duration::from_secs(30))
            .transport(TransportKind::Tcp(TcpConfig::default()))
            .http_addr("127.0.0.1:0")
            .http_bound(job_slot)
            .build()
            .expect("valid TCP config");
        Job::new(cfg).mode(ExecMode::Threaded).run(move |rank, _| {
            // Hold the ring at iteration 50 until the scraper is done,
            // so the endpoint is guaranteed to be serving mid-run.
            Box::new(Ring::gated(rank, 200, 50, Arc::clone(&job_release))) as Box<dyn Task>
        })
    });

    let addr = slot
        .wait(Duration::from_secs(10))
        .expect("endpoint must publish its bound address");

    // Give the job a moment to reach the hold point with a few checkpoint
    // rounds behind it, then scrape everything.
    std::thread::sleep(Duration::from_millis(300));

    let (code, metrics) = http_get(addr, "/metrics");
    let (status_code, status) = http_get(addr, "/status");
    // No since= parameter: the full buffer, seq 0 (job_start) included.
    let (events_code, events) = http_get(addr, "/events");
    let (miss_code, _) = http_get(addr, "/definitely-not-a-route");
    // Unblock the job before asserting so a failure cannot deadlock it.
    release.store(true, Ordering::Relaxed);

    assert_eq!(code, 200);
    lint_prometheus(&metrics).expect("live /metrics must be lint-clean");
    assert!(
        metrics.contains("acr_obs_events_dropped_total"),
        "dropped-events series must always be exposed:\n{metrics}"
    );
    assert!(metrics.contains("acr_pack_total"), "{metrics}");
    assert!(
        metrics.contains("acr_transport_connects_total"),
        "{metrics}"
    );

    assert_eq!(status_code, 200);
    assert!(status.starts_with('{') && status.ends_with('}'), "{status}");
    assert!(status.contains("\"scheme\":\"strong\""), "{status}");
    assert!(
        status.contains("\"detection\":\"full-compare\""),
        "{status}"
    );
    assert!(status.contains("\"nodes\":["), "{status}");
    // 2 ranks x 2 replicas: rank 0 of replica 0 buddies node 2.
    assert!(
        status.contains("\"node\":0,\"role\":\"active\",\"replica\":0,\"rank\":0,\"buddy\":2"),
        "{status}"
    );

    assert_eq!(events_code, 200);
    let parsed: Vec<RecordedEvent> = events
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| RecordedEvent::from_json(l).expect("NDJSON event line parses"))
        .collect();
    assert!(!parsed.is_empty());
    assert!(
        parsed.windows(2).all(|w| w[0].seq < w[1].seq),
        "event tail must be seq-ordered"
    );
    // The same fold the driver serves at /status works client-side on the
    // tail — what acr-top's live mode does.
    let client_model = StatusModel::fold(parsed.iter());
    assert!(client_model.to_json().contains("\"scheme\":\"strong\""));

    // Incremental tailing: `since` is EXCLUSIVE — the poller names the
    // last seq it has seen and the boundary event must not be replayed
    // (regression: this used to be `seq >= since` here but exclusive in
    // the store tailer).
    let last = parsed.last().unwrap().seq;
    let (_, tail) = http_get(addr, &format!("/events?since={last}"));
    for line in tail.lines().filter(|l| !l.trim().is_empty()) {
        let ev = RecordedEvent::from_json(line).expect("tail line parses");
        assert!(
            ev.seq > last,
            "since= must be exclusive of the boundary seq {last}, got {}",
            ev.seq
        );
    }
    // Boundary check against the full buffer: polling since= the very
    // first event's seq must drop exactly that event and keep the rest.
    let first = parsed.first().unwrap().seq;
    let (_, all_but_first) = http_get(addr, &format!("/events?since={first}"));
    let refetched: Vec<u64> = all_but_first
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| RecordedEvent::from_json(l).expect("line parses").seq)
        .collect();
    assert!(
        !refetched.contains(&first),
        "boundary event {first} replayed by since={first}"
    );
    assert!(
        refetched.contains(&parsed[1].seq),
        "since={first} must keep events after the boundary"
    );

    assert_eq!(miss_code, 404);

    let report = job.join().expect("job thread");
    assert!(report.completed, "error: {:?}", report.error);
}

// ---------------------------------------------------------------------------
// Tentpole layer 3 + satellite: folding killed stores offline.

#[test]
fn killed_mid_round_store_folds_to_an_abandoned_capture() {
    let dir = store_dir("killed_mid_round");
    // Checkpoint interval 60 ms: round 1 opens at t=0.060 and needs a few
    // virtual quanta of consensus; a kill at 0.061 lands inside the
    // capture, after RoundOpened was journaled but before EpochCommit.
    let mut script = FaultScript::new();
    script.push(Trigger::At(0.061), FaultAction::KillDriver);
    let report = run_persisted(Scheme::Strong, &script, &dir);
    assert!(!report.completed);
    assert_eq!(
        report.error.as_deref(),
        Some("driver killed by scripted fault"),
        "{:?}",
        report.error
    );

    let model = fold_store(&dir).expect("fold the killed store");
    assert_eq!(model.ended(), None, "no job-close record in a killed store");
    assert_eq!(
        model.abandoned_round(),
        Some(1),
        "round 1 was open when the driver died: {}",
        model.to_json()
    );
    assert_eq!(model.committed_round(), None);
    let json = model.to_json();
    assert!(json.contains("\"interrupted\":true"), "{json}");
    assert!(json.contains("\"abandoned_round\":1"), "{json}");
    let frame = model.render();
    assert!(frame.contains("ABANDONED"), "{frame}");
    assert!(frame.contains("INTERRUPTED"), "{frame}");
    assert!(frame.contains("r0:") && frame.contains("r1:"), "{frame}");

    // Folding twice is deterministic byte-for-byte.
    assert_eq!(fold_store(&dir).unwrap().to_json(), json);
}

#[test]
fn killed_after_commit_store_folds_to_committed_epoch_without_abandonment() {
    let dir = store_dir("killed_between_rounds");
    // 0.100 is between the commit of round 1 (~0.06x) and the opening of
    // round 2 (0.120): one epoch durable, nothing in flight.
    let mut script = FaultScript::new();
    script.push(Trigger::At(0.100), FaultAction::KillDriver);
    let report = run_persisted(Scheme::Strong, &script, &dir);
    assert!(!report.completed);

    let model = fold_store(&dir).expect("fold the killed store");
    assert_eq!(model.committed_round(), Some(1));
    assert_eq!(model.abandoned_round(), None);
    assert!(model.to_json().contains("\"interrupted\":true"));
}

#[test]
fn crash_then_kill_store_replays_promotion_into_the_node_grid() {
    let dir = store_dir("crash_then_kill");
    let mut script = FaultScript::new();
    script.push(
        Trigger::At(0.080),
        FaultAction::Crash {
            replica: 1,
            rank: 0,
        },
    );
    script.push(Trigger::At(0.250), FaultAction::KillDriver);
    let report = run_persisted(Scheme::Strong, &script, &dir);
    assert!(!report.completed);

    let mut view = StoreView::open(&dir);
    view.refresh().expect("replay the journal");
    assert!(view.records() > 0);
    assert_eq!(view.closed(), None, "killed journal never closes");
    assert_eq!(view.decode_errors(), 0);
    let model = view.status();
    let json = model.to_json();
    // The dead node shows as failed, and a spare took over its slot.
    assert!(json.contains("\"role\":\"failed\""), "{json}");
    assert!(json.contains("\"recoveries\":1"), "{json}");
    assert!(json.contains("\"interrupted\":true"), "{json}");
    // The promoted spare (node 4 or 5) holds replica 1 rank 0 and buddies
    // node 0 — visible in the rendered grid.
    let frame = model.render();
    assert!(frame.contains("r1:"), "{frame}");
    assert!(
        !frame.contains("VACANT"),
        "promotion must refill the slot: {frame}"
    );
}

#[test]
fn completed_persisted_store_folds_clean() {
    let dir = store_dir("completed");
    let report = run_persisted(Scheme::Strong, &FaultScript::new(), &dir);
    assert!(report.completed);

    let model = fold_store(&dir).expect("fold the completed store");
    assert_eq!(model.ended(), Some(true));
    assert_eq!(model.abandoned_round(), None);
    assert!(model.committed_round().is_some());
    assert!(model.to_json().contains("\"interrupted\":false"));
    assert!(model.render().contains("completed"));
}

#[test]
fn fold_store_refuses_a_directory_with_no_journal() {
    let dir = store_dir("not_a_store");
    std::fs::create_dir_all(&dir).unwrap();
    assert!(fold_store(&dir).is_err());
}
