//! The acceptance fault campaign (ISSUE PR 2): a 32-seed sweep across all
//! three recovery schemes under virtual time. Every generated scenario must
//! end in detection or bit-for-bit-correct output — never silent
//! corruption — and every case must replay byte-identically.

use acr::runtime::campaign::{run_campaign, CampaignConfig, CaseOutcome};

#[test]
fn thirty_two_seed_sweep_has_no_silent_corruption() {
    let cfg = CampaignConfig::default();
    assert_eq!(cfg.seeds.len(), 32, "acceptance bar is a 32-seed sweep");
    assert_eq!(cfg.schemes.len(), 3);
    assert!(cfg.check_determinism, "every case must replay identically");

    let report = run_campaign(&cfg);
    assert_eq!(report.cases.len(), 32 * 3);

    let violations: Vec<_> = report.violations().collect();
    assert!(
        violations.is_empty(),
        "campaign found {} invariant violation(s):\n{}",
        violations.len(),
        violations
            .iter()
            .map(|c| format!(
                "  seed {} {:?}/{:?}: {:?}\n    script:\n{}",
                c.seed,
                c.scheme,
                c.detection,
                c.outcome,
                c.script.to_repro()
            ))
            .collect::<Vec<_>>()
            .join("\n")
    );

    // The sweep must actually exercise the machinery, not vacuously pass:
    // some scenarios inject SDC that gets detected, some run clean.
    let (clean, detected, known_escapes, violation_count) = report.tally();
    assert!(
        detected >= 1,
        "no scenario exercised SDC detection (clean={clean}, escapes={known_escapes})"
    );
    assert_eq!(violation_count, 0);
    assert_eq!(clean + detected + known_escapes, report.cases.len());

    // Every non-violating case still finished with a live job.
    for case in &report.cases {
        if !matches!(case.outcome, CaseOutcome::Violation(_)) {
            assert!(
                case.report.completed,
                "seed {} {:?}: job did not complete",
                case.seed, case.scheme
            );
        }
    }
}
