//! Acceptance tests for the flight-recorder / overhead-report layer: the
//! per-phase breakdown folded from a run's event log must tile the run's
//! duration, and virtual-mode event logs must replay byte-identically.

use std::time::Duration;

use acr::obs::{sinks, Breakdown, EventKind};
use acr::pup::{Pup, PupResult, Puper};
use acr::runtime::{
    AppMsg, DetectionMethod, ExecMode, FaultAction, FaultScript, Job, JobConfig, JobReport, Scheme,
    Task, TaskCtx, TaskId, Trigger,
};

struct Ring {
    rank: usize,
    iter: u64,
    tokens: u64,
    acc: Vec<f64>,
    total_iters: u64,
}

impl Ring {
    fn new(rank: usize, total_iters: u64) -> Self {
        Self {
            rank,
            iter: 0,
            tokens: 0,
            acc: (0..48).map(|i| (rank * 100 + i) as f64).collect(),
            total_iters,
        }
    }
}

impl Task for Ring {
    fn try_step(&mut self, ctx: &mut TaskCtx<'_>) -> bool {
        if self.done() {
            return false;
        }
        if self.iter > 0 && self.tokens == 0 {
            return false;
        }
        if self.iter > 0 {
            self.tokens -= 1;
        }
        for (i, x) in self.acc.iter_mut().enumerate() {
            *x += ((self.iter as f64 + i as f64) * 1e-3).sin();
        }
        let next = TaskId {
            rank: (self.rank + 1) % ctx.ranks(),
            task: 0,
        };
        ctx.send(next, self.iter, vec![]);
        self.iter += 1;
        true
    }

    fn on_message(&mut self, _msg: AppMsg, _ctx: &mut TaskCtx<'_>) {
        self.tokens += 1;
    }

    fn progress(&self) -> u64 {
        self.iter
    }

    fn done(&self) -> bool {
        self.iter >= self.total_iters
    }

    fn pup(&mut self, p: &mut dyn Puper) -> PupResult {
        p.pup_usize(&mut self.rank)?;
        p.pup_u64(&mut self.iter)?;
        p.pup_u64(&mut self.tokens)?;
        self.acc.pup(p)?;
        p.pup_u64(&mut self.total_iters)
    }
}

const ITERS: u64 = 300;

fn run(scheme: Scheme, script: &FaultScript) -> JobReport {
    let cfg = JobConfig::builder()
        .ranks(4)
        .tasks_per_rank(1)
        .spares(2)
        .scheme(scheme)
        .detection(DetectionMethod::ChunkedChecksum)
        .checkpoint_interval(Duration::from_millis(60))
        .heartbeat_period(Duration::from_millis(5))
        .heartbeat_timeout(Duration::from_millis(40))
        .max_duration(Duration::from_secs(30))
        .build()
        .expect("valid observability config");
    Job::new(cfg)
        .with_faults(script.clone())
        .mode(ExecMode::virtual_default())
        .run(|rank, _| Box::new(Ring::new(rank, ITERS)) as Box<dyn Task>)
}

fn crash_script() -> FaultScript {
    FaultScript::single(
        Trigger::AtIteration(ITERS / 3),
        FaultAction::Crash {
            replica: 0,
            rank: 1,
        },
    )
}

/// The breakdown's rows sum to the run's total duration within 1%, for a
/// fault-free run and one crash scenario per scheme (acceptance criterion).
#[test]
fn breakdown_rows_tile_the_run_duration() {
    let scenarios: Vec<(&str, Scheme, FaultScript)> = vec![
        ("fault_free", Scheme::Strong, FaultScript::new()),
        ("strong_crash", Scheme::Strong, crash_script()),
        ("medium_crash", Scheme::Medium, crash_script()),
        ("weak_crash", Scheme::Weak, crash_script()),
    ];
    for (name, scheme, script) in scenarios {
        let report = run(scheme, &script);
        assert!(
            report.completed,
            "{name}: {:?}\n{}",
            report.error,
            report.trace.join("\n")
        );
        let b = Breakdown::from_events(&report.events);
        assert!(b.total > 0.0, "{name}: empty breakdown");
        let sum = b.forward + b.checkpoint + b.compare + b.recovery;
        assert!(
            ((sum - b.total) / b.total).abs() <= 0.01,
            "{name}: rows sum to {sum}, total {}",
            b.total
        );
        // The breakdown total is the duration the driver itself recorded.
        assert!(
            (b.total - report.duration).abs() <= 0.01 * report.duration,
            "{name}: breakdown total {} vs report duration {}",
            b.total,
            report.duration
        );
        assert!(b.rounds >= 1, "{name}: no checkpoint rounds observed");
        if !script.is_empty() {
            assert!(
                b.recoveries >= 1 || b.restarts >= 1,
                "{name}: crash produced no recovery event"
            );
        }
    }
}

/// Two virtual runs of the same configuration and script serialize to
/// byte-identical JSONL event logs, and the log round-trips through the
/// JSONL reader (acceptance criterion).
#[test]
fn virtual_event_logs_replay_byte_identically() {
    let script = crash_script();
    let a = run(Scheme::Strong, &script);
    let b = run(Scheme::Strong, &script);
    let ja = sinks::to_jsonl(&a.events);
    let jb = sinks::to_jsonl(&b.events);
    assert!(!ja.is_empty());
    assert_eq!(ja, jb, "virtual-mode JSONL logs must be byte-identical");

    let parsed = sinks::read_jsonl(&ja).expect("log round-trips");
    assert_eq!(parsed, a.events);
}

/// The event log carries the protocol story: job start/end, round verdicts,
/// per-node checkpoint packs, the crash and its recovery.
#[test]
fn event_log_covers_the_protocol_surface() {
    let report = run(Scheme::Strong, &crash_script());
    assert!(report.completed);
    let has = |pred: &dyn Fn(&EventKind) -> bool| report.events.iter().any(|e| pred(&e.kind));
    assert!(has(&|k| matches!(k, EventKind::JobStart { .. })));
    assert!(has(&|k| matches!(k, EventKind::JobEnd { completed: true })));
    assert!(has(&|k| matches!(k, EventKind::RoundStart { .. })));
    assert!(has(&|k| matches!(k, EventKind::RoundVerdict { .. })));
    assert!(has(&|k| matches!(k, EventKind::CheckpointPack { .. })));
    assert!(has(&|k| matches!(k, EventKind::CompareShip { .. })));
    assert!(has(&|k| matches!(k, EventKind::FaultInjected { .. })));
    assert!(has(&|k| matches!(k, EventKind::NodeDead { .. })));
    assert!(
        has(&|k| matches!(k, EventKind::RecoveryStart { .. }))
            || has(&|k| matches!(k, EventKind::GlobalRestart { .. }))
    );
    // Metrics snapshot rode along with the report.
    assert!(report.metrics.contains("acr_pack_total"));
}
