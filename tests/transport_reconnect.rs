//! Transport fault-tolerance tests: a transient socket drop must be
//! absorbed by the reconnect/replay machinery without any node being
//! declared dead, while a *persistent* outage (quarantine) must surface
//! through the stale-link probe path and end in a normal hard-error
//! recovery — the node behind the dead wire is replaced even though its
//! process never crashed.
//!
//! Both tests drive the fault through [`TransportControl`], the test
//! handle that severs or quarantines a node's router link mid-run.

use std::sync::Mutex;
use std::time::Duration;

use acr::obs::{EventKind, DRIVER_NODE};
use acr::pup::{Pup, PupResult, Puper};
use acr::runtime::{
    AppMsg, DetectionMethod, ExecMode, Job, JobConfig, JobReport, Scheme, Task, TaskCtx, TaskId,
    TcpConfig, TransportControl, TransportKind,
};

/// Threaded TCP jobs are thread-heavy; concurrent cases oversubscribe CI
/// runners enough to trip heartbeat detectors. Serialize.
static JOB_SERIAL: Mutex<()> = Mutex::new(());

const RANKS: usize = 2;
const ITERS: u64 = 200;

/// Paced token ring: ~500µs per iteration keeps the job alive long enough
/// for mid-run link faults to land while it is doing real protocol work.
struct PacedRing {
    rank: usize,
    iter: u64,
    tokens: u64,
    acc: Vec<f64>,
}

impl PacedRing {
    fn new(rank: usize) -> Self {
        Self {
            rank,
            iter: 0,
            tokens: 0,
            acc: (0..32).map(|i| (rank * 100 + i) as f64).collect(),
        }
    }
}

impl Task for PacedRing {
    fn try_step(&mut self, ctx: &mut TaskCtx<'_>) -> bool {
        if self.done() {
            return false;
        }
        if self.iter > 0 && self.tokens == 0 {
            return false;
        }
        if self.iter > 0 {
            self.tokens -= 1;
        }
        std::thread::sleep(Duration::from_micros(500));
        for (i, x) in self.acc.iter_mut().enumerate() {
            *x += ((self.iter as f64 + i as f64) * 1e-3).sin();
        }
        let next = TaskId {
            rank: (self.rank + 1) % ctx.ranks(),
            task: 0,
        };
        ctx.send(next, self.iter, vec![]);
        self.iter += 1;
        true
    }

    fn on_message(&mut self, _msg: AppMsg, _ctx: &mut TaskCtx<'_>) {
        self.tokens += 1;
    }

    fn progress(&self) -> u64 {
        self.iter
    }

    fn done(&self) -> bool {
        self.iter >= ITERS
    }

    fn pup(&mut self, p: &mut dyn Puper) -> PupResult {
        p.pup_usize(&mut self.rank)?;
        p.pup_u64(&mut self.iter)?;
        p.pup_u64(&mut self.tokens)?;
        self.acc.pup(p)
    }
}

fn run_tcp(cfg: JobConfig) -> JobReport {
    Job::new(cfg)
        .mode(ExecMode::Threaded)
        .run(|rank, _| Box::new(PacedRing::new(rank)) as Box<dyn Task>)
}

fn base_cfg(heartbeat_timeout: Duration, transport: TransportKind) -> JobConfig {
    JobConfig::builder()
        .ranks(RANKS)
        .tasks_per_rank(1)
        .spares(2)
        .scheme(Scheme::Strong)
        .detection(DetectionMethod::ChunkedChecksum)
        .checkpoint_interval(Duration::from_millis(15))
        .heartbeat_period(Duration::from_millis(10))
        .heartbeat_timeout(heartbeat_timeout)
        .max_duration(Duration::from_secs(30))
        .transport(transport)
        .build()
        .expect("valid reconnect config")
}

fn connects_for(report: &JobReport, node: u32) -> usize {
    report
        .events
        .iter()
        .filter(|e| e.node == node && matches!(e.kind, EventKind::TransportConnect { .. }))
        .count()
}

/// Event-taxonomy attribution audit: liveness probes are *driver* policy
/// (emitted as `DRIVER_NODE`), while dial attempts and retries are
/// *endpoint* mechanics (emitted as the dialing node). An event on the
/// wrong side means a probe got blamed on a node or a retry on the
/// driver, which corrupts per-node overhead attribution downstream.
fn audit_transport_attribution(report: &JobReport) {
    for e in &report.events {
        match e.kind {
            EventKind::ProbeSent { .. } | EventKind::ProbeDeath { .. } => assert_eq!(
                e.node, DRIVER_NODE,
                "liveness probe attributed to a node: {e:?}"
            ),
            EventKind::TransportConnect { .. } | EventKind::TransportRetry { .. } => {
                assert_ne!(
                    e.node, DRIVER_NODE,
                    "endpoint dial event attributed to the driver: {e:?}"
                );
            }
            _ => {}
        }
    }
}

/// A mid-run socket kill is a *transient* fault: the endpoint must redial,
/// the replay ring must re-deliver everything queued during the outage,
/// and nobody may be reported dead.
#[test]
fn socket_kill_reconnects_without_spurious_death() {
    let _guard = JOB_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let control = TransportControl::new();
    let cfg = base_cfg(
        // Generous: the outage lasts a few milliseconds (backoff starts at
        // 1ms); only a reconnect *failure* should ever approach this.
        Duration::from_secs(1),
        TransportKind::Tcp(TcpConfig {
            control: Some(control.clone()),
            ..TcpConfig::default()
        }),
    );
    let killer = {
        let control = control.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            let a = control.sever(2);
            std::thread::sleep(Duration::from_millis(30));
            let b = control.sever(3);
            (a, b)
        })
    };
    let report = run_tcp(cfg);
    let (severed_a, severed_b) = killer.join().unwrap();
    assert!(severed_a && severed_b, "sever() found no live link to kill");
    assert!(
        report.completed,
        "job failed: {:?}\n{}",
        report.error,
        report.trace.join("\n")
    );
    assert!(report.replicas_agree());
    assert_eq!(
        report.hard_errors_recovered,
        0,
        "socket kill was misread as node death:\n{}",
        report.trace.join("\n")
    );
    assert_eq!(report.restarts_from_beginning, 0);
    // Reconnect evidence: each severed node dialed in at least twice —
    // once at startup, once after its link was cut.
    for node in [2u32, 3u32] {
        assert!(
            connects_for(&report, node) >= 2,
            "node {node} shows no reconnect (connects: {}, retries metric:\n{})",
            connects_for(&report, node),
            report.metrics
        );
    }
    // The wire accounting made it into the flight recorder.
    assert!(
        report.events.iter().any(|e| matches!(
            e.kind,
            EventKind::WireBytes { bytes_sent, .. } if bytes_sent > 0
        )),
        "no WireBytes event recorded"
    );
    audit_transport_attribution(&report);
}

/// Paced ring variant whose checkpoint payload is mostly static: a 4 Ki
/// float field with one 64-float window mutating per iteration, chunked
/// small enough that delta records engage between rounds.
struct DriftPacedRing {
    rank: usize,
    iter: u64,
    tokens: u64,
    field: Vec<f64>,
}

const DRIFT_LEN: usize = 4096;
const DRIFT_WINDOW: usize = 64;

impl DriftPacedRing {
    fn new(rank: usize) -> Self {
        Self {
            rank,
            iter: 0,
            tokens: 0,
            field: (0..DRIFT_LEN)
                .map(|i| (rank * DRIFT_LEN + i) as f64 * 1e-4)
                .collect(),
        }
    }
}

impl Task for DriftPacedRing {
    fn try_step(&mut self, ctx: &mut TaskCtx<'_>) -> bool {
        if self.done() {
            return false;
        }
        if self.iter > 0 && self.tokens == 0 {
            return false;
        }
        if self.iter > 0 {
            self.tokens -= 1;
        }
        std::thread::sleep(Duration::from_micros(500));
        let start = ((self.iter / 32) as usize * DRIFT_WINDOW) % DRIFT_LEN;
        for k in 0..DRIFT_WINDOW {
            let i = (start + k) % DRIFT_LEN;
            self.field[i] += ((self.iter as f64 + i as f64) * 1e-3).sin() * 1e-3;
        }
        let next = TaskId {
            rank: (self.rank + 1) % ctx.ranks(),
            task: 0,
        };
        ctx.send(next, self.iter, vec![]);
        self.iter += 1;
        true
    }

    fn on_message(&mut self, _msg: AppMsg, _ctx: &mut TaskCtx<'_>) {
        self.tokens += 1;
    }

    fn progress(&self) -> u64 {
        self.iter
    }

    fn done(&self) -> bool {
        self.iter >= ITERS
    }

    fn pup(&mut self, p: &mut dyn Puper) -> PupResult {
        p.pup_usize(&mut self.rank)?;
        p.pup_u64(&mut self.iter)?;
        p.pup_u64(&mut self.tokens)?;
        self.field.pup(p)
    }
}

/// A socket kill in the middle of an active delta chain must be absorbed
/// exactly like any other transient outage: the replay ring re-delivers
/// the in-flight compare records, nobody is declared dead, the replicas
/// still agree, and the delta path keeps (or resumes) shipping thin
/// records — any base desync the outage could cause is covered by the
/// deterministic full-ship fallback, never by a wrong verdict.
#[test]
fn socket_kill_mid_delta_chain_recovers_cleanly() {
    let _guard = JOB_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let control = TransportControl::new();
    let cfg = JobConfig::builder()
        .ranks(RANKS)
        .tasks_per_rank(1)
        .spares(2)
        .scheme(Scheme::Strong)
        .detection(DetectionMethod::FullCompare)
        .chunk_size(256)
        .delta_checkpoints(true)
        .delta_anchor_interval(8)
        .checkpoint_interval(Duration::from_millis(15))
        .heartbeat_period(Duration::from_millis(10))
        .heartbeat_timeout(Duration::from_secs(1))
        .max_duration(Duration::from_secs(30))
        .transport(TransportKind::Tcp(TcpConfig {
            control: Some(control.clone()),
            ..TcpConfig::default()
        }))
        .build()
        .expect("valid delta reconnect config");
    let killer = {
        let control = control.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(40));
            let a = control.sever(2);
            std::thread::sleep(Duration::from_millis(40));
            let b = control.sever(3);
            (a, b)
        })
    };
    let report = Job::new(cfg)
        .mode(ExecMode::Threaded)
        .run(|rank, _| Box::new(DriftPacedRing::new(rank)) as Box<dyn Task>);
    let (severed_a, severed_b) = killer.join().unwrap();
    assert!(severed_a && severed_b, "sever() found no live link to kill");
    assert!(
        report.completed,
        "job failed: {:?}\n{}",
        report.error,
        report.trace.join("\n")
    );
    assert!(report.replicas_agree());
    assert_eq!(
        report.hard_errors_recovered,
        0,
        "socket kill mid-delta was misread as node death:\n{}",
        report.trace.join("\n")
    );
    assert_eq!(report.restarts_from_beginning, 0);
    for node in [2u32, 3u32] {
        assert!(
            connects_for(&report, node) >= 2,
            "node {node} shows no reconnect (connects: {})",
            connects_for(&report, node),
        );
    }
    // The delta path was live around the outage, not silently disabled.
    let delta_ships = report
        .events
        .iter()
        .filter(|e| {
            matches!(
                &e.kind,
                EventKind::CompareShip { method, .. } if method == "full-compare-delta"
            )
        })
        .count();
    assert!(
        delta_ships > 0,
        "no delta compare records shipped:\n{}",
        report.metrics
    );
    audit_transport_attribution(&report);
}

/// A quarantined link never reattaches: the stale monitor must flag it,
/// the driver must probe, and the unreachable node must be replaced by a
/// spare via the ordinary hard-error recovery path — reachability loss is
/// indistinguishable from death and must be handled as such.
#[test]
fn quarantined_link_is_probed_and_node_replaced() {
    let _guard = JOB_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let control = TransportControl::new();
    let cfg = base_cfg(
        Duration::from_millis(150),
        TransportKind::Tcp(TcpConfig {
            stale_after: Duration::from_millis(50),
            control: Some(control.clone()),
            ..TcpConfig::default()
        }),
    );
    let killer = {
        let control = control.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            // quarantine() both cuts the live socket and refuses re-accept.
            control.quarantine(2)
        })
    };
    let report = run_tcp(cfg);
    assert!(
        report.completed,
        "job failed: {:?}\n{}",
        report.error,
        report.trace.join("\n")
    );
    assert!(
        killer.join().unwrap(),
        "quarantine found no link for node 2"
    );
    assert!(report.replicas_agree());
    assert!(
        report.hard_errors_recovered >= 1,
        "unreachable node was never replaced:\n{}",
        report.trace.join("\n")
    );
    // The stale-link → liveness-probe path fired: the outage was noticed
    // at the transport layer and escalated to a driver probe of node 2.
    assert!(
        report
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::ProbeSent { suspect: 2 })),
        "no transport-triggered probe of node 2:\n{}",
        report.metrics
    );
    assert!(
        report.metrics.contains("acr_transport_probes_total"),
        "transport probe counter missing from metrics:\n{}",
        report.metrics
    );
    audit_transport_attribution(&report);
}
