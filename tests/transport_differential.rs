//! Transport differential check (acceptance criterion of the wire-backend
//! PR): the same `FaultScript` + seed must produce identical protocol
//! outcomes — corruption verdicts, recovery counts, forward progress, and
//! bit-identical final states — whether the job's messages travel over
//! in-process channels (deterministic virtual time) or over the framed
//! localhost-TCP backend (threaded wall clock).
//!
//! Protocol outcomes are timing-independent by design: an SDC injected at
//! a node-local iteration is caught by the first comparison round covering
//! it whichever clock is driving, a crash after N verified checkpoints
//! promotes exactly one spare, and the final state of a completed run is a
//! pure function of the iteration count. The sweep covers 8 seeds × all 3
//! recovery schemes, alternating SDC and crash scenarios.

use std::sync::Mutex;
use std::time::Duration;

use acr::pup::{Pup, PupResult, Puper};
use acr::runtime::{
    AppMsg, DetectionMethod, ExecMode, FaultAction, FaultScript, Job, JobConfig, JobReport, Scheme,
    Task, TaskCtx, TaskId, TcpConfig, TransportKind, Trigger,
};

/// TCP jobs spawn ~25 threads each (nodes + router links + endpoint
/// supervisors/readers); running cases concurrently oversubscribes CI
/// runners enough to trip heartbeat detectors. Serialize.
static JOB_SERIAL: Mutex<()> = Mutex::new(());

const RANKS: usize = 2;
const SPARES: usize = 2;
const ITERS: u64 = 200;

/// The campaign's token-ring workload, plus a wall-clock pacing knob: the
/// virtual runs advance ~1 iteration per quantum for free, while the TCP
/// runs sleep `step_delay` per step so checkpoint rounds land *between*
/// iterations rather than after the ring has already finished. The delay
/// is reconstructed by the factory, never pupped, so packed state stays
/// bit-identical across backends.
struct Ring {
    rank: usize,
    iter: u64,
    tokens: u64,
    acc: Vec<f64>,
    checksum: f64,
    total_iters: u64,
    step_delay: Duration,
}

impl Ring {
    fn new(rank: usize, total_iters: u64, step_delay: Duration) -> Self {
        Self {
            rank,
            iter: 0,
            tokens: 0,
            acc: (0..48).map(|i| (rank * 100 + i) as f64).collect(),
            checksum: 0.0,
            total_iters,
            step_delay,
        }
    }
}

impl Task for Ring {
    fn try_step(&mut self, ctx: &mut TaskCtx<'_>) -> bool {
        if self.done() {
            return false;
        }
        if self.iter > 0 && self.tokens == 0 {
            return false;
        }
        if self.iter > 0 {
            self.tokens -= 1;
        }
        if !self.step_delay.is_zero() {
            std::thread::sleep(self.step_delay);
        }
        for (i, x) in self.acc.iter_mut().enumerate() {
            *x += ((self.iter as f64 + i as f64) * 1e-3).sin();
        }
        self.checksum += self.acc.iter().sum::<f64>() * 1e-6;
        let next = TaskId {
            rank: (self.rank + 1) % ctx.ranks(),
            task: 0,
        };
        ctx.send(next, self.iter, vec![]);
        self.iter += 1;
        true
    }

    fn on_message(&mut self, _msg: AppMsg, _ctx: &mut TaskCtx<'_>) {
        self.tokens += 1;
    }

    fn progress(&self) -> u64 {
        self.iter
    }

    fn done(&self) -> bool {
        self.iter >= self.total_iters
    }

    fn pup(&mut self, p: &mut dyn Puper) -> PupResult {
        p.pup_usize(&mut self.rank)?;
        p.pup_u64(&mut self.iter)?;
        p.pup_u64(&mut self.tokens)?;
        self.acc.pup(p)?;
        p.pup_f64(&mut self.checksum)?;
        p.pup_u64(&mut self.total_iters)
    }
}

fn cfg(scheme: Scheme, transport: TransportKind) -> JobConfig {
    JobConfig::builder()
        .ranks(RANKS)
        .tasks_per_rank(1)
        .spares(SPARES)
        .scheme(scheme)
        .detection(DetectionMethod::ChunkedChecksum)
        .checkpoint_interval(Duration::from_millis(10))
        .heartbeat_period(Duration::from_millis(5))
        // Generous: a loaded CI runner must never see a false-positive
        // buddy death; scripted crashes are the only deaths expected.
        .heartbeat_timeout(Duration::from_millis(300))
        .max_duration(Duration::from_secs(30))
        .transport(transport)
        .build()
        .expect("valid differential config")
}

/// Deterministic per-seed scenario: even seeds flip bits mid-run (SDC
/// detection + rollback path), odd seeds crash a node after a verified
/// checkpoint exists (spare promotion path).
fn script_for(seed: u64) -> FaultScript {
    if seed.is_multiple_of(2) {
        FaultScript::single(
            Trigger::AtIteration(40 + 10 * (seed / 2)),
            FaultAction::Sdc {
                replica: ((seed / 2) % 2) as u8,
                rank: (seed as usize / 2) % RANKS,
                seed: 1000 + seed,
                bits: 1 + (seed % 3) as u32,
            },
        )
    } else {
        FaultScript::single(
            Trigger::AfterCheckpoints(1 + ((seed / 2) % 2) as u32),
            FaultAction::Crash {
                replica: ((seed / 2) % 2) as u8,
                rank: (seed as usize / 2) % RANKS,
            },
        )
    }
}

fn run_in_process(scheme: Scheme, script: &FaultScript) -> JobReport {
    Job::new(cfg(scheme, TransportKind::InProcess))
        .with_faults(script.clone())
        .mode(ExecMode::virtual_default())
        .run(|rank, _| Box::new(Ring::new(rank, ITERS, Duration::ZERO)) as Box<dyn Task>)
}

fn run_tcp(scheme: Scheme, script: &FaultScript) -> JobReport {
    Job::new(cfg(scheme, TransportKind::Tcp(TcpConfig::default())))
        .with_faults(script.clone())
        .run(|rank, _| {
            Box::new(Ring::new(rank, ITERS, Duration::from_micros(200))) as Box<dyn Task>
        })
}

/// The protocol outcome a transport must not change.
#[derive(Debug, PartialEq, Eq)]
struct Outcome {
    completed: bool,
    replicas_agree: bool,
    sdc_rounds_detected: usize,
    rollbacks: usize,
    hard_errors_recovered: usize,
    unverified_recoveries: usize,
    restarts_from_beginning: usize,
}

impl Outcome {
    fn of(r: &JobReport) -> Self {
        Self {
            completed: r.completed,
            replicas_agree: r.replicas_agree(),
            sdc_rounds_detected: r.sdc_rounds_detected,
            rollbacks: r.rollbacks,
            hard_errors_recovered: r.hard_errors_recovered,
            unverified_recoveries: r.unverified_recoveries,
            restarts_from_beginning: r.restarts_from_beginning,
        }
    }
}

#[test]
fn tcp_and_in_process_backends_agree_on_protocol_outcomes() {
    let _guard = JOB_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let schemes = [Scheme::Strong, Scheme::Medium, Scheme::Weak];
    for seed in 0..8u64 {
        let script = script_for(seed);
        for scheme in schemes {
            let virt = run_in_process(scheme, &script);
            let tcp = run_tcp(scheme, &script);
            let (vo, to) = (Outcome::of(&virt), Outcome::of(&tcp));
            assert_eq!(
                vo,
                to,
                "seed {seed} scheme {scheme:?}: outcomes diverge\n\
                 in-process: {vo:?}\ntcp trace:\n{}",
                tcp.trace.join("\n"),
            );
            // Both completed with agreeing replicas (checked above);
            // sanity-pin the scenario actually exercised its path.
            if seed.is_multiple_of(2) {
                assert_eq!(to.sdc_rounds_detected, 1, "seed {seed} {scheme:?}");
                assert_eq!(to.rollbacks, 1, "seed {seed} {scheme:?}");
                assert_eq!(to.hard_errors_recovered, 0, "seed {seed} {scheme:?}");
            } else {
                assert_eq!(to.hard_errors_recovered, 1, "seed {seed} {scheme:?}");
                assert_eq!(to.restarts_from_beginning, 0, "seed {seed} {scheme:?}");
            }
            // Strongest form of "identical outcome": the completed final
            // state is bit-identical across backends.
            assert_eq!(
                virt.final_states, tcp.final_states,
                "seed {seed} scheme {scheme:?}: final states differ across transports"
            );
        }
    }
}

// --------------------------------------------------------------------------
// Delta-checkpoint differential
// --------------------------------------------------------------------------

/// Ring-paced workload whose checkpoint payload is mostly static: a 4 Ki
/// float field of which one 64-float window mutates per iteration, the
/// window advancing only every 32 iterations. Chunked at 256 bytes, most
/// chunks are clean between rounds — the shape delta records engage on.
struct DriftRing {
    rank: usize,
    iter: u64,
    tokens: u64,
    field: Vec<f64>,
    checksum: f64,
    total_iters: u64,
}

const DRIFT_LEN: usize = 4096;
const DRIFT_WINDOW: usize = 64;

impl DriftRing {
    fn new(rank: usize, total_iters: u64) -> Self {
        Self {
            rank,
            iter: 0,
            tokens: 0,
            field: (0..DRIFT_LEN)
                .map(|i| (rank * DRIFT_LEN + i) as f64 * 1e-4)
                .collect(),
            checksum: 0.0,
            total_iters,
        }
    }
}

impl Task for DriftRing {
    fn try_step(&mut self, ctx: &mut TaskCtx<'_>) -> bool {
        if self.done() {
            return false;
        }
        if self.iter > 0 && self.tokens == 0 {
            return false;
        }
        if self.iter > 0 {
            self.tokens -= 1;
        }
        let start = ((self.iter / 32) as usize * DRIFT_WINDOW) % DRIFT_LEN;
        for k in 0..DRIFT_WINDOW {
            let i = (start + k) % DRIFT_LEN;
            self.field[i] += ((self.iter as f64 + i as f64) * 1e-3).sin() * 1e-3;
            self.checksum += self.field[i] * 1e-9;
        }
        let next = TaskId {
            rank: (self.rank + 1) % ctx.ranks(),
            task: 0,
        };
        ctx.send(next, self.iter, vec![]);
        self.iter += 1;
        true
    }

    fn on_message(&mut self, _msg: AppMsg, _ctx: &mut TaskCtx<'_>) {
        self.tokens += 1;
    }

    fn progress(&self) -> u64 {
        self.iter
    }

    fn done(&self) -> bool {
        self.iter >= self.total_iters
    }

    fn pup(&mut self, p: &mut dyn Puper) -> PupResult {
        p.pup_usize(&mut self.rank)?;
        p.pup_u64(&mut self.iter)?;
        p.pup_u64(&mut self.tokens)?;
        self.field.pup(p)?;
        p.pup_f64(&mut self.checksum)?;
        p.pup_u64(&mut self.total_iters)
    }
}

fn run_delta(scheme: Scheme, script: &FaultScript, delta: bool) -> JobReport {
    let cfg = JobConfig::builder()
        .ranks(RANKS)
        .tasks_per_rank(1)
        .spares(SPARES)
        .scheme(scheme)
        .detection(DetectionMethod::FullCompare)
        .chunk_size(256)
        .delta_checkpoints(delta)
        .delta_anchor_interval(4)
        .checkpoint_interval(Duration::from_millis(10))
        .heartbeat_period(Duration::from_millis(5))
        .heartbeat_timeout(Duration::from_millis(300))
        .max_duration(Duration::from_secs(30))
        .build()
        .expect("valid delta differential config");
    Job::new(cfg)
        .with_faults(script.clone())
        .mode(ExecMode::virtual_default())
        .run(|rank, _| Box::new(DriftRing::new(rank, ITERS)) as Box<dyn Task>)
}

fn delta_ships(r: &JobReport) -> usize {
    r.events
        .iter()
        .filter(|e| {
            matches!(
                &e.kind,
                acr::obs::EventKind::CompareShip { method, .. } if method == "full-compare-delta"
            )
        })
        .count()
}

/// Buddy-side digest compares skipped because the chunk was clean in the
/// incoming delta and the local base epoch matched.
fn compare_skips(r: &JobReport) -> u64 {
    r.metrics
        .lines()
        .find_map(|l| l.strip_prefix("acr_delta_compare_skipped_total "))
        .map_or(0, |v| v.trim().parse().unwrap_or(0))
}

/// Turning incremental delta checkpoints on must not change any protocol
/// outcome: across 8 seeds × 3 schemes, alternating SDC and crash
/// scenarios, the outcome tuple and the bit-level final states are
/// identical to the full-ship run — and the delta path demonstrably
/// engaged somewhere in the sweep.
#[test]
fn delta_checkpoints_do_not_change_protocol_outcomes() {
    let schemes = [Scheme::Strong, Scheme::Medium, Scheme::Weak];
    let mut engaged = 0usize;
    let mut skipped = 0u64;
    for seed in 0..8u64 {
        let script = script_for(seed);
        for scheme in schemes {
            let full = run_delta(scheme, &script, false);
            let thin = run_delta(scheme, &script, true);
            let (fo, to) = (Outcome::of(&full), Outcome::of(&thin));
            assert_eq!(
                fo,
                to,
                "seed {seed} scheme {scheme:?}: delta changed the outcome\n\
                 full-ship: {fo:?}\ndelta trace:\n{}",
                thin.trace.join("\n"),
            );
            assert_eq!(
                full.final_states, thin.final_states,
                "seed {seed} scheme {scheme:?}: delta changed the final states"
            );
            assert_eq!(
                delta_ships(&full),
                0,
                "seed {seed} scheme {scheme:?}: delta records on a delta-off run"
            );
            // The clean-chunk compare skip is a delta-path optimization;
            // a full-ship run must never take it.
            assert_eq!(
                compare_skips(&full),
                0,
                "seed {seed} scheme {scheme:?}: compare skips on a delta-off run"
            );
            engaged += delta_ships(&thin);
            skipped += compare_skips(&thin);
        }
    }
    assert!(engaged > 0, "delta records never engaged across the sweep");
    // Clean chunks with a matching base epoch skip the buddy digest
    // compare entirely — and (asserted above, per case) doing so changes
    // neither the outcome tuple nor a single bit of the final states.
    assert!(
        skipped > 0,
        "clean-chunk compare skip never engaged across the sweep"
    );
}
