//! The [`Pup`] and [`Puper`] traits: one state description, five traversal
//! directions.

use crate::error::PupResult;

/// The direction a [`Puper`] traverses an object in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// Measuring packed size ([`crate::Sizer`]).
    Sizing,
    /// Serializing into a checkpoint buffer ([`crate::Packer`]).
    Packing,
    /// Restoring from a checkpoint buffer ([`crate::Unpacker`]).
    Unpacking,
    /// Comparing live state against a buddy checkpoint ([`crate::Checker`]).
    Checking,
    /// Streaming through a Fletcher checksum ([`crate::FletcherPuper`]).
    Summing,
}

/// How the [`crate::Checker`] compares the fields traversed while the policy
/// is in force (§4.1: "PUPer::checker also enables a user to customize the
/// comparison function based on their application knowledge").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CheckPolicy {
    /// Fields must match bit-for-bit. The default.
    Bitwise,
    /// Floating-point fields may differ by the given *relative* error
    /// (|a-b| <= eps * max(|a|,|b|)); integer fields still compare bitwise.
    /// Use for state affected by non-deterministic round-off.
    Relative(f64),
    /// Fields are skipped entirely: they may legitimately differ between
    /// replicas and are not critical to the result (e.g. timers, RNG state).
    /// Ignored regions are also excluded from Fletcher checksums so that the
    /// checksum-based detector honours the same policy.
    Ignore,
}

impl CheckPolicy {
    /// Whether two f64 values are acceptable under this policy.
    pub fn f64_ok(&self, live: f64, reference: f64) -> bool {
        match *self {
            CheckPolicy::Ignore => true,
            CheckPolicy::Bitwise => live.to_bits() == reference.to_bits(),
            CheckPolicy::Relative(eps) => {
                if live.to_bits() == reference.to_bits() {
                    return true;
                }
                if live.is_nan() || reference.is_nan() {
                    return live.is_nan() && reference.is_nan();
                }
                if live.is_infinite() || reference.is_infinite() {
                    return live == reference;
                }
                let scale = live.abs().max(reference.abs());
                (live - reference).abs() <= eps * scale
            }
        }
    }

    /// Whether two f32 values are acceptable under this policy.
    pub fn f32_ok(&self, live: f32, reference: f32) -> bool {
        match *self {
            CheckPolicy::Ignore => true,
            CheckPolicy::Bitwise => live.to_bits() == reference.to_bits(),
            CheckPolicy::Relative(_) => self.f64_ok(live as f64, reference as f64),
        }
    }
}

/// Types whose checkpoint-relevant state can be traversed by a [`Puper`].
///
/// This is the only trait application code implements; it corresponds to the
/// "simple functions that enable ACR to identify the necessary data to
/// checkpoint" required of programmers in §2.1.
pub trait Pup {
    /// Traverse this object's state with `p`. Must visit the same fields in
    /// the same order regardless of direction.
    fn pup(&mut self, p: &mut dyn Puper) -> PupResult;
}

macro_rules! scalar_method {
    ($(#[$doc:meta])* $name:ident, $ty:ty) => {
        $(#[$doc])*
        fn $name(&mut self, v: &mut $ty) -> PupResult;
    };
}

macro_rules! slice_method {
    ($(#[$doc:meta])* $name:ident, $ty:ty) => {
        $(#[$doc])*
        fn $name(&mut self, v: &mut [$ty]) -> PupResult;
    };
}

/// A traversal visitor. Each direction ([`Dir`]) is one implementation.
///
/// All multi-byte scalars travel in little-endian byte order, so checkpoints
/// are comparable across nodes of a homogeneous machine (the setting of the
/// paper; ACR pairs buddy nodes of identical architecture).
pub trait Puper {
    /// Which direction this puper traverses in.
    fn dir(&self) -> Dir;

    /// Total number of stream bytes processed so far (useful for overhead
    /// accounting and error offsets).
    fn offset(&self) -> usize;

    scalar_method!(
        /// Visit a `u8` field.
        pup_u8, u8);
    scalar_method!(
        /// Visit a `u16` field.
        pup_u16, u16);
    scalar_method!(
        /// Visit a `u32` field.
        pup_u32, u32);
    scalar_method!(
        /// Visit a `u64` field.
        pup_u64, u64);
    scalar_method!(
        /// Visit an `i8` field.
        pup_i8, i8);
    scalar_method!(
        /// Visit an `i16` field.
        pup_i16, i16);
    scalar_method!(
        /// Visit an `i32` field.
        pup_i32, i32);
    scalar_method!(
        /// Visit an `i64` field.
        pup_i64, i64);
    scalar_method!(
        /// Visit an `f32` field (subject to [`CheckPolicy`] when checking).
        pup_f32, f32);
    scalar_method!(
        /// Visit an `f64` field (subject to [`CheckPolicy`] when checking).
        pup_f64, f64);

    /// Visit a `bool` field (encoded as one byte, 0 or 1).
    fn pup_bool(&mut self, v: &mut bool) -> PupResult;

    /// Visit a `usize` field (encoded as `u64` for portability).
    fn pup_usize(&mut self, v: &mut usize) -> PupResult;

    /// Visit a collection length. `live` is the current length of the live
    /// container; the returned value is the length the container should have
    /// after this call (differs from `live` only when unpacking).
    fn pup_len(&mut self, live: usize) -> PupResult<usize>;

    slice_method!(
        /// Bulk-visit a `u8` slice (the contiguous fast path).
        pup_u8_slice, u8);
    slice_method!(
        /// Bulk-visit a `u16` slice.
        pup_u16_slice, u16);
    slice_method!(
        /// Bulk-visit a `u32` slice.
        pup_u32_slice, u32);
    slice_method!(
        /// Bulk-visit a `u64` slice.
        pup_u64_slice, u64);
    slice_method!(
        /// Bulk-visit an `i32` slice.
        pup_i32_slice, i32);
    slice_method!(
        /// Bulk-visit an `i64` slice.
        pup_i64_slice, i64);
    slice_method!(
        /// Bulk-visit an `f32` slice (subject to [`CheckPolicy`]).
        pup_f32_slice, f32);
    slice_method!(
        /// Bulk-visit an `f64` slice (subject to [`CheckPolicy`]).
        pup_f64_slice, f64);

    /// Push a comparison policy for subsequently visited fields. No-op for
    /// every direction except checking and summing (see [`CheckPolicy`]).
    fn push_policy(&mut self, _policy: CheckPolicy) -> PupResult {
        Ok(())
    }

    /// Pop the most recently pushed policy.
    fn pop_policy(&mut self) -> PupResult {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitwise_policy_is_exact() {
        let p = CheckPolicy::Bitwise;
        assert!(p.f64_ok(1.0, 1.0));
        assert!(!p.f64_ok(1.0, 1.0 + f64::EPSILON));
        // Bitwise distinguishes signed zeros and equal NaN payloads match.
        assert!(!p.f64_ok(0.0, -0.0));
        assert!(p.f64_ok(f64::NAN, f64::NAN));
    }

    #[test]
    fn relative_policy_tolerates_roundoff() {
        let p = CheckPolicy::Relative(1e-12);
        assert!(p.f64_ok(1.0, 1.0 + 1e-13));
        assert!(!p.f64_ok(1.0, 1.0 + 1e-9));
        // zero vs zero of either sign is fine
        assert!(p.f64_ok(0.0, -0.0));
        // NaN only matches NaN
        assert!(p.f64_ok(f64::NAN, f64::NAN));
        assert!(!p.f64_ok(f64::NAN, 1.0));
        // infinities match themselves exactly
        assert!(p.f64_ok(f64::INFINITY, f64::INFINITY));
        assert!(!p.f64_ok(f64::INFINITY, f64::NEG_INFINITY));
    }

    #[test]
    fn ignore_policy_accepts_anything() {
        let p = CheckPolicy::Ignore;
        assert!(p.f64_ok(1.0, -55.0));
        assert!(p.f32_ok(f32::NAN, 3.0));
    }

    #[test]
    fn f32_relative_routes_through_f64() {
        let p = CheckPolicy::Relative(1e-6);
        assert!(p.f32_ok(1.0, 1.0 + 1e-7));
        assert!(!p.f32_ok(1.0, 1.01));
    }
}
