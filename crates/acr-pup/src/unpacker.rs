//! [`Unpacker`]: restores an object's state from a checkpoint buffer.

use crate::error::{PupError, PupResult};
use crate::puper::{Dir, Puper};

/// A [`Puper`] that reads the traversed state back from checkpoint bytes —
/// the restart path of §2.1 (both local rollback and spare-node restart from
/// the buddy's checkpoint go through this).
#[derive(Debug)]
pub struct Unpacker<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Unpacker<'a> {
    /// Create an unpacker over a checkpoint buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Error unless the whole buffer was consumed. Called by
    /// [`crate::unpack`] so that a truncated `pup` implementation (one that
    /// forgets a field on the restore path) is caught instead of silently
    /// producing skewed state.
    pub fn finish(self) -> PupResult {
        if self.remaining() != 0 {
            return Err(PupError::TrailingBytes {
                leftover: self.remaining(),
            });
        }
        Ok(())
    }

    #[inline]
    fn take(&mut self, n: usize) -> PupResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(PupError::BufferUnderrun {
                needed: n,
                remaining: self.remaining(),
                at: self.pos,
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
}

macro_rules! unpack_scalar {
    ($name:ident, $ty:ty) => {
        fn $name(&mut self, v: &mut $ty) -> PupResult {
            let bytes = self.take(std::mem::size_of::<$ty>())?;
            *v = <$ty>::from_le_bytes(bytes.try_into().expect("take() sized the slice"));
            Ok(())
        }
    };
}

macro_rules! unpack_slice {
    ($name:ident, $ty:ty) => {
        fn $name(&mut self, v: &mut [$ty]) -> PupResult {
            const W: usize = std::mem::size_of::<$ty>();
            let bytes = self.take(W * v.len())?;
            if cfg!(target_endian = "little") {
                // SAFETY: `v` is valid for `size_of_val(v)` bytes and numeric
                // primitives accept any bit pattern. Source and destination
                // cannot overlap (`bytes` borrows the checkpoint, `v` the
                // live object).
                unsafe {
                    std::ptr::copy_nonoverlapping(
                        bytes.as_ptr(),
                        v.as_mut_ptr() as *mut u8,
                        bytes.len(),
                    );
                }
            } else {
                for (x, chunk) in v.iter_mut().zip(bytes.chunks_exact(W)) {
                    *x = <$ty>::from_le_bytes(chunk.try_into().expect("chunks_exact"));
                }
            }
            Ok(())
        }
    };
}

impl Puper for Unpacker<'_> {
    fn dir(&self) -> Dir {
        Dir::Unpacking
    }

    fn offset(&self) -> usize {
        self.pos
    }

    unpack_scalar!(pup_u8, u8);
    unpack_scalar!(pup_u16, u16);
    unpack_scalar!(pup_u32, u32);
    unpack_scalar!(pup_u64, u64);
    unpack_scalar!(pup_i8, i8);
    unpack_scalar!(pup_i16, i16);
    unpack_scalar!(pup_i32, i32);
    unpack_scalar!(pup_i64, i64);
    unpack_scalar!(pup_f32, f32);
    unpack_scalar!(pup_f64, f64);

    fn pup_bool(&mut self, v: &mut bool) -> PupResult {
        let b = self.take(1)?[0];
        *v = b != 0;
        Ok(())
    }

    fn pup_usize(&mut self, v: &mut usize) -> PupResult {
        let mut x = 0u64;
        self.pup_u64(&mut x)?;
        if x > isize::MAX as u64 {
            return Err(PupError::LengthOverflow { len: x });
        }
        *v = x as usize;
        Ok(())
    }

    fn pup_len(&mut self, _live: usize) -> PupResult<usize> {
        let mut n = 0u64;
        self.pup_u64(&mut n)?;
        if n > isize::MAX as u64 {
            return Err(PupError::LengthOverflow { len: n });
        }
        // A corrupted or truncated stream cannot claim more elements than it
        // has bytes left (every element costs at least one byte).
        if n as usize > self.remaining() {
            return Err(PupError::BufferUnderrun {
                needed: n as usize,
                remaining: self.remaining(),
                at: self.pos,
            });
        }
        Ok(n as usize)
    }

    unpack_slice!(pup_u8_slice, u8);
    unpack_slice!(pup_u16_slice, u16);
    unpack_slice!(pup_u32_slice, u32);
    unpack_slice!(pup_u64_slice, u64);
    unpack_slice!(pup_i32_slice, i32);
    unpack_slice!(pup_i64_slice, i64);
    unpack_slice!(pup_f32_slice, f32);
    unpack_slice!(pup_f64_slice, f64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packer::Packer;

    #[test]
    fn roundtrip_scalars() {
        let mut p = Packer::new();
        p.pup_i64(&mut -9).unwrap();
        p.pup_f32(&mut 2.5).unwrap();
        p.pup_bool(&mut false).unwrap();
        let buf = p.finish();

        let mut u = Unpacker::new(&buf);
        let (mut a, mut b, mut c) = (0i64, 0f32, true);
        u.pup_i64(&mut a).unwrap();
        u.pup_f32(&mut b).unwrap();
        u.pup_bool(&mut c).unwrap();
        u.finish().unwrap();
        assert_eq!((a, b, c), (-9, 2.5, false));
    }

    #[test]
    fn underrun_is_reported_with_offset() {
        let buf = [1u8, 2, 3];
        let mut u = Unpacker::new(&buf);
        let mut x = 0u16;
        u.pup_u16(&mut x).unwrap();
        let err = u.pup_u32(&mut { 0 }).unwrap_err();
        assert_eq!(
            err,
            PupError::BufferUnderrun {
                needed: 4,
                remaining: 1,
                at: 2
            }
        );
    }

    #[test]
    fn trailing_bytes_detected() {
        let buf = [0u8; 9];
        let mut u = Unpacker::new(&buf);
        u.pup_u64(&mut { 0 }).unwrap();
        assert_eq!(
            u.finish().unwrap_err(),
            PupError::TrailingBytes { leftover: 1 }
        );
    }

    #[test]
    fn absurd_length_rejected() {
        let mut p = Packer::new();
        p.pup_u64(&mut { u64::MAX }).unwrap();
        let buf = p.finish();
        let mut u = Unpacker::new(&buf);
        assert!(matches!(
            u.pup_len(0).unwrap_err(),
            PupError::LengthOverflow { .. }
        ));
    }

    #[test]
    fn claimed_length_beyond_remaining_rejected() {
        let mut p = Packer::new();
        p.pup_len(1000).unwrap(); // length without payload
        let buf = p.finish();
        let mut u = Unpacker::new(&buf);
        assert!(matches!(
            u.pup_len(0).unwrap_err(),
            PupError::BufferUnderrun { .. }
        ));
    }

    #[test]
    fn bulk_slice_roundtrip() {
        let mut src = [0x01020304u32, 0xA0B0C0D0, 7];
        let mut p = Packer::new();
        p.pup_u32_slice(&mut src).unwrap();
        let buf = p.finish();
        let mut dst = [0u32; 3];
        let mut u = Unpacker::new(&buf);
        u.pup_u32_slice(&mut dst).unwrap();
        u.finish().unwrap();
        assert_eq!(src, dst);
    }
}
