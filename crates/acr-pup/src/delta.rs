//! Incremental-checkpoint delta kernel: dirty-chunk tracking against the
//! previous round's digest table, extraction of only the changed chunk
//! windows, and reconstruction of the full payload on the receiving side.
//!
//! The fused pipeline already produces a per-chunk Fletcher-64 table for
//! every checkpoint ([`crate::ChunkedDigest`]). Two consecutive rounds of
//! the same job therefore carry enough information to answer *which chunks
//! changed* for free: compare the tables entrywise. A [`DeltaPlan`] names
//! the dirty chunks; [`extract_delta`] borrows exactly those windows out of
//! the current payload; [`apply_delta`] overlays them onto a retained base
//! payload to reproduce the new checkpoint byte-for-byte.
//!
//! Correctness never rests on the diff: the receiver re-verifies the
//! whole-payload Fletcher-64 digest of the reconstruction before accepting
//! it, and any structural disagreement (chunk count, chunk size, payload
//! length) makes the planner refuse so the caller falls back to a full
//! ship.

use std::ops::Range;

/// Which chunks of the current checkpoint differ from the previous round's
/// digest table, plus the shape shared by both rounds.
///
/// Produced by [`diff_tables`]; consumed by [`extract_delta`] on the
/// sending side and (after the wire trip) by [`apply_delta`] on the
/// receiving side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaPlan {
    /// Chunk granularity both tables were computed with.
    pub chunk_size: usize,
    /// Current payload length in bytes (the last chunk may be short).
    pub payload_len: usize,
    /// Total chunks in the current table.
    pub total_chunks: usize,
    /// Indices of chunks whose digests changed, strictly increasing.
    pub dirty: Vec<u32>,
}

impl DeltaPlan {
    /// Number of dirty chunks.
    pub fn dirty_count(&self) -> usize {
        self.dirty.len()
    }

    /// Fraction of chunks that changed (0 for an empty table).
    pub fn dirty_fraction(&self) -> f64 {
        if self.total_chunks == 0 {
            0.0
        } else {
            self.dirty.len() as f64 / self.total_chunks as f64
        }
    }

    /// True when every chunk changed — a delta would carry the whole
    /// payload plus index overhead, so a full ship is strictly cheaper.
    pub fn is_full(&self) -> bool {
        self.dirty.len() == self.total_chunks
    }

    /// Byte span of chunk `index` within the payload (the last chunk is
    /// clamped to `payload_len`).
    pub fn chunk_span(&self, index: u32) -> Range<usize> {
        chunk_span(self.chunk_size, self.payload_len, index)
    }

    /// Changed-chunk byte extents, adjacent dirty chunks coalesced — the
    /// same shape [`crate::ChunkedDigest`]-based divergence localization
    /// reports.
    pub fn extents(&self) -> Vec<Range<usize>> {
        let mut out: Vec<Range<usize>> = Vec::new();
        for &i in &self.dirty {
            let span = self.chunk_span(i);
            match out.last_mut() {
                Some(last) if last.end == span.start => last.end = span.end,
                _ => out.push(span),
            }
        }
        out
    }

    /// Payload bytes a delta ship would carry (sum of dirty chunk spans).
    pub fn dirty_bytes(&self) -> usize {
        self.dirty.iter().map(|&i| self.chunk_span(i).len()).sum()
    }
}

/// Byte span of chunk `index` in a `payload_len`-byte payload divided into
/// `chunk_size`-byte chunks (the final chunk may be short).
pub fn chunk_span(chunk_size: usize, payload_len: usize, index: u32) -> Range<usize> {
    let start = (index as usize) * chunk_size;
    let end = (start + chunk_size).min(payload_len);
    start..end.max(start)
}

/// Diff the current round's chunked digest against the previous round's
/// per-chunk digest table.
///
/// Returns `None` when the two rounds disagree structurally — different
/// chunk count (the payload grew or shrank across a chunk boundary) or a
/// payload length outside the table's coverage — in which case an
/// incremental ship is meaningless and the caller must ship the full
/// checkpoint.
pub fn diff_tables(
    prev_digests: &[u64],
    current: &crate::ChunkedDigest,
    payload_len: usize,
) -> Option<DeltaPlan> {
    if prev_digests.len() != current.chunk_digests.len() {
        return None;
    }
    if payload_len.div_ceil(current.chunk_size.max(1)) != current.chunk_digests.len()
        && !(payload_len == 0 && current.chunk_digests.is_empty())
    {
        return None;
    }
    let dirty: Vec<u32> = prev_digests
        .iter()
        .zip(&current.chunk_digests)
        .enumerate()
        .filter(|(_, (a, b))| a != b)
        .map(|(i, _)| i as u32)
        .collect();
    Some(DeltaPlan {
        chunk_size: current.chunk_size,
        payload_len,
        total_chunks: current.chunk_digests.len(),
        dirty,
    })
}

/// Borrow the dirty chunk windows out of `payload` in plan order — the
/// delta assembler's zero-copy core. The wire layer serializes these
/// windows next to the plan's indices.
///
/// # Panics
///
/// If `payload` is shorter than the plan's `payload_len` (the plan must
/// have been produced from this payload's digest).
pub fn extract_delta<'a>(payload: &'a [u8], plan: &DeltaPlan) -> Vec<(u32, &'a [u8])> {
    assert!(
        payload.len() == plan.payload_len,
        "delta plan was built for a {}-byte payload, got {}",
        plan.payload_len,
        payload.len()
    );
    plan.dirty
        .iter()
        .map(|&i| (i, &payload[plan.chunk_span(i)]))
        .collect()
}

/// Reconstruct the full checkpoint payload by overlaying dirty chunk
/// windows onto the retained `base` payload.
///
/// Validation is strict — any of the following returns `None` and the
/// caller must fall back to the digest-table compare path:
///
/// * `base` length differs from `payload_len` (the payload was resized, so
///   the clean chunks of the base no longer line up);
/// * a chunk index is out of bounds or indices are not strictly
///   increasing;
/// * a window's length does not equal its chunk span (truncated or padded
///   record).
///
/// The caller is expected to verify the whole-payload Fletcher-64 digest
/// of the result against the digest carried alongside the delta before
/// accepting the reconstruction.
pub fn apply_delta(
    base: &[u8],
    chunk_size: usize,
    payload_len: usize,
    dirty: &[(u32, &[u8])],
) -> Option<Vec<u8>> {
    if chunk_size == 0 || base.len() != payload_len {
        return None;
    }
    let total_chunks = payload_len.div_ceil(chunk_size);
    let mut out = base.to_vec();
    let mut prev: Option<u32> = None;
    for &(index, window) in dirty {
        if (index as usize) >= total_chunks {
            return None;
        }
        if let Some(p) = prev {
            if index <= p {
                return None;
            }
        }
        prev = Some(index);
        let span = chunk_span(chunk_size, payload_len, index);
        if window.len() != span.len() {
            return None;
        }
        out[span].copy_from_slice(window);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{chunk_digests, fletcher64};

    const CS: usize = 16;

    fn payload(n: usize, salt: u8) -> Vec<u8> {
        (0..n).map(|i| (i as u8).wrapping_mul(31) ^ salt).collect()
    }

    #[test]
    fn diff_names_exactly_the_changed_chunks() {
        let base = payload(100, 0);
        let mut cur = base.clone();
        cur[5] ^= 0xFF; // chunk 0
        cur[70] ^= 0x01; // chunk 4
        cur[99] ^= 0x80; // short tail chunk 6
        let prev = chunk_digests(&base, CS);
        let now = chunk_digests(&cur, CS);
        let plan = diff_tables(&prev.chunk_digests, &now, cur.len()).unwrap();
        assert_eq!(plan.dirty, vec![0, 4, 6]);
        assert_eq!(plan.total_chunks, 7);
        assert_eq!(plan.extents(), vec![0..16, 64..80, 96..100]);
        assert_eq!(plan.dirty_bytes(), 16 + 16 + 4);
        assert!(!plan.is_full());
        assert!((plan.dirty_fraction() - 3.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn adjacent_dirty_chunks_coalesce_into_one_extent() {
        let base = payload(64, 0);
        let mut cur = base.clone();
        cur[17] ^= 1; // chunk 1
        cur[33] ^= 1; // chunk 2
        let prev = chunk_digests(&base, CS);
        let now = chunk_digests(&cur, CS);
        let plan = diff_tables(&prev.chunk_digests, &now, cur.len()).unwrap();
        assert_eq!(plan.dirty, vec![1, 2]);
        assert_eq!(plan.extents(), vec![16..48]);
    }

    #[test]
    fn structural_change_refuses_a_plan() {
        let a = chunk_digests(&payload(100, 0), CS);
        let b = chunk_digests(&payload(120, 0), CS); // 7 vs 8 chunks
        assert!(diff_tables(&a.chunk_digests, &b, 120).is_none());
        // Payload length inconsistent with the table's chunk count.
        assert!(diff_tables(&a.chunk_digests, &a, 130).is_none());
    }

    #[test]
    fn extract_apply_round_trips_byte_for_byte() {
        let base = payload(100, 0);
        let mut cur = base.clone();
        for i in [3usize, 40, 41, 97] {
            cur[i] = cur[i].wrapping_add(7);
        }
        let prev = chunk_digests(&base, CS);
        let now = chunk_digests(&cur, CS);
        let plan = diff_tables(&prev.chunk_digests, &now, cur.len()).unwrap();
        let windows = extract_delta(&cur, &plan);
        let rebuilt = apply_delta(&base, CS, cur.len(), &windows).unwrap();
        assert_eq!(rebuilt, cur);
        assert_eq!(fletcher64(&rebuilt), now.digest);
    }

    #[test]
    fn empty_delta_reproduces_the_base() {
        let base = payload(48, 9);
        let rebuilt = apply_delta(&base, CS, 48, &[]).unwrap();
        assert_eq!(rebuilt, base);
    }

    #[test]
    fn apply_rejects_structural_violations() {
        let base = payload(100, 0);
        let w16 = [0u8; 16];
        let w4 = [0u8; 4];
        // Base length mismatch.
        assert!(apply_delta(&base[..96], CS, 100, &[(0, &w16)]).is_none());
        // Out-of-bounds index (7 chunks: 0..=6).
        assert!(apply_delta(&base, CS, 100, &[(7, &w16)]).is_none());
        // Non-increasing indices.
        assert!(apply_delta(&base, CS, 100, &[(2, &w16), (2, &w16)]).is_none());
        assert!(apply_delta(&base, CS, 100, &[(3, &w16), (1, &w16)]).is_none());
        // Window length must equal the chunk span (tail chunk is 4 bytes).
        assert!(apply_delta(&base, CS, 100, &[(0, &w4)]).is_none());
        assert!(apply_delta(&base, CS, 100, &[(6, &w16)]).is_none());
        assert!(apply_delta(&base, CS, 100, &[(6, &w4)]).is_some());
        // Zero chunk size can't happen from the pipeline; refuse anyway.
        assert!(apply_delta(&base, 0, 100, &[]).is_none());
    }

    #[test]
    fn full_dirt_is_reported_as_full() {
        let a = chunk_digests(&payload(64, 0), CS);
        let b = chunk_digests(&payload(64, 0xAA), CS);
        let plan = diff_tables(&a.chunk_digests, &b, 64).unwrap();
        assert!(plan.is_full());
        assert_eq!(plan.dirty_fraction(), 1.0);
    }
}
