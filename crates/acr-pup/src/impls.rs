//! [`Pup`] implementations for standard-library types, plus container
//! helpers.

use std::collections::BTreeMap;

use crate::error::{PupError, PupResult};
use crate::puper::{Dir, Pup, Puper};

macro_rules! pup_primitive {
    ($ty:ty, $method:ident) => {
        impl Pup for $ty {
            fn pup(&mut self, p: &mut dyn Puper) -> PupResult {
                p.$method(self)
            }
        }
    };
}

pup_primitive!(u8, pup_u8);
pup_primitive!(u16, pup_u16);
pup_primitive!(u32, pup_u32);
pup_primitive!(u64, pup_u64);
pup_primitive!(i8, pup_i8);
pup_primitive!(i16, pup_i16);
pup_primitive!(i32, pup_i32);
pup_primitive!(i64, pup_i64);
pup_primitive!(f32, pup_f32);
pup_primitive!(f64, pup_f64);
pup_primitive!(bool, pup_bool);
pup_primitive!(usize, pup_usize);

macro_rules! pup_vec_bulk {
    ($ty:ty, $slice_method:ident) => {
        impl Pup for Vec<$ty> {
            fn pup(&mut self, p: &mut dyn Puper) -> PupResult {
                let n = p.pup_len(self.len())?;
                self.resize(n, Default::default());
                p.$slice_method(self)
            }
        }
    };
}

pup_vec_bulk!(u8, pup_u8_slice);
pup_vec_bulk!(u16, pup_u16_slice);
pup_vec_bulk!(u32, pup_u32_slice);
pup_vec_bulk!(u64, pup_u64_slice);
pup_vec_bulk!(i32, pup_i32_slice);
pup_vec_bulk!(i64, pup_i64_slice);
pup_vec_bulk!(f32, pup_f32_slice);
pup_vec_bulk!(f64, pup_f64_slice);

macro_rules! pup_array_bulk {
    ($ty:ty, $slice_method:ident) => {
        impl<const N: usize> Pup for [$ty; N] {
            fn pup(&mut self, p: &mut dyn Puper) -> PupResult {
                p.$slice_method(self)
            }
        }
    };
}

pup_array_bulk!(u8, pup_u8_slice);
pup_array_bulk!(u32, pup_u32_slice);
pup_array_bulk!(u64, pup_u64_slice);
pup_array_bulk!(i32, pup_i32_slice);
pup_array_bulk!(i64, pup_i64_slice);
pup_array_bulk!(f32, pup_f32_slice);
pup_array_bulk!(f64, pup_f64_slice);

impl Pup for String {
    fn pup(&mut self, p: &mut dyn Puper) -> PupResult {
        match p.dir() {
            Dir::Unpacking => {
                let at = p.offset();
                let n = p.pup_len(0)?;
                let mut bytes = vec![0u8; n];
                p.pup_u8_slice(&mut bytes)?;
                *self = String::from_utf8(bytes).map_err(|_| PupError::InvalidUtf8 { at })?;
                Ok(())
            }
            _ => {
                let n = p.pup_len(self.len())?;
                debug_assert_eq!(n, self.len());
                // SAFETY: the bytes are only read (every non-unpacking
                // direction treats slices as read-only input), so UTF-8
                // validity of `self` is preserved.
                let bytes = unsafe { self.as_bytes_mut() };
                p.pup_u8_slice(bytes)
            }
        }
    }
}

impl<T: Pup + Default> Pup for Option<T> {
    fn pup(&mut self, p: &mut dyn Puper) -> PupResult {
        let mut tag: u8 = self.is_some() as u8;
        p.pup_u8(&mut tag)?;
        if p.dir() == Dir::Unpacking {
            match tag {
                0 => *self = None,
                1 => {
                    if self.is_none() {
                        *self = Some(T::default());
                    }
                }
                t => {
                    return Err(PupError::InvalidTag {
                        tag: t as u64,
                        type_name: "Option",
                    })
                }
            }
        }
        if let Some(v) = self {
            v.pup(p)?;
        }
        Ok(())
    }
}

macro_rules! pup_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Pup),+> Pup for ($($name,)+) {
            fn pup(&mut self, p: &mut dyn Puper) -> PupResult {
                $(self.$idx.pup(p)?;)+
                Ok(())
            }
        }
    };
}

pup_tuple!(A: 0);
pup_tuple!(A: 0, B: 1);
pup_tuple!(A: 0, B: 1, C: 2);
pup_tuple!(A: 0, B: 1, C: 2, D: 3);

/// Traverse a `Vec` of arbitrary `Pup` elements (the generic, non-bulk
/// path — element types with their own `pup` structure).
///
/// `Vec<f64>` and friends have specialized bulk impls; use this helper for
/// vectors of structs:
///
/// ```
/// use acr_pup::{Pup, Puper, PupResult, pup_vec, pack, unpack};
/// #[derive(Default, Clone, PartialEq, Debug)]
/// struct P { x: f64 }
/// impl Pup for P {
///     fn pup(&mut self, p: &mut dyn Puper) -> PupResult { p.pup_f64(&mut self.x) }
/// }
/// struct W(Vec<P>);
/// impl Pup for W {
///     fn pup(&mut self, p: &mut dyn Puper) -> PupResult { pup_vec(p, &mut self.0) }
/// }
/// let mut w = W(vec![P { x: 1.0 }, P { x: 2.0 }]);
/// let bytes = pack(&mut w).unwrap();
/// let mut v = W(vec![]);
/// unpack(&bytes, &mut v).unwrap();
/// assert_eq!(v.0, w.0);
/// ```
pub fn pup_vec<T: Pup + Default>(p: &mut dyn Puper, v: &mut Vec<T>) -> PupResult {
    let n = p.pup_len(v.len())?;
    if p.dir() == Dir::Unpacking {
        v.resize_with(n, T::default);
    }
    for item in v.iter_mut() {
        item.pup(p)?;
    }
    Ok(())
}

/// Traverse a `BTreeMap` with `Pup` keys and values.
///
/// Entries travel in key order, so two buddy replicas with identical logical
/// state produce identical checkpoint bytes — a requirement for
/// checkpoint-comparison SDC detection (§2.1). This is why the framework
/// offers `BTreeMap` and not `HashMap` (whose iteration order is
/// randomized).
pub fn pup_btree_map<K, V>(p: &mut dyn Puper, m: &mut BTreeMap<K, V>) -> PupResult
where
    K: Pup + Default + Ord + Clone,
    V: Pup + Default,
{
    let n = p.pup_len(m.len())?;
    if p.dir() == Dir::Unpacking {
        let mut fresh = BTreeMap::new();
        for _ in 0..n {
            let mut k = K::default();
            let mut v = V::default();
            k.pup(p)?;
            v.pup(p)?;
            fresh.insert(k, v);
        }
        *m = fresh;
        Ok(())
    } else {
        for (k, v) in m.iter_mut() {
            // Keys are logically immutable inside a map; the traversal only
            // reads them in non-unpacking directions.
            let mut key = KeyShim(k);
            key.pup_forward(p)?;
            v.pup(p)?;
        }
        Ok(())
    }
}

/// Read-only key adaptor: clones the key into a scratch value for traversal
/// so the map's ordering invariant cannot be violated.
struct KeyShim<'a, K>(&'a K);

impl<K: Pup + Clone> KeyShim<'_, K> {
    fn pup_forward(&mut self, p: &mut dyn Puper) -> PupResult {
        let mut scratch = self.0.clone();
        scratch.pup(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{pack, packed_size, unpack};

    #[test]
    fn vec_of_scalars_roundtrip() {
        let mut v: Vec<f64> = vec![1.0, 2.0, 3.5];
        let bytes = pack(&mut v).unwrap();
        assert_eq!(bytes.len(), 8 + 24);
        let mut w: Vec<f64> = vec![9.0; 10];
        unpack(&bytes, &mut w).unwrap();
        assert_eq!(w, v);
    }

    #[test]
    fn string_roundtrip() {
        let mut s = String::from("réplica ✓");
        let bytes = pack(&mut s).unwrap();
        let mut t = String::new();
        unpack(&bytes, &mut t).unwrap();
        assert_eq!(t, s);
    }

    #[test]
    fn corrupted_string_rejected() {
        let mut s = String::from("ok");
        let mut bytes = pack(&mut s).unwrap();
        bytes[8] = 0xFF; // invalid UTF-8 lead byte
        let mut t = String::new();
        assert!(matches!(
            unpack(&bytes, &mut t).unwrap_err(),
            PupError::InvalidUtf8 { at: 0 }
        ));
    }

    #[test]
    fn option_roundtrip_both_variants() {
        let mut some: Option<u32> = Some(7);
        let bytes = pack(&mut some).unwrap();
        let mut out: Option<u32> = None;
        unpack(&bytes, &mut out).unwrap();
        assert_eq!(out, Some(7));

        let mut none: Option<u32> = None;
        let bytes = pack(&mut none).unwrap();
        let mut out: Option<u32> = Some(3);
        unpack(&bytes, &mut out).unwrap();
        assert_eq!(out, None);
    }

    #[test]
    fn option_invalid_tag() {
        let bytes = [7u8];
        let mut out: Option<u32> = None;
        assert!(matches!(
            unpack(&bytes, &mut out).unwrap_err(),
            PupError::InvalidTag { tag: 7, .. }
        ));
    }

    #[test]
    fn tuple_roundtrip() {
        let mut t = (1u8, 2.5f64, true);
        let bytes = pack(&mut t).unwrap();
        assert_eq!(bytes.len(), 1 + 8 + 1);
        let mut u = (0u8, 0.0f64, false);
        unpack(&bytes, &mut u).unwrap();
        assert_eq!(u, t);
    }

    #[test]
    fn btree_map_roundtrip_is_ordered() {
        let mut m = BTreeMap::new();
        m.insert(3u32, 30.0f64);
        m.insert(1u32, 10.0f64);
        m.insert(2u32, 20.0f64);

        struct W(BTreeMap<u32, f64>);
        impl Pup for W {
            fn pup(&mut self, p: &mut dyn Puper) -> PupResult {
                pup_btree_map(p, &mut self.0)
            }
        }
        let mut w = W(m.clone());
        let bytes = pack(&mut w).unwrap();
        // len + 3 * (4 + 8)
        assert_eq!(bytes.len(), 8 + 3 * 12);
        // first key in stream is the smallest
        assert_eq!(u32::from_le_bytes(bytes[8..12].try_into().unwrap()), 1);

        let mut out = W(BTreeMap::new());
        unpack(&bytes, &mut out).unwrap();
        assert_eq!(out.0, m);
    }

    #[test]
    fn sizer_matches_packer_for_containers() {
        let mut v: Vec<u32> = (0..17).collect();
        assert_eq!(packed_size(&mut v).unwrap(), pack(&mut v).unwrap().len());
        let mut s = String::from("abcdef");
        assert_eq!(packed_size(&mut s).unwrap(), pack(&mut s).unwrap().len());
        let mut o: Option<f64> = Some(2.0);
        assert_eq!(packed_size(&mut o).unwrap(), pack(&mut o).unwrap().len());
    }

    #[test]
    fn fixed_array_roundtrip() {
        let mut a = [1.0f32, 2.0, 3.0, 4.0];
        let bytes = pack(&mut a).unwrap();
        assert_eq!(bytes.len(), 16); // no length prefix for fixed arrays
        let mut b = [0.0f32; 4];
        unpack(&bytes, &mut b).unwrap();
        assert_eq!(b, a);
    }
}
