//! [`Checker`]: compares live state against a buddy replica's checkpoint —
//! the SDC detector of §2.1 / §4.1.

use crate::error::{PupError, PupResult};
use crate::puper::{CheckPolicy, Dir, Puper};
use std::ops::Range;

/// One detected divergence between the live state and the reference
/// checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckFailure {
    /// Stream offset (bytes) of the mismatching field.
    pub offset: usize,
    /// Width of the mismatching field in bytes.
    pub width: usize,
    /// The live value, reinterpreted as little-endian u64 bits (zero-padded).
    pub live_bits: u64,
    /// The reference value, reinterpreted the same way.
    pub reference_bits: u64,
}

/// Outcome of a checkpoint comparison.
///
/// A non-clean report is how ACR learns that *silent data corruption*
/// occurred in one of the replicas; the runtime responds by rolling both
/// replicas back to the previous verified checkpoint (§2.1).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CheckReport {
    /// All mismatching fields (bounded by [`Checker::failure_cap`]).
    pub failures: Vec<CheckFailure>,
    /// Total number of mismatching fields, including ones beyond the cap.
    pub mismatch_count: usize,
    /// Bytes that were actually compared.
    pub bytes_compared: usize,
    /// Bytes skipped under [`CheckPolicy::Ignore`].
    pub bytes_ignored: usize,
}

impl CheckReport {
    /// True when no divergence was found: the two replicas agree.
    pub fn is_clean(&self) -> bool {
        self.mismatch_count == 0
    }
}

const DEFAULT_FAILURE_CAP: usize = 64;

/// A [`Puper`] that walks the live object while consuming the buddy's packed
/// checkpoint, recording divergences instead of writing or reading state.
///
/// Comparison behaviour is governed by a stack of [`CheckPolicy`] values
/// (default [`CheckPolicy::Bitwise`]); see §4.1 for why applications may want
/// relative-tolerance or ignored regions.
#[derive(Debug)]
pub struct Checker<'a> {
    reference: &'a [u8],
    pos: usize,
    policies: Vec<CheckPolicy>,
    report: CheckReport,
    failure_cap: usize,
    /// When set, only stream bytes inside these ranges are compared; bytes
    /// outside count as ignored. Sorted, coalesced, non-empty ranges.
    windows: Option<Vec<Range<usize>>>,
    /// Index of the first window whose end is past the current stream
    /// position (offsets only grow, so this advances monotonically).
    window_cursor: usize,
}

impl<'a> Checker<'a> {
    /// Create a checker against the buddy checkpoint `reference`.
    pub fn new(reference: &'a [u8]) -> Self {
        Self {
            reference,
            pos: 0,
            policies: vec![CheckPolicy::Bitwise],
            report: CheckReport::default(),
            failure_cap: DEFAULT_FAILURE_CAP,
            windows: None,
            window_cursor: 0,
        }
    }

    /// Limit how many individual [`CheckFailure`]s are materialized (the
    /// total `mismatch_count` is always exact). One flipped bit produces one
    /// failure, but a truly corrupted region could produce millions.
    pub fn failure_cap(mut self, cap: usize) -> Self {
        self.failure_cap = cap;
        self
    }

    /// Restrict comparison to the given byte ranges of the packed stream:
    /// everything outside is traversed (positions still advance, structural
    /// length fields are still validated) but counted as ignored rather
    /// than compared.
    ///
    /// This is the divergence-localization hook: after a chunked-digest
    /// exchange names the diverged chunks, the field-level walk only pays
    /// for those windows instead of the whole checkpoint. A field
    /// straddling a window edge is compared in full.
    pub fn with_windows(mut self, windows: impl IntoIterator<Item = Range<usize>>) -> Self {
        let mut sorted: Vec<Range<usize>> =
            windows.into_iter().filter(|r| r.start < r.end).collect();
        sorted.sort_by_key(|r| r.start);
        let mut coalesced: Vec<Range<usize>> = Vec::with_capacity(sorted.len());
        for w in sorted {
            match coalesced.last_mut() {
                Some(last) if w.start <= last.end => last.end = last.end.max(w.end),
                _ => coalesced.push(w),
            }
        }
        self.windows = Some(coalesced);
        self.window_cursor = 0;
        self
    }

    /// Does `[offset, offset + width)` intersect any comparison window?
    /// (Always true without windows.)
    #[inline]
    fn in_window(&mut self, offset: usize, width: usize) -> bool {
        let Some(windows) = &self.windows else {
            return true;
        };
        while self.window_cursor < windows.len() && windows[self.window_cursor].end <= offset {
            self.window_cursor += 1;
        }
        self.window_cursor < windows.len() && windows[self.window_cursor].start < offset + width
    }

    /// Element-index subranges of a `width`-wide region at `offset` holding
    /// `count` elements of size `elem` that intersect the windows, rounded
    /// out to whole elements. Returns `None` when windowing is off (compare
    /// everything).
    fn window_spans(
        &mut self,
        offset: usize,
        elem: usize,
        count: usize,
    ) -> Option<Vec<Range<usize>>> {
        self.windows.as_ref()?; // windowing off: compare everything
        let width = elem * count;
        // Advance the shared cursor first so later scalar checks stay O(1).
        if !self.in_window(offset, width) {
            return Some(Vec::new());
        }
        let windows = self.windows.as_ref().expect("checked Some above");
        let mut spans: Vec<Range<usize>> = Vec::new();
        for w in &windows[self.window_cursor..] {
            if w.start >= offset + width {
                break;
            }
            let lo = w.start.max(offset) - offset;
            let hi = w.end.min(offset + width) - offset;
            let i0 = lo / elem;
            let i1 = hi.div_ceil(elem).min(count);
            match spans.last_mut() {
                // Rounding to whole elements can make spans touch or overlap.
                Some(last) if i0 <= last.end => last.end = last.end.max(i1),
                _ => spans.push(i0..i1),
            }
        }
        Some(spans)
    }

    /// Finish the comparison. Errors if the reference checkpoint has bytes
    /// left over (structural divergence).
    pub fn finish(self) -> PupResult<CheckReport> {
        let leftover = self.reference.len() - self.pos;
        if leftover != 0 {
            return Err(PupError::TrailingBytes { leftover });
        }
        Ok(self.report)
    }

    fn policy(&self) -> CheckPolicy {
        *self.policies.last().expect("policy stack is never empty")
    }

    #[inline]
    fn take(&mut self, n: usize) -> PupResult<&'a [u8]> {
        let remaining = self.reference.len() - self.pos;
        if remaining < n {
            return Err(PupError::BufferUnderrun {
                needed: n,
                remaining,
                at: self.pos,
            });
        }
        let s = &self.reference[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn record(&mut self, offset: usize, width: usize, live_bits: u64, reference_bits: u64) {
        self.report.mismatch_count += 1;
        if self.report.failures.len() < self.failure_cap {
            self.report.failures.push(CheckFailure {
                offset,
                width,
                live_bits,
                reference_bits,
            });
        }
    }

    /// Compare a raw little-endian scalar bitwise (integers & bools).
    fn check_bits(&mut self, live: &[u8]) -> PupResult {
        let offset = self.pos;
        let policy = self.policy();
        let reference = self.take(live.len())?;
        if matches!(policy, CheckPolicy::Ignore) || !self.in_window(offset, live.len()) {
            self.report.bytes_ignored += live.len();
            return Ok(());
        }
        self.report.bytes_compared += live.len();
        if live != reference {
            self.record(offset, live.len(), le_bits(live), le_bits(reference));
        }
        Ok(())
    }

    fn check_f64(&mut self, live: f64) -> PupResult {
        let offset = self.pos;
        let policy = self.policy();
        let bytes = self.take(8)?;
        if matches!(policy, CheckPolicy::Ignore) || !self.in_window(offset, 8) {
            self.report.bytes_ignored += 8;
            return Ok(());
        }
        self.report.bytes_compared += 8;
        let reference = f64::from_le_bytes(bytes.try_into().expect("take() sized the slice"));
        if !policy.f64_ok(live, reference) {
            self.record(offset, 8, live.to_bits(), reference.to_bits());
        }
        Ok(())
    }

    fn check_f32(&mut self, live: f32) -> PupResult {
        let offset = self.pos;
        let policy = self.policy();
        let bytes = self.take(4)?;
        if matches!(policy, CheckPolicy::Ignore) || !self.in_window(offset, 4) {
            self.report.bytes_ignored += 4;
            return Ok(());
        }
        self.report.bytes_compared += 4;
        let reference = f32::from_le_bytes(bytes.try_into().expect("take() sized the slice"));
        if !policy.f32_ok(live, reference) {
            self.record(offset, 4, live.to_bits() as u64, reference.to_bits() as u64);
        }
        Ok(())
    }
}

fn le_bits(bytes: &[u8]) -> u64 {
    let mut buf = [0u8; 8];
    let n = bytes.len().min(8);
    buf[..n].copy_from_slice(&bytes[..n]);
    u64::from_le_bytes(buf)
}

macro_rules! check_scalar {
    ($name:ident, $ty:ty) => {
        fn $name(&mut self, v: &mut $ty) -> PupResult {
            self.check_bits(&v.to_le_bytes())
        }
    };
}

macro_rules! check_int_slice {
    ($name:ident, $ty:ty) => {
        fn $name(&mut self, v: &mut [$ty]) -> PupResult {
            const W: usize = std::mem::size_of::<$ty>();
            // Fast path: bulk bitwise compare of the whole region (or its
            // windowed spans), then only walk element-by-element if it
            // differs (mismatches are rare — typically a single flipped bit
            // per §6.1 injection).
            let offset = self.pos;
            let policy = self.policy();
            let reference = self.take(W * v.len())?;
            if matches!(policy, CheckPolicy::Ignore) {
                self.report.bytes_ignored += reference.len();
                return Ok(());
            }
            match self.window_spans(offset, W, v.len()) {
                None => {
                    self.report.bytes_compared += reference.len();
                    if bytes_of(v) == reference {
                        return Ok(());
                    }
                    for (i, (x, chunk)) in v.iter().zip(reference.chunks_exact(W)).enumerate() {
                        let live = &x.to_le_bytes()[..];
                        if live != chunk {
                            self.record(offset + i * W, W, le_bits(live), le_bits(chunk));
                        }
                    }
                }
                Some(spans) => {
                    let live_bytes = bytes_of(v);
                    let mut compared = 0usize;
                    for span in spans {
                        let (b0, b1) = (span.start * W, span.end * W);
                        compared += b1 - b0;
                        if !live_bytes.is_empty() && live_bytes[b0..b1] == reference[b0..b1] {
                            continue;
                        }
                        for i in span {
                            let live = &v[i].to_le_bytes()[..];
                            let chunk = &reference[i * W..(i + 1) * W];
                            if live != chunk {
                                self.record(offset + i * W, W, le_bits(live), le_bits(chunk));
                            }
                        }
                    }
                    self.report.bytes_compared += compared;
                    self.report.bytes_ignored += reference.len() - compared;
                }
            }
            Ok(())
        }
    };
}

/// View a numeric slice as raw bytes (little-endian targets only; on
/// big-endian we fall back to elementwise comparison).
fn bytes_of<T>(v: &[T]) -> &[u8] {
    if cfg!(target_endian = "little") {
        // SAFETY: numeric primitives have no padding; lifetime tied to `v`.
        unsafe { std::slice::from_raw_parts(v.as_ptr() as *const u8, std::mem::size_of_val(v)) }
    } else {
        &[]
    }
}

impl Puper for Checker<'_> {
    fn dir(&self) -> Dir {
        Dir::Checking
    }

    fn offset(&self) -> usize {
        self.pos
    }

    check_scalar!(pup_u8, u8);
    check_scalar!(pup_u16, u16);
    check_scalar!(pup_u32, u32);
    check_scalar!(pup_u64, u64);
    check_scalar!(pup_i8, i8);
    check_scalar!(pup_i16, i16);
    check_scalar!(pup_i32, i32);
    check_scalar!(pup_i64, i64);

    fn pup_f32(&mut self, v: &mut f32) -> PupResult {
        self.check_f32(*v)
    }

    fn pup_f64(&mut self, v: &mut f64) -> PupResult {
        self.check_f64(*v)
    }

    fn pup_bool(&mut self, v: &mut bool) -> PupResult {
        self.check_bits(&[*v as u8])
    }

    fn pup_usize(&mut self, v: &mut usize) -> PupResult {
        self.check_bits(&(*v as u64).to_le_bytes())
    }

    fn pup_len(&mut self, live: usize) -> PupResult<usize> {
        let bytes = self.take(8)?;
        let stream = u64::from_le_bytes(bytes.try_into().expect("take() sized the slice"));
        self.report.bytes_compared += 8;
        if stream as usize != live {
            // A shape divergence makes the rest of the stream uninterpretable;
            // surface it as a structural error (the runtime treats this as
            // SDC just the same).
            return Err(PupError::LengthMismatch {
                stream: stream as usize,
                live,
            });
        }
        Ok(live)
    }

    check_int_slice!(pup_u8_slice, u8);
    check_int_slice!(pup_u16_slice, u16);
    check_int_slice!(pup_u32_slice, u32);
    check_int_slice!(pup_u64_slice, u64);
    check_int_slice!(pup_i32_slice, i32);
    check_int_slice!(pup_i64_slice, i64);

    fn pup_f32_slice(&mut self, v: &mut [f32]) -> PupResult {
        let policy = self.policy();
        if matches!(policy, CheckPolicy::Bitwise) {
            // Bitwise floats can use the fast bulk path.
            let offset = self.pos;
            let reference = self.take(4 * v.len())?;
            match self.window_spans(offset, 4, v.len()) {
                None => {
                    self.report.bytes_compared += reference.len();
                    if bytes_of(v) == reference {
                        return Ok(());
                    }
                    for (i, (x, chunk)) in v.iter().zip(reference.chunks_exact(4)).enumerate() {
                        if x.to_le_bytes() != *chunk {
                            self.record(offset + i * 4, 4, x.to_bits() as u64, le_bits(chunk));
                        }
                    }
                }
                Some(spans) => {
                    let live_bytes = bytes_of(v);
                    let mut compared = 0usize;
                    for span in spans {
                        let (b0, b1) = (span.start * 4, span.end * 4);
                        compared += b1 - b0;
                        if !live_bytes.is_empty() && live_bytes[b0..b1] == reference[b0..b1] {
                            continue;
                        }
                        for i in span {
                            let chunk = &reference[i * 4..(i + 1) * 4];
                            if v[i].to_le_bytes()[..] != *chunk {
                                self.record(
                                    offset + i * 4,
                                    4,
                                    v[i].to_bits() as u64,
                                    le_bits(chunk),
                                );
                            }
                        }
                    }
                    self.report.bytes_compared += compared;
                    self.report.bytes_ignored += reference.len() - compared;
                }
            }
            Ok(())
        } else {
            for x in v {
                self.check_f32(*x)?;
            }
            Ok(())
        }
    }

    fn pup_f64_slice(&mut self, v: &mut [f64]) -> PupResult {
        let policy = self.policy();
        if matches!(policy, CheckPolicy::Bitwise) {
            let offset = self.pos;
            let reference = self.take(8 * v.len())?;
            match self.window_spans(offset, 8, v.len()) {
                None => {
                    self.report.bytes_compared += reference.len();
                    if bytes_of(v) == reference {
                        return Ok(());
                    }
                    for (i, (x, chunk)) in v.iter().zip(reference.chunks_exact(8)).enumerate() {
                        if x.to_le_bytes() != *chunk {
                            self.record(offset + i * 8, 8, x.to_bits(), le_bits(chunk));
                        }
                    }
                }
                Some(spans) => {
                    let live_bytes = bytes_of(v);
                    let mut compared = 0usize;
                    for span in spans {
                        let (b0, b1) = (span.start * 8, span.end * 8);
                        compared += b1 - b0;
                        if !live_bytes.is_empty() && live_bytes[b0..b1] == reference[b0..b1] {
                            continue;
                        }
                        for i in span {
                            let chunk = &reference[i * 8..(i + 1) * 8];
                            if v[i].to_le_bytes()[..] != *chunk {
                                self.record(offset + i * 8, 8, v[i].to_bits(), le_bits(chunk));
                            }
                        }
                    }
                    self.report.bytes_compared += compared;
                    self.report.bytes_ignored += reference.len() - compared;
                }
            }
            Ok(())
        } else {
            for x in v {
                self.check_f64(*x)?;
            }
            Ok(())
        }
    }

    fn push_policy(&mut self, policy: CheckPolicy) -> PupResult {
        self.policies.push(policy);
        Ok(())
    }

    fn pop_policy(&mut self) -> PupResult {
        if self.policies.len() <= 1 {
            return Err(PupError::PolicyUnderflow);
        }
        self.policies.pop();
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::single_range_in_vec_init)] // single-window cases mean [one range], not a collected range
mod tests {
    use super::*;
    use crate::packer::Packer;
    use crate::puper::Pup;

    struct Blob {
        data: Vec<f64>,
        steps: u64,
        timer: f64,
    }

    impl Pup for Blob {
        fn pup(&mut self, p: &mut dyn Puper) -> PupResult {
            let n = p.pup_len(self.data.len())?;
            self.data.resize(n, 0.0);
            p.pup_f64_slice(&mut self.data)?;
            p.pup_u64(&mut self.steps)?;
            p.push_policy(CheckPolicy::Ignore)?;
            p.pup_f64(&mut self.timer)?;
            p.pop_policy()
        }
    }

    fn packed(b: &mut Blob) -> Vec<u8> {
        let mut p = Packer::new();
        b.pup(&mut p).unwrap();
        p.finish()
    }

    #[test]
    fn identical_state_is_clean() {
        let mut a = Blob {
            data: vec![1.0, 2.0, 3.0],
            steps: 10,
            timer: 0.5,
        };
        let reference = packed(&mut a);
        let mut c = Checker::new(&reference);
        a.pup(&mut c).unwrap();
        let r = c.finish().unwrap();
        assert!(r.is_clean());
        assert_eq!(r.bytes_compared, 8 + 24 + 8); // len + data + steps
        assert_eq!(r.bytes_ignored, 8); // timer
    }

    #[test]
    fn single_bit_flip_is_detected_and_located() {
        let mut a = Blob {
            data: vec![1.0, 2.0, 3.0],
            steps: 10,
            timer: 0.5,
        };
        let reference = packed(&mut a);
        // Corrupt one bit of data[1] in the live copy.
        a.data[1] = f64::from_bits(a.data[1].to_bits() ^ (1 << 17));
        let mut c = Checker::new(&reference);
        a.pup(&mut c).unwrap();
        let r = c.finish().unwrap();
        assert_eq!(r.mismatch_count, 1);
        assert_eq!(r.failures[0].offset, 8 + 8); // after len, after data[0]
        assert_eq!(r.failures[0].width, 8);
    }

    #[test]
    fn ignored_region_may_differ() {
        let mut a = Blob {
            data: vec![1.0],
            steps: 1,
            timer: 0.1,
        };
        let reference = packed(&mut a);
        a.timer = 99.0; // replica-local, non-critical
        let mut c = Checker::new(&reference);
        a.pup(&mut c).unwrap();
        assert!(c.finish().unwrap().is_clean());
    }

    #[test]
    fn relative_policy_on_slices() {
        struct Rel(Vec<f64>);
        impl Pup for Rel {
            fn pup(&mut self, p: &mut dyn Puper) -> PupResult {
                p.push_policy(CheckPolicy::Relative(1e-9))?;
                p.pup_f64_slice(&mut self.0)?;
                p.pop_policy()
            }
        }
        let mut a = Rel(vec![1.0, -2.0]);
        let mut p = Packer::new();
        a.pup(&mut p).unwrap();
        let reference = p.finish();

        let mut b = Rel(vec![1.0 + 1e-12, -2.0 - 1e-12]);
        let mut c = Checker::new(&reference);
        b.pup(&mut c).unwrap();
        assert!(c.finish().unwrap().is_clean());

        let mut d = Rel(vec![1.0 + 1e-3, -2.0]);
        let mut c = Checker::new(&reference);
        d.pup(&mut c).unwrap();
        assert_eq!(c.finish().unwrap().mismatch_count, 1);
    }

    #[test]
    fn length_divergence_is_structural() {
        let mut a = Blob {
            data: vec![1.0, 2.0],
            steps: 0,
            timer: 0.0,
        };
        let reference = packed(&mut a);
        let mut b = Blob {
            data: vec![1.0, 2.0, 3.0],
            steps: 0,
            timer: 0.0,
        };
        let mut c = Checker::new(&reference);
        let err = b.pup(&mut c).unwrap_err();
        assert_eq!(err, PupError::LengthMismatch { stream: 2, live: 3 });
    }

    #[test]
    fn failure_cap_bounds_materialized_failures() {
        let mut a = Blob {
            data: vec![0.0; 100],
            steps: 0,
            timer: 0.0,
        };
        let reference = packed(&mut a);
        for x in a.data.iter_mut() {
            *x = 1.0;
        }
        let mut c = Checker::new(&reference).failure_cap(5);
        a.pup(&mut c).unwrap();
        let r = c.finish().unwrap();
        assert_eq!(r.mismatch_count, 100);
        assert_eq!(r.failures.len(), 5);
    }

    #[test]
    fn failure_cap_zero_still_counts_exactly() {
        let mut a = Blob {
            data: vec![0.0; 10],
            steps: 0,
            timer: 0.0,
        };
        let reference = packed(&mut a);
        for x in a.data.iter_mut() {
            *x = 2.0;
        }
        let mut c = Checker::new(&reference).failure_cap(0);
        a.pup(&mut c).unwrap();
        let r = c.finish().unwrap();
        assert_eq!(r.mismatch_count, 10);
        assert!(r.failures.is_empty());
        assert!(!r.is_clean());
    }

    #[test]
    fn windows_restrict_comparison_to_ranges() {
        let mut a = Blob {
            data: (0..100).map(|i| i as f64).collect(),
            steps: 5,
            timer: 0.0,
        };
        let reference = packed(&mut a);
        // Corrupt two elements: data[10] (offset 8 + 80) and data[90]
        // (offset 8 + 720).
        a.data[10] += 1.0;
        a.data[90] += 1.0;

        // Window covering only data[10]'s bytes: one mismatch seen.
        let mut c = Checker::new(&reference).with_windows([88..96]);
        a.pup(&mut c).unwrap();
        let r = c.finish().unwrap();
        assert_eq!(r.mismatch_count, 1);
        assert_eq!(r.failures[0].offset, 88);
        assert_eq!(r.bytes_compared, 8 + 8); // structural len field + one f64
        assert!(r.bytes_ignored > 0);

        // Windows covering both corrupted elements: both seen.
        let mut c = Checker::new(&reference).with_windows([80..100, 700..760]);
        a.pup(&mut c).unwrap();
        assert_eq!(c.finish().unwrap().mismatch_count, 2);

        // Window covering neither: clean.
        let mut c = Checker::new(&reference).with_windows([200..300]);
        a.pup(&mut c).unwrap();
        assert!(c.finish().unwrap().is_clean());
    }

    #[test]
    fn window_edges_round_out_to_whole_fields() {
        let mut a = Blob {
            data: vec![1.0; 8],
            steps: 0,
            timer: 0.0,
        };
        let reference = packed(&mut a);
        a.data[3] = 9.0; // stream bytes 32..40 (after the 8-byte len field)
                         // A 1-byte window inside the corrupted element still catches it.
        let mut c = Checker::new(&reference).with_windows([33..34]);
        a.pup(&mut c).unwrap();
        let r = c.finish().unwrap();
        assert_eq!(r.mismatch_count, 1);
        assert_eq!(r.failures[0].offset, 32);
    }

    #[test]
    fn overlapping_windows_coalesce() {
        let mut a = Blob {
            data: vec![1.0; 16],
            steps: 0,
            timer: 0.0,
        };
        let reference = packed(&mut a);
        a.data[2] = 3.0;
        // Two overlapping windows over the same corrupted element must not
        // double-count the mismatch.
        let mut c = Checker::new(&reference).with_windows([20..30, 24..40]);
        a.pup(&mut c).unwrap();
        assert_eq!(c.finish().unwrap().mismatch_count, 1);
    }

    #[test]
    fn windows_skip_scalars_and_int_slices_outside() {
        struct Ints {
            a: u64,
            v: Vec<u32>,
            b: u64,
        }
        impl Pup for Ints {
            fn pup(&mut self, p: &mut dyn Puper) -> PupResult {
                p.pup_u64(&mut self.a)?;
                let n = p.pup_len(self.v.len())?;
                self.v.resize(n, 0);
                p.pup_u32_slice(&mut self.v)?;
                p.pup_u64(&mut self.b)
            }
        }
        let mut x = Ints {
            a: 1,
            v: vec![7; 16],
            b: 2,
        };
        let mut p = Packer::new();
        x.pup(&mut p).unwrap();
        let reference = p.finish();
        // Corrupt everything; only the window over v[4..6] (stream bytes
        // 16+16 .. 16+24) should report.
        x.a = 100;
        for e in x.v.iter_mut() {
            *e = 8;
        }
        x.b = 200;
        let mut c = Checker::new(&reference).with_windows([32..40]);
        x.pup(&mut c).unwrap();
        let r = c.finish().unwrap();
        assert_eq!(r.mismatch_count, 2); // v[4] and v[5] only
        assert_eq!(r.failures[0].offset, 32);
        assert_eq!(r.failures[1].offset, 36);
    }

    #[test]
    fn policy_underflow_detected() {
        let reference = [0u8; 0];
        let mut c = Checker::new(&reference);
        assert_eq!(c.pop_policy().unwrap_err(), PupError::PolicyUnderflow);
    }

    #[test]
    fn trailing_reference_bytes_are_structural() {
        let reference = [0u8; 4];
        let c = Checker::new(&reference);
        assert_eq!(
            c.finish().unwrap_err(),
            PupError::TrailingBytes { leftover: 4 }
        );
    }

    #[test]
    fn int_slice_flip_located() {
        struct Ints(Vec<u32>);
        impl Pup for Ints {
            fn pup(&mut self, p: &mut dyn Puper) -> PupResult {
                p.pup_u32_slice(&mut self.0)
            }
        }
        let mut a = Ints(vec![7; 16]);
        let mut p = Packer::new();
        a.pup(&mut p).unwrap();
        let reference = p.finish();
        a.0[9] ^= 0x8000;
        let mut c = Checker::new(&reference);
        a.pup(&mut c).unwrap();
        let r = c.finish().unwrap();
        assert_eq!(r.mismatch_count, 1);
        assert_eq!(r.failures[0].offset, 9 * 4);
    }
}
