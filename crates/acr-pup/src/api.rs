//! One-call convenience entry points over the individual pupers.

use crate::checker::{CheckReport, Checker};
use crate::chunked::{ChunkedDigest, DigestingPacker};
use crate::error::PupResult;
use crate::fletcher::FletcherPuper;
use crate::packer::Packer;
use crate::puper::{CheckPolicy, Pup, Puper};
use crate::sizer::Sizer;
use crate::unpacker::Unpacker;
use std::ops::Range;

/// Exact number of bytes [`pack`] would produce for `obj`.
pub fn packed_size<T: Pup + ?Sized>(obj: &mut T) -> PupResult<usize> {
    let mut s = Sizer::new();
    obj.pup(&mut s)?;
    Ok(s.bytes())
}

/// Serialize `obj` into a fresh, exactly-sized checkpoint buffer.
pub fn pack<T: Pup + ?Sized>(obj: &mut T) -> PupResult<Vec<u8>> {
    let size = packed_size(obj)?;
    let mut p = Packer::with_capacity(size);
    obj.pup(&mut p)?;
    let buf = p.finish();
    debug_assert_eq!(
        buf.len(),
        size,
        "Sizer and Packer disagree: pup() is direction-dependent"
    );
    Ok(buf)
}

/// Serialize `obj`, appending to `buf` (reuse a checkpoint buffer across
/// periods to keep allocator traffic off the δ path).
pub fn pack_into<T: Pup + ?Sized>(obj: &mut T, buf: Vec<u8>) -> PupResult<Vec<u8>> {
    let mut p = Packer::into_buf(buf);
    obj.pup(&mut p)?;
    Ok(p.finish())
}

/// Restore `obj` from checkpoint bytes. Errors if the buffer is too short,
/// structurally invalid, or not fully consumed.
pub fn unpack<T: Pup + ?Sized>(bytes: &[u8], obj: &mut T) -> PupResult {
    let mut u = Unpacker::new(bytes);
    obj.pup(&mut u)?;
    u.finish()
}

/// Compare live `obj` against a buddy checkpoint, with
/// [`CheckPolicy::Bitwise`] as the ambient policy (an object's own `pup` may
/// still push finer-grained policies).
pub fn compare<T: Pup + ?Sized>(obj: &mut T, reference: &[u8]) -> PupResult<CheckReport> {
    let mut c = Checker::new(reference);
    obj.pup(&mut c)?;
    c.finish()
}

/// Compare with an explicit ambient policy (e.g. a machine-wide relative
/// tolerance configured by the application, §4.1).
pub fn compare_with_policy<T: Pup + ?Sized>(
    obj: &mut T,
    reference: &[u8],
    policy: CheckPolicy,
) -> PupResult<CheckReport> {
    let mut c = Checker::new(reference);
    c.push_policy(policy)?;
    obj.pup(&mut c)?;
    c.pop_policy()?;
    c.finish()
}

/// Serialize `obj` and compute its chunked Fletcher digest in the same
/// pass — the fused checkpoint pipeline. Returns the payload plus its
/// per-chunk digest table; the table's `digest` equals
/// [`crate::fletcher64`] of the payload.
pub fn pack_digested<T: Pup + ?Sized>(
    obj: &mut T,
    chunk_size: usize,
) -> PupResult<(Vec<u8>, ChunkedDigest)> {
    let size = packed_size(obj)?;
    let mut p = DigestingPacker::with_capacity(size, chunk_size);
    obj.pup(&mut p)?;
    let (buf, digest) = p.finish();
    debug_assert_eq!(buf.len(), size, "Sizer and DigestingPacker disagree");
    Ok((buf, digest))
}

/// Compare live `obj` against a buddy checkpoint, restricted to the given
/// stream byte ranges (e.g. the diverged chunks named by a chunk-table
/// exchange). Bytes outside the windows are traversed but not compared.
pub fn compare_windows<T: Pup + ?Sized>(
    obj: &mut T,
    reference: &[u8],
    windows: impl IntoIterator<Item = Range<usize>>,
) -> PupResult<CheckReport> {
    let mut c = Checker::new(reference).with_windows(windows);
    obj.pup(&mut c)?;
    c.finish()
}

/// Position-dependent Fletcher-64 digest of `obj`'s packed representation,
/// computed without materializing the packed bytes (§4.2's low-network-load
/// detection path).
pub fn fletcher64_of<T: Pup + ?Sized>(obj: &mut T) -> PupResult<u64> {
    let mut f = FletcherPuper::new();
    obj.pup(&mut f)?;
    Ok(f.digest())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::PupError;

    struct State {
        grid: Vec<f64>,
        iter: u64,
    }

    impl Pup for State {
        fn pup(&mut self, p: &mut dyn Puper) -> PupResult {
            self.grid.pup(p)?;
            p.pup_u64(&mut self.iter)
        }
    }

    #[test]
    fn pack_unpack_compare_checksum_cycle() {
        let mut s = State {
            grid: vec![0.25; 64],
            iter: 12,
        };
        let ckpt = pack(&mut s).unwrap();
        assert_eq!(ckpt.len(), 8 + 64 * 8 + 8);

        let mut t = State {
            grid: vec![],
            iter: 0,
        };
        unpack(&ckpt, &mut t).unwrap();
        assert_eq!(t.iter, 12);
        assert!(compare(&mut t, &ckpt).unwrap().is_clean());
        assert_eq!(
            fletcher64_of(&mut s).unwrap(),
            fletcher64_of(&mut t).unwrap()
        );
    }

    #[test]
    fn ambient_policy_applies() {
        let mut s = State {
            grid: vec![1.0],
            iter: 1,
        };
        let ckpt = pack(&mut s).unwrap();
        s.grid[0] += 1e-14;
        assert!(!compare(&mut s, &ckpt).unwrap().is_clean());
        assert!(
            compare_with_policy(&mut s, &ckpt, CheckPolicy::Relative(1e-12))
                .unwrap()
                .is_clean()
        );
    }

    #[test]
    fn pack_into_reuses_buffer() {
        let mut s = State {
            grid: vec![1.0; 8],
            iter: 3,
        };
        let buf = Vec::with_capacity(1024);
        let ptr = buf.as_ptr();
        let buf = pack_into(&mut s, buf).unwrap();
        assert_eq!(ptr, buf.as_ptr());
        let mut t = State {
            grid: vec![],
            iter: 0,
        };
        unpack(&buf, &mut t).unwrap();
        assert_eq!(t.grid, s.grid);
    }

    #[test]
    fn unpack_rejects_truncation_anywhere() {
        let mut s = State {
            grid: vec![3.0; 4],
            iter: 9,
        };
        let ckpt = pack(&mut s).unwrap();
        for cut in [0, 1, 8, 9, ckpt.len() - 1] {
            let mut t = State {
                grid: vec![],
                iter: 0,
            };
            let err = unpack(&ckpt[..cut], &mut t);
            assert!(err.is_err(), "cut={cut} accepted");
        }
        // over-long buffer also rejected
        let mut long = ckpt.clone();
        long.push(0);
        let mut t = State {
            grid: vec![],
            iter: 0,
        };
        assert_eq!(
            unpack(&long, &mut t).unwrap_err(),
            PupError::TrailingBytes { leftover: 1 }
        );
    }
}
