//! # acr-pup — Pack/UnPack serialization framework
//!
//! A Rust re-imagination of the Charm++ **PUP** (Pack/UnPack) framework that
//! ACR (Ni et al., SC '13) uses for checkpointing, restart, and silent data
//! corruption (SDC) detection.
//!
//! A type describes its checkpoint-relevant state once, by implementing
//! [`Pup`]; every *direction* of traversal is then derived from that single
//! description:
//!
//! * [`Sizer`] — compute the exact packed size without writing anything.
//! * [`Packer`] — serialize the state into a byte buffer (a checkpoint).
//! * [`DigestingPacker`] / [`SlicePacker`] — the fused checkpoint pipeline:
//!   pack and Fletcher-digest in one pass, emitting a per-chunk digest table
//!   that localizes SDC divergence to 64 KiB windows.
//! * [`Unpacker`] — restore the state from a checkpoint (restart).
//! * [`Checker`] — compare live state against a *buddy replica's* checkpoint
//!   byte-for-byte (or with a relative tolerance for floats) to detect SDC.
//!   This is the `PUPer::checker` the paper adds in §4.1.
//! * [`FletcherPuper`] — stream the state through a position-dependent
//!   Fletcher-64 checksum without materializing the packed bytes (§4.2).
//!
//! ## Example
//!
//! ```
//! use acr_pup::{Pup, Puper, PupResult, pack, unpack, compare, fletcher64_of};
//!
//! struct Particle { pos: [f64; 3], vel: [f64; 3], id: u64 }
//!
//! impl Pup for Particle {
//!     fn pup(&mut self, p: &mut dyn Puper) -> PupResult {
//!         p.pup_f64_slice(&mut self.pos)?;
//!         p.pup_f64_slice(&mut self.vel)?;
//!         p.pup_u64(&mut self.id)
//!     }
//! }
//!
//! let mut a = Particle { pos: [0.0, 1.0, 2.0], vel: [0.1; 3], id: 42 };
//! let ckpt = pack(&mut a).unwrap();
//!
//! // Restart path: rebuild state from the checkpoint.
//! let mut b = Particle { pos: [0.0; 3], vel: [0.0; 3], id: 0 };
//! unpack(&ckpt, &mut b).unwrap();
//! assert_eq!(b.id, 42);
//!
//! // SDC-detection path: compare live state against the buddy's checkpoint.
//! let report = compare(&mut b, &ckpt).unwrap();
//! assert!(report.is_clean());
//!
//! // Checksum path: 8 bytes on the wire instead of the full checkpoint.
//! assert_eq!(fletcher64_of(&mut a).unwrap(), fletcher64_of(&mut b).unwrap());
//! ```

#![warn(missing_docs)]

mod api;
mod checker;
mod chunked;
mod delta;
mod error;
mod fletcher;
mod impls;
mod packer;
mod puper;
mod regions;
mod sizer;
mod unpacker;

pub use api::{
    compare, compare_windows, compare_with_policy, fletcher64_of, pack, pack_digested, pack_into,
    packed_size, unpack,
};
pub use checker::{CheckFailure, CheckReport, Checker};
pub use chunked::{
    assemble_chunks, chunk_digests, record_pack, ChunkDigester, ChunkPiece, ChunkedDigest,
    DigestingPacker, SlicePacker, DEFAULT_CHUNK_SIZE,
};
pub use delta::{apply_delta, chunk_span, diff_tables, extract_delta, DeltaPlan};
pub use error::{PupError, PupResult};
pub use fletcher::{fletcher64, Fletcher64, FletcherPuper};
pub use impls::{pup_btree_map, pup_vec};
pub use packer::Packer;
pub use puper::{CheckPolicy, Dir, Pup, Puper};
pub use regions::RegionMapper;
pub use sizer::Sizer;
pub use unpacker::Unpacker;
