//! Fused pack+digest pipeline: chunked Fletcher-64 digesting that runs
//! *while* the checkpoint bytes are being packed, instead of as a second
//! pass over the finished buffer.
//!
//! The packed payload is divided into fixed-size chunks (default 64 KiB).
//! Each chunk gets its own Fletcher-64 digest, and the per-chunk states
//! merge — via [`Fletcher64::merge`] — into the exact whole-payload digest,
//! so the fused path produces byte-identical results to packing first and
//! calling [`crate::fletcher64`] afterwards, for half the memory traffic.
//!
//! The chunk table is what makes SDC divergence *localizable*: when buddy
//! replicas disagree, comparing two chunk tables names the diverged byte
//! ranges, and the expensive field-level [`crate::Checker`] walk can be
//! restricted to just those windows instead of the whole checkpoint.
//!
//! Three producers cooperate:
//!
//! * [`ChunkDigester`] — the splitting engine: feed it payload bytes at a
//!   known global offset and it emits per-chunk [`ChunkPiece`] states.
//! * [`DigestingPacker`] — a [`Puper`] that packs into a growable buffer
//!   and digests in the same pass (the single-producer path).
//! * [`SlicePacker`] — a [`Puper`] that packs into a caller-provided
//!   `&mut [u8]` at a known global offset, optionally digesting as it goes
//!   (the parallel path: workers write disjoint sub-slices of one payload
//!   allocation, then their pieces are [`assemble_chunks`]-merged in order).

use crate::error::{PupError, PupResult};
use crate::fletcher::Fletcher64;
use crate::puper::{Dir, Puper};

/// Default payload chunk size for per-chunk digests (64 KiB).
///
/// Must be a multiple of 4 so every chunk boundary is 32-bit-word aligned,
/// which is what makes per-chunk Fletcher states mergeable.
pub const DEFAULT_CHUNK_SIZE: usize = 64 * 1024;

/// The in-progress Fletcher state of one chunk's bytes (or a contiguous
/// piece of them, when a chunk spans two workers' segments).
#[derive(Debug, Clone)]
pub struct ChunkPiece {
    /// Index of the chunk this piece belongs to (`offset / chunk_size`).
    pub chunk: usize,
    /// Fletcher state over just this piece's bytes.
    pub state: Fletcher64,
}

/// Splits a byte stream at chunk boundaries, producing one [`ChunkPiece`]
/// per chunk touched.
///
/// Constructed at a global payload offset so parallel workers, each packing
/// a different segment of the same payload, agree on where chunks fall.
#[derive(Debug)]
pub struct ChunkDigester {
    chunk_size: usize,
    chunk: usize,
    filled: usize,
    piece: Fletcher64,
    pieces: Vec<ChunkPiece>,
}

impl ChunkDigester {
    /// A digester for bytes starting at `global_offset` within the payload.
    ///
    /// `chunk_size` must be a positive multiple of 4 (see
    /// [`DEFAULT_CHUNK_SIZE`]); `global_offset` must be a multiple of 4 so
    /// this worker's pieces stay mergeable with its predecessors'.
    pub fn new(chunk_size: usize, global_offset: usize) -> Self {
        assert!(
            chunk_size > 0 && chunk_size.is_multiple_of(4),
            "chunk_size must be a positive multiple of 4"
        );
        assert!(
            global_offset.is_multiple_of(4),
            "global_offset must be 4-byte aligned"
        );
        Self {
            chunk_size,
            chunk: global_offset / chunk_size,
            filled: global_offset % chunk_size,
            piece: Fletcher64::new(),
            pieces: Vec::new(),
        }
    }

    /// Feed the next run of payload bytes.
    pub fn feed(&mut self, mut bytes: &[u8]) {
        while !bytes.is_empty() {
            let room = self.chunk_size - self.filled;
            let take = room.min(bytes.len());
            self.piece.update(&bytes[..take]);
            self.filled += take;
            bytes = &bytes[take..];
            if self.filled == self.chunk_size {
                let state = std::mem::take(&mut self.piece);
                self.pieces.push(ChunkPiece {
                    chunk: self.chunk,
                    state,
                });
                self.chunk += 1;
                self.filled = 0;
            }
        }
    }

    /// Feed the next run of payload bytes while copying them into `dst`
    /// (same length) in the same register pass — the fused pipeline's
    /// copy+digest kernel (see [`Fletcher64::update_copying`]), split at
    /// chunk boundaries exactly like [`ChunkDigester::feed`].
    pub fn feed_copy(&mut self, src: &[u8], dst: &mut [u8]) {
        assert_eq!(
            src.len(),
            dst.len(),
            "copy-digest source/destination length mismatch"
        );
        let mut off = 0;
        while off < src.len() {
            let room = self.chunk_size - self.filled;
            let take = room.min(src.len() - off);
            self.piece
                .update_copying(&src[off..off + take], &mut dst[off..off + take]);
            self.filled += take;
            off += take;
            if self.filled == self.chunk_size {
                let state = std::mem::take(&mut self.piece);
                self.pieces.push(ChunkPiece {
                    chunk: self.chunk,
                    state,
                });
                self.chunk += 1;
                self.filled = 0;
            }
        }
    }

    /// Flush the trailing partial chunk (if any) and return all pieces in
    /// payload order.
    pub fn finish(mut self) -> Vec<ChunkPiece> {
        if !self.piece.is_empty() {
            let state = std::mem::take(&mut self.piece);
            self.pieces.push(ChunkPiece {
                chunk: self.chunk,
                state,
            });
        }
        self.pieces
    }
}

/// A payload's complete chunked digest: the per-chunk table plus the
/// whole-payload digest they merge into.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkedDigest {
    /// Chunk size the table was computed with.
    pub chunk_size: usize,
    /// One Fletcher-64 digest per `chunk_size` run of payload bytes (the
    /// last chunk may be short).
    pub chunk_digests: Vec<u64>,
    /// Digest of the entire payload — identical to
    /// [`crate::fletcher64`] over the same bytes.
    pub digest: u64,
}

/// Merge an ordered sequence of [`ChunkPiece`]s — e.g. the concatenation of
/// every worker's [`SlicePacker::finish`] output, in payload order — into
/// the chunk digest table and whole-payload digest.
///
/// Pieces of the same chunk must be adjacent and in offset order; chunk
/// indices must be contiguous from 0 (the natural result of workers
/// covering a payload left to right).
pub fn assemble_chunks(
    chunk_size: usize,
    pieces: impl IntoIterator<Item = ChunkPiece>,
) -> ChunkedDigest {
    let mut chunk_digests = Vec::new();
    let mut total = Fletcher64::new();
    let mut current: Option<(usize, Fletcher64)> = None;
    for piece in pieces {
        match &mut current {
            Some((idx, state)) if *idx == piece.chunk => state.merge(&piece.state),
            _ => {
                if let Some((idx, state)) = current.take() {
                    debug_assert_eq!(idx, chunk_digests.len(), "chunk indices must be contiguous");
                    chunk_digests.push(state.digest());
                    total.merge(&state);
                }
                current = Some((piece.chunk, piece.state));
            }
        }
    }
    if let Some((idx, state)) = current {
        debug_assert_eq!(idx, chunk_digests.len(), "chunk indices must be contiguous");
        chunk_digests.push(state.digest());
        total.merge(&state);
    }
    ChunkedDigest {
        chunk_size,
        chunk_digests,
        digest: total.digest(),
    }
}

/// Chunk digest table of an already-materialized buffer (the two-pass
/// reference the fused packers are verified against, and the recovery path
/// for payloads received without a table).
pub fn chunk_digests(bytes: &[u8], chunk_size: usize) -> ChunkedDigest {
    let mut d = ChunkDigester::new(chunk_size, 0);
    d.feed(bytes);
    assemble_chunks(chunk_size, d.finish())
}

/// Flight-recorder bookkeeping for one completed pack through the fused
/// pipeline: emits a `checkpoint_pack` event attributed to `node` carrying
/// the deterministic pack shape (bytes, chunk count, chunk size), and feeds
/// the wall-clock latency `wall_secs` into the `acr_pack_seconds` histogram
/// plus the pack volume counters.
///
/// The latency goes **only** into the metrics registry — never into the
/// event — so virtual-mode event logs stay byte-identical across runs.
pub fn record_pack(
    rec: &acr_obs::Recorder,
    node: u32,
    digest: &ChunkedDigest,
    payload_bytes: usize,
    wall_secs: f64,
) {
    if !rec.is_enabled() {
        return;
    }
    rec.emit(
        node,
        acr_obs::EventKind::CheckpointPack {
            bytes: payload_bytes as u64,
            chunks: digest.chunk_digests.len() as u32,
            chunk_size: digest.chunk_size as u32,
        },
    );
    rec.inc_counter("acr_pack_total", 1);
    rec.inc_counter("acr_pack_bytes_total", payload_bytes as u64);
    rec.inc_counter("acr_pack_chunks_total", digest.chunk_digests.len() as u64);
    rec.observe("acr_pack_seconds", wall_secs);
}

macro_rules! fused_pack_scalar {
    ($name:ident, $ty:ty) => {
        fn $name(&mut self, v: &mut $ty) -> PupResult {
            self.put(&v.to_le_bytes())
        }
    };
}

macro_rules! fused_pack_slice {
    ($name:ident, $ty:ty) => {
        fn $name(&mut self, v: &mut [$ty]) -> PupResult {
            if cfg!(target_endian = "little") {
                // SAFETY: numeric primitives have no padding or invalid bit
                // patterns; reinterpreting their storage as bytes is sound.
                let bytes = unsafe {
                    std::slice::from_raw_parts(v.as_ptr() as *const u8, std::mem::size_of_val(v))
                };
                self.put(bytes)
            } else {
                for x in v {
                    self.put(&x.to_le_bytes())?;
                }
                Ok(())
            }
        }
    };
}

macro_rules! fused_puper_impl {
    () => {
        fused_pack_scalar!(pup_u8, u8);
        fused_pack_scalar!(pup_u16, u16);
        fused_pack_scalar!(pup_u32, u32);
        fused_pack_scalar!(pup_u64, u64);
        fused_pack_scalar!(pup_i8, i8);
        fused_pack_scalar!(pup_i16, i16);
        fused_pack_scalar!(pup_i32, i32);
        fused_pack_scalar!(pup_i64, i64);
        fused_pack_scalar!(pup_f32, f32);
        fused_pack_scalar!(pup_f64, f64);

        fn pup_bool(&mut self, v: &mut bool) -> PupResult {
            self.put(&[*v as u8])
        }

        fn pup_usize(&mut self, v: &mut usize) -> PupResult {
            self.put(&(*v as u64).to_le_bytes())
        }

        fn pup_len(&mut self, live: usize) -> PupResult<usize> {
            self.put(&(live as u64).to_le_bytes())?;
            Ok(live)
        }

        fused_pack_slice!(pup_u8_slice, u8);
        fused_pack_slice!(pup_u16_slice, u16);
        fused_pack_slice!(pup_u32_slice, u32);
        fused_pack_slice!(pup_u64_slice, u64);
        fused_pack_slice!(pup_i32_slice, i32);
        fused_pack_slice!(pup_i64_slice, i64);
        fused_pack_slice!(pup_f32_slice, f32);
        fused_pack_slice!(pup_f64_slice, f64);
    };
}

/// A [`Puper`] that packs into a growable buffer and digests the bytes in
/// the same pass — the checkpoint pipeline's single-producer fast path.
///
/// Equivalent to running [`crate::Packer`] and then [`crate::fletcher64`]
/// over the result, but the payload crosses the memory bus once instead of
/// twice: bytes are digested while still hot in cache from being written.
#[derive(Debug)]
pub struct DigestingPacker {
    buf: Vec<u8>,
    digester: ChunkDigester,
}

impl DigestingPacker {
    /// A fused packer with [`DEFAULT_CHUNK_SIZE`] chunks.
    pub fn new() -> Self {
        Self::with_chunk_size(DEFAULT_CHUNK_SIZE)
    }

    /// A fused packer with an explicit chunk size (multiple of 4).
    pub fn with_chunk_size(chunk_size: usize) -> Self {
        Self {
            buf: Vec::new(),
            digester: ChunkDigester::new(chunk_size, 0),
        }
    }

    /// Pre-reserve `cap` buffer bytes (pair with [`crate::Sizer`]).
    pub fn with_capacity(cap: usize, chunk_size: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
            digester: ChunkDigester::new(chunk_size, 0),
        }
    }

    /// Recycle a previous checkpoint's payload buffer: `buf` is cleared
    /// but its allocation is kept, so a steady-state checkpoint loop pays
    /// no allocator round-trip (or first-touch page faults) per epoch.
    pub fn reusing(mut buf: Vec<u8>, chunk_size: usize) -> Self {
        buf.clear();
        Self {
            buf,
            digester: ChunkDigester::new(chunk_size, 0),
        }
    }

    /// Finish: the packed payload and its chunked digest.
    pub fn finish(self) -> (Vec<u8>, ChunkedDigest) {
        let chunk_size = self.digester.chunk_size;
        (
            self.buf,
            assemble_chunks(chunk_size, self.digester.finish()),
        )
    }

    #[inline]
    fn put(&mut self, bytes: &[u8]) -> PupResult {
        // Copy and digest in one register pass: the payload crosses the
        // memory bus once in each direction instead of copy-then-re-read.
        self.buf.reserve(bytes.len());
        let len = self.buf.len();
        // SAFETY: `reserve` guarantees `bytes.len()` bytes of spare
        // capacity; `feed_copy` writes every one of them (it only writes,
        // never reads, its destination), after which `set_len` exposes
        // exactly the initialized prefix.
        unsafe {
            let spare = std::slice::from_raw_parts_mut(self.buf.as_mut_ptr().add(len), bytes.len());
            self.digester.feed_copy(bytes, spare);
            self.buf.set_len(len + bytes.len());
        }
        Ok(())
    }
}

impl Default for DigestingPacker {
    fn default() -> Self {
        Self::new()
    }
}

impl Puper for DigestingPacker {
    fn dir(&self) -> Dir {
        Dir::Packing
    }

    fn offset(&self) -> usize {
        self.buf.len()
    }

    fused_puper_impl!();
}

/// A [`Puper`] that packs into a caller-provided slice — the unit of work
/// of the parallel checkpoint pipeline.
///
/// The runtime sizes every task, allocates one payload buffer, splits it
/// into disjoint `&mut [u8]` segments, and hands each worker thread a
/// `SlicePacker` over its segment. With [`SlicePacker::digesting`] the
/// worker also computes the segment's chunk-piece Fletcher states in the
/// same pass; [`assemble_chunks`] then merges all workers' pieces into the
/// payload's chunk table and total digest without re-reading any payload
/// byte.
#[derive(Debug)]
pub struct SlicePacker<'a> {
    buf: &'a mut [u8],
    pos: usize,
    digester: Option<ChunkDigester>,
}

impl<'a> SlicePacker<'a> {
    /// Pack into `buf` without digesting.
    pub fn new(buf: &'a mut [u8]) -> Self {
        Self {
            buf,
            pos: 0,
            digester: None,
        }
    }

    /// Pack into `buf` and digest in the same pass. `global_offset` is
    /// where `buf` starts within the whole payload (multiple of 4, so the
    /// produced pieces merge cleanly with the preceding segment's).
    pub fn digesting(buf: &'a mut [u8], chunk_size: usize, global_offset: usize) -> Self {
        Self {
            buf,
            pos: 0,
            digester: Some(ChunkDigester::new(chunk_size, global_offset)),
        }
    }

    /// Bytes written so far.
    pub fn written(&self) -> usize {
        self.pos
    }

    /// Zero-fill the remainder of the segment (alignment padding between
    /// tasks), keeping the digest in sync with the buffer contents.
    pub fn pad_to_end(&mut self) {
        let rest = &mut self.buf[self.pos..];
        rest.fill(0);
        if let Some(d) = &mut self.digester {
            d.feed(rest);
        }
        self.pos = self.buf.len();
    }

    /// Finish: bytes written plus this segment's chunk pieces (empty when
    /// constructed with [`SlicePacker::new`]).
    pub fn finish(self) -> (usize, Vec<ChunkPiece>) {
        (
            self.pos,
            self.digester.map(ChunkDigester::finish).unwrap_or_default(),
        )
    }

    #[inline]
    fn put(&mut self, bytes: &[u8]) -> PupResult {
        let remaining = self.buf.len() - self.pos;
        if remaining < bytes.len() {
            // The segment was sized by `Sizer`; overrunning it means the
            // object's `pup` is direction-dependent (a structural bug).
            return Err(PupError::BufferUnderrun {
                needed: bytes.len(),
                remaining,
                at: self.pos,
            });
        }
        let dst = &mut self.buf[self.pos..self.pos + bytes.len()];
        match &mut self.digester {
            // One register pass: copy and digest together (see
            // [`ChunkDigester::feed_copy`]).
            Some(d) => d.feed_copy(bytes, dst),
            None => dst.copy_from_slice(bytes),
        }
        self.pos += bytes.len();
        Ok(())
    }
}

impl Puper for SlicePacker<'_> {
    fn dir(&self) -> Dir {
        Dir::Packing
    }

    fn offset(&self) -> usize {
        self.pos
    }

    fused_puper_impl!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fletcher::fletcher64;
    use crate::packer::Packer;
    use crate::puper::Pup;

    struct Grid {
        cells: Vec<f64>,
        step: u64,
        flag: bool,
    }

    impl Pup for Grid {
        fn pup(&mut self, p: &mut dyn Puper) -> PupResult {
            let n = p.pup_len(self.cells.len())?;
            self.cells.resize(n, 0.0);
            p.pup_f64_slice(&mut self.cells)?;
            p.pup_u64(&mut self.step)?;
            p.pup_bool(&mut self.flag)
        }
    }

    fn grid(n: usize) -> Grid {
        Grid {
            cells: (0..n).map(|i| i as f64 * 0.5 - 3.0).collect(),
            step: 7,
            flag: true,
        }
    }

    #[test]
    fn fused_matches_pack_then_digest() {
        // Payload large enough to span many chunks with a partial tail.
        let mut g = grid(40_000); // ~320 KB
        let mut packer = Packer::new();
        g.pup(&mut packer).unwrap();
        let reference = packer.finish();

        let mut fused = DigestingPacker::new();
        g.pup(&mut fused).unwrap();
        let (bytes, digest) = fused.finish();

        assert_eq!(bytes, reference);
        assert_eq!(digest.digest, fletcher64(&reference));
        assert_eq!(digest.chunk_size, DEFAULT_CHUNK_SIZE);
        let expect_chunks = reference.len().div_ceil(DEFAULT_CHUNK_SIZE);
        assert_eq!(digest.chunk_digests.len(), expect_chunks);
        assert_eq!(digest, chunk_digests(&reference, DEFAULT_CHUNK_SIZE));
    }

    #[test]
    fn per_chunk_digests_localize_a_flip() {
        let mut g = grid(40_000);
        let mut fused = DigestingPacker::new();
        g.pup(&mut fused).unwrap();
        let (mut bytes, clean) = fused.finish();

        let victim = 2 * DEFAULT_CHUNK_SIZE + 12_345;
        bytes[victim] ^= 0x10;
        let dirty = chunk_digests(&bytes, DEFAULT_CHUNK_SIZE);

        assert_ne!(dirty.digest, clean.digest);
        let diff: Vec<usize> = clean
            .chunk_digests
            .iter()
            .zip(&dirty.chunk_digests)
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(diff, vec![2], "exactly the chunk holding the flipped byte");
    }

    #[test]
    fn slice_packers_reproduce_single_producer_result() {
        // Three "tasks" packed into disjoint segments of one buffer, each
        // segment 8-byte aligned, exactly like the runtime's parallel path.
        let mut tasks = [grid(9_000), grid(21_000), grid(5_000)];
        let sizes: Vec<usize> = tasks
            .iter_mut()
            .map(|t| {
                let mut s = crate::Sizer::new();
                t.pup(&mut s).unwrap();
                s.bytes().div_ceil(8) * 8
            })
            .collect();
        let total: usize = sizes.iter().sum();
        let mut buf = vec![0u8; total];

        let mut pieces = Vec::new();
        let mut rest = buf.as_mut_slice();
        let mut offset = 0usize;
        for (task, &size) in tasks.iter_mut().zip(&sizes) {
            let (seg, tail) = rest.split_at_mut(size);
            rest = tail;
            let mut sp = SlicePacker::digesting(seg, DEFAULT_CHUNK_SIZE, offset);
            task.pup(&mut sp).unwrap();
            sp.pad_to_end();
            let (written, mut segment_pieces) = sp.finish();
            assert_eq!(written, size);
            pieces.append(&mut segment_pieces);
            offset += size;
        }
        let assembled = assemble_chunks(DEFAULT_CHUNK_SIZE, pieces);

        assert_eq!(assembled, chunk_digests(&buf, DEFAULT_CHUNK_SIZE));
        assert_eq!(assembled.digest, fletcher64(&buf));
    }

    #[test]
    fn slice_packer_overrun_is_structural() {
        let mut buf = [0u8; 4];
        let mut sp = SlicePacker::new(&mut buf);
        let err = sp.pup_u64(&mut { 1u64 }).unwrap_err();
        assert!(matches!(
            err,
            PupError::BufferUnderrun {
                needed: 8,
                remaining: 4,
                ..
            }
        ));
    }

    #[test]
    fn small_payload_has_single_chunk() {
        let mut g = grid(4);
        let mut fused = DigestingPacker::new();
        g.pup(&mut fused).unwrap();
        let (bytes, digest) = fused.finish();
        assert_eq!(digest.chunk_digests.len(), 1);
        assert_eq!(digest.chunk_digests[0], fletcher64(&bytes));
        assert_eq!(digest.digest, fletcher64(&bytes));
    }

    #[test]
    fn empty_payload_has_empty_table() {
        let d = chunk_digests(&[], DEFAULT_CHUNK_SIZE);
        assert!(d.chunk_digests.is_empty());
        assert_eq!(d.digest, fletcher64(&[]));
    }

    #[test]
    #[should_panic(expected = "multiple of 4")]
    fn unaligned_chunk_size_rejected() {
        ChunkDigester::new(10, 0);
    }

    #[test]
    fn record_pack_emits_event_and_metrics() {
        let rec = acr_obs::Recorder::new(Default::default(), 1, std::sync::Arc::new(|| 2.5));
        let d = chunk_digests(&[7u8; 100], 16);
        record_pack(&rec, 0, &d, 100, 0.002);
        let events = rec.drain();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].t, 2.5);
        assert!(matches!(
            events[0].kind,
            acr_obs::EventKind::CheckpointPack {
                bytes: 100,
                chunks: 7,
                chunk_size: 16
            }
        ));
        assert_eq!(rec.counter("acr_pack_bytes_total").get(), 100);
        assert_eq!(rec.histogram("acr_pack_seconds").count(), 1);
        // The wall-clock latency lives only in the histogram, never in the
        // serialized event.
        assert!(!events[0].to_json().contains("0.002"));
    }
}
