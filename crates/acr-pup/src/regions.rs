//! [`RegionMapper`]: records where floating-point *user data* lives inside
//! an object's packed representation.
//!
//! The paper's fault injector flips "a randomly selected bit in the user
//! data that will be checkpointed" (§6.1) — the computational arrays, not
//! the runtime's counters (corrupting a loop index crashes or hangs rather
//! than staying *silent*). The region map identifies exactly those spans so
//! an injector can corrupt a bit that the application will silently carry.

use crate::error::PupResult;
use crate::puper::{Dir, Puper};

/// A [`Puper`] that walks an object like a [`crate::Sizer`] but records the
/// byte spans occupied by `f32`/`f64` scalars and slices.
#[derive(Debug, Default)]
pub struct RegionMapper {
    offset: usize,
    regions: Vec<(usize, usize)>,
}

impl RegionMapper {
    /// A fresh mapper.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded `(offset, len)` spans of floating-point data.
    pub fn regions(&self) -> &[(usize, usize)] {
        &self.regions
    }

    /// Total bytes of floating-point user data.
    pub fn float_bytes(&self) -> usize {
        self.regions.iter().map(|&(_, len)| len).sum()
    }

    /// Map the `n`-th floating-point byte (0-based, counted across all
    /// regions) to its absolute offset in the packed stream.
    pub fn nth_float_byte(&self, mut n: usize) -> Option<usize> {
        for &(off, len) in &self.regions {
            if n < len {
                return Some(off + n);
            }
            n -= len;
        }
        None
    }

    fn skip(&mut self, n: usize) -> PupResult {
        self.offset += n;
        Ok(())
    }

    fn float(&mut self, n: usize) -> PupResult {
        // Merge adjacent float regions.
        if let Some(last) = self.regions.last_mut() {
            if last.0 + last.1 == self.offset {
                last.1 += n;
                self.offset += n;
                return Ok(());
            }
        }
        self.regions.push((self.offset, n));
        self.offset += n;
        Ok(())
    }
}

macro_rules! map_skip {
    ($name:ident, $ty:ty) => {
        fn $name(&mut self, _v: &mut $ty) -> PupResult {
            self.skip(std::mem::size_of::<$ty>())
        }
    };
}

macro_rules! map_skip_slice {
    ($name:ident, $ty:ty) => {
        fn $name(&mut self, v: &mut [$ty]) -> PupResult {
            self.skip(std::mem::size_of::<$ty>() * v.len())
        }
    };
}

impl Puper for RegionMapper {
    fn dir(&self) -> Dir {
        Dir::Sizing
    }

    fn offset(&self) -> usize {
        self.offset
    }

    map_skip!(pup_u8, u8);
    map_skip!(pup_u16, u16);
    map_skip!(pup_u32, u32);
    map_skip!(pup_u64, u64);
    map_skip!(pup_i8, i8);
    map_skip!(pup_i16, i16);
    map_skip!(pup_i32, i32);
    map_skip!(pup_i64, i64);

    fn pup_f32(&mut self, _v: &mut f32) -> PupResult {
        self.float(4)
    }

    fn pup_f64(&mut self, _v: &mut f64) -> PupResult {
        self.float(8)
    }

    fn pup_bool(&mut self, _v: &mut bool) -> PupResult {
        self.skip(1)
    }

    fn pup_usize(&mut self, _v: &mut usize) -> PupResult {
        self.skip(8)
    }

    fn pup_len(&mut self, live: usize) -> PupResult<usize> {
        self.skip(8)?;
        Ok(live)
    }

    map_skip_slice!(pup_u8_slice, u8);
    map_skip_slice!(pup_u16_slice, u16);
    map_skip_slice!(pup_u32_slice, u32);
    map_skip_slice!(pup_u64_slice, u64);
    map_skip_slice!(pup_i32_slice, i32);
    map_skip_slice!(pup_i64_slice, i64);

    fn pup_f32_slice(&mut self, v: &mut [f32]) -> PupResult {
        self.float(4 * v.len())
    }

    fn pup_f64_slice(&mut self, v: &mut [f64]) -> PupResult {
        self.float(8 * v.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::puper::Pup;

    struct S {
        header: u64,
        grid: Vec<f64>,
        count: u32,
        extra: f32,
    }

    impl Pup for S {
        fn pup(&mut self, p: &mut dyn Puper) -> PupResult {
            p.pup_u64(&mut self.header)?;
            self.grid.pup(p)?;
            p.pup_u32(&mut self.count)?;
            p.pup_f32(&mut self.extra)
        }
    }

    #[test]
    fn maps_float_regions_and_skips_counters() {
        let mut s = S {
            header: 1,
            grid: vec![0.0; 4],
            count: 2,
            extra: 1.5,
        };
        let mut m = RegionMapper::new();
        s.pup(&mut m).unwrap();
        // layout: u64(8) + len(8) + 4*f64(32) + u32(4) + f32(4)
        assert_eq!(m.offset(), 8 + 8 + 32 + 4 + 4);
        assert_eq!(m.regions(), &[(16, 32), (52, 4)]);
        assert_eq!(m.float_bytes(), 36);
    }

    #[test]
    fn nth_float_byte_spans_regions() {
        let mut s = S {
            header: 1,
            grid: vec![0.0; 2],
            count: 2,
            extra: 1.5,
        };
        let mut m = RegionMapper::new();
        s.pup(&mut m).unwrap();
        // regions: (16, 16) and (36, 4)
        assert_eq!(m.nth_float_byte(0), Some(16));
        assert_eq!(m.nth_float_byte(15), Some(31));
        assert_eq!(m.nth_float_byte(16), Some(36));
        assert_eq!(m.nth_float_byte(19), Some(39));
        assert_eq!(m.nth_float_byte(20), None);
    }

    #[test]
    fn adjacent_float_fields_merge() {
        struct Two(f64, f64, u8, f64);
        impl Pup for Two {
            fn pup(&mut self, p: &mut dyn Puper) -> PupResult {
                p.pup_f64(&mut self.0)?;
                p.pup_f64(&mut self.1)?;
                p.pup_u8(&mut self.2)?;
                p.pup_f64(&mut self.3)
            }
        }
        let mut t = Two(1.0, 2.0, 3, 4.0);
        let mut m = RegionMapper::new();
        t.pup(&mut m).unwrap();
        assert_eq!(m.regions(), &[(0, 16), (17, 8)]);
    }

    #[test]
    fn no_floats_no_regions() {
        struct Ints(u64, Vec<u32>);
        impl Pup for Ints {
            fn pup(&mut self, p: &mut dyn Puper) -> PupResult {
                p.pup_u64(&mut self.0)?;
                self.1.pup(p)
            }
        }
        let mut i = Ints(7, vec![1, 2]);
        let mut m = RegionMapper::new();
        i.pup(&mut m).unwrap();
        assert_eq!(m.float_bytes(), 0);
        assert_eq!(m.nth_float_byte(0), None);
    }
}
