//! [`Packer`]: serializes an object's state into a checkpoint buffer.

use crate::error::PupResult;
use crate::puper::{Dir, Puper};

/// A [`Puper`] that appends the traversed state to a `Vec<u8>`, producing the
/// *local checkpoint* of §2.1.
///
/// All scalars are emitted little-endian. Contiguous numeric slices take a
/// bulk path: on little-endian targets this compiles to a single `memcpy`,
/// which is the "single instruction required to copy the checkpoint data to a
/// buffer" the paper's §4.2 cost analysis assumes.
#[derive(Debug)]
pub struct Packer {
    buf: Vec<u8>,
}

impl Packer {
    /// Create a packer with an empty buffer.
    pub fn new() -> Self {
        Self { buf: Vec::new() }
    }

    /// Create a packer whose buffer has `cap` bytes pre-reserved (pair with
    /// [`crate::Sizer`] to avoid reallocation on the checkpoint path).
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Create a packer that appends to an existing buffer (reuse across
    /// checkpoints to avoid allocator churn).
    pub fn into_buf(buf: Vec<u8>) -> Self {
        Self { buf }
    }

    /// Finish packing and take the checkpoint bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    #[inline]
    fn put(&mut self, bytes: &[u8]) -> PupResult {
        self.buf.extend_from_slice(bytes);
        Ok(())
    }
}

impl Default for Packer {
    fn default() -> Self {
        Self::new()
    }
}

macro_rules! pack_scalar {
    ($name:ident, $ty:ty) => {
        fn $name(&mut self, v: &mut $ty) -> PupResult {
            self.put(&v.to_le_bytes())
        }
    };
}

macro_rules! pack_slice {
    ($name:ident, $ty:ty) => {
        fn $name(&mut self, v: &mut [$ty]) -> PupResult {
            if cfg!(target_endian = "little") {
                // SAFETY: numeric primitives have no padding or invalid bit
                // patterns; reinterpreting their storage as bytes is sound.
                let bytes = unsafe {
                    std::slice::from_raw_parts(v.as_ptr() as *const u8, std::mem::size_of_val(v))
                };
                self.put(bytes)
            } else {
                self.buf.reserve(std::mem::size_of_val(v));
                for x in v {
                    self.put(&x.to_le_bytes())?;
                }
                Ok(())
            }
        }
    };
}

impl Puper for Packer {
    fn dir(&self) -> Dir {
        Dir::Packing
    }

    fn offset(&self) -> usize {
        self.buf.len()
    }

    pack_scalar!(pup_u8, u8);
    pack_scalar!(pup_u16, u16);
    pack_scalar!(pup_u32, u32);
    pack_scalar!(pup_u64, u64);
    pack_scalar!(pup_i8, i8);
    pack_scalar!(pup_i16, i16);
    pack_scalar!(pup_i32, i32);
    pack_scalar!(pup_i64, i64);
    pack_scalar!(pup_f32, f32);
    pack_scalar!(pup_f64, f64);

    fn pup_bool(&mut self, v: &mut bool) -> PupResult {
        self.put(&[*v as u8])
    }

    fn pup_usize(&mut self, v: &mut usize) -> PupResult {
        self.put(&(*v as u64).to_le_bytes())
    }

    fn pup_len(&mut self, live: usize) -> PupResult<usize> {
        self.put(&(live as u64).to_le_bytes())?;
        Ok(live)
    }

    pack_slice!(pup_u8_slice, u8);
    pack_slice!(pup_u16_slice, u16);
    pack_slice!(pup_u32_slice, u32);
    pack_slice!(pup_u64_slice, u64);
    pack_slice!(pup_i32_slice, i32);
    pack_slice!(pup_i64_slice, i64);
    pack_slice!(pup_f32_slice, f32);
    pack_slice!(pup_f64_slice, f64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_are_little_endian() {
        let mut p = Packer::new();
        p.pup_u32(&mut { 0x0102_0304 }).unwrap();
        p.pup_bool(&mut { true }).unwrap();
        p.pup_usize(&mut { 7usize }).unwrap();
        let b = p.finish();
        assert_eq!(&b[..4], &[0x04, 0x03, 0x02, 0x01]);
        assert_eq!(b[4], 1);
        assert_eq!(&b[5..13], &7u64.to_le_bytes());
    }

    #[test]
    fn slice_bulk_path_matches_scalar_path() {
        let mut vals = [1.5f64, -2.25, 1e300];
        let mut bulk = Packer::new();
        bulk.pup_f64_slice(&mut vals).unwrap();
        let mut scalar = Packer::new();
        for v in &mut vals {
            scalar.pup_f64(v).unwrap();
        }
        assert_eq!(bulk.finish(), scalar.finish());
    }

    #[test]
    fn with_capacity_does_not_reallocate() {
        let mut p = Packer::with_capacity(24);
        let cap_ptr = p.buf.as_ptr();
        let mut data = [0u8; 24];
        p.pup_u8_slice(&mut data).unwrap();
        assert_eq!(p.buf.as_ptr(), cap_ptr);
        assert_eq!(p.finish().len(), 24);
    }

    #[test]
    fn into_buf_appends() {
        let mut p = Packer::into_buf(vec![0xAA]);
        p.pup_u8(&mut { 0xBB }).unwrap();
        assert_eq!(p.finish(), vec![0xAA, 0xBB]);
    }
}
