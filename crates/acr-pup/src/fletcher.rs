//! Position-dependent Fletcher checksum (§4.2) and the [`FletcherPuper`]
//! that streams an object's PUP traversal through it without materializing
//! the packed bytes.
//!
//! The paper replaces full-checkpoint buddy transfers with a checksum
//! exchange: the 8-byte digest crosses the network instead of the whole
//! checkpoint, trading ~4 extra instructions per word of compute (γ) for the
//! per-byte communication cost (β); it wins whenever γ < β/4.

use crate::error::PupResult;
use crate::puper::{CheckPolicy, Dir, Puper};

/// A streaming Fletcher-64 checksum.
///
/// Processes input as 32-bit little-endian words with two running sums
/// (`s1`, `s2`) reduced modulo 2³²−1. Because `s2` accumulates `s1`, the
/// digest is *position-dependent*: swapping two words changes it, unlike a
/// plain additive checksum. That property is what lets buddy nodes detect a
/// corrupted-but-rearranged checkpoint (§4.2 cites Fletcher's algorithm for
/// exactly this reason).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fletcher64 {
    s1: u64,
    s2: u64,
    /// Partial trailing word (input need not be 4-byte aligned).
    partial: u32,
    partial_len: u32,
    len: u64,
}

const MOD: u64 = 0xFFFF_FFFF; // 2^32 - 1

/// Bytes per lane step: 4 lanes × one 32-bit word each.
const STEP: usize = 16;
/// Lane steps per deferred-modulo window (128 KiB): keeps every
/// intermediate below u64 overflow (l1 < 2^45, l2 < 2^57 — see
/// [`Fletcher64::update`]).
const WINDOW_STEPS: usize = 8192;

/// One 16-byte lane step: lane `j` absorbs word `j` with the add-only
/// prefix pattern (`l2 += l1`) that the compiler keeps in SIMD registers.
#[inline(always)]
fn lane_step(step: &[u8], l1: &mut [u64; 4], l2: &mut [u64; 4]) {
    for j in 0..4 {
        let w = u32::from_le_bytes(step[4 * j..4 * j + 4].try_into().expect("lane step")) as u64;
        l1[j] += w;
        l2[j] += l1[j];
    }
}

/// Lane sums of one window (length a multiple of [`STEP`]).
#[inline(always)]
fn lane_window(src: &[u8]) -> ([u64; 4], [u64; 4]) {
    let mut l1 = [0u64; 4];
    let mut l2 = [0u64; 4];
    for step in src.chunks_exact(STEP) {
        lane_step(step, &mut l1, &mut l2);
    }
    (l1, l2)
}

/// Lane sums of one window, simultaneously copying it into `dst` in the
/// same register pass — the bytes cross the memory bus once in each
/// direction with the digest riding along, instead of a copy pass plus a
/// digest read pass.
#[inline(always)]
fn lane_window_copy(src: &[u8], dst: &mut [u8]) -> ([u64; 4], [u64; 4]) {
    let mut l1 = [0u64; 4];
    let mut l2 = [0u64; 4];
    for (step, out) in src.chunks_exact(STEP).zip(dst.chunks_exact_mut(STEP)) {
        out.copy_from_slice(step);
        lane_step(step, &mut l1, &mut l2);
    }
    (l1, l2)
}

impl Default for Fletcher64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fletcher64 {
    /// A fresh checksum state.
    pub fn new() -> Self {
        Self {
            s1: 0,
            s2: 0,
            partial: 0,
            partial_len: 0,
            len: 0,
        }
    }

    /// Feed bytes into the checksum.
    pub fn update(&mut self, mut bytes: &[u8]) {
        self.len += bytes.len() as u64;

        // Complete a pending partial word first.
        while self.partial_len != 0 && !bytes.is_empty() {
            self.partial |= (bytes[0] as u32) << (8 * self.partial_len);
            self.partial_len += 1;
            bytes = &bytes[1..];
            if self.partial_len == 4 {
                self.absorb(self.partial);
                self.partial = 0;
                self.partial_len = 0;
            }
        }

        // 4-lane add-only kernel: lane j accumulates words 4k+j with the
        // prefix pattern `l2 += l1` each 16-byte step, which the compiler
        // keeps in two SIMD registers (no per-word multiply, unlike the
        // coefficient form). The true weighted sum is recovered once per
        // window: appending M words to state (s1, s2) gives
        //   s2' = s2 + M·s1 + Σ (M−i)·wᵢ
        // and with i = 4k + j, M−i = 4(K−k) − j, so
        //   Σ (M−i)·wᵢ = 4·Σⱼ l2[j] − Σⱼ j·l1[j].
        // The modulo stays deferred: within an 8192-step (128 KiB) window,
        // l1 < 2^45 and l2 < 2^57, so every intermediate fits u64.
        while bytes.len() >= STEP {
            let take = (bytes.len() / STEP).min(WINDOW_STEPS) * STEP;
            let (window, rest) = bytes.split_at(take);
            let (l1, l2) = lane_window(window);
            self.apply_window(take, l1, l2);
            bytes = rest;
        }
        self.tail(bytes);
    }

    /// Feed bytes while copying them into `dst` (same length) in the same
    /// register pass: after the call, `dst` holds an exact copy of `src`
    /// and the checksum state equals what [`Fletcher64::update`] of `src`
    /// would have produced — for one read of `src` and one write of `dst`,
    /// with no separate digest read pass. This is the fused checkpoint
    /// pipeline's inner kernel.
    pub fn update_copying(&mut self, src: &[u8], dst: &mut [u8]) {
        assert_eq!(
            src.len(),
            dst.len(),
            "copy-digest source/destination length mismatch"
        );
        let mut off = 0;
        // Complete a pending partial word byte-wise (copying as we go).
        while self.partial_len != 0 && off < src.len() {
            dst[off] = src[off];
            self.partial |= (src[off] as u32) << (8 * self.partial_len);
            self.partial_len += 1;
            self.len += 1;
            off += 1;
            if self.partial_len == 4 {
                self.absorb(self.partial);
                self.partial = 0;
                self.partial_len = 0;
            }
        }
        self.len += (src.len() - off) as u64;
        while src.len() - off >= STEP {
            let take = ((src.len() - off) / STEP).min(WINDOW_STEPS) * STEP;
            let (l1, l2) = lane_window_copy(&src[off..off + take], &mut dst[off..off + take]);
            self.apply_window(take, l1, l2);
            off += take;
        }
        dst[off..].copy_from_slice(&src[off..]);
        self.tail(&src[off..]);
    }

    /// Fold one window's lane sums into the running state (see
    /// [`Fletcher64::update`] for the algebra).
    #[inline]
    fn apply_window(&mut self, window_bytes: usize, l1: [u64; 4], l2: [u64; 4]) {
        let m_words = (window_bytes / 4) as u64;
        let sum: u64 = l1.iter().sum();
        let weighted = 4 * l2.iter().sum::<u64>() - (l1[1] + 2 * l1[2] + 3 * l1[3]);
        self.s2 += m_words * self.s1 + weighted;
        self.s1 += sum;
        self.reduce();
    }

    /// Absorb a sub-step tail: whole words then a pending partial word.
    fn tail(&mut self, bytes: &[u8]) {
        debug_assert!(bytes.len() < STEP);
        let mut chunks = bytes.chunks_exact(4);
        for chunk in &mut chunks {
            let w = u32::from_le_bytes(chunk.try_into().expect("chunks_exact")) as u64;
            self.s1 += w;
            self.s2 += self.s1;
        }
        self.reduce();

        for &b in chunks.remainder() {
            self.partial |= (b as u32) << (8 * self.partial_len);
            self.partial_len += 1;
        }
    }

    #[inline]
    fn absorb(&mut self, w: u32) {
        self.s1 += w as u64;
        self.s2 += self.s1;
        self.reduce();
    }

    #[inline]
    fn reduce(&mut self) {
        self.s1 = (self.s1 & MOD) + (self.s1 >> 32);
        self.s1 = (self.s1 & MOD) + (self.s1 >> 32);
        self.s2 = (self.s2 & MOD) + (self.s2 >> 32);
        self.s2 = (self.s2 & MOD) + (self.s2 >> 32);
        if self.s1 >= MOD {
            self.s1 -= MOD;
        }
        if self.s2 >= MOD {
            self.s2 -= MOD;
        }
    }

    /// Finalize: a trailing partial word is zero-padded, and the total input
    /// length is mixed in so that streams differing only by trailing zero
    /// bytes do not collide.
    pub fn digest(&self) -> u64 {
        let mut f = *self;
        if f.partial_len != 0 {
            f.absorb(f.partial);
            f.partial = 0;
            f.partial_len = 0;
        }
        f.absorb(f.len as u32);
        f.absorb((f.len >> 32) as u32);
        (f.s2 << 32) | f.s1
    }

    /// Append `other`'s stream onto this state without touching the bytes:
    /// after `a.merge(&b)`, `a` equals the state of one checksum fed
    /// `concat(bytes_a, bytes_b)`.
    ///
    /// Fletcher-64 is linear enough for this to be O(1): with `m` complete
    /// words in `b`, `s1 ← s1ₐ + s1ᵦ` and `s2 ← s2ₐ + m·s1ₐ + s2ᵦ` (mod
    /// 2³²−1), because each of `a`'s words keeps accumulating into `s2`
    /// once per subsequent word. This is what lets per-chunk digest states
    /// — computed independently, possibly on different threads — combine
    /// into the whole-payload digest.
    ///
    /// # Panics
    ///
    /// If `self` has a pending partial word (its byte length must be a
    /// multiple of 4; chunk sizes are chosen to guarantee this).
    pub fn merge(&mut self, other: &Fletcher64) {
        assert_eq!(
            self.partial_len, 0,
            "merge target must be 4-byte aligned (pending partial word)"
        );
        self.reduce();
        let mut b = *other;
        b.reduce();
        let m_words = (b.len - b.partial_len as u64) / 4;
        let cross = ((m_words % MOD) as u128 * self.s1 as u128) % MOD as u128;
        self.s1 = (self.s1 + b.s1) % MOD;
        self.s2 = (self.s2 + cross as u64 + b.s2) % MOD;
        self.partial = b.partial;
        self.partial_len = b.partial_len;
        self.len += b.len;
    }

    /// Total bytes fed so far.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether no bytes have been fed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Checksum a byte buffer in one call.
pub fn fletcher64(bytes: &[u8]) -> u64 {
    let mut f = Fletcher64::new();
    f.update(bytes);
    f.digest()
}

/// A [`Puper`] that streams the object's packed representation through a
/// [`Fletcher64`] without allocating the packed buffer.
///
/// Fields under [`CheckPolicy::Ignore`] are excluded, mirroring the
/// [`crate::Checker`]'s treatment so both detection methods honour the same
/// application policy. (Relative-tolerance regions are checksummed bitwise —
/// a checksum cannot express tolerance; applications needing tolerant
/// comparison must use full-checkpoint detection, a trade-off §4.2 accepts.)
#[derive(Debug)]
pub struct FletcherPuper {
    sum: Fletcher64,
    policies: Vec<CheckPolicy>,
    skipped: usize,
    offset: usize,
}

impl Default for FletcherPuper {
    fn default() -> Self {
        Self::new()
    }
}

impl FletcherPuper {
    /// A fresh checksumming puper.
    pub fn new() -> Self {
        Self {
            sum: Fletcher64::new(),
            policies: vec![CheckPolicy::Bitwise],
            skipped: 0,
            offset: 0,
        }
    }

    /// The digest of everything traversed so far.
    pub fn digest(&self) -> u64 {
        self.sum.digest()
    }

    /// Bytes excluded under [`CheckPolicy::Ignore`].
    pub fn bytes_skipped(&self) -> usize {
        self.skipped
    }

    fn ignoring(&self) -> bool {
        matches!(self.policies.last(), Some(CheckPolicy::Ignore))
    }

    #[inline]
    fn feed(&mut self, bytes: &[u8]) -> PupResult {
        self.offset += bytes.len();
        if self.ignoring() {
            self.skipped += bytes.len();
        } else {
            self.sum.update(bytes);
        }
        Ok(())
    }
}

macro_rules! sum_scalar {
    ($name:ident, $ty:ty) => {
        fn $name(&mut self, v: &mut $ty) -> PupResult {
            self.feed(&v.to_le_bytes())
        }
    };
}

macro_rules! sum_slice {
    ($name:ident, $ty:ty) => {
        fn $name(&mut self, v: &mut [$ty]) -> PupResult {
            if cfg!(target_endian = "little") {
                // SAFETY: numeric primitives, no padding; read-only view.
                let bytes = unsafe {
                    std::slice::from_raw_parts(v.as_ptr() as *const u8, std::mem::size_of_val(v))
                };
                self.feed(bytes)
            } else {
                for x in v {
                    self.feed(&x.to_le_bytes())?;
                }
                Ok(())
            }
        }
    };
}

impl Puper for FletcherPuper {
    fn dir(&self) -> Dir {
        Dir::Summing
    }

    fn offset(&self) -> usize {
        self.offset
    }

    sum_scalar!(pup_u8, u8);
    sum_scalar!(pup_u16, u16);
    sum_scalar!(pup_u32, u32);
    sum_scalar!(pup_u64, u64);
    sum_scalar!(pup_i8, i8);
    sum_scalar!(pup_i16, i16);
    sum_scalar!(pup_i32, i32);
    sum_scalar!(pup_i64, i64);
    sum_scalar!(pup_f32, f32);
    sum_scalar!(pup_f64, f64);

    fn pup_bool(&mut self, v: &mut bool) -> PupResult {
        self.feed(&[*v as u8])
    }

    fn pup_usize(&mut self, v: &mut usize) -> PupResult {
        self.feed(&(*v as u64).to_le_bytes())
    }

    fn pup_len(&mut self, live: usize) -> PupResult<usize> {
        // Lengths shape the stream, so they are always checksummed even
        // inside an ignored region's surroundings.
        self.offset += 8;
        self.sum.update(&(live as u64).to_le_bytes());
        Ok(live)
    }

    sum_slice!(pup_u8_slice, u8);
    sum_slice!(pup_u16_slice, u16);
    sum_slice!(pup_u32_slice, u32);
    sum_slice!(pup_u64_slice, u64);
    sum_slice!(pup_i32_slice, i32);
    sum_slice!(pup_i64_slice, i64);
    sum_slice!(pup_f32_slice, f32);
    sum_slice!(pup_f64_slice, f64);

    fn push_policy(&mut self, policy: CheckPolicy) -> PupResult {
        self.policies.push(policy);
        Ok(())
    }

    fn pop_policy(&mut self) -> PupResult {
        if self.policies.len() <= 1 {
            return Err(crate::PupError::PolicyUnderflow);
        }
        self.policies.pop();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_length_sensitive() {
        assert_eq!(fletcher64(b"hello world"), fletcher64(b"hello world"));
        assert_ne!(fletcher64(b"hello world"), fletcher64(b"hello worle"));
        assert_ne!(fletcher64(b""), fletcher64(b"\0"));
        assert_ne!(fletcher64(b"\0"), fletcher64(b"\0\0"));
    }

    #[test]
    fn position_dependent() {
        // Swap two words: an additive checksum would not notice.
        let a = [1u8, 0, 0, 0, 2, 0, 0, 0];
        let b = [2u8, 0, 0, 0, 1, 0, 0, 0];
        assert_ne!(fletcher64(&a), fletcher64(&b));
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0..10_000u32).flat_map(|x| x.to_le_bytes()).collect();
        let oneshot = fletcher64(&data);
        for split in [1, 3, 7, 4096, 9999] {
            let mut f = Fletcher64::new();
            for chunk in data.chunks(split) {
                f.update(chunk);
            }
            assert_eq!(f.digest(), oneshot, "split {split}");
        }
    }

    #[test]
    fn copying_update_matches_plain_update_and_copies() {
        let data: Vec<u8> = (0..50_000u32)
            .flat_map(|x| (x ^ 0xA5A5).to_le_bytes())
            .collect();
        let oneshot = fletcher64(&data);
        // Splits chosen to exercise partial-word carry-over between calls,
        // sub-step tails, and multi-window runs.
        for split in [1, 3, 5, 64, 4097, 150_000] {
            let mut f = Fletcher64::new();
            let mut copy = vec![0u8; data.len()];
            let mut off = 0;
            for chunk in data.chunks(split) {
                f.update_copying(chunk, &mut copy[off..off + chunk.len()]);
                off += chunk.len();
            }
            assert_eq!(f.digest(), oneshot, "split {split}");
            assert_eq!(copy, data, "split {split}");
        }
    }

    #[test]
    fn unaligned_tail_is_included() {
        assert_ne!(fletcher64(&[1, 2, 3, 4, 5]), fletcher64(&[1, 2, 3, 4, 6]));
        assert_ne!(fletcher64(&[1, 2, 3, 4, 5]), fletcher64(&[1, 2, 3, 4]));
    }

    #[test]
    fn deferred_reduction_matches_naive() {
        // Cross several 4096-word reduction windows with high-bit words.
        let data = vec![0xFFu8; 64 * 1024];
        let fast = fletcher64(&data);
        // naive word-at-a-time
        let mut s1: u64 = 0;
        let mut s2: u64 = 0;
        for chunk in data.chunks_exact(4) {
            let w = u32::from_le_bytes(chunk.try_into().unwrap()) as u64;
            s1 = (s1 + w) % MOD;
            s2 = (s2 + s1) % MOD;
        }
        let len = data.len() as u64;
        s1 = (s1 + (len & MOD)) % MOD;
        s2 = (s2 + s1) % MOD;
        s1 = (s1 + (len >> 32)) % MOD;
        s2 = (s2 + s1) % MOD;
        assert_eq!(fast, (s2 << 32) | s1);
    }

    #[test]
    fn puper_digest_matches_packed_digest_when_no_policies() {
        use crate::packer::Packer;
        use crate::puper::Pup;
        struct S(Vec<f64>, u32);
        impl Pup for S {
            fn pup(&mut self, p: &mut dyn Puper) -> PupResult {
                let n = p.pup_len(self.0.len())?;
                self.0.resize(n, 0.0);
                p.pup_f64_slice(&mut self.0)?;
                p.pup_u32(&mut self.1)
            }
        }
        let mut s = S(vec![3.5, -1.0, 0.0], 99);
        let mut packer = Packer::new();
        s.pup(&mut packer).unwrap();
        let packed_digest = fletcher64(&packer.finish());

        let mut fp = FletcherPuper::new();
        s.pup(&mut fp).unwrap();
        assert_eq!(fp.digest(), packed_digest);
    }

    #[test]
    fn ignored_fields_do_not_affect_digest() {
        let mut fp1 = FletcherPuper::new();
        fp1.pup_u32(&mut { 1 }).unwrap();
        fp1.push_policy(CheckPolicy::Ignore).unwrap();
        fp1.pup_f64(&mut { 5.0 }).unwrap();
        fp1.pop_policy().unwrap();

        let mut fp2 = FletcherPuper::new();
        fp2.pup_u32(&mut { 1 }).unwrap();
        fp2.push_policy(CheckPolicy::Ignore).unwrap();
        fp2.pup_f64(&mut { -123.0 }).unwrap();
        fp2.pop_policy().unwrap();

        assert_eq!(fp1.digest(), fp2.digest());
        assert_eq!(fp1.bytes_skipped(), 8);
    }

    #[test]
    fn merge_equals_streaming() {
        let data: Vec<u8> = (0..50_000u32)
            .flat_map(|x| (x ^ 0xA5A5).to_le_bytes())
            .collect();
        let oneshot = fletcher64(&data);
        // Split points must leave the head 4-byte aligned; the tail may end
        // with a partial word (overall length is aligned here, so exercise
        // an unaligned tail with a trimmed copy below).
        for split in [0, 4, 64, 65_536, 123_456, data.len()] {
            let mut head = Fletcher64::new();
            head.update(&data[..split]);
            let mut tail = Fletcher64::new();
            tail.update(&data[split..]);
            head.merge(&tail);
            assert_eq!(head.digest(), oneshot, "split {split}");
            assert_eq!(head.len(), data.len() as u64);
        }
        // Three-way merge with an unaligned final piece.
        let trimmed = &data[..data.len() - 3];
        let mut a = Fletcher64::new();
        a.update(&trimmed[..8192]);
        let mut b = Fletcher64::new();
        b.update(&trimmed[8192..70_000]);
        let mut c = Fletcher64::new();
        c.update(&trimmed[70_000..]);
        a.merge(&b);
        a.merge(&c);
        assert_eq!(a.digest(), fletcher64(trimmed));
    }

    #[test]
    #[should_panic(expected = "4-byte aligned")]
    fn merge_onto_unaligned_state_panics() {
        let mut a = Fletcher64::new();
        a.update(&[1, 2, 3]); // partial word pending
        a.merge(&Fletcher64::new());
    }

    #[test]
    fn block_path_matches_word_path() {
        // Lengths straddling the 64-byte block boundary and the 4096-word
        // reduce cadence, with max-value words to stress deferred overflow.
        for len in [0, 3, 4, 63, 64, 65, 127, 16_384, 16_387, 64 * 1024 + 5] {
            let data = vec![0xFFu8; len];
            let batched = fletcher64(&data);
            let mut s1: u64 = 0;
            let mut s2: u64 = 0;
            for chunk in data.chunks(4) {
                let mut w = [0u8; 4];
                w[..chunk.len()].copy_from_slice(chunk);
                s1 = (s1 + u32::from_le_bytes(w) as u64) % MOD;
                s2 = (s2 + s1) % MOD;
            }
            let n = len as u64;
            s1 = (s1 + (n & MOD)) % MOD;
            s2 = (s2 + s1) % MOD;
            s1 = (s1 + (n >> 32)) % MOD;
            s2 = (s2 + s1) % MOD;
            assert_eq!(batched, (s2 << 32) | s1, "len {len}");
        }
    }

    #[test]
    fn single_bit_flip_changes_digest() {
        let mut data: Vec<u8> = (0..4096u32).flat_map(|x| x.to_le_bytes()).collect();
        let clean = fletcher64(&data);
        for bit in [0usize, 5_000, 130_000 - 1] {
            data[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(fletcher64(&data), clean, "flip at bit {bit}");
            data[bit / 8] ^= 1 << (bit % 8);
        }
    }
}
