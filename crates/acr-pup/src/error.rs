//! Error type shared by all PUP directions.

use std::fmt;

/// Result alias used throughout the PUP framework.
pub type PupResult<T = ()> = Result<T, PupError>;

/// An error raised while traversing a [`crate::Pup`] object.
///
/// Note that a *mismatch* found by the [`crate::Checker`] is **not** an
/// error — mismatches are collected into a [`crate::CheckReport`] so that the
/// caller (the ACR runtime) can decide how to react. `PupError` signals a
/// *structural* problem: a checkpoint that is too short, a length field that
/// disagrees with the receiving container, or an enum tag that no variant
/// claims. Structural problems on the compare path are themselves treated as
/// SDC by the runtime (a corrupted length field corrupts the stream shape).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PupError {
    /// The source buffer ended before the object was fully traversed.
    BufferUnderrun {
        /// Bytes the current field needed.
        needed: usize,
        /// Bytes actually remaining in the buffer.
        remaining: usize,
        /// Stream offset at which the underrun happened.
        at: usize,
    },
    /// After a full traversal, bytes were left over in the source buffer.
    TrailingBytes {
        /// Number of unconsumed bytes.
        leftover: usize,
    },
    /// A collection length read from the stream disagrees with a fixed-size
    /// destination (e.g. unpacking a 5-element stream into a `[f64; 3]`).
    LengthMismatch {
        /// Length recorded in the stream.
        stream: usize,
        /// Length of the live object.
        live: usize,
    },
    /// An enum discriminant read from the stream has no matching variant.
    InvalidTag {
        /// The offending tag value.
        tag: u64,
        /// Human-readable name of the type being unpacked.
        type_name: &'static str,
    },
    /// A length field would overflow addressable memory (corrupted stream).
    LengthOverflow {
        /// The unbelievable length.
        len: u64,
    },
    /// Policy stack was popped more times than it was pushed.
    PolicyUnderflow,
    /// String bytes in the stream are not valid UTF-8 (corrupted stream).
    InvalidUtf8 {
        /// Stream offset of the string payload.
        at: usize,
    },
}

impl fmt::Display for PupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PupError::BufferUnderrun {
                needed,
                remaining,
                at,
            } => write!(
                f,
                "checkpoint stream underrun at offset {at}: field needs {needed} bytes, \
                 {remaining} remain"
            ),
            PupError::TrailingBytes { leftover } => {
                write!(
                    f,
                    "checkpoint stream has {leftover} trailing bytes after unpack"
                )
            }
            PupError::LengthMismatch { stream, live } => write!(
                f,
                "collection length mismatch: stream says {stream}, live object holds {live}"
            ),
            PupError::InvalidTag { tag, type_name } => {
                write!(f, "invalid enum tag {tag} while unpacking {type_name}")
            }
            PupError::LengthOverflow { len } => {
                write!(f, "stream length field {len} overflows addressable memory")
            }
            PupError::PolicyUnderflow => write!(f, "check-policy stack popped while empty"),
            PupError::InvalidUtf8 { at } => {
                write!(f, "string payload at offset {at} is not valid UTF-8")
            }
        }
    }
}

impl std::error::Error for PupError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = PupError::BufferUnderrun {
            needed: 8,
            remaining: 3,
            at: 16,
        };
        let s = e.to_string();
        assert!(s.contains("offset 16") && s.contains("8 bytes") && s.contains("3 remain"));

        assert!(PupError::TrailingBytes { leftover: 4 }
            .to_string()
            .contains("4 trailing"));
        assert!(PupError::LengthMismatch { stream: 5, live: 3 }
            .to_string()
            .contains("5"));
        assert!(PupError::InvalidTag {
            tag: 9,
            type_name: "Foo"
        }
        .to_string()
        .contains("Foo"));
        assert!(PupError::LengthOverflow { len: u64::MAX }
            .to_string()
            .contains("overflows"));
        assert!(PupError::PolicyUnderflow.to_string().contains("policy"));
    }

    #[test]
    fn errors_are_comparable_and_cloneable() {
        let e = PupError::TrailingBytes { leftover: 1 };
        assert_eq!(e.clone(), e);
        assert_ne!(e, PupError::PolicyUnderflow);
    }
}
