//! [`Sizer`]: measures the packed size of an object without writing bytes.

use crate::error::PupResult;
use crate::puper::{Dir, Puper};

/// A [`Puper`] that counts how many bytes [`crate::Packer`] would produce.
///
/// The ACR runtime sizes every task's state before a checkpoint so the
/// per-node checkpoint buffer can be allocated in one shot (heap churn on the
/// checkpoint path directly inflates the paper's δ).
#[derive(Debug, Default, Clone)]
pub struct Sizer {
    bytes: usize,
}

impl Sizer {
    /// Create a sizer with a zero count.
    pub fn new() -> Self {
        Self::default()
    }

    /// The number of bytes counted so far.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    fn add(&mut self, n: usize) -> PupResult {
        self.bytes += n;
        Ok(())
    }
}

macro_rules! size_scalar {
    ($name:ident, $ty:ty) => {
        fn $name(&mut self, _v: &mut $ty) -> PupResult {
            self.add(std::mem::size_of::<$ty>())
        }
    };
}

macro_rules! size_slice {
    ($name:ident, $ty:ty) => {
        fn $name(&mut self, v: &mut [$ty]) -> PupResult {
            self.add(std::mem::size_of::<$ty>() * v.len())
        }
    };
}

impl Puper for Sizer {
    fn dir(&self) -> Dir {
        Dir::Sizing
    }

    fn offset(&self) -> usize {
        self.bytes
    }

    size_scalar!(pup_u8, u8);
    size_scalar!(pup_u16, u16);
    size_scalar!(pup_u32, u32);
    size_scalar!(pup_u64, u64);
    size_scalar!(pup_i8, i8);
    size_scalar!(pup_i16, i16);
    size_scalar!(pup_i32, i32);
    size_scalar!(pup_i64, i64);
    size_scalar!(pup_f32, f32);
    size_scalar!(pup_f64, f64);

    fn pup_bool(&mut self, _v: &mut bool) -> PupResult {
        self.add(1)
    }

    fn pup_usize(&mut self, _v: &mut usize) -> PupResult {
        self.add(8)
    }

    fn pup_len(&mut self, live: usize) -> PupResult<usize> {
        self.add(8)?;
        Ok(live)
    }

    size_slice!(pup_u8_slice, u8);
    size_slice!(pup_u16_slice, u16);
    size_slice!(pup_u32_slice, u32);
    size_slice!(pup_u64_slice, u64);
    size_slice!(pup_i32_slice, i32);
    size_slice!(pup_i64_slice, i64);
    size_slice!(pup_f32_slice, f32);
    size_slice!(pup_f64_slice, f64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::puper::Pup;

    struct Mixed {
        a: u8,
        b: f64,
        c: Vec<u32>,
        d: bool,
    }

    impl Pup for Mixed {
        fn pup(&mut self, p: &mut dyn Puper) -> PupResult {
            p.pup_u8(&mut self.a)?;
            p.pup_f64(&mut self.b)?;
            let n = p.pup_len(self.c.len())?;
            self.c.resize(n, 0);
            p.pup_u32_slice(&mut self.c)?;
            p.pup_bool(&mut self.d)
        }
    }

    #[test]
    fn sizes_add_up() {
        let mut m = Mixed {
            a: 1,
            b: 2.0,
            c: vec![1, 2, 3],
            d: true,
        };
        let mut s = Sizer::new();
        m.pup(&mut s).unwrap();
        // 1 (u8) + 8 (f64) + 8 (len) + 3*4 (u32s) + 1 (bool)
        assert_eq!(s.bytes(), 1 + 8 + 8 + 12 + 1);
        assert_eq!(s.offset(), s.bytes());
        assert_eq!(s.dir(), Dir::Sizing);
    }

    #[test]
    fn empty_slice_contributes_only_length() {
        let mut m = Mixed {
            a: 0,
            b: 0.0,
            c: vec![],
            d: false,
        };
        let mut s = Sizer::new();
        m.pup(&mut s).unwrap();
        assert_eq!(s.bytes(), 1 + 8 + 8 + 1);
    }
}
