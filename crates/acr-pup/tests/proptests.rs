//! Property-based tests for the PUP framework invariants the ACR protocol
//! relies on:
//!
//! 1. `unpack ∘ pack = identity` for arbitrary state,
//! 2. `Sizer` agrees with `Packer` byte-for-byte,
//! 3. the `Checker` is clean exactly on identical state,
//! 4. any single flipped bit in packed state is detected — by the full
//!    comparison *and* by the Fletcher-64 digest,
//! 5. the streaming digest is split-invariant.

use acr_pup::{
    compare, fletcher64, fletcher64_of, pack, packed_size, pup_vec, unpack, Pup, PupResult, Puper,
};
use proptest::prelude::*;

/// An application-state stand-in that exercises every scalar width, the bulk
/// slice paths, nested structs, strings, and optionals.
#[derive(Debug, Clone, Default, PartialEq)]
struct TaskState {
    id: u64,
    step: u32,
    active: bool,
    label: String,
    grid: Vec<f64>,
    counts: Vec<u32>,
    particles: Vec<Particle>,
    aux: Option<f64>,
    temp: i16,
}

#[derive(Debug, Clone, Default, PartialEq)]
struct Particle {
    pos: [f64; 3],
    charge: f32,
    kind: u8,
}

impl Pup for Particle {
    fn pup(&mut self, p: &mut dyn Puper) -> PupResult {
        p.pup_f64_slice(&mut self.pos)?;
        p.pup_f32(&mut self.charge)?;
        p.pup_u8(&mut self.kind)
    }
}

impl Pup for TaskState {
    fn pup(&mut self, p: &mut dyn Puper) -> PupResult {
        p.pup_u64(&mut self.id)?;
        p.pup_u32(&mut self.step)?;
        p.pup_bool(&mut self.active)?;
        self.label.pup(p)?;
        self.grid.pup(p)?;
        self.counts.pup(p)?;
        pup_vec(p, &mut self.particles)?;
        self.aux.pup(p)?;
        p.pup_i16(&mut self.temp)
    }
}

fn particle_strategy() -> impl Strategy<Value = Particle> {
    (
        prop::array::uniform3(prop::num::f64::ANY),
        prop::num::f32::ANY,
        any::<u8>(),
    )
        .prop_map(|(pos, charge, kind)| Particle { pos, charge, kind })
}

fn state_strategy() -> impl Strategy<Value = TaskState> {
    (
        any::<u64>(),
        any::<u32>(),
        any::<bool>(),
        "[a-zA-Z0-9 _-]{0,24}",
        prop::collection::vec(prop::num::f64::ANY, 0..64),
        prop::collection::vec(any::<u32>(), 0..32),
        prop::collection::vec(particle_strategy(), 0..8),
        prop::option::of(prop::num::f64::ANY),
        any::<i16>(),
    )
        .prop_map(
            |(id, step, active, label, grid, counts, particles, aux, temp)| TaskState {
                id,
                step,
                active,
                label,
                grid,
                counts,
                particles,
                aux,
                temp,
            },
        )
}

/// Bitwise equality (PartialEq treats NaN != NaN; checkpoints are bytes).
fn bitwise_eq(a: &mut TaskState, b: &mut TaskState) -> bool {
    pack(a).unwrap() == pack(b).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn pack_unpack_roundtrip(mut s in state_strategy()) {
        let bytes = pack(&mut s).unwrap();
        let mut out = TaskState::default();
        unpack(&bytes, &mut out).unwrap();
        prop_assert!(bitwise_eq(&mut s, &mut out));
        // and repacking is byte-identical (canonical encoding)
        prop_assert_eq!(pack(&mut out).unwrap(), bytes);
    }

    #[test]
    fn sizer_agrees_with_packer(mut s in state_strategy()) {
        prop_assert_eq!(packed_size(&mut s).unwrap(), pack(&mut s).unwrap().len());
    }

    #[test]
    fn checker_clean_on_self(mut s in state_strategy()) {
        let bytes = pack(&mut s).unwrap();
        let report = compare(&mut s, &bytes).unwrap();
        prop_assert!(report.is_clean());
        prop_assert_eq!(report.bytes_compared, bytes.len());
    }

    #[test]
    fn any_single_bit_flip_is_detected(
        mut s in state_strategy(),
        bit_seed in any::<u64>(),
    ) {
        let clean = pack(&mut s).unwrap();
        prop_assume!(!clean.is_empty());
        let bit = (bit_seed % (clean.len() as u64 * 8)) as usize;

        // Corrupt the *reference* checkpoint (equivalently, the buddy's
        // state was corrupted after packing).
        let mut corrupt = clean.clone();
        corrupt[bit / 8] ^= 1 << (bit % 8);

        // Full comparison detects it (either as a field mismatch or as a
        // structural error when the flip hits a length/tag field).
        // (a structural Err is also a detection)
        if let Ok(report) = compare(&mut s, &corrupt) {
            prop_assert!(!report.is_clean(), "flip at bit {bit} missed");
        }

        // The checksum detects it too.
        prop_assert_ne!(fletcher64(&clean), fletcher64(&corrupt), "digest collision at bit {}", bit);
    }

    #[test]
    fn digest_of_object_equals_digest_of_packed_bytes(mut s in state_strategy()) {
        let bytes = pack(&mut s).unwrap();
        prop_assert_eq!(fletcher64_of(&mut s).unwrap(), fletcher64(&bytes));
    }

    #[test]
    fn streaming_digest_is_split_invariant(
        data in prop::collection::vec(any::<u8>(), 0..2048),
        splits in prop::collection::vec(1usize..128, 0..8),
    ) {
        let oneshot = fletcher64(&data);
        let mut f = acr_pup::Fletcher64::new();
        let mut rest: &[u8] = &data;
        for s in splits {
            let k = s.min(rest.len());
            f.update(&rest[..k]);
            rest = &rest[k..];
        }
        f.update(rest);
        prop_assert_eq!(f.digest(), oneshot);
    }

    #[test]
    fn unpack_never_panics_on_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        // Robustness: a corrupted checkpoint must produce an error, not UB
        // or a panic (the runtime falls back to an older checkpoint on
        // failure).
        let mut out = TaskState::default();
        let _ = unpack(&bytes, &mut out);
    }

    #[test]
    fn truncated_checkpoint_always_errors(mut s in state_strategy(), cut_seed in any::<u64>()) {
        let bytes = pack(&mut s).unwrap();
        prop_assume!(bytes.len() > 1);
        let cut = 1 + (cut_seed % (bytes.len() as u64 - 1)) as usize;
        let mut out = TaskState::default();
        prop_assert!(unpack(&bytes[..cut], &mut out).is_err());
    }

    /// The parallel pack pipeline's mergeability invariant: split a payload
    /// into arbitrary 4-byte-aligned segments (as `pack_tasks_parallel`
    /// hands segments to workers), digest each with its own offset-aware
    /// [`ChunkDigester`], and the concatenated pieces must assemble into
    /// exactly the single-pass whole-payload table and Fletcher-64 digest —
    /// regardless of where the cuts fall relative to chunk boundaries.
    #[test]
    fn parallel_segment_pieces_merge_to_single_pass_digest(
        data in prop::collection::vec(any::<u8>(), 0..4096),
        chunk_pow in 0u32..7,
        cut_seeds in prop::collection::vec(any::<u32>(), 0..6),
    ) {
        let chunk_size = 4usize << chunk_pow;
        // Aligned, sorted, deduplicated interior cut points.
        let mut cuts: Vec<usize> = cut_seeds
            .iter()
            .map(|&c| (c as usize % (data.len() + 1)) & !3)
            .collect();
        cuts.push(0);
        cuts.push(data.len());
        cuts.sort_unstable();
        cuts.dedup();
        // The final cut may be unaligned (payload tails are); interior cuts
        // are aligned by construction above, except a possibly-unaligned
        // data.len() which is fine because nothing starts after it.
        let mut pieces = Vec::new();
        for w in cuts.windows(2) {
            let (start, end) = (w[0], w[1]);
            let mut d = acr_pup::ChunkDigester::new(chunk_size, start);
            d.feed(&data[start..end]);
            pieces.extend(d.finish());
        }
        let merged = acr_pup::assemble_chunks(chunk_size, pieces);
        let reference = acr_pup::chunk_digests(&data, chunk_size);
        prop_assert_eq!(&merged, &reference);
        prop_assert_eq!(merged.digest, fletcher64(&data), "whole-payload digest mismatch");
        prop_assert_eq!(merged.chunk_digests.len(), data.len().div_ceil(chunk_size));
    }

    /// Same invariant through the fused copy+digest kernel: `feed_copy`
    /// must both reproduce the bytes verbatim and yield mergeable pieces.
    #[test]
    fn fused_copy_digest_segments_match_plain_feed(
        data in prop::collection::vec(any::<u8>(), 1..2048),
        chunk_pow in 0u32..6,
        cut_seed in any::<u32>(),
    ) {
        let chunk_size = 4usize << chunk_pow;
        let cut = (cut_seed as usize % (data.len() + 1)) & !3;
        let mut dst = vec![0u8; data.len()];
        let (head, tail) = dst.split_at_mut(cut);
        let mut pieces = Vec::new();
        let mut d0 = acr_pup::ChunkDigester::new(chunk_size, 0);
        d0.feed_copy(&data[..cut], head);
        pieces.extend(d0.finish());
        let mut d1 = acr_pup::ChunkDigester::new(chunk_size, cut);
        d1.feed_copy(&data[cut..], tail);
        pieces.extend(d1.finish());
        prop_assert_eq!(&dst, &data, "fused copy corrupted the payload");
        let merged = acr_pup::assemble_chunks(chunk_size, pieces);
        prop_assert_eq!(merged, acr_pup::chunk_digests(&data, chunk_size));
    }
}
