//! Jacobi3D: 7-point stencil relaxation on a 3D structured grid — the
//! paper's simplest, highest-memory-pressure kernel (64×64×128 points per
//! core, Table 2).

use acr_pup::{Pup, PupResult, Puper};

use crate::MiniApp;

/// One of the six block faces (for halo exchange between neighbouring
/// tasks in the runtime-decomposed configuration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Face {
    /// −X face.
    XLo,
    /// +X face.
    XHi,
    /// −Y face.
    YLo,
    /// +Y face.
    YHi,
    /// −Z face.
    ZLo,
    /// +Z face.
    ZHi,
}

impl Face {
    /// All six faces.
    pub const ALL: [Face; 6] = [
        Face::XLo,
        Face::XHi,
        Face::YLo,
        Face::YHi,
        Face::ZLo,
        Face::ZHi,
    ];

    /// The face a neighbour sees from the other side.
    pub fn opposite(self) -> Face {
        match self {
            Face::XLo => Face::XHi,
            Face::XHi => Face::XLo,
            Face::YLo => Face::YHi,
            Face::YHi => Face::YLo,
            Face::ZLo => Face::ZHi,
            Face::ZHi => Face::ZLo,
        }
    }
}

/// A Jacobi3D block: an `nx × ny × nz` interior with one layer of halo
/// cells on every side.
///
/// In stand-alone mode the halos act as fixed Dirichlet boundaries; in
/// runtime mode the task extracts faces, sends them to neighbours, and
/// installs the received faces as halos before each step.
#[derive(Debug, Clone, PartialEq)]
pub struct Jacobi3d {
    nx: usize,
    ny: usize,
    nz: usize,
    /// Current values, `(nx+2)(ny+2)(nz+2)`, x fastest.
    grid: Vec<f64>,
    /// Scratch buffer for the next sweep (not checkpointed — it is dead
    /// state between iterations, exactly the kind of data user-level
    /// checkpointing omits, §3 design choice 5).
    next: Vec<f64>,
    iter: u64,
    /// Max |change| of the last sweep.
    residual: f64,
}

impl Jacobi3d {
    /// The Table 2 per-core configuration: 64×64×128 grid points.
    pub fn table2() -> Self {
        Self::new(64, 64, 128)
    }

    /// A block of `nx × ny × nz` interior points, zero-initialized with
    /// unit Dirichlet boundary on the −X halo face (a classic heat-soak
    /// problem: heat flows in from one side).
    pub fn new(nx: usize, ny: usize, nz: usize) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0);
        let n = (nx + 2) * (ny + 2) * (nz + 2);
        let mut s = Self {
            nx,
            ny,
            nz,
            grid: vec![0.0; n],
            next: vec![0.0; n],
            iter: 0,
            residual: f64::INFINITY,
        };
        // Hot −X boundary.
        for z in 0..nz + 2 {
            for y in 0..ny + 2 {
                let i = s.idx(0, y, z);
                s.grid[i] = 1.0;
                s.next[i] = 1.0;
            }
        }
        s
    }

    #[inline]
    fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        (z * (self.ny + 2) + y) * (self.nx + 2) + x
    }

    /// Interior dimensions.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Residual (max |change|) of the last sweep.
    pub fn residual(&self) -> f64 {
        self.residual
    }

    /// Value at an interior point (0-based interior coordinates).
    pub fn at(&self, x: usize, y: usize, z: usize) -> f64 {
        self.grid[self.idx(x + 1, y + 1, z + 1)]
    }

    /// Copy out the interior layer adjacent to `face` (what a neighbour
    /// needs as its halo).
    pub fn extract_face(&self, face: Face) -> Vec<f64> {
        let mut out = Vec::new();
        self.face_coords(face, false, |i| out.push(self.grid[i]));
        out
    }

    /// Install `data` (a neighbour's boundary layer) into this block's halo
    /// cells on `face`.
    pub fn set_halo(&mut self, face: Face, data: &[f64]) {
        let mut it = data.iter();
        let mut halo_indices = Vec::new();
        self.face_coords(face, true, |i| halo_indices.push(i));
        assert_eq!(halo_indices.len(), data.len(), "halo size mismatch");
        for i in halo_indices {
            self.grid[i] = *it.next().expect("sized above");
        }
    }

    /// Visit the linear indices of a face layer: `halo = false` walks the
    /// outermost *interior* layer, `halo = true` the halo layer itself.
    fn face_coords<F: FnMut(usize)>(&self, face: Face, halo: bool, mut f: F) {
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        match face {
            Face::XLo | Face::XHi => {
                let x = match (face, halo) {
                    (Face::XLo, true) => 0,
                    (Face::XLo, false) => 1,
                    (Face::XHi, true) => nx + 1,
                    _ => nx,
                };
                for z in 1..=nz {
                    for y in 1..=ny {
                        f(self.idx(x, y, z));
                    }
                }
            }
            Face::YLo | Face::YHi => {
                let y = match (face, halo) {
                    (Face::YLo, true) => 0,
                    (Face::YLo, false) => 1,
                    (Face::YHi, true) => ny + 1,
                    _ => ny,
                };
                for z in 1..=nz {
                    for x in 1..=nx {
                        f(self.idx(x, y, z));
                    }
                }
            }
            Face::ZLo | Face::ZHi => {
                let z = match (face, halo) {
                    (Face::ZLo, true) => 0,
                    (Face::ZLo, false) => 1,
                    (Face::ZHi, true) => nz + 1,
                    _ => nz,
                };
                for y in 1..=ny {
                    for x in 1..=nx {
                        f(self.idx(x, y, z));
                    }
                }
            }
        }
    }
}

impl MiniApp for Jacobi3d {
    fn name(&self) -> &'static str {
        "Jacobi3D"
    }

    fn step(&mut self) {
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        let sx = 1;
        let sy = self.nx + 2;
        let sz = (self.nx + 2) * (self.ny + 2);
        let mut max_delta = 0.0f64;
        for z in 1..=nz {
            for y in 1..=ny {
                let row = (z * (ny + 2) + y) * (nx + 2);
                for x in 1..=nx {
                    let i = row + x;
                    let v = (self.grid[i - sx]
                        + self.grid[i + sx]
                        + self.grid[i - sy]
                        + self.grid[i + sy]
                        + self.grid[i - sz]
                        + self.grid[i + sz]
                        + self.grid[i])
                        / 7.0;
                    max_delta = max_delta.max((v - self.grid[i]).abs());
                    self.next[i] = v;
                }
            }
        }
        std::mem::swap(&mut self.grid, &mut self.next);
        // Refresh boundary halos in `grid` from the old buffer (swap moved
        // them): halo cells are never written by the sweep, so copy them
        // over wholesale by re-syncing the swapped-out buffer's halo.
        let (nx2, ny2, nz2) = (nx + 2, ny + 2, nz + 2);
        for z in 0..nz2 {
            for y in 0..ny2 {
                for x in 0..nx2 {
                    if x == 0 || x == nx2 - 1 || y == 0 || y == ny2 - 1 || z == 0 || z == nz2 - 1 {
                        let i = (z * ny2 + y) * nx2 + x;
                        self.grid[i] = self.next[i];
                    }
                }
            }
        }
        self.residual = max_delta;
        self.iter += 1;
    }

    fn iteration(&self) -> u64 {
        self.iter
    }

    fn diagnostic(&self) -> f64 {
        // Mean interior temperature: monotonically approaches the boundary
        // drive.
        let mut sum = 0.0;
        for z in 0..self.nz {
            for y in 0..self.ny {
                for x in 0..self.nx {
                    sum += self.at(x, y, z);
                }
            }
        }
        sum / (self.nx * self.ny * self.nz) as f64
    }
}

impl Pup for Jacobi3d {
    fn pup(&mut self, p: &mut dyn Puper) -> PupResult {
        p.pup_usize(&mut self.nx)?;
        p.pup_usize(&mut self.ny)?;
        p.pup_usize(&mut self.nz)?;
        self.grid.pup(p)?;
        p.pup_u64(&mut self.iter)?;
        p.pup_f64(&mut self.residual)?;
        // `next` is scratch: re-materialize it on restore instead of
        // checkpointing another full grid.
        if p.dir() == acr_pup::Dir::Unpacking {
            self.next = self.grid.clone();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acr_pup::{compare, pack, unpack};

    #[test]
    fn heat_flows_in_from_the_hot_face() {
        let mut j = Jacobi3d::new(8, 8, 8);
        assert_eq!(j.diagnostic(), 0.0);
        for _ in 0..50 {
            j.step();
        }
        assert!(j.diagnostic() > 0.01, "interior warmed: {}", j.diagnostic());
        // Monotone decay toward steady state.
        assert!(j.residual() < 1.0);
        // Cells near the hot face are warmer.
        assert!(j.at(0, 4, 4) > j.at(7, 4, 4));
    }

    #[test]
    fn residual_decreases_over_time() {
        let mut j = Jacobi3d::new(6, 6, 6);
        j.step();
        let early = j.residual();
        for _ in 0..100 {
            j.step();
        }
        assert!(j.residual() < early / 2.0);
    }

    #[test]
    fn determinism_two_instances_agree_bytewise() {
        let mut a = Jacobi3d::new(6, 5, 4);
        let mut b = Jacobi3d::new(6, 5, 4);
        for _ in 0..20 {
            a.step();
            b.step();
        }
        let ca = pack(&mut a).unwrap();
        assert!(compare(&mut b, &ca).unwrap().is_clean());
    }

    #[test]
    fn checkpoint_restart_resumes_exact_trajectory() {
        let mut a = Jacobi3d::new(5, 5, 5);
        for _ in 0..10 {
            a.step();
        }
        let ckpt = pack(&mut a).unwrap();

        // Continue the original 10 more steps.
        for _ in 0..10 {
            a.step();
        }
        // Restore a fresh block and replay.
        let mut b = Jacobi3d::new(1, 1, 1);
        unpack(&ckpt, &mut b).unwrap();
        assert_eq!(b.iteration(), 10);
        for _ in 0..10 {
            b.step();
        }
        assert_eq!(pack(&mut a).unwrap(), pack(&mut b).unwrap());
    }

    #[test]
    fn halo_exchange_roundtrip_matches_monolithic() {
        // Split a 8×4×4 domain into two 4×4×4 blocks along X, exchange
        // halos each step; after k steps the pair must equal a monolithic
        // 8×4×4 run.
        let mut whole = Jacobi3d::new(8, 4, 4);
        let mut left = Jacobi3d::new(4, 4, 4);
        let mut right = Jacobi3d::new(4, 4, 4);
        // The right block's −X halo starts cold (it is interior now, not the
        // hot boundary).
        let cold = vec![0.0; 16];
        right.set_halo(Face::XLo, &cold);
        for _ in 0..30 {
            let l2r = left.extract_face(Face::XHi);
            let r2l = right.extract_face(Face::XLo);
            right.set_halo(Face::XLo, &l2r);
            left.set_halo(Face::XHi, &r2l);
            left.step();
            right.step();
            whole.step();
        }
        for z in 0..4 {
            for y in 0..4 {
                for x in 0..4 {
                    assert!(
                        (whole.at(x, y, z) - left.at(x, y, z)).abs() < 1e-12,
                        "left block diverged at ({x},{y},{z})"
                    );
                    assert!(
                        (whole.at(x + 4, y, z) - right.at(x, y, z)).abs() < 1e-12,
                        "right block diverged at ({x},{y},{z})"
                    );
                }
            }
        }
    }

    #[test]
    fn face_sizes() {
        let j = Jacobi3d::new(3, 4, 5);
        assert_eq!(j.extract_face(Face::XLo).len(), 4 * 5);
        assert_eq!(j.extract_face(Face::YHi).len(), 3 * 5);
        assert_eq!(j.extract_face(Face::ZLo).len(), 3 * 4);
        assert_eq!(Face::XLo.opposite(), Face::XHi);
        assert_eq!(Face::ZHi.opposite(), Face::ZLo);
    }

    #[test]
    fn table2_footprint() {
        let mut j = Jacobi3d::table2();
        let bytes = acr_pup::packed_size(&mut j).unwrap();
        // ~ (66*66*130) f64 + header: about 4.5 MiB per core.
        assert!(bytes > 4_000_000 && bytes < 5_000_000, "{bytes}");
    }
}
