//! # acr-apps — the evaluation mini-applications
//!
//! Faithful Rust kernels for the five mini-apps of the paper's §6 evaluation
//! (Table 2), each implementing [`MiniApp`] (steppable, deterministic,
//! self-checking) and [`acr_pup::Pup`] (checkpointable):
//!
//! | app | kernel | per-core config (Table 2) | memory pressure |
//! |---|---|---|---|
//! | [`Jacobi3d`] | 7-point stencil on a 3D grid | 64×64×128 points | high |
//! | [`Hpccg`] | CG on a 27-point FEM-like operator | 40×40×40 points | high |
//! | [`LuleshProxy`] | Lagrangian shock hydro, hex mesh | 32×32×64 elements | high |
//! | [`LeanMd`] | cell-list short-range MD (AoS, scattered) | 4 000 atoms | low |
//! | [`MiniMd`] | cell-list short-range MD (SoA, bulk) | 1 000 atoms | low |
//!
//! The paper runs Jacobi3D under two programming models (Charm++ and AMPI);
//! here that pair is [`Jacobi3d`] with its two halo modes (task-level halo
//! exchange vs. self-contained block).
//!
//! [`AppProfile`] carries each app's checkpoint footprint and compute/
//! serialization character for the at-scale simulator (`acr-sim`), which is
//! how Fig. 8/10's per-app differences (checkpoint size, scattered-data
//! serialization cost) reach the machine model.

#![warn(missing_docs)]

mod hpccg;
mod jacobi3d;
mod leanmd;
mod lulesh;
mod minimd;
mod profile;

pub use hpccg::Hpccg;
pub use jacobi3d::{Face, Jacobi3d};
pub use leanmd::LeanMd;
pub use lulesh::LuleshProxy;
pub use minimd::MiniMd;
pub use profile::{AppProfile, MemoryPressure, TABLE2};

use acr_pup::Pup;

/// A steppable, checkpointable mini-application kernel.
///
/// Determinism contract: two instances constructed with the same parameters
/// and stepped the same number of times have byte-identical PUP state —
/// that is what makes buddy-replica checkpoint comparison (§2.1) sound.
pub trait MiniApp: Pup {
    /// Display name matching the paper's figures.
    fn name(&self) -> &'static str;

    /// Advance one iteration/timestep.
    fn step(&mut self);

    /// Iterations completed (the progress metric reported to the ACR
    /// consensus, §2.2).
    fn iteration(&self) -> u64;

    /// A physics diagnostic (residual, total energy, …) for correctness
    /// checks after restart: recovering from a checkpoint must reproduce
    /// the exact trajectory.
    fn diagnostic(&self) -> f64;
}
