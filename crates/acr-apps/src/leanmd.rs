//! LeanMD: short-range molecular dynamics with cell lists (4 000 atoms per
//! core, Table 2) — the low-memory-footprint, *scattered-data* app.
//!
//! Atoms are stored array-of-structs and serialized atom-by-atom through
//! the generic PUP path (no bulk memcpy), reproducing the paper's
//! observation that "checkpoint data in these programs may be scattered in
//! the memory resulting in extra overheads during operations that require
//! traversal of application data" (§6.1).

use acr_pup::{pup_vec, Pup, PupResult, Puper};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::MiniApp;

pub(crate) mod md {
    //! Shared Lennard-Jones cell-list force kernel (σ = ε = 1, cutoff 2.5),
    //! deterministic iteration order.

    /// Cutoff radius.
    pub const RC: f64 = 2.5;
    /// Velocity-Verlet timestep.
    pub const DT: f64 = 0.001;

    /// Periodic minimum-image displacement.
    #[inline]
    pub fn min_image(mut d: f64, l: f64) -> f64 {
        if d > l / 2.0 {
            d -= l;
        } else if d < -l / 2.0 {
            d += l;
        }
        d
    }

    /// Compute LJ forces and total potential energy over `pos` in a cubic
    /// periodic box of side `l`, via cell lists.
    pub fn forces(pos: &[[f64; 3]], l: f64) -> (Vec<[f64; 3]>, f64) {
        let n = pos.len();
        let ncell = ((l / RC).floor() as usize).max(1);
        let cell_w = l / ncell as f64;
        let cell_of = |p: &[f64; 3]| -> usize {
            let mut c = [0usize; 3];
            for k in 0..3 {
                let x = p[k].rem_euclid(l);
                c[k] = ((x / cell_w) as usize).min(ncell - 1);
            }
            (c[2] * ncell + c[1]) * ncell + c[0]
        };
        let mut cells: Vec<Vec<usize>> = vec![Vec::new(); ncell * ncell * ncell];
        for (i, p) in pos.iter().enumerate() {
            cells[cell_of(p)].push(i);
        }

        let rc2 = RC * RC;
        let mut force = vec![[0.0f64; 3]; n];
        let mut pot = 0.0;
        for (ci, members) in cells.iter().enumerate() {
            let cx = ci % ncell;
            let cy = (ci / ncell) % ncell;
            let cz = ci / (ncell * ncell);
            for &i in members {
                let mut fi = [0.0f64; 3];
                for dz in -1i64..=1 {
                    for dy in -1i64..=1 {
                        for dx in -1i64..=1 {
                            let nx = (cx as i64 + dx).rem_euclid(ncell as i64) as usize;
                            let ny = (cy as i64 + dy).rem_euclid(ncell as i64) as usize;
                            let nz = (cz as i64 + dz).rem_euclid(ncell as i64) as usize;
                            let cj = (nz * ncell + ny) * ncell + nx;
                            for &j in &cells[cj] {
                                if j == i {
                                    continue;
                                }
                                let mut d = [0.0f64; 3];
                                let mut r2 = 0.0;
                                for k in 0..3 {
                                    d[k] = min_image(pos[i][k] - pos[j][k], l);
                                    r2 += d[k] * d[k];
                                }
                                if r2 >= rc2 || r2 < 1e-12 {
                                    continue;
                                }
                                let inv2 = 1.0 / r2;
                                let inv6 = inv2 * inv2 * inv2;
                                // F/r = 24(2/r¹² − 1/r⁶)/r²
                                let fmag = 24.0 * inv2 * inv6 * (2.0 * inv6 - 1.0);
                                for k in 0..3 {
                                    fi[k] += fmag * d[k];
                                }
                                // Each pair visited twice: half the energy.
                                pot += 0.5 * (4.0 * inv6 * (inv6 - 1.0));
                            }
                        }
                    }
                }
                force[i] = fi;
            }
        }
        (force, pot)
    }

    /// Box side for `n` atoms at reduced density 0.8.
    pub fn box_side(n: usize) -> f64 {
        (n as f64 / 0.8).cbrt()
    }

    /// Lattice positions with small seeded jitter and random velocities for
    /// `n` atoms in a box of side `l`. Returns `(pos, vel)` with zero net
    /// momentum.
    pub fn init(n: usize, l: f64, rng: &mut impl rand::Rng) -> (Vec<[f64; 3]>, Vec<[f64; 3]>) {
        let per_side = (n as f64).cbrt().ceil() as usize;
        let spacing = l / per_side as f64;
        let mut pos = Vec::with_capacity(n);
        'fill: for z in 0..per_side {
            for y in 0..per_side {
                for x in 0..per_side {
                    if pos.len() == n {
                        break 'fill;
                    }
                    let jitter = 0.05 * spacing;
                    pos.push([
                        (x as f64 + 0.5) * spacing + jitter * (rng.gen::<f64>() - 0.5),
                        (y as f64 + 0.5) * spacing + jitter * (rng.gen::<f64>() - 0.5),
                        (z as f64 + 0.5) * spacing + jitter * (rng.gen::<f64>() - 0.5),
                    ]);
                }
            }
        }
        let mut vel: Vec<[f64; 3]> = (0..n)
            .map(|_| {
                [
                    rng.gen::<f64>() - 0.5,
                    rng.gen::<f64>() - 0.5,
                    rng.gen::<f64>() - 0.5,
                ]
            })
            .collect();
        let mut mean = [0.0f64; 3];
        for v in &vel {
            for k in 0..3 {
                mean[k] += v[k] / n as f64;
            }
        }
        for v in &mut vel {
            for k in 0..3 {
                v[k] -= mean[k];
            }
        }
        (pos, vel)
    }
}

/// One atom (array-of-structs layout; deliberately scattered for
/// serialization).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Atom {
    /// Position.
    pub pos: [f64; 3],
    /// Velocity.
    pub vel: [f64; 3],
    /// Force accumulator from the last evaluation.
    pub force: [f64; 3],
    /// Stable atom id.
    pub id: u64,
}

impl Pup for Atom {
    fn pup(&mut self, p: &mut dyn Puper) -> PupResult {
        p.pup_f64_slice(&mut self.pos)?;
        p.pup_f64_slice(&mut self.vel)?;
        p.pup_f64_slice(&mut self.force)?;
        p.pup_u64(&mut self.id)
    }
}

/// The LeanMD kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct LeanMd {
    atoms: Vec<Atom>,
    l: f64,
    iter: u64,
}

impl LeanMd {
    /// The Table 2 per-core configuration: 4 000 atoms.
    pub fn table2(seed: u64) -> Self {
        Self::new(4000, seed)
    }

    /// `n` atoms at reduced density 0.8, deterministic in `seed`.
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n >= 2);
        let l = md::box_side(n);
        let mut rng = StdRng::seed_from_u64(seed);
        let (pos, vel) = md::init(n, l, &mut rng);
        let mut s = Self {
            atoms: pos
                .into_iter()
                .zip(vel)
                .enumerate()
                .map(|(i, (pos, vel))| Atom {
                    pos,
                    vel,
                    force: [0.0; 3],
                    id: i as u64,
                })
                .collect(),
            l,
            iter: 0,
        };
        s.eval_forces();
        s
    }

    fn eval_forces(&mut self) -> f64 {
        let pos: Vec<[f64; 3]> = self.atoms.iter().map(|a| a.pos).collect();
        let (force, pot) = md::forces(&pos, self.l);
        for (a, f) in self.atoms.iter_mut().zip(force) {
            a.force = f;
        }
        pot
    }

    /// Kinetic + potential energy.
    pub fn total_energy(&mut self) -> f64 {
        let pos: Vec<[f64; 3]> = self.atoms.iter().map(|a| a.pos).collect();
        let (_, pot) = md::forces(&pos, self.l);
        let ke: f64 = self
            .atoms
            .iter()
            .map(|a| 0.5 * (a.vel[0].powi(2) + a.vel[1].powi(2) + a.vel[2].powi(2)))
            .sum();
        ke + pot
    }

    /// Atom count.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Never empty (`n ≥ 2`).
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl MiniApp for LeanMd {
    fn name(&self) -> &'static str {
        "LeanMD"
    }

    fn step(&mut self) {
        // Velocity Verlet.
        let dt = md::DT;
        for a in &mut self.atoms {
            for k in 0..3 {
                a.vel[k] += 0.5 * dt * a.force[k];
                a.pos[k] = (a.pos[k] + dt * a.vel[k]).rem_euclid(self.l);
            }
        }
        self.eval_forces();
        for a in &mut self.atoms {
            for k in 0..3 {
                a.vel[k] += 0.5 * dt * a.force[k];
            }
        }
        self.iter += 1;
    }

    fn iteration(&self) -> u64 {
        self.iter
    }

    fn diagnostic(&self) -> f64 {
        // Mean speed (cheap, deterministic).
        self.atoms
            .iter()
            .map(|a| (a.vel[0].powi(2) + a.vel[1].powi(2) + a.vel[2].powi(2)).sqrt())
            .sum::<f64>()
            / self.atoms.len() as f64
    }
}

impl Pup for LeanMd {
    fn pup(&mut self, p: &mut dyn Puper) -> PupResult {
        pup_vec(p, &mut self.atoms)?;
        p.pup_f64(&mut self.l)?;
        p.pup_u64(&mut self.iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acr_pup::{compare, pack, unpack};

    #[test]
    fn energy_is_roughly_conserved() {
        let mut m = LeanMd::new(125, 7);
        let e0 = m.total_energy();
        for _ in 0..200 {
            m.step();
        }
        let e1 = m.total_energy();
        assert!(
            (e1 - e0).abs() / e0.abs().max(1.0) < 0.05,
            "energy drifted {e0} -> {e1}"
        );
    }

    #[test]
    fn atoms_stay_in_the_box() {
        let mut m = LeanMd::new(64, 3);
        for _ in 0..100 {
            m.step();
        }
        for a in &m.atoms {
            for k in 0..3 {
                assert!(a.pos[k] >= 0.0 && a.pos[k] < m.l);
            }
        }
    }

    #[test]
    fn same_seed_is_bitwise_deterministic() {
        let mut a = LeanMd::new(64, 42);
        let mut b = LeanMd::new(64, 42);
        for _ in 0..20 {
            a.step();
            b.step();
        }
        let bytes = pack(&mut a).unwrap();
        assert!(compare(&mut b, &bytes).unwrap().is_clean());
    }

    #[test]
    fn different_seed_differs() {
        let mut a = LeanMd::new(64, 1);
        let mut b = LeanMd::new(64, 2);
        assert_ne!(pack(&mut a).unwrap(), pack(&mut b).unwrap());
    }

    #[test]
    fn checkpoint_restart_replays_exactly() {
        let mut a = LeanMd::new(32, 5);
        for _ in 0..10 {
            a.step();
        }
        let ckpt = pack(&mut a).unwrap();
        for _ in 0..10 {
            a.step();
        }
        let mut b = LeanMd::new(2, 0);
        unpack(&ckpt, &mut b).unwrap();
        assert_eq!(b.iteration(), 10);
        for _ in 0..10 {
            b.step();
        }
        assert_eq!(pack(&mut a).unwrap(), pack(&mut b).unwrap());
    }

    #[test]
    fn table2_footprint_is_small() {
        let mut m = LeanMd::table2(1);
        let bytes = acr_pup::packed_size(&mut m).unwrap();
        // 4 000 atoms × 80 B ≈ 320 KB: the "low memory pressure" class.
        assert!(bytes > 300_000 && bytes < 350_000, "{bytes}");
    }
}
