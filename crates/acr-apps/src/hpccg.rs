//! HPCCG: a conjugate-gradient solve on a 27-point finite-element-like
//! operator over a structured 3D grid — the Mantevo mini-app mimicking
//! unstructured implicit FEM (40×40×40 points per core, Table 2).

use acr_pup::{Pup, PupResult, Puper};

use crate::MiniApp;

/// Matrix-free CG state for `A x = b` with the standard HPCCG operator:
/// diagonal 26.0, all 26 neighbours −1.0 (rows at the domain boundary
/// simply have fewer neighbours), `b` such that the exact solution is all
/// ones.
#[derive(Debug, Clone, PartialEq)]
pub struct Hpccg {
    nx: usize,
    ny: usize,
    nz: usize,
    /// Current solution estimate.
    x: Vec<f64>,
    /// Residual `b − A x`.
    r: Vec<f64>,
    /// Search direction.
    p: Vec<f64>,
    /// Scratch `A p` (checkpointed for simplicity of exact-replay).
    ap: Vec<f64>,
    /// `rᵀ r` of the current residual.
    rtr: f64,
    iter: u64,
}

impl Hpccg {
    /// The Table 2 per-core configuration: 40×40×40.
    pub fn table2() -> Self {
        Self::new(40, 40, 40)
    }

    /// CG over an `nx × ny × nz` grid.
    pub fn new(nx: usize, ny: usize, nz: usize) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0);
        let n = nx * ny * nz;
        let mut s = Self {
            nx,
            ny,
            nz,
            x: vec![0.0; n],
            r: vec![0.0; n],
            p: vec![0.0; n],
            ap: vec![0.0; n],
            rtr: 0.0,
            iter: 0,
        };
        // b for exact solution 1: b = A·1. With x0 = 0, r0 = b, p0 = r0.
        let ones = vec![1.0; n];
        s.apply_operator(&ones);
        s.r.copy_from_slice(&s.ap);
        s.p.copy_from_slice(&s.r);
        s.rtr = dot(&s.r, &s.r);
        s
    }

    /// `ap = A v` for the 27-point operator.
    fn apply_operator(&mut self, v: &[f64]) {
        let (nx, ny, nz) = (self.nx as isize, self.ny as isize, self.nz as isize);
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    let i = ((z * ny + y) * nx + x) as usize;
                    let mut acc = 26.0 * v[i];
                    for dz in -1..=1 {
                        for dy in -1..=1 {
                            for dx in -1..=1 {
                                if dx == 0 && dy == 0 && dz == 0 {
                                    continue;
                                }
                                let (xx, yy, zz) = (x + dx, y + dy, z + dz);
                                if xx >= 0 && xx < nx && yy >= 0 && yy < ny && zz >= 0 && zz < nz {
                                    let j = ((zz * ny + yy) * nx + xx) as usize;
                                    acc -= v[j];
                                }
                            }
                        }
                    }
                    self.ap[i] = acc;
                }
            }
        }
    }

    /// Current residual norm `‖r‖₂`.
    pub fn residual_norm(&self) -> f64 {
        self.rtr.sqrt()
    }

    /// Max |xᵢ − 1|: distance from the known exact solution.
    pub fn solution_error(&self) -> f64 {
        self.x.iter().fold(0.0f64, |m, &v| m.max((v - 1.0).abs()))
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

impl MiniApp for Hpccg {
    fn name(&self) -> &'static str {
        "HPCCG"
    }

    fn step(&mut self) {
        // One textbook CG iteration.
        let p = std::mem::take(&mut self.p);
        self.apply_operator(&p);
        self.p = p;
        let pap = dot(&self.p, &self.ap);
        if pap.abs() < f64::MIN_POSITIVE {
            self.iter += 1;
            return; // converged to machine zero; keep iterating as a no-op
        }
        let alpha = self.rtr / pap;
        for i in 0..self.x.len() {
            self.x[i] += alpha * self.p[i];
            self.r[i] -= alpha * self.ap[i];
        }
        let rtr_new = dot(&self.r, &self.r);
        let beta = rtr_new / self.rtr;
        for i in 0..self.p.len() {
            self.p[i] = self.r[i] + beta * self.p[i];
        }
        self.rtr = rtr_new;
        self.iter += 1;
    }

    fn iteration(&self) -> u64 {
        self.iter
    }

    fn diagnostic(&self) -> f64 {
        self.residual_norm()
    }
}

impl Pup for Hpccg {
    fn pup(&mut self, p: &mut dyn Puper) -> PupResult {
        p.pup_usize(&mut self.nx)?;
        p.pup_usize(&mut self.ny)?;
        p.pup_usize(&mut self.nz)?;
        self.x.pup(p)?;
        self.r.pup(p)?;
        self.p.pup(p)?;
        self.ap.pup(p)?;
        p.pup_f64(&mut self.rtr)?;
        p.pup_u64(&mut self.iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acr_pup::{compare, pack, unpack};

    #[test]
    fn cg_converges_to_the_known_solution() {
        let mut cg = Hpccg::new(8, 8, 8);
        let r0 = cg.residual_norm();
        assert!(r0 > 1.0);
        for _ in 0..25 {
            cg.step();
        }
        assert!(
            cg.residual_norm() < r0 * 1e-6,
            "residual {}",
            cg.residual_norm()
        );
        assert!(cg.solution_error() < 1e-6, "error {}", cg.solution_error());
    }

    #[test]
    fn residual_is_monotone_ish() {
        // CG residuals can oscillate but must collapse over a window.
        let mut cg = Hpccg::new(6, 6, 6);
        let mut last_window = f64::INFINITY;
        for _ in 0..4 {
            let mut best = f64::INFINITY;
            for _ in 0..5 {
                cg.step();
                best = best.min(cg.residual_norm());
            }
            assert!(best < last_window);
            last_window = best;
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = Hpccg::new(5, 4, 3);
        let mut b = Hpccg::new(5, 4, 3);
        for _ in 0..7 {
            a.step();
            b.step();
        }
        let bytes = pack(&mut a).unwrap();
        assert!(compare(&mut b, &bytes).unwrap().is_clean());
    }

    #[test]
    fn checkpoint_restart_replays_exactly() {
        let mut a = Hpccg::new(4, 4, 4);
        for _ in 0..5 {
            a.step();
        }
        let ckpt = pack(&mut a).unwrap();
        for _ in 0..5 {
            a.step();
        }
        let mut b = Hpccg::new(1, 1, 1);
        unpack(&ckpt, &mut b).unwrap();
        assert_eq!(b.iteration(), 5);
        for _ in 0..5 {
            b.step();
        }
        assert_eq!(pack(&mut a).unwrap(), pack(&mut b).unwrap());
    }

    #[test]
    fn table2_footprint() {
        let mut cg = Hpccg::table2();
        let bytes = acr_pup::packed_size(&mut cg).unwrap();
        // 4 vectors of 64 000 f64 ≈ 2 MiB per core.
        assert!(bytes > 2_000_000 && bytes < 2_200_000, "{bytes}");
    }

    #[test]
    fn degenerate_converged_state_is_stable() {
        let mut cg = Hpccg::new(2, 2, 2);
        for _ in 0..100 {
            cg.step();
        }
        assert_eq!(cg.iteration(), 100);
        assert!(cg.residual_norm().is_finite());
    }
}
