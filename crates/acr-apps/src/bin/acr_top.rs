//! `acr-top` — a terminal status view over a running or dead ACR job.
//!
//! Two sources, one fold:
//!
//! - **Live**: `acr-top --addr 127.0.0.1:7070` polls the driver's
//!   operator endpoint (`GET /events?since=<seq>`) and folds the NDJSON
//!   event tail into an [`acr_obs::StatusModel`] locally — the same model
//!   the driver itself serves at `/status`.
//! - **Offline**: `acr-top --store <persist_dir>` replays a dead or
//!   killed driver's durable journal through
//!   [`acr_runtime::StoreView`], rendering what was true when the driver
//!   stopped writing — including a round it abandoned mid-capture.
//! - **Service overview**: `acr-top --store-root <root>` lists every
//!   per-job store a driver *service* left under `<root>/jobs/` (the
//!   [`acr_store::job_store_dir`] layout), one summary line per job.
//!
//! `--snapshot` prints one frame and exits (no ANSI, deterministic for a
//! given store), which is what CI runs against the crash-restart battery's
//! killed stores.

use acr_obs::{RecordedEvent, StatusModel};
use acr_runtime::StoreView;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

const USAGE: &str = "\
acr-top: live/offline status view of an ACR job

USAGE:
    acr-top --addr <host:port>  [--snapshot] [--interval-ms <n>]
    acr-top --store <dir>       [--snapshot] [--follow] [--interval-ms <n>]
    acr-top --store-root <dir>  [--snapshot] [--follow] [--interval-ms <n>]

SOURCES:
    --addr <host:port>   poll a live driver's operator endpoint
                         (JobConfig::builder().http_addr(..)); http:// prefix ok
    --store <dir>        replay a persist_dir journal (dead/killed driver)
    --store-root <dir>   multi-job overview of a driver service's store root
                         (one line per <dir>/jobs/<id>-<name> store)

MODES:
    --snapshot           print one frame and exit (no ANSI; CI-friendly)
    --follow             with --store/--store-root: keep polling for appends
    --interval-ms <n>    poll/redraw cadence, default 500
";

struct Args {
    addr: Option<String>,
    store: Option<String>,
    store_root: Option<String>,
    snapshot: bool,
    follow: bool,
    interval: Duration,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: None,
        store: None,
        store_root: None,
        snapshot: false,
        follow: false,
        interval: Duration::from_millis(500),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => args.addr = Some(it.next().ok_or("--addr needs a value")?),
            "--store" => args.store = Some(it.next().ok_or("--store needs a value")?),
            "--store-root" => {
                args.store_root = Some(it.next().ok_or("--store-root needs a value")?)
            }
            "--snapshot" => args.snapshot = true,
            "--follow" => args.follow = true,
            "--interval-ms" => {
                let v = it.next().ok_or("--interval-ms needs a value")?;
                let ms: u64 = v.parse().map_err(|_| format!("bad --interval-ms {v}"))?;
                args.interval = Duration::from_millis(ms.max(1));
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    let sources = [&args.addr, &args.store, &args.store_root]
        .iter()
        .filter(|s| s.is_some())
        .count();
    match sources {
        0 => Err("one of --addr, --store or --store-root is required".into()),
        1 => Ok(args),
        _ => Err("--addr, --store and --store-root are mutually exclusive".into()),
    }
}

/// One blocking HTTP/1.1 GET against `addr`, returning the response body.
fn http_get(addr: &str, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: acr\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    match response.split_once("\r\n\r\n") {
        Some((_, body)) => Ok(body.to_string()),
        None => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "malformed HTTP response",
        )),
    }
}

fn draw(frame: &str, snapshot: bool) {
    if snapshot {
        print!("{frame}");
    } else {
        // Clear screen + home, then the frame — a full redraw per tick.
        print!("\x1b[2J\x1b[H{frame}");
        let _ = std::io::stdout().flush();
    }
}

fn run_live(addr: &str, args: &Args) -> Result<(), String> {
    let addr = addr.trim_start_matches("http://").trim_end_matches('/');
    let mut model = StatusModel::default();
    // `since` is exclusive: name the last seq actually seen; the first
    // poll omits the parameter to get the full buffer.
    let mut last_seen: Option<u64> = None;
    let mut misses = 0u32;
    loop {
        let path = match last_seen {
            Some(seq) => format!("/events?since={seq}"),
            None => "/events".to_string(),
        };
        match http_get(addr, &path) {
            Ok(body) => {
                misses = 0;
                for line in body.lines().filter(|l| !l.trim().is_empty()) {
                    match RecordedEvent::from_json(line) {
                        Ok(ev) => model.apply(&ev),
                        Err(e) => eprintln!("acr-top: skipping bad event line: {e}"),
                    }
                }
                if let Some(seen) = model.last_seq() {
                    last_seen = Some(last_seen.unwrap_or(0).max(seen));
                }
            }
            Err(e) => {
                misses += 1;
                // The endpoint dies with the driver; after a few misses
                // show the final frame rather than spinning forever.
                if misses >= 3 {
                    if model.events_folded() == 0 {
                        return Err(format!("cannot reach {addr}: {e}"));
                    }
                    model.mark_source_ended();
                    draw(&model.render(), args.snapshot);
                    println!("acr-top: endpoint gone ({e}); last known state above");
                    return Ok(());
                }
            }
        }
        draw(&model.render(), args.snapshot);
        if args.snapshot || model.ended().is_some() {
            return Ok(());
        }
        std::thread::sleep(args.interval);
    }
}

fn run_store(dir: &str, args: &Args) -> Result<(), String> {
    let mut view = StoreView::open(dir);
    loop {
        view.refresh().map_err(|e| format!("reading {dir}: {e}"))?;
        if view.records() == 0 && view.skipped_bytes() == 0 {
            return Err(format!("no journal records found under {dir}"));
        }
        let status = view.status();
        let mut frame = status.render();
        if view.decode_errors() > 0 || view.skipped_bytes() > 0 {
            frame.push_str(&format!(
                "store damage: {} undecodable records, {} skipped bytes\n",
                view.decode_errors(),
                view.skipped_bytes()
            ));
        }
        draw(&frame, args.snapshot);
        if args.snapshot || !args.follow || view.closed().is_some() {
            return Ok(());
        }
        std::thread::sleep(args.interval);
    }
}

/// One line per job store under the service root: id, name, progress,
/// and how the store ended (running / completed / failed / interrupted).
fn run_store_root(root: &str, args: &Args) -> Result<(), String> {
    loop {
        let jobs = acr_store::list_job_stores(root).map_err(|e| format!("listing {root}: {e}"))?;
        let mut frame = format!("driver service store: {root}\n");
        if jobs.is_empty() {
            frame.push_str("no job stores found (nothing admitted yet?)\n");
        } else {
            frame.push_str(&format!(
                "{:>4}  {:<20} {:>8} {:>10} {:>7}  state\n",
                "id", "name", "records", "committed", "faults"
            ));
        }
        let mut all_closed = !jobs.is_empty();
        for job in &jobs {
            let mut view = StoreView::open(&job.dir);
            let line = match view.refresh() {
                Ok(_) => {
                    let status = view.status();
                    let state = match view.closed() {
                        Some(true) => "completed",
                        Some(false) => "failed",
                        None => {
                            all_closed = false;
                            "running/interrupted"
                        }
                    };
                    let committed = status
                        .committed_round()
                        .map(|r| r.to_string())
                        .unwrap_or_else(|| "-".to_string());
                    format!(
                        "{:>4}  {:<20} {:>8} {:>10} {:>7}  {}\n",
                        job.id,
                        job.name,
                        view.records(),
                        committed,
                        status.faults_injected(),
                        state
                    )
                }
                Err(e) => {
                    all_closed = false;
                    format!("{:>4}  {:<20} unreadable: {e}\n", job.id, job.name)
                }
            };
            frame.push_str(&line);
        }
        draw(&frame, args.snapshot);
        if args.snapshot || !args.follow || all_closed {
            return Ok(());
        }
        std::thread::sleep(args.interval);
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("acr-top: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let result = match (&args.addr, &args.store, &args.store_root) {
        (Some(addr), None, None) => run_live(&addr.clone(), &args),
        (None, Some(dir), None) => run_store(&dir.clone(), &args),
        (None, None, Some(root)) => run_store_root(&root.clone(), &args),
        _ => unreachable!("parse_args enforces exactly one source"),
    };
    if let Err(e) = result {
        eprintln!("acr-top: {e}");
        std::process::exit(1);
    }
}
