//! miniMD: the Mantevo molecular-dynamics mini-app (1 000 atoms per core,
//! Table 2) — same physics as LeanMD but structure-of-arrays storage, so
//! its checkpoints take the bulk `memcpy` serialization path. The
//! LeanMD/miniMD pair isolates the *data layout* effect on checkpoint cost
//! that Fig. 8c/8f show.

use acr_pup::{Pup, PupResult, Puper};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::leanmd::md;
use crate::MiniApp;

/// The miniMD kernel: SoA Lennard-Jones MD.
#[derive(Debug, Clone, PartialEq)]
pub struct MiniMd {
    n: usize,
    l: f64,
    /// Positions, flat `[x0,y0,z0, x1,...]`.
    pos: Vec<f64>,
    /// Velocities, same layout.
    vel: Vec<f64>,
    /// Forces, same layout.
    force: Vec<f64>,
    iter: u64,
}

impl MiniMd {
    /// The Table 2 per-core configuration: 1 000 atoms.
    pub fn table2(seed: u64) -> Self {
        Self::new(1000, seed)
    }

    /// `n` atoms at reduced density 0.8, deterministic in `seed`.
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n >= 2);
        let l = md::box_side(n);
        let mut rng = StdRng::seed_from_u64(seed);
        let (pos3, vel3) = md::init(n, l, &mut rng);
        let mut s = Self {
            n,
            l,
            pos: pos3.into_iter().flatten().collect(),
            vel: vel3.into_iter().flatten().collect(),
            force: vec![0.0; 3 * n],
            iter: 0,
        };
        s.eval_forces();
        s
    }

    fn gather(&self) -> Vec<[f64; 3]> {
        self.pos
            .chunks_exact(3)
            .map(|c| [c[0], c[1], c[2]])
            .collect()
    }

    fn eval_forces(&mut self) -> f64 {
        let (force, pot) = md::forces(&self.gather(), self.l);
        for (i, f) in force.into_iter().enumerate() {
            self.force[3 * i..3 * i + 3].copy_from_slice(&f);
        }
        pot
    }

    /// Kinetic + potential energy.
    pub fn total_energy(&mut self) -> f64 {
        let (_, pot) = md::forces(&self.gather(), self.l);
        let ke: f64 = self
            .vel
            .chunks_exact(3)
            .map(|v| 0.5 * (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]))
            .sum();
        ke + pot
    }

    /// Atom count.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Never empty (`n ≥ 2`).
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl MiniApp for MiniMd {
    fn name(&self) -> &'static str {
        "miniMD"
    }

    fn step(&mut self) {
        let dt = md::DT;
        for i in 0..3 * self.n {
            self.vel[i] += 0.5 * dt * self.force[i];
            self.pos[i] = (self.pos[i] + dt * self.vel[i]).rem_euclid(self.l);
        }
        self.eval_forces();
        for i in 0..3 * self.n {
            self.vel[i] += 0.5 * dt * self.force[i];
        }
        self.iter += 1;
    }

    fn iteration(&self) -> u64 {
        self.iter
    }

    fn diagnostic(&self) -> f64 {
        self.vel
            .chunks_exact(3)
            .map(|v| (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt())
            .sum::<f64>()
            / self.n as f64
    }
}

impl Pup for MiniMd {
    fn pup(&mut self, p: &mut dyn Puper) -> PupResult {
        p.pup_usize(&mut self.n)?;
        p.pup_f64(&mut self.l)?;
        self.pos.pup(p)?;
        self.vel.pup(p)?;
        self.force.pup(p)?;
        p.pup_u64(&mut self.iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::leanmd::LeanMd;
    use acr_pup::{compare, pack, unpack};

    #[test]
    fn energy_is_roughly_conserved() {
        let mut m = MiniMd::new(125, 9);
        let e0 = m.total_energy();
        for _ in 0..200 {
            m.step();
        }
        let e1 = m.total_energy();
        assert!((e1 - e0).abs() / e0.abs().max(1.0) < 0.05, "{e0} -> {e1}");
    }

    #[test]
    fn soa_and_aos_layouts_produce_identical_trajectories() {
        // Same physics, same seed: LeanMD (AoS) and miniMD (SoA) must agree
        // to the bit — they differ only in storage and serialization.
        let mut aos = LeanMd::new(64, 11);
        let mut soa = MiniMd::new(64, 11);
        for _ in 0..50 {
            aos.step();
            soa.step();
        }
        assert_eq!(aos.diagnostic().to_bits(), soa.diagnostic().to_bits());
    }

    #[test]
    fn deterministic_and_checkpointable() {
        let mut a = MiniMd::new(64, 4);
        let mut b = MiniMd::new(64, 4);
        for _ in 0..20 {
            a.step();
            b.step();
        }
        let bytes = pack(&mut a).unwrap();
        assert!(compare(&mut b, &bytes).unwrap().is_clean());

        for _ in 0..10 {
            a.step();
        }
        let mut c = MiniMd::new(2, 0);
        unpack(&bytes, &mut c).unwrap();
        for _ in 0..10 {
            c.step();
        }
        assert_eq!(pack(&mut a).unwrap(), pack(&mut c).unwrap());
    }

    #[test]
    fn table2_footprint_is_the_smallest() {
        let mut m = MiniMd::table2(1);
        let bytes = acr_pup::packed_size(&mut m).unwrap();
        // 1 000 atoms × 72 B ≈ 72 KB.
        assert!(bytes > 70_000 && bytes < 80_000, "{bytes}");
    }
}
