//! Per-application profiles for the at-scale simulator: the Table 2
//! configurations expressed as checkpoint footprint + serialization
//! character + iteration cost.

/// The paper's high/low memory-pressure classification (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryPressure {
    /// Multi-megabyte per-core checkpoints (Jacobi3D, HPCCG, LULESH):
    /// checkpoint-transfer dominated, mapping-sensitive (Fig. 8a/b/d/e).
    High,
    /// Sub-megabyte per-core checkpoints (LeanMD, miniMD): fixed costs and
    /// serialization dominate (Fig. 8c/f).
    Low,
}

/// What the simulator needs to know about a mini-app.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppProfile {
    /// Figure label, e.g. "Jacobi3D Charm++".
    pub name: &'static str,
    /// Packed checkpoint bytes per core (measured from the real kernels'
    /// Table 2 configurations — see each kernel's `table2_footprint` test).
    pub ckpt_bytes_per_core: u64,
    /// Serialization slowdown relative to a bulk contiguous copy: 1.0 for
    /// flat arrays, higher for scattered (AoS) or many-array state. This is
    /// the §6.2 "scattered in the memory" effect.
    pub scatter_factor: f64,
    /// Forward-path time of one application iteration per core (seconds) —
    /// sets how often progress reports reach the ACR consensus.
    pub iter_time_s: f64,
    /// Memory-pressure class.
    pub pressure: MemoryPressure,
}

impl AppProfile {
    /// Checkpoint bytes for a whole node of `cores` cores.
    pub fn node_bytes(&self, cores: u64) -> u64 {
        self.ckpt_bytes_per_core * cores
    }
}

/// The six evaluated configurations of §6 (five mini-apps, with Jacobi3D in
/// both programming models), per-core parameters from Table 2.
pub const TABLE2: [AppProfile; 6] = [
    AppProfile {
        name: "Jacobi3D Charm++",
        ckpt_bytes_per_core: 4_530_000, // 64×64×128 + halos, f64
        scatter_factor: 1.0,
        iter_time_s: 0.20,
        pressure: MemoryPressure::High,
    },
    AppProfile {
        name: "Jacobi3D AMPI",
        // Same data; AMPI's virtualized-rank bookkeeping adds a little
        // serialization overhead.
        ckpt_bytes_per_core: 4_530_000,
        scatter_factor: 1.1,
        iter_time_s: 0.20,
        pressure: MemoryPressure::High,
    },
    AppProfile {
        name: "HPCCG",
        ckpt_bytes_per_core: 2_050_000, // 4 × 40³ f64 vectors
        scatter_factor: 1.2,
        iter_time_s: 0.15,
        pressure: MemoryPressure::High,
    },
    AppProfile {
        name: "LULESH",
        ckpt_bytes_per_core: 6_030_000, // 32×32×64 elements, 12 arrays
        // "more complicated data structures for serialization" (§6.2)
        scatter_factor: 1.8,
        iter_time_s: 0.30,
        pressure: MemoryPressure::High,
    },
    AppProfile {
        name: "LeanMD",
        ckpt_bytes_per_core: 325_000, // 4 000 atoms, AoS
        // per-atom traversal: the scattered low-memory case
        scatter_factor: 2.5,
        iter_time_s: 0.05,
        pressure: MemoryPressure::Low,
    },
    AppProfile {
        name: "miniMD",
        ckpt_bytes_per_core: 73_000, // 1 000 atoms, SoA
        scatter_factor: 1.4,
        iter_time_s: 0.03,
        pressure: MemoryPressure::Low,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprints_match_the_real_kernels() {
        use crate::{Hpccg, Jacobi3d, LeanMd, LuleshProxy, MiniMd};
        let within = |profile_bytes: u64, real: usize| {
            let p = profile_bytes as f64;
            (p - real as f64).abs() / p < 0.1
        };
        assert!(within(
            TABLE2[0].ckpt_bytes_per_core,
            acr_pup::packed_size(&mut Jacobi3d::table2()).unwrap()
        ));
        assert!(within(
            TABLE2[2].ckpt_bytes_per_core,
            acr_pup::packed_size(&mut Hpccg::table2()).unwrap()
        ));
        assert!(within(
            TABLE2[3].ckpt_bytes_per_core,
            acr_pup::packed_size(&mut LuleshProxy::table2()).unwrap()
        ));
        assert!(within(
            TABLE2[4].ckpt_bytes_per_core,
            acr_pup::packed_size(&mut LeanMd::table2(0)).unwrap()
        ));
        assert!(within(
            TABLE2[5].ckpt_bytes_per_core,
            acr_pup::packed_size(&mut MiniMd::table2(0)).unwrap()
        ));
    }

    #[test]
    fn pressure_classes_match_table2() {
        for p in &TABLE2 {
            match p.pressure {
                MemoryPressure::High => assert!(p.ckpt_bytes_per_core > 1_000_000),
                MemoryPressure::Low => assert!(p.ckpt_bytes_per_core < 1_000_000),
            }
        }
    }

    #[test]
    fn node_bytes_scales_by_cores() {
        let p = &TABLE2[0];
        assert_eq!(p.node_bytes(4), 4 * p.ckpt_bytes_per_core);
    }

    #[test]
    fn scattered_apps_pay_more_per_byte() {
        let jacobi = &TABLE2[0];
        let leanmd = &TABLE2[4];
        assert!(leanmd.scatter_factor > jacobi.scatter_factor);
    }
}
