//! LULESH proxy: Lagrangian explicit shock hydrodynamics with element
//! centering and nodal centering (32×32×64 elements per core, Table 2).
//!
//! The kernel is a staggered-grid von Neumann–Richtmyer Lagrangian scheme
//! driven by a Sedov-style energy deposition: element-centred
//! thermodynamics (energy, pressure, artificial viscosity, volume) and
//! node-centred kinematics (position, velocity, force, mass), plus region
//! bookkeeping — the same *shape* of state as LULESH, which is what matters
//! for checkpointing: many distinct arrays of differing widths make its
//! serialization the slowest of the high-memory-pressure apps (§6.2:
//! "LULESH takes longer in local checkpointing since it contains more
//! complicated data structures").

use acr_pup::{Pup, PupResult, Puper};

use crate::MiniApp;

const GAMMA: f64 = 1.4;
/// Artificial viscosity coefficients (quadratic, linear).
const Q1: f64 = 2.0;
const Q2: f64 = 1.0;
/// Courant factor.
const CFL: f64 = 0.25;

/// Lagrangian hydro state over `n` elements (zones) and `n + 1` nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct LuleshProxy {
    n: usize,
    // Node-centred.
    /// Node positions (monotone increasing).
    pos: Vec<f64>,
    /// Node velocities.
    vel: Vec<f64>,
    /// Nodal masses.
    nodal_mass: Vec<f64>,
    /// Nodal force accumulator.
    force: Vec<f64>,
    // Element-centred.
    /// Zone internal energy per unit mass.
    energy: Vec<f64>,
    /// Zone pressure.
    pressure: Vec<f64>,
    /// Zone artificial viscosity.
    qvisc: Vec<f64>,
    /// Zone mass (constant in Lagrangian frames).
    zone_mass: Vec<f64>,
    /// Zone reference volume.
    vol0: Vec<f64>,
    /// Zone relative volume `V/V₀`.
    relvol: Vec<f64>,
    /// Zone sound speed.
    sound: Vec<f64>,
    /// Region id per element (LULESH's material regions; exercised here as
    /// mixed-width checkpoint data).
    region: Vec<i32>,
    /// Timestep (recomputed each cycle from the Courant condition).
    dt: f64,
    /// Simulated time.
    time: f64,
    iter: u64,
}

impl LuleshProxy {
    /// The Table 2 per-core configuration: 32×32×64 = 65 536 elements.
    pub fn table2() -> Self {
        Self::new(32 * 32 * 64)
    }

    /// A Sedov-style problem over `n` elements on `[0, 1]`: cold uniform
    /// gas, all the energy deposited in the first zone.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2);
        let dx = 1.0 / n as f64;
        let pos: Vec<f64> = (0..=n).map(|i| i as f64 * dx).collect();
        let rho0 = 1.0;
        let zone_mass = vec![rho0 * dx; n];
        let mut nodal_mass = vec![0.0; n + 1];
        for i in 0..n {
            nodal_mass[i] += zone_mass[i] / 2.0;
            nodal_mass[i + 1] += zone_mass[i] / 2.0;
        }
        let mut energy = vec![1e-6; n];
        energy[0] = 1.0 / zone_mass[0]; // unit total energy in the first zone
        let region: Vec<i32> = (0..n).map(|i| (i * 11 % 7) as i32).collect();
        let mut s = Self {
            n,
            pos,
            vel: vec![0.0; n + 1],
            nodal_mass,
            force: vec![0.0; n + 1],
            pressure: vec![0.0; n],
            qvisc: vec![0.0; n],
            zone_mass,
            vol0: vec![dx; n],
            relvol: vec![1.0; n],
            sound: vec![0.0; n],
            energy,
            region,
            dt: 1e-6,
            time: 0.0,
            iter: 0,
        };
        s.update_thermo();
        s
    }

    fn update_thermo(&mut self) {
        for i in 0..self.n {
            let vol = self.relvol[i] * self.vol0[i];
            let rho = self.zone_mass[i] / vol;
            self.pressure[i] = (GAMMA - 1.0) * rho * self.energy[i].max(0.0);
            self.sound[i] = (GAMMA * self.pressure[i] / rho).max(1e-20).sqrt();
        }
    }

    /// Position of the shock front: the rightmost zone whose pressure rises
    /// clearly above the cold background.
    pub fn shock_position(&self) -> f64 {
        let threshold = 1e-3;
        for i in (0..self.n).rev() {
            if self.pressure[i] > threshold {
                return 0.5 * (self.pos[i] + self.pos[i + 1]);
            }
        }
        0.0
    }

    /// Total energy (internal + kinetic) — conserved by the scheme up to
    /// viscosity-consistent discretization error.
    pub fn total_energy(&self) -> f64 {
        let internal: f64 = (0..self.n)
            .map(|i| self.zone_mass[i] * self.energy[i])
            .sum();
        let kinetic: f64 = (0..=self.n)
            .map(|i| 0.5 * self.nodal_mass[i] * self.vel[i] * self.vel[i])
            .sum();
        internal + kinetic
    }

    /// Simulated time.
    pub fn time(&self) -> f64 {
        self.time
    }
}

impl MiniApp for LuleshProxy {
    fn name(&self) -> &'static str {
        "LULESH"
    }

    fn step(&mut self) {
        let n = self.n;
        // 1. Artificial viscosity (only in compression).
        for i in 0..n {
            let du = self.vel[i + 1] - self.vel[i];
            if du < 0.0 {
                let vol = self.relvol[i] * self.vol0[i];
                let rho = self.zone_mass[i] / vol;
                self.qvisc[i] = rho * (Q1 * du * du - Q2 * self.sound[i] * du);
            } else {
                self.qvisc[i] = 0.0;
            }
        }
        // 2. Nodal forces from pressure + viscosity jumps (1D: force =
        //    −Δ(P+q) across the node; boundaries are rigid walls).
        for i in 1..n {
            let left = self.pressure[i - 1] + self.qvisc[i - 1];
            let right = self.pressure[i] + self.qvisc[i];
            self.force[i] = left - right;
        }
        self.force[0] = 0.0;
        self.force[n] = 0.0;
        // 3. Integrate kinematics.
        for i in 1..n {
            self.vel[i] += self.dt * self.force[i] / self.nodal_mass[i];
        }
        // rigid walls
        self.vel[0] = 0.0;
        self.vel[n] = 0.0;
        let old_pos = self.pos.clone();
        for i in 0..=n {
            self.pos[i] += self.dt * self.vel[i];
        }
        // 4. Update volumes and internal energy (pdV work with the
        //    half-step pressure approximation).
        for i in 0..n {
            let newvol = self.pos[i + 1] - self.pos[i];
            let oldvol = old_pos[i + 1] - old_pos[i];
            let dvol = newvol - oldvol;
            let work = (self.pressure[i] + self.qvisc[i]) * dvol;
            self.energy[i] = (self.energy[i] - work / self.zone_mass[i]).max(0.0);
            self.relvol[i] = newvol / self.vol0[i];
        }
        self.update_thermo();
        // 5. Courant timestep for the next cycle.
        let mut dt = f64::INFINITY;
        for i in 0..n {
            let width = self.pos[i + 1] - self.pos[i];
            dt = dt.min(CFL * width / self.sound[i].max(1e-12));
        }
        self.dt = dt.min(self.dt * 1.1).min(1e-2);
        self.time += self.dt;
        self.iter += 1;
    }

    fn iteration(&self) -> u64 {
        self.iter
    }

    fn diagnostic(&self) -> f64 {
        self.total_energy()
    }
}

impl Pup for LuleshProxy {
    fn pup(&mut self, p: &mut dyn Puper) -> PupResult {
        p.pup_usize(&mut self.n)?;
        self.pos.pup(p)?;
        self.vel.pup(p)?;
        self.nodal_mass.pup(p)?;
        self.force.pup(p)?;
        self.energy.pup(p)?;
        self.pressure.pup(p)?;
        self.qvisc.pup(p)?;
        self.zone_mass.pup(p)?;
        self.vol0.pup(p)?;
        self.relvol.pup(p)?;
        self.sound.pup(p)?;
        self.region.pup(p)?;
        p.pup_f64(&mut self.dt)?;
        p.pup_f64(&mut self.time)?;
        p.pup_u64(&mut self.iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acr_pup::{compare, pack, unpack};

    #[test]
    fn shock_propagates_outward() {
        let mut h = LuleshProxy::new(256);
        let start = h.shock_position();
        for _ in 0..400 {
            h.step();
        }
        let end = h.shock_position();
        assert!(end > start + 0.05, "shock moved {start} -> {end}");
        assert!(h.time() > 0.0);
    }

    #[test]
    fn energy_roughly_conserved() {
        let mut h = LuleshProxy::new(128);
        let e0 = h.total_energy();
        for _ in 0..300 {
            h.step();
        }
        let e1 = h.total_energy();
        assert!((e1 - e0).abs() / e0 < 0.05, "energy drift {e0} -> {e1}");
    }

    #[test]
    fn state_stays_physical() {
        let mut h = LuleshProxy::new(64);
        for _ in 0..500 {
            h.step();
        }
        for i in 0..64 {
            assert!(h.relvol[i] > 0.0, "zone {i} inverted");
            assert!(h.pressure[i] >= 0.0 && h.pressure[i].is_finite());
            assert!(h.energy[i] >= 0.0);
        }
        assert!(h.pos.windows(2).all(|w| w[1] > w[0]), "mesh tangled");
    }

    #[test]
    fn deterministic_and_checkpointable() {
        let mut a = LuleshProxy::new(64);
        let mut b = LuleshProxy::new(64);
        for _ in 0..50 {
            a.step();
            b.step();
        }
        let bytes = pack(&mut a).unwrap();
        assert!(compare(&mut b, &bytes).unwrap().is_clean());

        // restart replays exactly
        for _ in 0..25 {
            a.step();
        }
        let mut c = LuleshProxy::new(2);
        unpack(&bytes, &mut c).unwrap();
        for _ in 0..25 {
            c.step();
        }
        assert_eq!(pack(&mut a).unwrap(), pack(&mut c).unwrap());
    }

    #[test]
    fn table2_footprint_is_the_largest_of_the_mini_apps() {
        let mut h = LuleshProxy::table2();
        let bytes = acr_pup::packed_size(&mut h).unwrap();
        // 65 536 elements × (8 f64 element arrays + i32 regions) + 4 node
        // arrays ≈ 6.6 MB.
        assert!(bytes > 6_000_000 && bytes < 8_000_000, "{bytes}");
    }
}
