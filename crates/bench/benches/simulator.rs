//! Simulator performance: whole-job timelines per second (the harness runs
//! hundreds of these for Figs. 9/11), and link-load analysis on the largest
//! machine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use acr_apps::TABLE2;
use acr_core::{DetectionMethod, Scheme};
use acr_fault::{FailureDistribution, FailureProcess, FailureTrace};
use acr_sim::{Machine, SimConfig, TauPolicy, Timeline};
use acr_topology::{ExchangePattern, LinkLoads, MappingKind};

fn bench_timeline(c: &mut Criterion) {
    let machine = Machine::bgp(65536, MappingKind::Default);
    let timeline = Timeline::new(machine, TABLE2[0]);
    let trace = FailureTrace::generate(
        Some(FailureProcess::Renewal(FailureDistribution::exponential(
            5_000.0,
        ))),
        Some(FailureProcess::Renewal(FailureDistribution::exponential(
            20_000.0,
        ))),
        3.0 * 86_400.0,
        32_768,
        7,
    );
    let mut g = c.benchmark_group("sim_timeline_24h_job");
    for scheme in Scheme::ALL {
        g.bench_with_input(
            BenchmarkId::from_parameter(scheme.name()),
            &scheme,
            |b, &scheme| {
                b.iter(|| {
                    black_box(timeline.run(&SimConfig {
                        work: 86_400.0,
                        scheme,
                        detection: DetectionMethod::FullCompare,
                        tau: TauPolicy::Fixed(120.0),
                        trace: trace.clone(),
                        alarms: Vec::new(),
                    }))
                })
            },
        );
    }
    g.finish();
}

fn bench_linkloads(c: &mut Criterion) {
    let mut g = c.benchmark_group("link_load_analysis");
    for cores in [4096u64, 65536] {
        let m = Machine::bgp(cores, MappingKind::Default);
        g.bench_with_input(BenchmarkId::from_parameter(cores), &m, |b, m| {
            b.iter(|| {
                let loads =
                    LinkLoads::analyze(&m.torus, m.placement(), ExchangePattern::FullBuddyExchange);
                black_box(loads.max_load())
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = simulator;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_timeline, bench_linkloads
}
criterion_main!(simulator);
