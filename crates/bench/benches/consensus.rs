//! Checkpoint-consensus protocol cost (§2.2): messages and wall time per
//! round as the node count grows. The protocol is a tree reduction + two
//! broadcasts, so both should grow as Θ(n) messages / Θ(log n) depth — the
//! "minimal application interference" claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::VecDeque;
use std::hint::black_box;

use acr_core::{ConsensusAction, ConsensusEngine, ConsensusMsg};

/// Run one full round over `n` engines with synchronous delivery; returns
/// the number of protocol messages.
fn one_round(n: usize, round: u64, engines: &mut [ConsensusEngine]) -> usize {
    let mut queue: VecDeque<(usize, ConsensusMsg)> =
        (0..n).map(|i| (i, ConsensusMsg::Start { round })).collect();
    let mut messages = 0;
    let mut checkpoints = 0;
    while let Some((node, msg)) = queue.pop_front() {
        for action in engines[node].on_message(msg) {
            match action {
                ConsensusAction::Send { to, msg } => {
                    messages += 1;
                    queue.push_back((to, msg));
                }
                ConsensusAction::Checkpoint { .. } => checkpoints += 1,
            }
        }
    }
    assert_eq!(checkpoints, n, "every node must checkpoint");
    for e in engines.iter_mut() {
        e.checkpoint_done();
    }
    messages
}

fn bench_round(c: &mut Criterion) {
    let mut g = c.benchmark_group("consensus_round");
    for n in [16usize, 128, 1024, 8192] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut engines: Vec<ConsensusEngine> =
                (0..n).map(|i| ConsensusEngine::new(i, n, 1)).collect();
            // All tasks at the same iteration (a quiescent app): the bench
            // never steps tasks, so uneven progress could not drain to the
            // decided target and the round would (correctly) stall.
            for e in engines.iter_mut() {
                let _ = e.report_progress(0, 7);
            }
            let mut round = 0;
            b.iter(|| {
                round += 1;
                black_box(one_round(n, round, &mut engines))
            })
        });
    }
    g.finish();
}

fn bench_progress_report(c: &mut Criterion) {
    // The forward-path cost of the §2.2 hook: one progress report while no
    // round is in flight ("in most cases, this call returns immediately").
    let mut e = ConsensusEngine::new(0, 1024, 4);
    let mut p = 0;
    c.bench_function("idle_progress_report", |b| {
        b.iter(|| {
            p += 1;
            black_box(e.report_progress(p as usize % 4, p))
        })
    });
}

criterion_group! {
    name = consensus;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_round, bench_progress_report
}
criterion_main!(consensus);
