//! §4.2's cost analysis, measured: the full-checkpoint path costs one copy
//! per word plus the per-byte network charge β; the checksum path costs ~4
//! extra arithmetic ops per word (γ). Checksum wins iff γ < β/4. This bench
//! measures the γ side on the host CPU: Fletcher-64 throughput vs `memcpy`
//! and vs byte-wise comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use acr_pup::{fletcher64, Fletcher64};

fn bench_fletcher(c: &mut Criterion) {
    let mut g = c.benchmark_group("fletcher_vs_copy");
    for size in [4 * 1024usize, 256 * 1024, 4 * 1024 * 1024] {
        let data: Vec<u8> = (0..size).map(|i| (i * 31) as u8).collect();
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("fletcher64", size), &data, |b, d| {
            b.iter(|| fletcher64(black_box(d)))
        });
        g.bench_with_input(BenchmarkId::new("memcpy", size), &data, |b, d| {
            let mut dst = vec![0u8; d.len()];
            b.iter(|| {
                dst.copy_from_slice(black_box(d));
                black_box(dst[0])
            })
        });
        let other = data.clone();
        g.bench_with_input(BenchmarkId::new("bytewise_compare", size), &data, |b, d| {
            b.iter(|| black_box(d == &other))
        });
    }
    g.finish();
}

fn bench_streaming(c: &mut Criterion) {
    let data: Vec<u8> = (0..1 << 20).map(|i| (i * 7) as u8).collect();
    c.bench_function("fletcher64_streaming_64k_chunks", |b| {
        b.iter(|| {
            let mut f = Fletcher64::new();
            for chunk in data.chunks(64 * 1024) {
                f.update(black_box(chunk));
            }
            f.digest()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_fletcher, bench_streaming
}
criterion_main!(benches);
