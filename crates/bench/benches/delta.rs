//! The incremental-checkpoint diff kernel: given the previous round's
//! per-chunk digest table and the current round's `ChunkedDigest`, how fast
//! can the sender plan a delta (`diff_tables`), slice out the dirty windows
//! (`extract_delta`), and how fast can the receiver overlay them onto its
//! retained base (`apply_delta`)? Swept across payload sizes and dirty
//! fractions — the §4.2 decision between shipping a thin delta and a full
//! payload hinges on the plan step being effectively free next to the
//! digest pass itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use acr_pup::{apply_delta, chunk_digests, diff_tables, extract_delta, DEFAULT_CHUNK_SIZE};

/// One prepared sweep point: base payload, mutated payload, both digest
/// tables, and the resulting plan.
struct Case {
    base: Vec<u8>,
    current: Vec<u8>,
    prev_digests: Vec<u64>,
    current_chunked: acr_pup::ChunkedDigest,
}

/// Mutate `dirty_frac` of the payload's chunks, spread evenly, so the diff
/// kernel sees realistic scattered dirt rather than one contiguous run.
fn prepare(payload_len: usize, dirty_frac: f64) -> Case {
    let base: Vec<u8> = (0..payload_len).map(|i| (i * 31) as u8).collect();
    let mut current = base.clone();
    let total_chunks = payload_len.div_ceil(DEFAULT_CHUNK_SIZE);
    let dirty_chunks = ((total_chunks as f64) * dirty_frac).round().max(1.0) as usize;
    let stride = (total_chunks / dirty_chunks).max(1);
    for c in (0..total_chunks).step_by(stride).take(dirty_chunks) {
        let at = c * DEFAULT_CHUNK_SIZE;
        current[at] ^= 0x5a;
    }
    let prev_digests = chunk_digests(&base, DEFAULT_CHUNK_SIZE).chunk_digests;
    let current_chunked = chunk_digests(&current, DEFAULT_CHUNK_SIZE);
    Case {
        base,
        current,
        prev_digests,
        current_chunked,
    }
}

fn bench_delta(c: &mut Criterion) {
    let sizes = [256 << 10, 1 << 20, 4 << 20];
    let fracs = [0.01, 0.05, 0.25];

    let mut plan = c.benchmark_group("delta_diff_tables");
    for &size in &sizes {
        for &frac in &fracs {
            let case = prepare(size, frac);
            plan.throughput(Throughput::Bytes(size as u64));
            plan.bench_with_input(
                BenchmarkId::new(
                    format!("{}KiB", size >> 10),
                    format!("dirty{:.0}%", frac * 100.0),
                ),
                &case,
                |b, case| {
                    b.iter(|| {
                        diff_tables(
                            black_box(&case.prev_digests),
                            black_box(&case.current_chunked),
                            size,
                        )
                        .unwrap()
                    })
                },
            );
        }
    }
    plan.finish();

    let mut extract = c.benchmark_group("delta_extract");
    for &size in &sizes {
        for &frac in &fracs {
            let case = prepare(size, frac);
            let p = diff_tables(&case.prev_digests, &case.current_chunked, size).unwrap();
            extract.throughput(Throughput::Bytes(p.dirty_bytes() as u64));
            extract.bench_with_input(
                BenchmarkId::new(
                    format!("{}KiB", size >> 10),
                    format!("dirty{:.0}%", frac * 100.0),
                ),
                &(case, p),
                |b, (case, p)| b.iter(|| extract_delta(black_box(&case.current), black_box(p))),
            );
        }
    }
    extract.finish();

    let mut apply = c.benchmark_group("delta_apply");
    for &size in &sizes {
        for &frac in &fracs {
            let case = prepare(size, frac);
            let p = diff_tables(&case.prev_digests, &case.current_chunked, size).unwrap();
            let dirty = extract_delta(&case.current, &p);
            apply.throughput(Throughput::Bytes(size as u64));
            apply.bench_with_input(
                BenchmarkId::new(
                    format!("{}KiB", size >> 10),
                    format!("dirty{:.0}%", frac * 100.0),
                ),
                &(case.base.clone(), dirty),
                |b, (base, dirty)| {
                    b.iter(|| {
                        apply_delta(black_box(base), DEFAULT_CHUNK_SIZE, size, black_box(dirty))
                            .unwrap()
                    })
                },
            );
        }
    }
    apply.finish();
}

criterion_group!(benches, bench_delta);
criterion_main!(benches);
