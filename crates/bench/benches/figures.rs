//! `cargo bench` entry point that regenerates every table and figure of the
//! paper's evaluation (§6), printing the series and writing CSVs under
//! ./results/. Not a criterion bench: the artifact is the reproduction
//! itself, not a latency distribution.

fn main() {
    // When cargo passes `--bench`/filters, just run everything: the harness
    // is deterministic and fast (~seconds).
    println!("{}", bench::all_figures());
    println!("CSV series written to ./results/");
}
