//! The fused checkpoint pipeline: the seed pipeline packed every task and
//! then re-read the whole payload to compute its Fletcher-64 digest (two
//! memory passes); the [`DigestingPacker`] folds the digest — and the
//! per-chunk table that localizes divergence — into the pack pass itself.
//! This bench measures both pipelines over a multi-task, multi-MiB payload
//! (the per-node checkpoint of a Table 2-scale app), plus the sensitivity
//! of the fused path to the chunk-table granularity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use acr_pup::{
    fletcher64, DigestingPacker, Packer, Pup, PupResult, Puper, Sizer, DEFAULT_CHUNK_SIZE,
};

/// A mini-app task: an iteration counter plus a dense f64 grid (the shape
/// of the Jacobi/stencil states the runtime checkpoints).
struct Grid {
    iter: u64,
    data: Vec<f64>,
}

impl Pup for Grid {
    fn pup(&mut self, p: &mut dyn Puper) -> PupResult {
        p.pup_u64(&mut self.iter)?;
        self.data.pup(p)
    }
}

/// `n` tasks of `words` f64s each, distinct contents.
fn tasks(n: usize, words: usize) -> Vec<Grid> {
    (0..n)
        .map(|t| Grid {
            iter: t as u64,
            data: (0..words).map(|i| (t * words + i) as f64 * 0.25).collect(),
        })
        .collect()
}

fn payload_size(tasks: &mut [Grid]) -> usize {
    let mut s = Sizer::new();
    for t in tasks.iter_mut() {
        t.pup(&mut s).unwrap();
    }
    s.bytes()
}

/// The seed pipeline's structure: pack every task, then a second full pass
/// over the packed bytes for the digest. The payload allocation is recycled
/// across iterations (as a steady-state checkpoint loop would) so the
/// comparison isolates one-pass-vs-two from allocator and first-touch
/// page-fault noise — the fused arm recycles identically.
fn two_pass_seed(tasks: &mut [Grid], store: &mut Vec<u8>) -> (usize, u64) {
    let mut buf = std::mem::take(store);
    buf.clear();
    let mut p = Packer::into_buf(buf);
    for t in tasks.iter_mut() {
        t.pup(&mut p).unwrap();
    }
    let buf = p.finish();
    let digest = fletcher64(&buf);
    let len = buf.len();
    *store = buf;
    (len, digest)
}

/// The fused pipeline as the runtime runs it: a Sizer pass for the exact
/// payload size, then one combined pack+digest pass producing the payload,
/// the whole-payload digest, and the chunk table — same recycled
/// allocation as the seed arm.
fn fused(tasks: &mut [Grid], chunk_size: usize, store: &mut Vec<u8>) -> (usize, u64) {
    let cap = payload_size(tasks);
    let mut buf = std::mem::take(store);
    buf.reserve(cap);
    let mut p = DigestingPacker::reusing(buf, chunk_size);
    for t in tasks.iter_mut() {
        t.pup(&mut p).unwrap();
    }
    let (buf, chunked) = p.finish();
    let (len, digest) = (buf.len(), chunked.digest);
    *store = buf;
    (len, digest)
}

fn bench_pipeline(c: &mut Criterion) {
    // 32 tasks × 256 Ki f64 ≈ 64 MiB — comfortably past effective cache,
    // the regime where the second read pass of the seed pipeline costs
    // real DRAM time (a 20 MiB payload can sit entirely in a large shared
    // L3 and hide the extra pass).
    let mut ts = tasks(32, 256 * 1024);
    let cap = payload_size(&mut ts);
    assert!(cap >= 16 * 1024 * 1024, "payload {cap} under 16 MiB");

    let mut g = c.benchmark_group("checkpoint_pipeline");
    g.throughput(Throughput::Bytes(cap as u64));
    let mut store = Vec::new();
    g.bench_function(BenchmarkId::new("seed_pack_then_digest", cap), |b| {
        b.iter(|| black_box(two_pass_seed(black_box(&mut ts), &mut store)))
    });
    let mut store = Vec::new();
    g.bench_function(BenchmarkId::new("fused_size_pack_digest", cap), |b| {
        b.iter(|| black_box(fused(black_box(&mut ts), DEFAULT_CHUNK_SIZE, &mut store)))
    });
    g.finish();

    // Fused payload and digest must agree with the seed pipeline's.
    let mut reference = Vec::new();
    let (_, expect) = two_pass_seed(&mut ts, &mut reference);
    let mut buf = Vec::new();
    let (_, got) = fused(&mut ts, DEFAULT_CHUNK_SIZE, &mut buf);
    assert_eq!(buf, reference);
    assert_eq!(got, expect);
}

fn bench_chunk_granularity(c: &mut Criterion) {
    let mut ts = tasks(32, 256 * 1024);
    let cap = payload_size(&mut ts);
    let mut g = c.benchmark_group("fused_chunk_granularity");
    g.throughput(Throughput::Bytes(cap as u64));
    for chunk in [4 * 1024usize, 64 * 1024, 1024 * 1024] {
        let mut store = Vec::new();
        g.bench_function(BenchmarkId::new("chunk", chunk), |b| {
            b.iter(|| black_box(fused(black_box(&mut ts), chunk, &mut store)))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_pipeline, bench_chunk_granularity
}
criterion_main!(benches);
