//! PUP framework throughput on the real Table 2 kernels: pack (local
//! checkpoint), unpack (restart), compare (SDC detection) and the streaming
//! digest — the δ ingredients of Fig. 8, measured instead of modelled.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use acr_apps::{Hpccg, Jacobi3d, LeanMd, MiniApp, MiniMd};
use acr_pup::{compare, fletcher64_of, pack, packed_size, unpack, Pup};

fn bench_kernel<A: MiniApp + Pup>(c: &mut Criterion, name: &str, mut app: A) {
    // Warm the state a little so it is not trivially zero.
    for _ in 0..3 {
        app.step();
    }
    let size = packed_size(&mut app).unwrap() as u64;
    let ckpt = pack(&mut app).unwrap();

    let mut g = c.benchmark_group(format!("pup_{name}"));
    g.throughput(Throughput::Bytes(size));
    g.bench_function(BenchmarkId::new("pack", size), |b| {
        b.iter(|| pack(black_box(&mut app)).unwrap())
    });
    g.bench_function(BenchmarkId::new("unpack", size), |b| {
        b.iter(|| unpack(black_box(&ckpt), &mut app).unwrap())
    });
    g.bench_function(BenchmarkId::new("compare", size), |b| {
        b.iter(|| compare(black_box(&mut app), &ckpt).unwrap())
    });
    g.bench_function(BenchmarkId::new("fletcher", size), |b| {
        b.iter(|| fletcher64_of(black_box(&mut app)).unwrap())
    });
    g.finish();
}

fn benches(c: &mut Criterion) {
    // Scaled-down versions of the Table 2 shapes (the full ones take
    // seconds per pack in debug-free release mode; shapes are identical).
    bench_kernel(c, "jacobi3d", Jacobi3d::new(32, 32, 32));
    bench_kernel(c, "hpccg", Hpccg::new(20, 20, 20));
    bench_kernel(c, "leanmd_aos", LeanMd::new(1000, 1));
    bench_kernel(c, "minimd_soa", MiniMd::new(1000, 1));
}

criterion_group! {
    name = pup;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = benches
}
criterion_main!(pup);
