//! Regenerate the paper figure; see `bench::fig07`.
fn main() {
    println!("{}", bench::fig07());
}
