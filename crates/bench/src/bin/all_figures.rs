//! Regenerate every table and figure of the paper's evaluation; CSVs are
//! written to ./results/.
fn main() {
    println!("{}", bench::all_figures());
    println!("CSV series written to ./results/");
}
