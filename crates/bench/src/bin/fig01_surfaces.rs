//! Regenerate the paper figure; see `bench::fig01`.
fn main() {
    println!("{}", bench::fig01());
}
