//! Regenerate the paper figure; see `bench::fig09_fig11`.
fn main() {
    println!("{}", bench::fig09_fig11());
}
