//! Regenerate the paper figure; see `bench::fig10`.
fn main() {
    println!("{}", bench::fig10());
}
