//! Regenerate the paper figure; see `bench::fig08`.
fn main() {
    println!("{}", bench::fig08());
}
