//! Regenerate the paper figure; see `bench::fig06`.
fn main() {
    println!("{}", bench::fig06());
}
