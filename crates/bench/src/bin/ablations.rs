//! Regenerate the paper figure; see `bench::ablations`.
fn main() {
    println!("{}", bench::ablations());
}
