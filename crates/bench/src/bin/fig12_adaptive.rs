//! Regenerate the paper figure; see `bench::fig12`.
fn main() {
    println!("{}", bench::fig12());
}
