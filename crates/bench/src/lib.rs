//! Figure/table regeneration harness: one function per figure of the
//! paper's evaluation, each returning the printable series (and optionally
//! writing a CSV next to it).
//!
//! Shapes — who wins, by what factor, where crossovers fall — are the
//! reproduction target; absolute seconds come from the calibrated machine
//! model in `acr-sim` and land in the same range as the paper's Intrepid
//! measurements.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use acr_apps::{AppProfile, TABLE2};
use acr_core::{DetectionMethod, Scheme};
use acr_fault::{AdaptiveConfig, FailureDistribution, FailureProcess, FailureTrace};
use acr_model::{utilization_surface, ModelParams, SchemeModel, SurfaceConfig, SurfaceKind, HOUR};
use acr_sim::{checkpoint_breakdown, restart_breakdown, Machine, SimConfig, TauPolicy, Timeline};
use acr_topology::{ExchangePattern, LinkLoads, MappingKind, Torus3d};

/// Core-per-replica sweep of the §6 experiments (Figs. 8/10).
pub const CORE_SWEEP: [u64; 7] = [1024, 2048, 4096, 8192, 16384, 32768, 65536];
/// Socket-per-replica sweep of Figs. 9/11 (sockets = nodes on BG/P).
pub const SOCKET_SWEEP: [u64; 3] = [1024, 4096, 16384];

/// The four §6.2 configurations per app: three mappings under full
/// comparison plus the checksum method.
pub const CONFIGS: [(&str, MappingKind, DetectionMethod); 4] = [
    (
        "default",
        MappingKind::Default,
        DetectionMethod::FullCompare,
    ),
    (
        "mixed",
        MappingKind::Mixed { chunk: 2 },
        DetectionMethod::FullCompare,
    ),
    ("column", MappingKind::Column, DetectionMethod::FullCompare),
    ("checksum", MappingKind::Default, DetectionMethod::Checksum),
];

/// The Fig. 7 baseline at `sockets` per replica and checkpoint cost
/// `delta`: 24 h of work, 50-year per-socket MTBF, 100 FIT.
fn fig7_params(sockets: u64, delta: f64) -> ModelParams {
    ModelParams::builder()
        .sockets(sockets)
        .delta(delta)
        .build()
        .expect("fig7 baseline is positive")
}

/// Write `content` to `results/<name>` (best effort — the printable output
/// is the primary artifact).
pub fn save_csv(name: &str, content: &str) {
    let dir = Path::new("results");
    let _ = fs::create_dir_all(dir);
    let _ = fs::write(dir.join(name), content);
}

/// Fig. 1: utilization & vulnerability surfaces for no-FT, checkpoint-only
/// and ACR, over sockets × SDC-rate.
pub fn fig01() -> String {
    let cfg = SurfaceConfig::default();
    let sockets = [4096u64, 16384, 65536, 262_144, 1 << 20];
    let fits = [1.0, 100.0, 10_000.0];
    let mut out = String::new();
    let mut csv = String::from("kind,sockets,fit,utilization,vulnerability\n");
    writeln!(
        out,
        "Figure 1 — system utilization and vulnerability (120 h job)"
    )
    .unwrap();
    for (kind, label) in [
        (SurfaceKind::NoFaultTolerance, "1a no fault tolerance"),
        (
            SurfaceKind::CheckpointOnly,
            "1b hard-error checkpoint/restart",
        ),
        (SurfaceKind::Acr, "1c ACR"),
    ] {
        writeln!(out, "\n  ({label})").unwrap();
        writeln!(
            out,
            "  {:>10} | {:>24} | {:>24}",
            "sockets", "utilization @FIT 1/100/10k", "vulnerability"
        )
        .unwrap();
        for pts in utilization_surface(kind, &cfg, &sockets, &fits).chunks(fits.len()) {
            let u: Vec<String> = pts
                .iter()
                .map(|p| format!("{:.3}", p.utilization))
                .collect();
            let v: Vec<String> = pts
                .iter()
                .map(|p| format!("{:.3}", p.vulnerability))
                .collect();
            writeln!(
                out,
                "  {:>10} | {:>24} | {:>24}",
                pts[0].sockets,
                u.join(" / "),
                v.join(" / ")
            )
            .unwrap();
            for p in pts {
                writeln!(
                    csv,
                    "{label},{},{},{},{}",
                    p.sockets, p.sdc_fit, p.utilization, p.vulnerability
                )
                .unwrap();
            }
        }
    }
    save_csv("fig01_surfaces.csv", &csv);
    out
}

/// Fig. 6: per-link buddy-exchange message counts for the three mappings on
/// the 512-node (8×8×8) machine the paper draws.
pub fn fig06() -> String {
    let torus = Torus3d::mesh(8, 8, 8);
    let mut out = String::new();
    let mut csv = String::from("mapping,link_z,load\n");
    writeln!(
        out,
        "Figure 6 — inter-replica checkpoint messages per +Z link (8×8×8, front column)"
    )
    .unwrap();
    for (label, mapping) in [
        ("(a) default", MappingKind::Default),
        ("(b) column", MappingKind::Column),
        ("(c) mixed(2)", MappingKind::Mixed { chunk: 2 }),
    ] {
        let placement = mapping.place(&torus).expect("mapping fits");
        let loads = LinkLoads::analyze(&torus, &placement, ExchangePattern::FullBuddyExchange);
        let profile = loads.z_row_profile(&torus, 0, 0);
        writeln!(
            out,
            "  {label:<12} links: {:?}   max load {}   mean hops {:.1}",
            profile,
            loads.max_load(),
            loads.mean_hops()
        )
        .unwrap();
        for (z, l) in profile.iter().enumerate() {
            writeln!(csv, "{label},{z},{l}").unwrap();
        }
    }
    save_csv("fig06_mapping.csv", &csv);
    out
}

/// Fig. 7: model utilization (a) and undetected-SDC probability (b) for the
/// three schemes, δ ∈ {15, 180} s, 1K–256K sockets per replica.
pub fn fig07() -> String {
    let sweep = [
        1024u64, 2048, 4096, 8192, 16384, 32768, 65536, 131_072, 262_144,
    ];
    let mut out = String::new();
    let mut csv = String::from("delta,sockets,scheme,tau,utilization,p_undetected\n");
    writeln!(
        out,
        "Figure 7 — §5 model: utilization and P(undetected SDC), 24 h job, 100 FIT, 50 y/socket"
    )
    .unwrap();
    for delta in [15.0, 180.0] {
        writeln!(out, "\n  δ = {delta} s").unwrap();
        writeln!(
            out,
            "  {:>9} | {:>26} | {:>22}",
            "sockets", "utilization S/M/W", "P(undetected) M/W"
        )
        .unwrap();
        for &s in &sweep {
            let model = SchemeModel::new(fig7_params(s, delta));
            let evals: Vec<_> = Scheme::ALL.iter().map(|&sc| model.optimize(sc)).collect();
            writeln!(
                out,
                "  {:>9} | {:>26} | {:>22}",
                s,
                format!(
                    "{:.3} / {:.3} / {:.3}",
                    evals[0].utilization, evals[1].utilization, evals[2].utilization
                ),
                format!(
                    "{:.4} / {:.4}",
                    evals[1].p_undetected_sdc, evals[2].p_undetected_sdc
                ),
            )
            .unwrap();
            for e in &evals {
                writeln!(
                    csv,
                    "{delta},{s},{},{},{},{}",
                    e.scheme.name(),
                    e.tau,
                    e.utilization,
                    e.p_undetected_sdc
                )
                .unwrap();
            }
        }
    }
    save_csv("fig07_model.csv", &csv);
    out
}

/// Fig. 8: single-checkpoint overhead decomposition for all six app
/// configurations × four methods × core sweep.
pub fn fig08() -> String {
    let mut out = String::new();
    let mut csv = String::from("app,config,cores_per_replica,local,transfer,compare,total\n");
    writeln!(
        out,
        "Figure 8 — single checkpoint overhead (seconds), decomposition local+transfer+compare"
    )
    .unwrap();
    writeln!(out, "Table 2 per-core configurations; BG/P-class machine\n").unwrap();
    for app in &TABLE2 {
        writeln!(
            out,
            "  {}  ({} B/core, scatter ×{:.1})",
            app.name, app.ckpt_bytes_per_core, app.scatter_factor
        )
        .unwrap();
        writeln!(
            out,
            "    {:<9} {}",
            "config",
            CORE_SWEEP.map(|c| format!("{:>8}", short(c))).join(" ")
        )
        .unwrap();
        for (label, mapping, detection) in CONFIGS {
            let mut row = String::new();
            for &cores in &CORE_SWEEP {
                let m = Machine::bgp(cores, mapping);
                let b = checkpoint_breakdown(&m, app, detection);
                write!(row, " {:>8.3}", b.total()).unwrap();
                writeln!(
                    csv,
                    "{},{label},{cores},{:.4},{:.4},{:.4},{:.4}",
                    app.name,
                    b.local,
                    b.transfer,
                    b.compare,
                    b.total()
                )
                .unwrap();
            }
            writeln!(out, "    {label:<9}{row}").unwrap();
        }
        writeln!(out).unwrap();
    }
    save_csv("fig08_checkpoint.csv", &csv);
    out
}

fn short(c: u64) -> String {
    if c >= 1024 {
        format!("{}k", c / 1024)
    } else {
        c.to_string()
    }
}

/// Figs. 9 & 11: forward-path and overall overhead percentage per replica
/// at the model-optimal checkpoint period (Jacobi3D and LeanMD; M_H = 50 y,
/// 10 000 FIT per socket).
pub fn fig09_fig11() -> String {
    let mut out = String::new();
    let mut csv = String::from("app,scheme,config,sockets,tau,forward_pct,overall_pct\n");
    writeln!(
        out,
        "Figures 9 & 11 — forward-path and overall overhead per replica (%) at τ*"
    )
    .unwrap();
    for app in [&TABLE2[0], &TABLE2[4]] {
        writeln!(out, "\n  {}", app.name).unwrap();
        writeln!(
            out,
            "    {:<18} {:>7} {}",
            "config",
            "scheme",
            SOCKET_SWEEP
                .map(|s| format!("{:>16}", format!("{} fwd%/all%", short(s))))
                .join(" ")
        )
        .unwrap();
        for (label, mapping, detection) in CONFIGS {
            for scheme in Scheme::ALL {
                let mut row = String::new();
                for &sockets in &SOCKET_SWEEP {
                    let machine = Machine::bgp(4 * sockets, mapping);
                    let timeline = Timeline::new(machine, *app);
                    let delta = checkpoint_breakdown(timeline.machine(), app, detection).total();
                    let restart = restart_breakdown(timeline.machine(), app, scheme).total();
                    let params = ModelParams::builder()
                        .work(24.0 * HOUR)
                        .delta(delta)
                        .restart(restart)
                        .sockets(sockets)
                        .mtbf_years(50.0)
                        .sdc_fit(10_000.0)
                        .build()
                        .expect("machine-derived parameters are positive");
                    let eval = SchemeModel::new(params).optimize(scheme);
                    // Forward path: checkpoints only (failure-free trace).
                    let fwd = timeline.run(&SimConfig {
                        work: params.w,
                        scheme,
                        detection,
                        tau: TauPolicy::Fixed(eval.tau),
                        trace: FailureTrace::default(),
                        alarms: Vec::new(),
                    });
                    // Overall: average over failure traces.
                    let mut overall = 0.0;
                    const SEEDS: u64 = 4;
                    for seed in 0..SEEDS {
                        let trace = FailureTrace::generate(
                            Some(FailureProcess::Renewal(FailureDistribution::exponential(
                                params.m_h,
                            ))),
                            Some(FailureProcess::Renewal(FailureDistribution::exponential(
                                params.m_s,
                            ))),
                            5.0 * params.w,
                            (2 * sockets) as usize,
                            seed,
                        );
                        overall += timeline
                            .run(&SimConfig {
                                work: params.w,
                                scheme,
                                detection,
                                tau: TauPolicy::Fixed(eval.tau),
                                trace,
                                alarms: Vec::new(),
                            })
                            .overhead();
                    }
                    overall /= SEEDS as f64;
                    write!(
                        row,
                        " {:>7.3}/{:>7.3}",
                        100.0 * fwd.overhead(),
                        100.0 * overall
                    )
                    .unwrap();
                    writeln!(
                        csv,
                        "{},{},{label},{sockets},{:.1},{:.4},{:.4}",
                        app.name,
                        scheme.name(),
                        eval.tau,
                        100.0 * fwd.overhead(),
                        100.0 * overall
                    )
                    .unwrap();
                }
                writeln!(out, "    {label:<18} {:>7}{row}", scheme.name()).unwrap();
            }
        }
    }
    save_csv("fig09_fig11_overheads.csv", &csv);
    out
}

/// Fig. 10: single-restart overhead decomposition (transfer +
/// reconstruction) for strong vs medium×mappings.
pub fn fig10() -> String {
    let mut out = String::new();
    let mut csv = String::from("app,config,cores_per_replica,transfer,reconstruction,total\n");
    writeln!(
        out,
        "Figure 10 — single restart overhead (seconds), transfer + reconstruction"
    )
    .unwrap();
    let configs = [
        ("strong", MappingKind::Default, Scheme::Strong),
        ("medium (default)", MappingKind::Default, Scheme::Medium),
        (
            "medium (mixed)",
            MappingKind::Mixed { chunk: 2 },
            Scheme::Medium,
        ),
        ("medium (column)", MappingKind::Column, Scheme::Medium),
    ];
    for app in &TABLE2 {
        writeln!(out, "\n  {}", app.name).unwrap();
        writeln!(
            out,
            "    {:<18} {}",
            "config",
            CORE_SWEEP.map(|c| format!("{:>8}", short(c))).join(" ")
        )
        .unwrap();
        for (label, mapping, scheme) in configs {
            let mut row = String::new();
            for &cores in &CORE_SWEEP {
                let m = Machine::bgp(cores, mapping);
                let b = restart_breakdown(&m, app, scheme);
                write!(row, " {:>8.3}", b.total()).unwrap();
                writeln!(
                    csv,
                    "{},{label},{cores},{:.4},{:.4},{:.4}",
                    app.name,
                    b.transfer,
                    b.reconstruction,
                    b.total()
                )
                .unwrap();
            }
            writeln!(out, "    {label:<18}{row}").unwrap();
        }
    }
    save_csv("fig10_restart.csv", &csv);
    out
}

/// Fig. 12: one adaptive-interval run under a decreasing failure rate.
pub fn fig12() -> String {
    let horizon = 1800.0;
    let scale = horizon / 19.0f64.powf(1.0 / 0.6);
    let trace = FailureTrace::generate(
        Some(FailureProcess::PowerLaw { shape: 0.6, scale }),
        None,
        3.0 * horizon,
        256,
        2013,
    );
    let machine = Machine::bgp(1024, MappingKind::Column);
    let timeline = Timeline::new(machine, TABLE2[0]);
    let report = timeline.run(&SimConfig {
        work: horizon,
        scheme: Scheme::Strong,
        detection: DetectionMethod::FullCompare,
        tau: TauPolicy::Adaptive(AdaptiveConfig {
            delta: 1.0,
            initial_interval: 10.0,
            min_interval: 2.0,
            max_interval: 120.0,
            window: 8,
            trend_fit: true,
        }),
        trace,
        alarms: Vec::new(),
    });
    let mut out = String::new();
    let mut csv = String::from("event,time\n");
    writeln!(
        out,
        "Figure 12 — adaptivity: 30 min Jacobi3D, ~19 failures, Weibull shape 0.6"
    )
    .unwrap();
    writeln!(
        out,
        "  failures: {}   checkpoints: {}   total {:.0} s",
        report.hard_errors,
        report.checkpoints.len(),
        report.total_time
    )
    .unwrap();
    let gaps: Vec<(f64, f64)> = report
        .checkpoints
        .windows(2)
        .map(|w| (w[0], w[1] - w[0]))
        .collect();
    let third = report.total_time / 3.0;
    let mean = |lo: f64, hi: f64| {
        let g: Vec<f64> = gaps
            .iter()
            .filter(|(t, _)| *t >= lo && *t < hi)
            .map(|(_, g)| *g)
            .collect();
        g.iter().sum::<f64>() / g.len().max(1) as f64
    };
    writeln!(
        out,
        "  checkpoint interval: {:.1} s (first third) -> {:.1} s (last third); paper: 6 s -> 17 s",
        mean(0.0, third),
        mean(2.0 * third, f64::INFINITY)
    )
    .unwrap();
    for &t in &report.checkpoints {
        writeln!(csv, "checkpoint,{t:.2}").unwrap();
    }
    for &(t, _) in &report.faults {
        writeln!(csv, "failure,{t:.2}").unwrap();
    }
    save_csv("fig12_adaptive.csv", &csv);
    out
}

/// Table 2 as implemented (cross-checked against the real kernels by the
/// acr-apps tests).
pub fn table2() -> String {
    let mut out = String::new();
    writeln!(out, "Table 2 — mini-application configurations (per core)").unwrap();
    writeln!(
        out,
        "  {:<18} {:>14} {:>10} {:>9}",
        "app", "ckpt bytes", "scatter", "pressure"
    )
    .unwrap();
    for app in &TABLE2 {
        writeln!(
            out,
            "  {:<18} {:>14} {:>10.1} {:>9}",
            app.name,
            app.ckpt_bytes_per_core,
            app.scatter_factor,
            format!("{:?}", app.pressure)
        )
        .unwrap();
    }
    out
}

/// Design-choice ablations promised in DESIGN.md.
pub fn ablations() -> String {
    let mut out = String::new();
    writeln!(out, "Ablations").unwrap();

    // 1. Checksum vs full compare as the serialization rate (γ) varies —
    //    the §4.2 "γ < β/4" crossover.
    writeln!(
        out,
        "\n  (1) checksum vs full-compare crossover (Jacobi3D, 64K cores/replica, column mapping)"
    )
    .unwrap();
    writeln!(
        out,
        "      {:>22} {:>12} {:>12} {:>8}",
        "checksum rate (MB/s)", "full (s)", "cksum (s)", "winner"
    )
    .unwrap();
    for rate in [10e6, 25e6, 60e6, 220e6, 880e6] {
        let mut m = Machine::bgp(65536, MappingKind::Column);
        m.checksum_rate = rate;
        let full = checkpoint_breakdown(&m, &TABLE2[0], DetectionMethod::FullCompare).total();
        let cks = checkpoint_breakdown(&m, &TABLE2[0], DetectionMethod::Checksum).total();
        writeln!(
            out,
            "      {:>22.0} {:>12.3} {:>12.3} {:>8}",
            rate / 1e6,
            full,
            cks,
            if cks < full { "checksum" } else { "full" }
        )
        .unwrap();
    }

    // 2. Mixed-mapping chunk-size sweep.
    writeln!(
        out,
        "\n  (2) mixed-mapping chunk sweep (Jacobi3D, 64K cores/replica): transfer seconds"
    )
    .unwrap();
    for chunk in [1usize, 2, 4, 8, 16] {
        let m = Machine::bgp(65536, MappingKind::Mixed { chunk });
        let b = checkpoint_breakdown(&m, &TABLE2[0], DetectionMethod::FullCompare);
        writeln!(
            out,
            "      chunk {:>2}: transfer {:.3} s (contention {})",
            chunk,
            b.transfer,
            m.buddy_exchange_profile().0
        )
        .unwrap();
    }

    // 3. Adaptive vs fixed τ under Weibull shapes.
    writeln!(
        out,
        "\n  (3) adaptive vs fixed τ, total time (s) for 1800 s of work, ~19 failures"
    )
    .unwrap();
    writeln!(
        out,
        "      {:>7} {:>12} {:>12}",
        "shape", "adaptive", "fixed-Daly"
    )
    .unwrap();
    for shape in [0.4, 0.6, 0.8, 1.0] {
        let horizon = 1800.0;
        let scale = horizon / 19.0f64.powf(1.0 / shape);
        let machine = Machine::bgp(1024, MappingKind::Column);
        let timeline = Timeline::new(machine, TABLE2[0]);
        let (mut a_tot, mut f_tot) = (0.0, 0.0);
        const SEEDS: u64 = 6;
        for seed in 0..SEEDS {
            let trace = FailureTrace::generate(
                Some(FailureProcess::PowerLaw { shape, scale }),
                None,
                4.0 * horizon,
                256,
                seed,
            );
            let adaptive = timeline.run(&SimConfig {
                work: horizon,
                scheme: Scheme::Strong,
                detection: DetectionMethod::FullCompare,
                tau: TauPolicy::Adaptive(AdaptiveConfig {
                    delta: 1.0,
                    initial_interval: 10.0,
                    min_interval: 2.0,
                    max_interval: 120.0,
                    window: 8,
                    trend_fit: true,
                }),
                trace: trace.clone(),
                alarms: Vec::new(),
            });
            let fixed = timeline.run(&SimConfig {
                work: horizon,
                scheme: Scheme::Strong,
                detection: DetectionMethod::FullCompare,
                tau: TauPolicy::Fixed(acr_model::daly_simple(1.0, horizon / 19.0)),
                trace,
                alarms: Vec::new(),
            });
            a_tot += adaptive.total_time;
            f_tot += fixed.total_time;
        }
        writeln!(
            out,
            "      {:>7.1} {:>12.1} {:>12.1}",
            shape,
            a_tot / SEEDS as f64,
            f_tot / SEEDS as f64
        )
        .unwrap();
    }

    // 4. Spare-pool sensitivity: probability a 24 h job survives on its
    //    spares (binomial over the hard-error count).
    writeln!(
        out,
        "\n  (4) spare-pool sizing, 16K sockets/replica, 24 h job (expected failures vs pool)"
    )
    .unwrap();
    let params = fig7_params(16384, 15.0);
    let expect = 24.0 * HOUR / params.m_h;
    for spares in [1usize, 2, 4, 8, 16] {
        // Poisson tail: P(N > spares)
        let lambda = expect;
        let mut p = 0.0;
        let mut term = (-lambda).exp();
        for k in 0..=spares {
            p += term;
            term *= lambda / (k + 1) as f64;
        }
        writeln!(
            out,
            "      {:>3} spares: P(exhausted) = {:.4}  (E[failures] = {:.2})",
            spares,
            1.0 - p,
            lambda
        )
        .unwrap();
    }

    // 5. Failure prediction (§2.2): what predictor quality buys ACR.
    writeln!(
        out,
        "\n  (5) failure prediction: rework under strong scheme, 4 h job, 16K sockets"
    )
    .unwrap();
    writeln!(
        out,
        "      {:>30} {:>12} {:>12} {:>10}",
        "predictor", "rework (s)", "ckpts", "heeded"
    )
    .unwrap();
    {
        use acr_fault::{FailurePredictor, PredictorProfile};
        let machine = Machine::bgp(65536, MappingKind::Default);
        let timeline = Timeline::new(machine, TABLE2[0]);
        let work = 4.0 * HOUR;
        let m_h = 1200.0; // stress: a failure every ~20 minutes
        let trace = FailureTrace::generate(
            Some(FailureProcess::Renewal(FailureDistribution::exponential(
                m_h,
            ))),
            None,
            4.0 * work,
            32768,
            77,
        );
        let profiles: [(&str, Option<PredictorProfile>); 4] = [
            ("none", None),
            (
                "literature (r=.7 p=.8 30s)",
                Some(PredictorProfile::literature()),
            ),
            ("oracle 30s lead", Some(PredictorProfile::oracle(30.0))),
            ("oracle 120s lead", Some(PredictorProfile::oracle(120.0))),
        ];
        for (label, profile) in profiles {
            let alarms = profile
                .map(|p| {
                    FailurePredictor::against(&trace, p, 32768, 5)
                        .alarms()
                        .to_vec()
                })
                .unwrap_or_default();
            let r = timeline.run(&SimConfig {
                work,
                scheme: Scheme::Strong,
                detection: DetectionMethod::FullCompare,
                tau: TauPolicy::Fixed(300.0),
                trace: trace.clone(),
                alarms,
            });
            writeln!(
                out,
                "      {:>30} {:>12.1} {:>12} {:>10}",
                label,
                r.rework_time,
                r.checkpoints.len(),
                r.alarms_heeded
            )
            .unwrap();
        }
    }

    // 6. Hard-error-only mode (Fig. 5a): no periodic checkpoints at all.
    writeln!(
        out,
        "\n  (6) hard-error-only mode (Fig. 5a) vs periodic, medium scheme, 4 h job"
    )
    .unwrap();
    {
        let machine = Machine::bgp(16384, MappingKind::Column);
        let timeline = Timeline::new(machine, TABLE2[0]);
        let trace = FailureTrace::generate(
            Some(FailureProcess::Renewal(FailureDistribution::exponential(
                3600.0,
            ))),
            None,
            16.0 * HOUR,
            8192,
            3,
        );
        for (label, tau) in [
            ("periodic τ=300s", TauPolicy::Fixed(300.0)),
            ("hard-error-only", TauPolicy::Never),
        ] {
            let r = timeline.run(&SimConfig {
                work: 4.0 * HOUR,
                scheme: Scheme::Medium,
                detection: DetectionMethod::FullCompare,
                tau,
                trace: trace.clone(),
                alarms: Vec::new(),
            });
            writeln!(
                out,
                "      {:<18} total {:>9.1} s  checkpoints {:>4}  overhead {:>6.3}%",
                label,
                r.total_time,
                r.checkpoints.len(),
                100.0 * r.overhead()
            )
            .unwrap();
        }
    }

    // 7. Semi-blocking checkpointing (future work [27]): overlap sweep.
    writeln!(out, "\n  (7) semi-blocking checkpointing [27]: Jacobi3D δ at 64K cores/replica, default mapping").unwrap();
    for overlap in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let m = Machine::bgp(65536, MappingKind::Default).with_async_overlap(overlap);
        let b = checkpoint_breakdown(&m, &TABLE2[0], DetectionMethod::FullCompare);
        writeln!(
            out,
            "      overlap {:>4.2}: δ = {:.3} s (transfer {:.3} s)",
            overlap,
            b.total(),
            b.transfer
        )
        .unwrap();
    }

    // 8. Dual redundancy vs TMR (§3 design choice 4): the model's view.
    writeln!(
        out,
        "\n  (8) dual redundancy (rework on SDC) vs TMR (vote, no rework): utilization"
    )
    .unwrap();
    for sockets in [16384u64, 262_144] {
        let dual = SchemeModel::new(fig7_params(sockets, 15.0)).optimize(Scheme::Strong);
        // TMR: a third of the machine per copy (utilization cap 1/3) but a
        // detected SDC costs nothing (voting corrects in place).
        let p = fig7_params(sockets, 15.0);
        let tmr_params = ModelParams {
            m_s: f64::INFINITY,
            ..p
        };
        let tmr = SchemeModel::new(tmr_params).optimize(Scheme::Strong);
        let tmr_util = tmr.utilization * (2.0 / 3.0); // 0.5 → 1/3 of sockets useful
        writeln!(
            out,
            "      {:>8} sockets: dual {:.3} vs TMR {:.3}  (dual wins while SDC rework is rare)",
            sockets, dual.utilization, tmr_util
        )
        .unwrap();
    }
    out
}

/// Run every generator (the `cargo bench` figures target and the
/// `all_figures` binary both call this).
pub fn all_figures() -> String {
    let mut out = String::new();
    for part in [
        table2(),
        fig01(),
        fig06(),
        fig07(),
        fig08(),
        fig09_fig11(),
        fig10(),
        fig12(),
        ablations(),
    ] {
        out.push_str(&part);
        out.push('\n');
    }
    out
}

/// The AppProfile array re-exported for benches.
pub fn apps() -> &'static [AppProfile; 6] {
    &TABLE2
}
