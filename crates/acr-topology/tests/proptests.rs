//! Property-based tests for routing and mapping invariants.

use acr_topology::{Coord, Dim, ExchangePattern, LinkLoads, MappingKind, Torus3d};
use proptest::prelude::*;

fn machine_strategy() -> impl Strategy<Value = Torus3d> {
    (1usize..6, 1usize..6, 1usize..9, any::<[bool; 3]>()).prop_map(|(x, y, z, wrap)| {
        Torus3d::with_wrap(x, y, z * 2, wrap) // even Z so mappings apply
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Dimension-order routes are connected, start at the source, end at the
    /// destination, and have exactly `hops(a, b)` links.
    #[test]
    fn routes_are_valid_paths(t in machine_strategy(), seed in any::<(u64, u64)>()) {
        let n = t.len();
        let a = (seed.0 % n as u64) as usize;
        let b = (seed.1 % n as u64) as usize;
        let route = t.route(a, b);
        prop_assert_eq!(route.len(), t.hops(a, b));

        let mut cur = a;
        for link in &route {
            prop_assert_eq!(link.from, cur);
            let c = t.coord(cur);
            let ext = t.extent(link.dim);
            let v = c.get(link.dim);
            let nv = if link.plus { (v + 1) % ext } else { (v + ext - 1) % ext };
            let nc = match link.dim {
                Dim::X => Coord { x: nv, ..c },
                Dim::Y => Coord { y: nv, ..c },
                Dim::Z => Coord { z: nv, ..c },
            };
            cur = t.id(nc);
        }
        prop_assert_eq!(cur, b);
    }

    /// Per-dimension route length is minimal (≤ extent/2 on wrapped
    /// dimensions, ≤ |a-b| on meshes).
    #[test]
    fn routes_are_minimal_per_dimension(t in machine_strategy(), seed in any::<(u64, u64)>()) {
        let n = t.len();
        let a = (seed.0 % n as u64) as usize;
        let b = (seed.1 % n as u64) as usize;
        let (ca, cb) = (t.coord(a), t.coord(b));
        let route = t.route(a, b);
        for &dim in &Dim::ALL {
            let hops = route.iter().filter(|l| l.dim == dim).count();
            let ext = t.extent(dim);
            let (va, vb) = (ca.get(dim), cb.get(dim));
            let direct = va.abs_diff(vb);
            let wrapped = ext - direct;
            let min = direct.min(wrapped);
            // mesh dims can't wrap; wrapped dims must take the shorter way
            prop_assert!(hops == direct || hops == wrapped);
            prop_assert!(hops == direct || hops >= min);
            prop_assert!(hops <= direct.max(1) * ext); // sanity bound
        }
    }

    /// Buddy pairing is a bijection between the replicas for every mapping
    /// that accepts the machine.
    #[test]
    fn buddy_bijection(t in machine_strategy(), chunk in 1usize..4) {
        for kind in [MappingKind::Default, MappingKind::Column, MappingKind::Mixed { chunk }] {
            let Ok(p) = kind.place(&t) else { continue };
            prop_assert_eq!(p.ranks() * 2, t.len());
            let mut seen0 = vec![false; t.len()];
            let mut seen1 = vec![false; t.len()];
            for (a, b) in p.buddy_pairs() {
                prop_assert!(!seen0[a] && !seen1[b]);
                seen0[a] = true;
                seen1[b] = true;
                prop_assert_eq!(p.buddy(a), Some(b));
                prop_assert_eq!(p.buddy(b), Some(a));
            }
        }
    }

    /// Link loads conserve hops, and the column mapping never exceeds load 1
    /// on any machine it accepts (the paper's "best in terms of network
    /// congestion" claim).
    #[test]
    fn column_mapping_is_contention_free(t in machine_strategy()) {
        let Ok(p) = MappingKind::Column.place(&t) else { return Ok(()) };
        let loads = LinkLoads::analyze(&t, &p, ExchangePattern::FullBuddyExchange);
        prop_assert!(loads.max_load() <= 1);
        prop_assert_eq!(loads.messages(), p.ranks());
    }

    /// Mixed mapping's bottleneck is bounded by its chunk size.
    #[test]
    fn mixed_mapping_bounded_by_chunk(t in machine_strategy(), chunk in 1usize..5) {
        let Ok(p) = (MappingKind::Mixed { chunk }).place(&t) else { return Ok(()) };
        let loads = LinkLoads::analyze(&t, &p, ExchangePattern::FullBuddyExchange);
        prop_assert!(loads.max_load() as usize <= chunk,
            "chunk {} produced load {}", chunk, loads.max_load());
    }
}
