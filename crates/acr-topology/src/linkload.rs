//! Link-load analysis of inter-replica traffic patterns (§4.2, Fig. 6).
//!
//! The analyzer routes one message per communicating pair with deterministic
//! dimension-order routing and counts how many messages traverse each
//! directed link. The maximum per-link count is the *contention factor* that
//! serializes checkpoint transfers; [`crate::Torus3d`] supplies the routes
//! and [`crate::Placement`] supplies the pairs.

use std::collections::HashMap;

use crate::mapping::Placement;
use crate::torus::{Coord, Dim, Link, NodeId, Torus3d};

/// Which inter-replica communication pattern to analyze.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExchangePattern {
    /// Every replica-0 node sends its checkpoint to its buddy (the periodic
    /// SDC-detection transfer of §2.1, and the medium/weak recovery
    /// transfer of §2.3 in the opposite direction).
    FullBuddyExchange,
    /// Only the buddy of the crashed node sends one checkpoint to the spare
    /// node (strong-resilience restart: "only one message is sent from the
    /// healthy replica to the restarting process").
    SingleRestart {
        /// Node whose buddy crashed (the sender, in the healthy replica).
        healthy_buddy: NodeId,
        /// The spare node receiving the checkpoint.
        spare: NodeId,
    },
}

/// Per-link message counts for an exchange pattern.
#[derive(Debug, Clone)]
pub struct LinkLoads {
    loads: HashMap<Link, u32>,
    messages: usize,
    total_hops: usize,
}

impl LinkLoads {
    /// Route `pattern` over `torus` given `placement` and tally per-link
    /// message counts.
    pub fn analyze(torus: &Torus3d, placement: &Placement, pattern: ExchangePattern) -> Self {
        let mut loads: HashMap<Link, u32> = HashMap::new();
        let mut messages = 0;
        let mut total_hops = 0;
        let mut tally = |route: Vec<Link>| {
            total_hops += route.len();
            messages += 1;
            for link in route {
                *loads.entry(link).or_insert(0) += 1;
            }
        };
        match pattern {
            ExchangePattern::FullBuddyExchange => {
                for (a, b) in placement.buddy_pairs() {
                    tally(torus.route(a, b));
                }
            }
            ExchangePattern::SingleRestart {
                healthy_buddy,
                spare,
            } => {
                tally(torus.route(healthy_buddy, spare));
            }
        }
        Self {
            loads,
            messages,
            total_hops,
        }
    }

    /// The highest per-link message count — the serialization factor for
    /// simultaneous transfers (a transfer behind `k` others on its
    /// bottleneck link finishes in `k` link-transmission times).
    pub fn max_load(&self) -> u32 {
        self.loads.values().copied().max().unwrap_or(0)
    }

    /// Messages routed.
    pub fn messages(&self) -> usize {
        self.messages
    }

    /// Sum of all route lengths.
    pub fn total_hops(&self) -> usize {
        self.total_hops
    }

    /// Average hops per message.
    pub fn mean_hops(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.total_hops as f64 / self.messages as f64
        }
    }

    /// Load on a specific directed link.
    pub fn load(&self, link: Link) -> u32 {
        self.loads.get(&link).copied().unwrap_or(0)
    }

    /// Number of distinct links carrying at least one message.
    pub fn links_used(&self) -> usize {
        self.loads.len()
    }

    /// Render the Fig. 6-style picture: for the `y = row` plane row, the
    /// load on each +Z link between consecutive planes. (The paper draws the
    /// front plane, Y = 0, of a 512-node machine and tags each link with its
    /// message count.)
    pub fn z_row_profile(&self, torus: &Torus3d, x: usize, y: usize) -> Vec<u32> {
        let z = torus.extent(Dim::Z);
        (0..z.saturating_sub(1))
            .map(|p| {
                let from = torus.id(Coord { x, y, z: p });
                self.load(Link {
                    from,
                    dim: Dim::Z,
                    plus: true,
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::MappingKind;

    /// Fig. 6a: on an 8-plane mesh with the default mapping, the +Z links of
    /// every (x, y) column carry loads 1,2,3,4,3,2,1.
    #[test]
    fn fig6a_default_mapping_bisection_ramp() {
        let t = Torus3d::mesh(8, 8, 8);
        let p = MappingKind::Default.place(&t).unwrap();
        let loads = LinkLoads::analyze(&t, &p, ExchangePattern::FullBuddyExchange);
        assert_eq!(loads.z_row_profile(&t, 0, 0), vec![1, 2, 3, 4, 3, 2, 1]);
        assert_eq!(loads.max_load(), 4, "bottleneck load = Z/2");
        // every message travels Z/2 = 4 hops
        assert_eq!(loads.mean_hops(), 4.0);
    }

    /// Fig. 6b: column mapping — buddies adjacent, no overlap, all loads ≤ 1.
    #[test]
    fn fig6b_column_mapping_no_overlap() {
        let t = Torus3d::mesh(8, 8, 8);
        let p = MappingKind::Column.place(&t).unwrap();
        let loads = LinkLoads::analyze(&t, &p, ExchangePattern::FullBuddyExchange);
        assert_eq!(loads.max_load(), 1);
        assert_eq!(loads.z_row_profile(&t, 0, 0), vec![1, 0, 1, 0, 1, 0, 1]);
        assert_eq!(loads.mean_hops(), 1.0);
    }

    /// Fig. 6c: mixed mapping with chunk 2 — loads ≤ 2.
    #[test]
    fn fig6c_mixed_mapping_bounded_overlap() {
        let t = Torus3d::mesh(8, 8, 8);
        let p = MappingKind::Mixed { chunk: 2 }.place(&t).unwrap();
        let loads = LinkLoads::analyze(&t, &p, ExchangePattern::FullBuddyExchange);
        assert_eq!(loads.max_load(), 2);
        // chunk pair [0,1]→[2,3]: links 0→1 (1 msg), 1→2 (2), 2→3 (1); idle
        // link 3→4 between chunk pairs; then the [4,5]→[6,7] pair repeats.
        assert_eq!(loads.z_row_profile(&t, 0, 0), vec![1, 2, 1, 0, 1, 2, 1]);
        assert_eq!(loads.mean_hops(), 2.0);
    }

    /// §6.2's observed plateau: the default mapping's bottleneck grows with
    /// the Z extent and is independent of X/Y growth.
    #[test]
    fn default_bottleneck_tracks_z_extent_only() {
        for (x, y, z) in [(4, 4, 8), (8, 8, 8), (16, 16, 8), (8, 8, 16), (8, 8, 32)] {
            let t = Torus3d::mesh(x, y, z);
            let p = MappingKind::Default.place(&t).unwrap();
            let loads = LinkLoads::analyze(&t, &p, ExchangePattern::FullBuddyExchange);
            assert_eq!(loads.max_load() as usize, z / 2, "dims ({x},{y},{z})");
        }
    }

    #[test]
    fn torus_deterministic_routes_match_mesh_for_default_mapping() {
        // Every buddy pair is exactly Z/2 apart and all senders sit in the
        // low-Z half, so deterministic tie-breaking sends everything forward:
        // the wraparound link stays idle and the ramp matches the mesh. (The
        // paper notes adaptive/torus routing would lower the volume by
        // splitting the tie — deterministic routing does not.)
        let t = Torus3d::torus(8, 8, 8);
        let p = MappingKind::Default.place(&t).unwrap();
        let loads = LinkLoads::analyze(&t, &p, ExchangePattern::FullBuddyExchange);
        assert_eq!(loads.max_load(), 4);
        assert_eq!(loads.z_row_profile(&t, 0, 0), vec![1, 2, 3, 4, 3, 2, 1]);
    }

    #[test]
    fn single_restart_has_unit_loads() {
        let t = Torus3d::mesh(8, 8, 8);
        let p = MappingKind::Default.place_with_spares(&t, 128).unwrap();
        let healthy = p.node(1, 0);
        let spare = p.spares()[0];
        let loads = LinkLoads::analyze(
            &t,
            &p,
            ExchangePattern::SingleRestart {
                healthy_buddy: healthy,
                spare,
            },
        );
        assert_eq!(loads.messages(), 1);
        assert_eq!(loads.max_load(), 1);
        assert_eq!(loads.total_hops(), t.hops(healthy, spare));
    }

    #[test]
    fn message_conservation() {
        let t = Torus3d::mesh(4, 4, 8);
        for kind in [
            MappingKind::Default,
            MappingKind::Column,
            MappingKind::Mixed { chunk: 2 },
        ] {
            let p = kind.place(&t).unwrap();
            let loads = LinkLoads::analyze(&t, &p, ExchangePattern::FullBuddyExchange);
            assert_eq!(loads.messages(), p.ranks());
            // sum of link loads == total hops
            let sum: u32 = loads.loads.values().sum();
            assert_eq!(sum as usize, loads.total_hops());
        }
    }
}
