//! The 3D torus/mesh machine and dimension-order routing.

use std::fmt;

/// A physical node's index in the machine (row-major over `(z, y, x)` with
/// `x` fastest — the Blue Gene/P "XYZ" part of its TXYZ default order).
pub type NodeId = usize;

/// One of the three torus dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Dim {
    /// Fastest-varying dimension.
    X,
    /// Middle dimension.
    Y,
    /// Slowest-varying dimension (the one the default mapping splits; §4.2).
    Z,
}

impl Dim {
    /// All dimensions in routing order.
    pub const ALL: [Dim; 3] = [Dim::X, Dim::Y, Dim::Z];

    /// Index of this dimension into a `[usize; 3]` coordinate.
    pub fn axis(self) -> usize {
        match self {
            Dim::X => 0,
            Dim::Y => 1,
            Dim::Z => 2,
        }
    }
}

impl fmt::Display for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dim::X => write!(f, "X"),
            Dim::Y => write!(f, "Y"),
            Dim::Z => write!(f, "Z"),
        }
    }
}

/// A node coordinate `(x, y, z)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Coord {
    /// X coordinate.
    pub x: usize,
    /// Y coordinate.
    pub y: usize,
    /// Z coordinate.
    pub z: usize,
}

impl Coord {
    /// Get the coordinate along `dim`.
    pub fn get(&self, dim: Dim) -> usize {
        match dim {
            Dim::X => self.x,
            Dim::Y => self.y,
            Dim::Z => self.z,
        }
    }

    fn set(&mut self, dim: Dim, v: usize) {
        match dim {
            Dim::X => self.x = v,
            Dim::Y => self.y = v,
            Dim::Z => self.z = v,
        }
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{},{})", self.x, self.y, self.z)
    }
}

/// A *directed* network link: the cable leaving `from` in direction
/// `plus`/`minus` along `dim`. Checkpoint traffic in opposite directions does
/// not contend on a full-duplex torus, so loads are tracked per direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Link {
    /// Node the link leaves.
    pub from: NodeId,
    /// Dimension the link runs along.
    pub dim: Dim,
    /// True for the `+` direction (toward increasing coordinate).
    pub plus: bool,
}

/// A 3D torus (or mesh, per dimension) machine.
///
/// `wrap` controls whether each dimension has wraparound links. Blue Gene/P
/// allocations smaller than a full torus loop behave like meshes in the
/// non-looping dimensions; the paper's Fig. 6 link counts assume mesh-style
/// paths ("even if the torus links are considered, the overlap on links
/// exists albeit in lower volume").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Torus3d {
    dims: [usize; 3],
    wrap: [bool; 3],
}

impl Torus3d {
    /// A torus with wraparound in every dimension.
    pub fn torus(x: usize, y: usize, z: usize) -> Self {
        assert!(x > 0 && y > 0 && z > 0, "torus dimensions must be positive");
        Self {
            dims: [x, y, z],
            wrap: [true, true, true],
        }
    }

    /// A mesh (no wraparound links).
    pub fn mesh(x: usize, y: usize, z: usize) -> Self {
        assert!(x > 0 && y > 0 && z > 0, "mesh dimensions must be positive");
        Self {
            dims: [x, y, z],
            wrap: [false, false, false],
        }
    }

    /// Custom per-dimension wraparound.
    pub fn with_wrap(x: usize, y: usize, z: usize, wrap: [bool; 3]) -> Self {
        assert!(x > 0 && y > 0 && z > 0, "dimensions must be positive");
        Self {
            dims: [x, y, z],
            wrap,
        }
    }

    /// Extent along `dim`.
    pub fn extent(&self, dim: Dim) -> usize {
        self.dims[dim.axis()]
    }

    /// `[x, y, z]` extents.
    pub fn dims(&self) -> [usize; 3] {
        self.dims
    }

    /// Total number of nodes.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// True for a degenerate zero-node machine (never constructible; kept
    /// for API completeness).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Node id of a coordinate (x fastest, z slowest).
    pub fn id(&self, c: Coord) -> NodeId {
        debug_assert!(c.x < self.dims[0] && c.y < self.dims[1] && c.z < self.dims[2]);
        (c.z * self.dims[1] + c.y) * self.dims[0] + c.x
    }

    /// Coordinate of a node id.
    pub fn coord(&self, id: NodeId) -> Coord {
        debug_assert!(id < self.len());
        let x = id % self.dims[0];
        let y = (id / self.dims[0]) % self.dims[1];
        let z = id / (self.dims[0] * self.dims[1]);
        Coord { x, y, z }
    }

    /// Iterate over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        0..self.len()
    }

    /// The signed step (`+1`/`-1` as `plus = true/false`) and hop count of
    /// the shortest path from `a` to `b` along `dim`, honouring wraparound.
    /// Ties (distance exactly extent/2 on a torus) break toward `plus`.
    fn step_along(&self, dim: Dim, a: usize, b: usize) -> (bool, usize) {
        let n = self.dims[dim.axis()];
        if a == b {
            return (true, 0);
        }
        let fwd = (b + n - a) % n;
        let bwd = (a + n - b) % n;
        if !self.wrap[dim.axis()] {
            // Mesh: only the direct direction exists.
            return if b > a { (true, b - a) } else { (false, a - b) };
        }
        if fwd <= bwd {
            (true, fwd)
        } else {
            (false, bwd)
        }
    }

    /// Number of hops of the dimension-order route from `a` to `b`.
    pub fn hops(&self, a: NodeId, b: NodeId) -> usize {
        let (ca, cb) = (self.coord(a), self.coord(b));
        Dim::ALL
            .iter()
            .map(|&d| self.step_along(d, ca.get(d), cb.get(d)).1)
            .sum()
    }

    /// The dimension-order (X, then Y, then Z) route from `a` to `b` as the
    /// sequence of directed links traversed. Deterministic — this is the
    /// static routing Blue Gene/P uses for its default (deterministic) mode,
    /// and what the paper's link-overlap analysis assumes.
    pub fn route(&self, a: NodeId, b: NodeId) -> Vec<Link> {
        let mut links = Vec::with_capacity(self.hops(a, b));
        let mut cur = self.coord(a);
        let target = self.coord(b);
        for &dim in &Dim::ALL {
            let n = self.dims[dim.axis()];
            let (plus, hops) = self.step_along(dim, cur.get(dim), target.get(dim));
            for _ in 0..hops {
                links.push(Link {
                    from: self.id(cur),
                    dim,
                    plus,
                });
                let next = if plus {
                    (cur.get(dim) + 1) % n
                } else {
                    (cur.get(dim) + n - 1) % n
                };
                cur.set(dim, next);
            }
        }
        debug_assert_eq!(self.id(cur), b);
        links
    }

    /// The six (or fewer, on mesh edges) neighbors of a node.
    pub fn neighbors(&self, id: NodeId) -> Vec<NodeId> {
        let c = self.coord(id);
        let mut out = Vec::with_capacity(6);
        for &dim in &Dim::ALL {
            let n = self.dims[dim.axis()];
            if n == 1 {
                continue;
            }
            let v = c.get(dim);
            for plus in [true, false] {
                let wrapped = (plus && v + 1 == n) || (!plus && v == 0);
                if wrapped && !self.wrap[dim.axis()] {
                    continue;
                }
                let mut nc = c;
                nc.set(dim, if plus { (v + 1) % n } else { (v + n - 1) % n });
                let nid = self.id(nc);
                if nid != id && !out.contains(&nid) {
                    out.push(nid);
                }
            }
        }
        out
    }

    /// Number of directed links crossing the bisection that splits the
    /// machine into low-Z and high-Z halves, per direction. This is the
    /// bottleneck resource for the default mapping's buddy exchange (§4.2).
    pub fn z_bisection_links(&self) -> usize {
        // One +Z link per (x, y) column crosses the cut (plus the wraparound
        // link if the Z dimension wraps).
        let columns = self.dims[0] * self.dims[1];
        if self.wrap[2] {
            columns * 2
        } else {
            columns
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_coord_roundtrip() {
        let t = Torus3d::torus(4, 3, 5);
        assert_eq!(t.len(), 60);
        for id in t.nodes() {
            assert_eq!(t.id(t.coord(id)), id);
        }
        // x is fastest
        assert_eq!(t.id(Coord { x: 1, y: 0, z: 0 }), 1);
        assert_eq!(t.id(Coord { x: 0, y: 1, z: 0 }), 4);
        assert_eq!(t.id(Coord { x: 0, y: 0, z: 1 }), 12);
    }

    #[test]
    fn route_is_dimension_ordered_and_minimal() {
        let t = Torus3d::torus(8, 8, 8);
        let a = t.id(Coord { x: 1, y: 2, z: 3 });
        let b = t.id(Coord { x: 6, y: 0, z: 4 });
        let route = t.route(a, b);
        // x: 1->6 wraps backward (3 hops), y: 2->0 (2 hops), z: 3->4 (1 hop)
        assert_eq!(route.len(), 3 + 2 + 1);
        assert_eq!(t.hops(a, b), route.len());
        // dims appear in X..Y..Z order
        let dims: Vec<Dim> = route.iter().map(|l| l.dim).collect();
        let mut sorted = dims.clone();
        sorted.sort();
        assert_eq!(dims, sorted);
    }

    #[test]
    fn torus_wraps_and_mesh_does_not() {
        let torus = Torus3d::torus(8, 1, 1);
        let mesh = Torus3d::mesh(8, 1, 1);
        // 0 -> 7: torus goes backward 1 hop, mesh forward 7 hops
        assert_eq!(torus.hops(0, 7), 1);
        assert_eq!(mesh.hops(0, 7), 7);
        assert!(!torus.route(0, 7)[0].plus);
        assert!(mesh.route(0, 7)[0].plus);
    }

    #[test]
    fn tie_breaks_toward_plus() {
        let t = Torus3d::torus(8, 1, 1);
        let r = t.route(0, 4); // distance 4 both ways
        assert_eq!(r.len(), 4);
        assert!(r.iter().all(|l| l.plus));
    }

    #[test]
    fn route_endpoints_chain() {
        let t = Torus3d::torus(4, 4, 4);
        let a = 5;
        let b = 62;
        let route = t.route(a, b);
        let mut cur = a;
        for link in &route {
            assert_eq!(link.from, cur);
            // apply the step
            let c = t.coord(cur);
            let n = t.extent(link.dim);
            let v = c.get(link.dim);
            let nv = if link.plus {
                (v + 1) % n
            } else {
                (v + n - 1) % n
            };
            let mut nc = c;
            match link.dim {
                Dim::X => nc.x = nv,
                Dim::Y => nc.y = nv,
                Dim::Z => nc.z = nv,
            }
            cur = t.id(nc);
        }
        assert_eq!(cur, b);
    }

    #[test]
    fn self_route_is_empty() {
        let t = Torus3d::torus(4, 4, 4);
        assert!(t.route(9, 9).is_empty());
        assert_eq!(t.hops(9, 9), 0);
    }

    #[test]
    fn neighbors_count() {
        let t = Torus3d::torus(4, 4, 4);
        for id in t.nodes() {
            assert_eq!(t.neighbors(id).len(), 6);
        }
        let m = Torus3d::mesh(4, 4, 4);
        // corner has 3 neighbors
        assert_eq!(m.neighbors(0).len(), 3);
        // interior has 6
        let interior = m.id(Coord { x: 1, y: 1, z: 1 });
        assert_eq!(m.neighbors(interior).len(), 6);
    }

    #[test]
    fn degenerate_dimension_skipped_in_neighbors() {
        let t = Torus3d::torus(4, 1, 1);
        assert_eq!(t.neighbors(0).len(), 2);
        let two = Torus3d::torus(2, 1, 1);
        // +x and -x reach the same node; deduplicated
        assert_eq!(two.neighbors(0), vec![1]);
    }

    #[test]
    fn z_bisection_count() {
        assert_eq!(Torus3d::mesh(8, 8, 8).z_bisection_links(), 64);
        assert_eq!(Torus3d::torus(8, 8, 8).z_bisection_links(), 128);
    }
}
