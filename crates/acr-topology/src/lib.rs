//! # acr-topology — 3D torus machine model and replica mappings
//!
//! ACR's evaluation machine is Intrepid, an IBM Blue Gene/P with a 3D-torus
//! interconnect. Two of the paper's key results are *topological*:
//!
//! * With the default TXYZ rank order, the two replicas occupy the two halves
//!   of the torus along the slowest-varying (Z) dimension, so every
//!   buddy-exchange message crosses the same bisection and the bottleneck
//!   link load grows with the Z extent (§4.2, Fig. 6a).
//! * *Column* and *mixed* mappings interleave the replicas along Z so buddy
//!   pairs are 1 (or ≤ chunk) hops apart, eliminating the overlap (Fig. 6b/c).
//!
//! This crate models the torus ([`Torus3d`]), dimension-order routing
//! ([`Torus3d::route`]), the three replica mappings ([`MappingKind`],
//! [`Placement`]), and a link-load analyzer ([`LinkLoads`]) that regenerates
//! the message counts drawn on Fig. 6 and supplies the contention factors the
//! discrete-event simulator uses for checkpoint-transfer times.

#![warn(missing_docs)]

mod linkload;
mod mapping;
mod torus;

pub use linkload::{ExchangePattern, LinkLoads};
pub use mapping::{MappingKind, Placement};
pub use torus::{Coord, Dim, Link, NodeId, Torus3d};
