//! Replica-to-node mappings (§4.2, Fig. 6).

use std::fmt;

use crate::torus::{Coord, NodeId, Torus3d};

/// The three replica mapping schemes of §4.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MappingKind {
    /// Blue Gene/P's TXYZ rank order: the machine splits into two contiguous
    /// halves along Z. Buddy pairs sit `Z/2` planes apart, so all buddy
    /// traffic funnels through the Z bisection (Fig. 6a).
    Default,
    /// Alternate Z planes ("columns" in the paper's front-plane picture)
    /// belong to alternate replicas; buddies are 1 hop apart and their paths
    /// never overlap (Fig. 6b).
    Column,
    /// Chunks of `chunk` consecutive Z planes alternate between replicas;
    /// buddies are `chunk` hops apart. Trades a little overlap for spatial
    /// separation of buddy pairs (correlated-failure resistance, Fig. 6c).
    Mixed {
        /// Number of consecutive Z planes per chunk (≥ 1).
        chunk: usize,
    },
}

impl fmt::Display for MappingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingKind::Default => write!(f, "default"),
            MappingKind::Column => write!(f, "column"),
            MappingKind::Mixed { chunk } => write!(f, "mixed(chunk={chunk})"),
        }
    }
}

/// Why a mapping cannot be applied to a machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MappingError {
    /// The Z extent does not satisfy the mapping's divisibility requirement.
    ZExtent {
        /// Z extent of the machine.
        z: usize,
        /// Required divisor.
        needs_multiple_of: usize,
    },
    /// Spare carve-out must remove whole Z-plane *pairs* to keep the replica
    /// halves symmetric.
    SpareGranularity {
        /// Requested spare count.
        spares: usize,
        /// Nodes per plane pair.
        granularity: usize,
    },
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingError::ZExtent {
                z,
                needs_multiple_of,
            } => {
                write!(f, "Z extent {z} must be a multiple of {needs_multiple_of}")
            }
            MappingError::SpareGranularity {
                spares,
                granularity,
            } => {
                write!(
                    f,
                    "spare count {spares} must be a multiple of {granularity}"
                )
            }
        }
    }
}

impl std::error::Error for MappingError {}

/// A concrete assignment of machine nodes to `(replica, rank)` pairs plus a
/// spare pool (§2.1: "a few nodes are marked as spare nodes and are not used
/// by the application, but only replace failed nodes").
#[derive(Debug, Clone)]
pub struct Placement {
    kind: MappingKind,
    /// Per machine node: `Some((replica, rank))` or `None` for spares.
    locate: Vec<Option<(u8, usize)>>,
    /// Physical node of each `(replica, rank)`.
    node_of: [Vec<NodeId>; 2],
    spares: Vec<NodeId>,
}

impl MappingKind {
    /// Place two replicas (no spare pool) on `torus`.
    pub fn place(self, torus: &Torus3d) -> Result<Placement, MappingError> {
        self.place_with_spares(torus, 0)
    }

    /// Place two replicas and carve `spares` nodes out of the tail of the
    /// machine. For symmetry, spares are removed in whole Z-plane pairs.
    pub fn place_with_spares(
        self,
        torus: &Torus3d,
        spares: usize,
    ) -> Result<Placement, MappingError> {
        let [x, y, z] = torus.dims();
        let plane = x * y;
        let pair_granularity = 2 * plane;
        if spares > 0 && !spares.is_multiple_of(pair_granularity) {
            return Err(MappingError::SpareGranularity {
                spares,
                granularity: pair_granularity,
            });
        }
        let spare_planes = spares / plane; // even by the check above
        let usable_z =
            z.checked_sub(spare_planes)
                .filter(|&u| u >= 2)
                .ok_or(MappingError::ZExtent {
                    z,
                    needs_multiple_of: spare_planes + 2,
                })?;

        let needs = match self {
            MappingKind::Default | MappingKind::Column => 2,
            MappingKind::Mixed { chunk } => 2 * chunk.max(1),
        };
        if usable_z % needs != 0 {
            return Err(MappingError::ZExtent {
                z: usable_z,
                needs_multiple_of: needs,
            });
        }

        // Replica of a usable Z plane.
        let replica_of_plane = |p: usize| -> u8 {
            match self {
                MappingKind::Default => (p >= usable_z / 2) as u8,
                MappingKind::Column => (p % 2) as u8,
                MappingKind::Mixed { chunk } => ((p / chunk.max(1)) % 2) as u8,
            }
        };

        let mut locate = vec![None; torus.len()];
        let mut node_of = [Vec::new(), Vec::new()];
        let mut spares_v = Vec::with_capacity(spares);
        // Walk planes in Z order; within a plane in (y, x) order — i.e.
        // machine id order — so ranks inside each replica are TXYZ-ordered,
        // matching how the application's own communication is laid out.
        for p in 0..z {
            for yy in 0..y {
                for xx in 0..x {
                    let id = torus.id(Coord { x: xx, y: yy, z: p });
                    if p >= usable_z {
                        spares_v.push(id);
                        continue;
                    }
                    let r = replica_of_plane(p);
                    let rank = node_of[r as usize].len();
                    locate[id] = Some((r, rank));
                    node_of[r as usize].push(id);
                }
            }
        }
        debug_assert_eq!(node_of[0].len(), node_of[1].len());
        Ok(Placement {
            kind: self,
            locate,
            node_of,
            spares: spares_v,
        })
    }
}

impl Placement {
    /// The mapping that produced this placement.
    pub fn kind(&self) -> MappingKind {
        self.kind
    }

    /// Number of ranks per replica.
    pub fn ranks(&self) -> usize {
        self.node_of[0].len()
    }

    /// Physical node hosting `(replica, rank)`.
    pub fn node(&self, replica: u8, rank: usize) -> NodeId {
        self.node_of[replica as usize][rank]
    }

    /// `(replica, rank)` of a physical node, or `None` for spares.
    pub fn locate(&self, node: NodeId) -> Option<(u8, usize)> {
        self.locate[node]
    }

    /// The buddy (same rank, other replica) of a physical node.
    pub fn buddy(&self, node: NodeId) -> Option<NodeId> {
        let (r, rank) = self.locate(node)?;
        Some(self.node(1 - r, rank))
    }

    /// The spare pool, in carve-out order.
    pub fn spares(&self) -> &[NodeId] {
        &self.spares
    }

    /// Iterate over buddy pairs as `(replica0_node, replica1_node)`.
    pub fn buddy_pairs(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.ranks()).map(|r| (self.node_of[0][r], self.node_of[1][r]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t888() -> Torus3d {
        Torus3d::mesh(8, 8, 8)
    }

    #[test]
    fn default_splits_along_z() {
        let t = t888();
        let p = MappingKind::Default.place(&t).unwrap();
        assert_eq!(p.ranks(), 256);
        for node in t.nodes() {
            let (r, _) = p.locate(node).unwrap();
            let z = t.coord(node).z;
            assert_eq!(r, (z >= 4) as u8);
        }
        // buddy of (x,y,z) is (x,y,z+4)
        for (a, b) in p.buddy_pairs() {
            let (ca, cb) = (t.coord(a), t.coord(b));
            assert_eq!((ca.x, ca.y), (cb.x, cb.y));
            assert_eq!(cb.z, ca.z + 4);
        }
    }

    #[test]
    fn column_alternates_planes() {
        let t = t888();
        let p = MappingKind::Column.place(&t).unwrap();
        for (a, b) in p.buddy_pairs() {
            let (ca, cb) = (t.coord(a), t.coord(b));
            assert_eq!((ca.x, ca.y), (cb.x, cb.y));
            assert_eq!(cb.z, ca.z + 1, "buddies are adjacent planes");
            assert_eq!(ca.z % 2, 0);
        }
    }

    #[test]
    fn mixed_chunk2_pairs_two_planes_apart() {
        let t = t888();
        let p = MappingKind::Mixed { chunk: 2 }.place(&t).unwrap();
        for (a, b) in p.buddy_pairs() {
            let (ca, cb) = (t.coord(a), t.coord(b));
            assert_eq!((ca.x, ca.y), (cb.x, cb.y));
            assert_eq!(cb.z, ca.z + 2);
        }
    }

    #[test]
    fn mixed_chunk1_equals_column() {
        let t = t888();
        let a = MappingKind::Mixed { chunk: 1 }.place(&t).unwrap();
        let b = MappingKind::Column.place(&t).unwrap();
        for node in t.nodes() {
            assert_eq!(a.locate(node), b.locate(node));
        }
    }

    #[test]
    fn buddy_is_an_involution() {
        let t = t888();
        for kind in [
            MappingKind::Default,
            MappingKind::Column,
            MappingKind::Mixed { chunk: 2 },
            MappingKind::Mixed { chunk: 4 },
        ] {
            let p = kind.place(&t).unwrap();
            for node in t.nodes() {
                let b = p.buddy(node).unwrap();
                assert_eq!(p.buddy(b).unwrap(), node, "{kind} buddy not involutive");
                let (ra, _) = p.locate(node).unwrap();
                let (rb, _) = p.locate(b).unwrap();
                assert_ne!(ra, rb);
            }
        }
    }

    #[test]
    fn spares_carved_from_tail_planes() {
        let t = t888();
        let p = MappingKind::Default.place_with_spares(&t, 128).unwrap();
        assert_eq!(p.spares().len(), 128);
        assert_eq!(p.ranks(), (512 - 128) / 2);
        for &s in p.spares() {
            assert!(t.coord(s).z >= 6);
            assert_eq!(p.locate(s), None);
        }
    }

    #[test]
    fn bad_spare_granularity_rejected() {
        let t = t888();
        let err = MappingKind::Default.place_with_spares(&t, 10).unwrap_err();
        assert!(matches!(
            err,
            MappingError::SpareGranularity {
                granularity: 128,
                ..
            }
        ));
    }

    #[test]
    fn odd_z_rejected() {
        let t = Torus3d::mesh(4, 4, 3);
        assert!(matches!(
            MappingKind::Column.place(&t).unwrap_err(),
            MappingError::ZExtent { .. }
        ));
        let t6 = Torus3d::mesh(4, 4, 6);
        // mixed chunk=2 needs z % 4 == 0
        assert!(MappingKind::Mixed { chunk: 2 }.place(&t6).is_err());
        assert!(MappingKind::Column.place(&t6).is_ok());
    }

    #[test]
    fn ranks_cover_all_non_spare_nodes_exactly_once() {
        // z = 10: two tail planes (128 nodes) become spares, 8 usable planes
        // satisfy mixed(chunk=2)'s  z % 4 == 0 requirement.
        let t = Torus3d::mesh(8, 8, 10);
        let p = MappingKind::Mixed { chunk: 2 }
            .place_with_spares(&t, 128)
            .unwrap();
        let mut seen = vec![false; t.len()];
        for r in 0..2u8 {
            for rank in 0..p.ranks() {
                let n = p.node(r, rank);
                assert!(!seen[n]);
                seen[n] = true;
                assert_eq!(p.locate(n), Some((r, rank)));
            }
        }
        for &s in p.spares() {
            assert!(!seen[s]);
            seen[s] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
