//! Fault injectors (§6.1): random bit flips in checkpoint-visible user data.
//!
//! The paper's injector "injects a fault by flipping a randomly selected bit
//! in the user data that will be checkpointed". The runtime applies
//! [`SdcInjector`] to a node's packed state and unpacks it back, which is
//! behaviourally identical to flipping the bit in the live structures (all
//! of that state is PUP-visible by definition).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A record of one injected bit flip (for logging/assertion in tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitFlip {
    /// Byte offset of the flipped bit.
    pub byte: usize,
    /// Bit index within the byte (0 = LSB).
    pub bit: u8,
}

/// Flip one uniformly random bit of `data`. Returns `None` for empty data.
pub fn flip_random_bit<R: Rng + ?Sized>(data: &mut [u8], rng: &mut R) -> Option<BitFlip> {
    if data.is_empty() {
        return None;
    }
    let byte = rng.gen_range(0..data.len());
    let bit = rng.gen_range(0..8u8);
    data[byte] ^= 1 << bit;
    Some(BitFlip { byte, bit })
}

/// A seeded injector that can corrupt byte buffers repeatedly and remembers
/// what it did.
#[derive(Debug)]
pub struct SdcInjector {
    rng: StdRng,
    log: Vec<BitFlip>,
}

impl SdcInjector {
    /// New injector with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        Self::from_rng(StdRng::seed_from_u64(seed))
    }

    /// New injector continuing an existing generator's stream.
    ///
    /// Lets a caller draw its own values (e.g. a victim-task index) from the
    /// same seeded stream before handing the generator over, so the combined
    /// draw sequence stays reproducible bit for bit.
    pub fn from_rng(rng: StdRng) -> Self {
        Self {
            rng,
            log: Vec::new(),
        }
    }

    /// Corrupt one random bit of `data`.
    pub fn corrupt(&mut self, data: &mut [u8]) -> Option<BitFlip> {
        let flip = flip_random_bit(data, &mut self.rng)?;
        self.log.push(flip);
        Some(flip)
    }

    /// Corrupt `n` random bits (distinct draws; may rarely cancel by hitting
    /// the same bit twice — the caller injecting multi-bit bursts accepts
    /// that, as real upsets do too).
    pub fn corrupt_bits(&mut self, data: &mut [u8], n: usize) -> Vec<BitFlip> {
        (0..n).filter_map(|_| self.corrupt(data)).collect()
    }

    /// Corrupt one bit of `data` chosen through an index mapping: a byte
    /// index is drawn uniformly from `0..candidates` and translated via
    /// `map` (e.g. the n-th float byte of a PUP region map), then a bit is
    /// drawn. The draw order — index, then bit — matches [`Self::corrupt`],
    /// so callers that previously sampled raw offsets keep their streams.
    ///
    /// Returns `None` when `candidates` is zero or `map` declines the index.
    pub fn corrupt_indexed(
        &mut self,
        data: &mut [u8],
        candidates: usize,
        map: impl Fn(usize) -> Option<usize>,
    ) -> Option<BitFlip> {
        if candidates == 0 {
            return None;
        }
        let nth = self.rng.gen_range(0..candidates);
        let byte = map(nth)?;
        let bit = self.rng.gen_range(0..8u8);
        data[byte] ^= 1 << bit;
        let flip = BitFlip { byte, bit };
        self.log.push(flip);
        Some(flip)
    }

    /// Everything injected so far.
    pub fn log(&self) -> &[BitFlip] {
        &self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flips_exactly_one_bit() {
        let mut inj = SdcInjector::new(1);
        let mut data = vec![0u8; 128];
        let flip = inj.corrupt(&mut data).unwrap();
        let ones: u32 = data.iter().map(|b| b.count_ones()).sum();
        assert_eq!(ones, 1);
        assert_eq!(data[flip.byte], 1 << flip.bit);
    }

    #[test]
    fn double_flip_restores() {
        let mut data = vec![0xA5u8; 16];
        let orig = data.clone();
        let mut rng = StdRng::seed_from_u64(2);
        let flip = flip_random_bit(&mut data, &mut rng).unwrap();
        assert_ne!(data, orig);
        data[flip.byte] ^= 1 << flip.bit;
        assert_eq!(data, orig);
    }

    #[test]
    fn empty_data_is_safe() {
        let mut inj = SdcInjector::new(3);
        assert_eq!(inj.corrupt(&mut []), None);
        assert!(inj.log().is_empty());
    }

    #[test]
    fn seed_determinism_and_log() {
        let mut a = SdcInjector::new(42);
        let mut b = SdcInjector::new(42);
        let mut d1 = vec![0u8; 64];
        let mut d2 = vec![0u8; 64];
        a.corrupt_bits(&mut d1, 5);
        b.corrupt_bits(&mut d2, 5);
        assert_eq!(d1, d2);
        assert_eq!(a.log(), b.log());
        assert_eq!(a.log().len(), 5);
    }

    #[test]
    fn flips_cover_the_buffer() {
        // Statistical sanity: 2000 flips across a 16-byte buffer touch every
        // byte.
        let mut inj = SdcInjector::new(7);
        let mut seen = [false; 16];
        for _ in 0..2000 {
            let mut data = vec![0u8; 16];
            let f = inj.corrupt(&mut data).unwrap();
            seen[f.byte] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
