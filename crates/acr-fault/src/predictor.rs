//! Online failure prediction (§2.2): "as online failure prediction [19]
//! becomes more accurate, checkpointing right before a potential failure
//! occurs can help increase the mean time between failures visible to
//! applications. ACR is capable of scheduling dynamic checkpoints in both
//! the scenarios described."
//!
//! Real predictors (meta-learning over syslog streams, [19]) emit an alarm
//! some *lead time* before a subset of failures, plus spurious alarms. This
//! module models exactly that interface: given a ground-truth failure
//! trace, [`FailurePredictor`] produces the alarm stream a predictor with a
//! given recall/precision/lead-time would emit, so the simulator and
//! runtime can measure what prediction quality buys ACR.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::trace::{FailureTrace, FaultKind};

/// An alarm the predictor raises.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Alarm {
    /// When the alarm fires.
    pub time: f64,
    /// The node the predictor blames.
    pub node: usize,
    /// Whether a real failure follows (ground truth — invisible to the
    /// consumer, recorded for scoring).
    pub true_positive: bool,
}

/// Quality profile of a failure predictor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictorProfile {
    /// Fraction of hard errors announced ahead of time (recall).
    pub recall: f64,
    /// Fraction of alarms that precede a real failure (precision).
    pub precision: f64,
    /// Seconds of warning before the failure (lead time).
    pub lead_time: f64,
}

impl PredictorProfile {
    /// A profile in the ballpark of the literature the paper cites
    /// (meta-learning predictors: ~0.6–0.8 recall / ~0.7–0.9 precision,
    /// minutes of lead).
    pub fn literature() -> Self {
        Self {
            recall: 0.7,
            precision: 0.8,
            lead_time: 30.0,
        }
    }

    /// An oracle (every failure announced, no false alarms).
    pub fn oracle(lead_time: f64) -> Self {
        Self {
            recall: 1.0,
            precision: 1.0,
            lead_time,
        }
    }
}

/// Generates the alarm stream a predictor with `profile` would emit for a
/// ground-truth trace.
#[derive(Debug, Clone)]
pub struct FailurePredictor {
    profile: PredictorProfile,
    alarms: Vec<Alarm>,
}

impl FailurePredictor {
    /// Score `trace` (hard errors only) with a predictor of the given
    /// quality. Deterministic in `seed`.
    pub fn against(
        trace: &FailureTrace,
        profile: PredictorProfile,
        nodes: usize,
        seed: u64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&profile.recall));
        assert!((0.0..=1.0).contains(&profile.precision) && profile.precision > 0.0);
        assert!(profile.lead_time >= 0.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut alarms = Vec::new();
        let mut caught = 0usize;
        let mut horizon: f64 = 0.0;
        for ev in trace.events() {
            horizon = horizon.max(ev.time);
            if ev.kind != FaultKind::HardError {
                continue; // SDC is *silent*: nothing to predict
            }
            if rng.gen::<f64>() < profile.recall {
                caught += 1;
                alarms.push(Alarm {
                    time: (ev.time - profile.lead_time).max(0.0),
                    node: ev.node,
                    true_positive: true,
                });
            }
        }
        // False alarms to hit the precision target:
        // precision = TP / (TP + FP)  =>  FP = TP (1 - p) / p.
        let fp = ((caught as f64) * (1.0 - profile.precision) / profile.precision).round() as usize;
        for _ in 0..fp {
            alarms.push(Alarm {
                time: rng.gen::<f64>() * horizon.max(1.0),
                node: rng.gen_range(0..nodes.max(1)),
                true_positive: false,
            });
        }
        alarms.sort_by(|a, b| a.time.total_cmp(&b.time));
        Self { profile, alarms }
    }

    /// The alarm stream, time-ordered.
    pub fn alarms(&self) -> &[Alarm] {
        &self.alarms
    }

    /// The quality profile used.
    pub fn profile(&self) -> PredictorProfile {
        self.profile
    }

    /// Measured precision of the generated stream.
    pub fn measured_precision(&self) -> f64 {
        if self.alarms.is_empty() {
            return 1.0;
        }
        self.alarms.iter().filter(|a| a.true_positive).count() as f64 / self.alarms.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributions::{FailureDistribution, FailureProcess};

    fn trace() -> FailureTrace {
        FailureTrace::generate(
            Some(FailureProcess::Renewal(FailureDistribution::exponential(
                50.0,
            ))),
            Some(FailureProcess::Renewal(FailureDistribution::exponential(
                80.0,
            ))),
            20_000.0,
            64,
            3,
        )
    }

    #[test]
    fn oracle_announces_every_hard_error_with_lead() {
        let t = trace();
        let p = FailurePredictor::against(&t, PredictorProfile::oracle(25.0), 64, 1);
        let hard = t.count(FaultKind::HardError);
        assert_eq!(p.alarms().len(), hard);
        assert!(p.alarms().iter().all(|a| a.true_positive));
        assert_eq!(p.measured_precision(), 1.0);
        // Each alarm precedes its failure by the lead time.
        let hard_times: Vec<f64> = t
            .events()
            .iter()
            .filter(|e| e.kind == FaultKind::HardError)
            .map(|e| e.time)
            .collect();
        for (a, &ft) in p.alarms().iter().zip(&hard_times) {
            assert!((ft - a.time - 25.0).abs() < 1e-9 || a.time == 0.0);
        }
    }

    #[test]
    fn recall_and_precision_are_respected_statistically() {
        let t = trace();
        let hard = t.count(FaultKind::HardError) as f64;
        let mut tp = 0.0;
        let mut total = 0.0;
        for seed in 0..20 {
            let p = FailurePredictor::against(&t, PredictorProfile::literature(), 64, seed);
            tp += p.alarms().iter().filter(|a| a.true_positive).count() as f64;
            total += p.alarms().len() as f64;
        }
        let recall = tp / (20.0 * hard);
        let precision = tp / total;
        assert!((recall - 0.7).abs() < 0.1, "recall {recall}");
        assert!((precision - 0.8).abs() < 0.07, "precision {precision}");
    }

    #[test]
    fn alarms_are_time_ordered_and_deterministic() {
        let t = trace();
        let a = FailurePredictor::against(&t, PredictorProfile::literature(), 64, 9);
        let b = FailurePredictor::against(&t, PredictorProfile::literature(), 64, 9);
        assert_eq!(a.alarms(), b.alarms());
        assert!(a.alarms().windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn sdc_is_never_predicted() {
        let t = FailureTrace::generate(
            Some(FailureProcess::Renewal(FailureDistribution::exponential(
                1e9,
            ))),
            Some(FailureProcess::Renewal(FailureDistribution::exponential(
                10.0,
            ))),
            1000.0,
            8,
            0,
        );
        let p = FailurePredictor::against(&t, PredictorProfile::oracle(5.0), 8, 0);
        assert!(p.alarms().is_empty());
    }
}
