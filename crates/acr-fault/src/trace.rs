//! Reproducible machine-wide failure traces (§6.1's injection methodology).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::distributions::FailureProcess;

/// What kind of fault an event injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Fail-stop node crash: the victim stops responding to any
    /// communication and is eventually declared dead by its buddy's
    /// heartbeat timeout.
    HardError,
    /// Silent data corruption: one randomly selected bit of the victim's
    /// checkpoint-visible user data flips.
    Sdc,
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Time of the fault (seconds from job start).
    pub time: f64,
    /// Victim node (machine-wide id).
    pub node: usize,
    /// Fault kind.
    pub kind: FaultKind,
}

/// A seeded trace of faults for a machine of `nodes` nodes.
#[derive(Debug, Clone, Default)]
pub struct FailureTrace {
    events: Vec<TraceEvent>,
}

impl FailureTrace {
    /// Build a trace from explicit events (sorted by time internally).
    pub fn from_events(mut events: Vec<TraceEvent>) -> Self {
        events.sort_by(|a, b| a.time.total_cmp(&b.time));
        Self { events }
    }

    /// Generate a trace: hard errors from `hard`, SDC from `sdc` (either
    /// may be `None`), over `[0, horizon)` seconds, victims uniform over
    /// `nodes`. Deterministic in `seed`.
    pub fn generate(
        hard: Option<FailureProcess>,
        sdc: Option<FailureProcess>,
        horizon: f64,
        nodes: usize,
        seed: u64,
    ) -> Self {
        assert!(nodes > 0, "trace needs at least one node");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut events = Vec::new();
        if let Some(p) = hard {
            for t in p.events_until(&mut rng, horizon) {
                events.push(TraceEvent {
                    time: t,
                    node: rng.gen_range(0..nodes),
                    kind: FaultKind::HardError,
                });
            }
        }
        if let Some(p) = sdc {
            for t in p.events_until(&mut rng, horizon) {
                events.push(TraceEvent {
                    time: t,
                    node: rng.gen_range(0..nodes),
                    kind: FaultKind::Sdc,
                });
            }
        }
        Self::from_events(events)
    }

    /// All events, sorted by time.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events of a given kind.
    pub fn count(&self, kind: FaultKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    /// Events within a window `[from, to)`.
    pub fn in_window(&self, from: f64, to: f64) -> impl Iterator<Item = &TraceEvent> {
        self.events
            .iter()
            .filter(move |e| e.time >= from && e.time < to)
    }

    /// Inter-arrival gaps between consecutive events (all kinds merged) —
    /// the stream the online estimators consume.
    pub fn interarrivals(&self) -> Vec<f64> {
        self.events
            .windows(2)
            .map(|w| w[1].time - w[0].time)
            .chain(self.events.first().map(|e| e.time))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributions::FailureDistribution;

    fn exp_process(mean: f64) -> FailureProcess {
        FailureProcess::Renewal(FailureDistribution::exponential(mean))
    }

    #[test]
    fn trace_is_sorted_and_seed_deterministic() {
        let a = FailureTrace::generate(
            Some(exp_process(50.0)),
            Some(exp_process(80.0)),
            5000.0,
            64,
            7,
        );
        let b = FailureTrace::generate(
            Some(exp_process(50.0)),
            Some(exp_process(80.0)),
            5000.0,
            64,
            7,
        );
        assert_eq!(a.events(), b.events());
        assert!(a.events().windows(2).all(|w| w[0].time <= w[1].time));
        assert!(a.events().iter().all(|e| e.node < 64 && e.time < 5000.0));
        assert!(a.count(FaultKind::HardError) > 0);
        assert!(a.count(FaultKind::Sdc) > 0);
    }

    #[test]
    fn different_seeds_differ() {
        let a = FailureTrace::generate(Some(exp_process(50.0)), None, 5000.0, 64, 1);
        let b = FailureTrace::generate(Some(exp_process(50.0)), None, 5000.0, 64, 2);
        assert_ne!(a.events(), b.events());
    }

    #[test]
    fn window_query() {
        let t = FailureTrace::from_events(vec![
            TraceEvent {
                time: 1.0,
                node: 0,
                kind: FaultKind::Sdc,
            },
            TraceEvent {
                time: 5.0,
                node: 1,
                kind: FaultKind::HardError,
            },
            TraceEvent {
                time: 9.0,
                node: 2,
                kind: FaultKind::Sdc,
            },
        ]);
        let in_win: Vec<_> = t.in_window(2.0, 9.0).collect();
        assert_eq!(in_win.len(), 1);
        assert_eq!(in_win[0].node, 1);
    }

    #[test]
    fn interarrivals_reconstruct_times() {
        let t = FailureTrace::from_events(vec![
            TraceEvent {
                time: 2.0,
                node: 0,
                kind: FaultKind::Sdc,
            },
            TraceEvent {
                time: 7.0,
                node: 0,
                kind: FaultKind::Sdc,
            },
            TraceEvent {
                time: 8.5,
                node: 0,
                kind: FaultKind::Sdc,
            },
        ]);
        let mut gaps = t.interarrivals();
        gaps.sort_by(f64::total_cmp);
        assert_eq!(gaps, vec![1.5, 2.0, 5.0]);
    }

    #[test]
    fn fig12_style_trace_has_expected_count() {
        // 30-minute run, 19 failures, decreasing rate (§6.4): scale chosen
        // so (1800/scale)^0.6 ≈ 19.
        let scale = 1800.0 / 19.0f64.powf(1.0 / 0.6);
        let p = FailureProcess::PowerLaw { shape: 0.6, scale };
        let mut counts = Vec::new();
        for seed in 0..50 {
            let t = FailureTrace::generate(Some(p), None, 1800.0, 512, seed);
            counts.push(t.events().len());
        }
        let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        assert!((mean - 19.0).abs() < 3.0, "mean count {mean}");
    }

    #[test]
    fn empty_trace() {
        let t = FailureTrace::generate(None, None, 100.0, 4, 0);
        assert!(t.events().is_empty());
        assert!(t.interarrivals().is_empty());
    }
}
