//! Inter-arrival distributions and failure processes.
//!
//! Implemented in-tree (inverse-CDF, Box–Muller, Marsaglia–Tsang) rather
//! than pulling `rand_distr`: the four distributions ACR's evaluation needs
//! are ~100 lines, and keeping them here lets the estimators and samplers
//! share one parameterization.

use rand::Rng;

/// An inter-arrival (or per-event) distribution for failures. All
/// parameters are in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FailureDistribution {
    /// Exponential with the given mean (a Poisson failure process) — the
    /// assumption under which a *fixed* checkpoint interval is optimal \[7\].
    Exponential {
        /// Mean time between failures.
        mean: f64,
    },
    /// Weibull with `shape` k and `scale` λ. `shape < 1` gives the
    /// decreasing hazard observed on real systems \[29\].
    Weibull {
        /// Shape parameter `k`.
        shape: f64,
        /// Scale parameter `λ`.
        scale: f64,
    },
    /// Log-normal: `exp(μ + σZ)`.
    LogNormal {
        /// Location of the underlying normal.
        mu: f64,
        /// Spread of the underlying normal.
        sigma: f64,
    },
    /// Gamma with `shape` k and `scale` θ.
    Gamma {
        /// Shape parameter `k`.
        shape: f64,
        /// Scale parameter `θ`.
        scale: f64,
    },
}

impl FailureDistribution {
    /// Exponential distribution from its mean.
    pub fn exponential(mean: f64) -> Self {
        assert!(mean > 0.0, "mean must be positive");
        FailureDistribution::Exponential { mean }
    }

    /// Weibull distribution with a given *mean* and shape: the scale is
    /// derived as `λ = mean / Γ(1 + 1/k)` — handy for "same MTBF, different
    /// burstiness" comparisons.
    pub fn weibull_with_mean(mean: f64, shape: f64) -> Self {
        assert!(mean > 0.0 && shape > 0.0);
        let scale = mean / gamma_fn(1.0 + 1.0 / shape);
        FailureDistribution::Weibull { shape, scale }
    }

    /// The distribution's mean.
    pub fn mean(&self) -> f64 {
        match *self {
            FailureDistribution::Exponential { mean } => mean,
            FailureDistribution::Weibull { shape, scale } => scale * gamma_fn(1.0 + 1.0 / shape),
            FailureDistribution::LogNormal { mu, sigma } => (mu + sigma * sigma / 2.0).exp(),
            FailureDistribution::Gamma { shape, scale } => shape * scale,
        }
    }

    /// Draw one value.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            FailureDistribution::Exponential { mean } => {
                // Inverse CDF on (0, 1]; 1−U avoids ln(0).
                let u: f64 = rng.gen::<f64>();
                -mean * (1.0 - u).max(f64::MIN_POSITIVE).ln()
            }
            FailureDistribution::Weibull { shape, scale } => {
                let u: f64 = rng.gen::<f64>();
                scale * (-(1.0 - u).max(f64::MIN_POSITIVE).ln()).powf(1.0 / shape)
            }
            FailureDistribution::LogNormal { mu, sigma } => {
                (mu + sigma * standard_normal(rng)).exp()
            }
            FailureDistribution::Gamma { shape, scale } => sample_gamma(rng, shape) * scale,
        }
    }
}

/// Box–Muller standard normal.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        let u2: f64 = rng.gen();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

/// Marsaglia–Tsang gamma sampler (unit scale). For `shape < 1` uses the
/// boost `G(a) = G(a+1) · U^{1/a}`.
fn sample_gamma<R: Rng + ?Sized>(rng: &mut R, shape: f64) -> f64 {
    assert!(shape > 0.0, "gamma shape must be positive");
    if shape < 1.0 {
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        return sample_gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Lanczos approximation of Γ(x) for x > 0 (relative error < 1e-10 over the
/// range the samplers use).
pub(crate) fn gamma_fn(x: f64) -> f64 {
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma_fn(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = COEF[0];
        let t = x + G + 0.5;
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

/// A point process of failure *times* (not inter-arrivals).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FailureProcess {
    /// A renewal process: i.i.d. inter-arrivals from a distribution.
    Renewal(FailureDistribution),
    /// The power-law (Crow–AMSAA) non-homogeneous Poisson process with
    /// cumulative intensity `Λ(t) = (t/scale)^shape`. `shape < 1` means the
    /// instantaneous failure rate *decreases over time* — the behaviour the
    /// Fig. 12 experiment injects (its Weibull shape 0.6) and the situation
    /// in which a fixed interval is provably suboptimal [4, 20].
    PowerLaw {
        /// Shape (< 1 ⇒ decreasing rate).
        shape: f64,
        /// Scale (time of the first expected failure).
        scale: f64,
    },
}

impl FailureProcess {
    /// Instantaneous failure rate (hazard of the next event) at time `t`
    /// for processes with a defined rate; renewal processes report the
    /// reciprocal mean.
    pub fn rate_at(&self, t: f64) -> f64 {
        match *self {
            FailureProcess::Renewal(d) => 1.0 / d.mean(),
            FailureProcess::PowerLaw { shape, scale } => {
                let t = t.max(scale * 1e-6);
                (shape / scale) * (t / scale).powf(shape - 1.0)
            }
        }
    }

    /// Generate all event times in `[0, horizon)`.
    pub fn events_until<R: Rng + ?Sized>(&self, rng: &mut R, horizon: f64) -> Vec<f64> {
        let mut out = Vec::new();
        match *self {
            FailureProcess::Renewal(d) => {
                let mut t = 0.0;
                loop {
                    t += d.sample(rng);
                    if t >= horizon {
                        break;
                    }
                    out.push(t);
                }
            }
            FailureProcess::PowerLaw { shape, scale } => {
                // Inversion: if S_k = Σ Exp(1), then t_k = scale · S_k^{1/shape}
                // has cumulative intensity (t/scale)^shape.
                let mut s = 0.0;
                loop {
                    let u: f64 = rng.gen::<f64>();
                    s += -(1.0 - u).max(f64::MIN_POSITIVE).ln();
                    let t = scale * s.powf(1.0 / shape);
                    if t >= horizon {
                        break;
                    }
                    out.push(t);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xACA1)
    }

    fn sample_mean(d: FailureDistribution, n: usize) -> f64 {
        let mut r = rng();
        (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64
    }

    #[test]
    fn gamma_function_known_values() {
        assert!((gamma_fn(1.0) - 1.0).abs() < 1e-10);
        assert!((gamma_fn(2.0) - 1.0).abs() < 1e-10);
        assert!((gamma_fn(5.0) - 24.0).abs() < 1e-8);
        assert!((gamma_fn(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-10);
        assert!((gamma_fn(1.5) - 0.5 * std::f64::consts::PI.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn exponential_mean_converges() {
        let d = FailureDistribution::exponential(120.0);
        let m = sample_mean(d, 200_000);
        assert!((m - 120.0).abs() / 120.0 < 0.02, "mean {m}");
    }

    #[test]
    fn weibull_mean_matches_closed_form() {
        for shape in [0.6, 1.0, 2.0] {
            let d = FailureDistribution::weibull_with_mean(50.0, shape);
            assert!((d.mean() - 50.0).abs() < 1e-9);
            let m = sample_mean(d, 200_000);
            assert!((m - 50.0).abs() / 50.0 < 0.05, "shape {shape}: mean {m}");
        }
    }

    #[test]
    fn weibull_shape_one_is_exponential() {
        let w = FailureDistribution::Weibull {
            shape: 1.0,
            scale: 77.0,
        };
        assert!((w.mean() - 77.0).abs() < 1e-9);
    }

    #[test]
    fn lognormal_mean_matches_closed_form() {
        let d = FailureDistribution::LogNormal {
            mu: 2.0,
            sigma: 0.5,
        };
        let expected = (2.0f64 + 0.125).exp();
        assert!((d.mean() - expected).abs() < 1e-9);
        let m = sample_mean(d, 300_000);
        assert!(
            (m - expected).abs() / expected < 0.03,
            "mean {m} vs {expected}"
        );
    }

    #[test]
    fn gamma_mean_matches_closed_form() {
        for (shape, scale) in [(0.5, 10.0), (2.0, 30.0), (4.5, 7.0)] {
            let d = FailureDistribution::Gamma { shape, scale };
            let m = sample_mean(d, 200_000);
            let expected = shape * scale;
            assert!(
                (m - expected).abs() / expected < 0.04,
                "gamma({shape},{scale}): {m} vs {expected}"
            );
        }
    }

    #[test]
    fn samples_are_positive_and_deterministic_by_seed() {
        for d in [
            FailureDistribution::exponential(5.0),
            FailureDistribution::Weibull {
                shape: 0.6,
                scale: 3.0,
            },
            FailureDistribution::LogNormal {
                mu: 0.0,
                sigma: 1.0,
            },
            FailureDistribution::Gamma {
                shape: 0.7,
                scale: 2.0,
            },
        ] {
            let mut r1 = rng();
            let mut r2 = rng();
            for _ in 0..1000 {
                let a = d.sample(&mut r1);
                assert!(a > 0.0 && a.is_finite());
                assert_eq!(a.to_bits(), d.sample(&mut r2).to_bits());
            }
        }
    }

    #[test]
    fn renewal_event_count_matches_horizon_over_mean() {
        let p = FailureProcess::Renewal(FailureDistribution::exponential(10.0));
        let mut r = rng();
        let n: usize = (0..200).map(|_| p.events_until(&mut r, 1000.0).len()).sum();
        let mean = n as f64 / 200.0;
        assert!((mean - 100.0).abs() < 5.0, "mean count {mean}");
    }

    #[test]
    fn power_law_rate_decreases_for_small_shape() {
        let p = FailureProcess::PowerLaw {
            shape: 0.6,
            scale: 60.0,
        };
        let early = p.rate_at(30.0);
        let late = p.rate_at(1500.0);
        assert!(early > late * 3.0, "rate must fall: {early} vs {late}");
    }

    #[test]
    fn power_law_events_are_sorted_and_front_loaded() {
        let p = FailureProcess::PowerLaw {
            shape: 0.6,
            scale: 60.0,
        };
        let mut r = rng();
        // A single realization has only ~(30)^0.6 ≈ 8 events, so the
        // front-loading property is asserted in aggregate; sortedness must
        // hold in every realization.
        let mut first_half = 0usize;
        let mut total = 0usize;
        for _ in 0..200 {
            let ev = p.events_until(&mut r, 1800.0);
            assert!(ev.windows(2).all(|w| w[0] <= w[1]));
            first_half += ev.iter().filter(|&&t| t < 900.0).count();
            total += ev.len();
        }
        assert!(total > 0);
        // Decreasing rate ⇒ more events in the first half than the second.
        assert!(first_half * 2 > total, "{first_half} of {total}");
    }

    #[test]
    fn power_law_expected_count_matches_cumulative_intensity() {
        // E[N(T)] = (T/scale)^shape
        let p = FailureProcess::PowerLaw {
            shape: 0.6,
            scale: 60.0,
        };
        let mut r = rng();
        let total: usize = (0..500).map(|_| p.events_until(&mut r, 1800.0).len()).sum();
        let mean = total as f64 / 500.0;
        let expected = (1800.0f64 / 60.0).powf(0.6);
        assert!(
            (mean - expected).abs() / expected < 0.1,
            "{mean} vs {expected}"
        );
    }
}
