//! Online estimation of the observed failure behaviour (§2.2 "it is
//! important to fit the actual observed failures during application
//! execution to a certain distribution").

use crate::distributions::gamma_fn;

/// Streaming MTBF estimator over a sliding window of recent inter-arrival
/// gaps.
///
/// A windowed mean tracks non-stationary failure rates (the Weibull-ish
/// reality of \[29\]) instead of averaging the whole history: early bursts
/// stop depressing the estimate once they leave the window, which is what
/// lets the Fig. 12 run stretch its checkpoint period from 6 s to 17 s.
#[derive(Debug, Clone)]
pub struct MtbfEstimator {
    window: usize,
    gaps: Vec<f64>,
    last_failure: Option<f64>,
    total_failures: usize,
}

impl MtbfEstimator {
    /// Estimator remembering the last `window` gaps (≥ 1).
    pub fn new(window: usize) -> Self {
        assert!(window >= 1);
        Self {
            window,
            gaps: Vec::new(),
            last_failure: None,
            total_failures: 0,
        }
    }

    /// Record a failure at absolute time `t` (seconds, non-decreasing).
    pub fn record_failure(&mut self, t: f64) {
        if let Some(last) = self.last_failure {
            let gap = (t - last).max(0.0);
            if self.gaps.len() == self.window {
                self.gaps.remove(0);
            }
            self.gaps.push(gap);
        } else {
            // The first failure's gap is measured from job start.
            self.gaps.push(t.max(0.0));
        }
        self.last_failure = Some(t);
        self.total_failures += 1;
    }

    /// Current MTBF estimate, or `None` before the first failure.
    pub fn mtbf(&self) -> Option<f64> {
        if self.gaps.is_empty() {
            return None;
        }
        Some(self.gaps.iter().sum::<f64>() / self.gaps.len() as f64)
    }

    /// Failures observed so far.
    pub fn failures(&self) -> usize {
        self.total_failures
    }

    /// Time of the most recent failure.
    pub fn last_failure(&self) -> Option<f64> {
        self.last_failure
    }

    /// The windowed gap samples (for distribution fitting).
    pub fn gaps(&self) -> &[f64] {
        &self.gaps
    }
}

/// A fitted Weibull distribution over inter-arrival gaps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeibullFit {
    /// Shape `k` (< 1 ⇒ decreasing hazard).
    pub shape: f64,
    /// Scale `λ`.
    pub scale: f64,
}

impl WeibullFit {
    /// Maximum-likelihood fit of a Weibull distribution to gap samples.
    ///
    /// Solves the profile-likelihood equation
    /// `Σxᵢᵏ ln xᵢ / Σxᵢᵏ − 1/k − mean(ln xᵢ) = 0` for `k` by bisection
    /// (the left side is monotone in `k`), then
    /// `λ = (Σxᵢᵏ / n)^{1/k}`. Needs ≥ 3 positive, non-identical samples.
    pub fn fit(samples: &[f64]) -> Option<WeibullFit> {
        let xs: Vec<f64> = samples.iter().copied().filter(|&x| x > 0.0).collect();
        if xs.len() < 3 {
            return None;
        }
        let mean_ln = xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64;
        let g = |k: f64| -> f64 {
            let (mut num, mut den) = (0.0, 0.0);
            for &x in &xs {
                let xk = x.powf(k);
                num += xk * x.ln();
                den += xk;
            }
            num / den - 1.0 / k - mean_ln
        };
        let (mut lo, mut hi) = (1e-2, 50.0);
        if g(lo) > 0.0 || g(hi) < 0.0 {
            return None; // degenerate sample (e.g. all identical)
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if g(mid) < 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let shape = 0.5 * (lo + hi);
        let scale =
            (xs.iter().map(|x| x.powf(shape)).sum::<f64>() / xs.len() as f64).powf(1.0 / shape);
        Some(WeibullFit { shape, scale })
    }

    /// Mean of the fitted distribution.
    pub fn mean(&self) -> f64 {
        self.scale * gamma_fn(1.0 + 1.0 / self.shape)
    }

    /// Hazard rate at age `t` since the last failure:
    /// `h(t) = (k/λ)(t/λ)^{k−1}`.
    pub fn hazard(&self, t: f64) -> f64 {
        let t = t.max(self.scale * 1e-9);
        (self.shape / self.scale) * (t / self.scale).powf(self.shape - 1.0)
    }

    /// True when the fit indicates a decreasing failure rate — the regime
    /// where growing the checkpoint period over time is justified.
    pub fn decreasing_hazard(&self) -> bool {
        self.shape < 1.0
    }
}

/// MLE fit of the power-law (Crow–AMSAA) process to absolute event times —
/// the natural model when the *system-wide* failure rate trends over a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLawFit {
    /// Shape `k` of `Λ(t) = (t/λ)^k`.
    pub shape: f64,
    /// Scale `λ`.
    pub scale: f64,
}

impl PowerLawFit {
    /// Fit from event times observed in `[0, t_now]`:
    /// `k̂ = n / Σ ln(t_now/tᵢ)`, `λ̂ = t_now / n^{1/k̂}`.
    pub fn fit(event_times: &[f64], t_now: f64) -> Option<PowerLawFit> {
        let ts: Vec<f64> = event_times
            .iter()
            .copied()
            .filter(|&t| t > 0.0 && t < t_now)
            .collect();
        if ts.len() < 2 || t_now <= 0.0 {
            return None;
        }
        let denom: f64 = ts.iter().map(|&t| (t_now / t).ln()).sum();
        if denom <= 0.0 {
            return None;
        }
        let shape = ts.len() as f64 / denom;
        let scale = t_now / (ts.len() as f64).powf(1.0 / shape);
        Some(PowerLawFit { shape, scale })
    }

    /// Instantaneous rate at time `t`.
    pub fn rate_at(&self, t: f64) -> f64 {
        let t = t.max(self.scale * 1e-9);
        (self.shape / self.scale) * (t / self.scale).powf(self.shape - 1.0)
    }

    /// Effective MTBF at time `t` (reciprocal instantaneous rate).
    pub fn mtbf_at(&self, t: f64) -> f64 {
        1.0 / self.rate_at(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributions::{FailureDistribution, FailureProcess};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn windowed_mtbf_tracks_recent_rate() {
        let mut e = MtbfEstimator::new(4);
        assert_eq!(e.mtbf(), None);
        // Dense failures every 5 s...
        for i in 1..=6 {
            e.record_failure(i as f64 * 5.0);
        }
        assert!((e.mtbf().unwrap() - 5.0).abs() < 1e-9);
        // ...then sparse every 50 s: the window forgets the dense phase.
        for i in 1..=4 {
            e.record_failure(30.0 + i as f64 * 50.0);
        }
        assert!(e.mtbf().unwrap() >= 50.0);
        assert_eq!(e.failures(), 10);
    }

    #[test]
    fn first_failure_measured_from_start() {
        let mut e = MtbfEstimator::new(8);
        e.record_failure(42.0);
        assert_eq!(e.mtbf(), Some(42.0));
    }

    #[test]
    fn weibull_fit_recovers_parameters() {
        let mut rng = StdRng::seed_from_u64(99);
        for (shape, scale) in [(0.6, 100.0), (1.0, 40.0), (2.5, 10.0)] {
            let d = FailureDistribution::Weibull { shape, scale };
            let samples: Vec<f64> = (0..4000).map(|_| d.sample(&mut rng)).collect();
            let fit = WeibullFit::fit(&samples).unwrap();
            assert!(
                (fit.shape - shape).abs() / shape < 0.08,
                "shape {shape}: fitted {}",
                fit.shape
            );
            assert!(
                (fit.scale - scale).abs() / scale < 0.08,
                "scale {scale}: fitted {}",
                fit.scale
            );
        }
    }

    #[test]
    fn weibull_fit_rejects_degenerate_input() {
        assert!(WeibullFit::fit(&[]).is_none());
        assert!(WeibullFit::fit(&[1.0, 2.0]).is_none());
        assert!(WeibullFit::fit(&[5.0, 5.0, 5.0, 5.0]).is_none());
        assert!(WeibullFit::fit(&[0.0, -1.0, 2.0]).is_none());
    }

    #[test]
    fn weibull_hazard_direction() {
        let dec = WeibullFit {
            shape: 0.6,
            scale: 100.0,
        };
        assert!(dec.decreasing_hazard());
        assert!(dec.hazard(10.0) > dec.hazard(1000.0));
        let inc = WeibullFit {
            shape: 2.0,
            scale: 100.0,
        };
        assert!(!inc.decreasing_hazard());
        assert!(inc.hazard(10.0) < inc.hazard(1000.0));
    }

    #[test]
    fn power_law_fit_recovers_shape() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = FailureProcess::PowerLaw {
            shape: 0.6,
            scale: 30.0,
        };
        let mut shapes = Vec::new();
        for _ in 0..50 {
            let ev = p.events_until(&mut rng, 100_000.0);
            if let Some(fit) = PowerLawFit::fit(&ev, 100_000.0) {
                shapes.push(fit.shape);
            }
        }
        let mean = shapes.iter().sum::<f64>() / shapes.len() as f64;
        assert!((mean - 0.6).abs() < 0.08, "mean fitted shape {mean}");
    }

    #[test]
    fn power_law_mtbf_grows_for_decreasing_rate() {
        let fit = PowerLawFit {
            shape: 0.6,
            scale: 30.0,
        };
        assert!(fit.mtbf_at(1500.0) > 2.0 * fit.mtbf_at(100.0));
    }

    #[test]
    fn power_law_fit_needs_data() {
        assert!(PowerLawFit::fit(&[], 100.0).is_none());
        assert!(PowerLawFit::fit(&[5.0], 100.0).is_none());
        assert!(PowerLawFit::fit(&[5.0, 10.0], 0.0).is_none());
    }
}
