//! Scripted fault scenarios: a tiny language for "crash node *i* at
//! iteration *k*, flip *n* bits on rank *r* after checkpoint *c*, kill a
//! spare, delay a buddy's heartbeats".
//!
//! A [`FaultScript`] is the unit a fault campaign sweeps over: scripts are
//! *generated* from a seed (via [`FaultScript::generate`]), *serialized* to
//! a line-oriented text form (via [`FaultScript::to_repro`]) that a failing
//! campaign case embeds in its repro artifact, and *parsed* back (via
//! [`FaultScript::parse`]) so one command replays the exact scenario.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// When a scripted fault fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// At a job-clock time (seconds since start; virtual seconds under a
    /// simulated clock).
    At(f64),
    /// After the driver has counted this many verified checkpoints.
    AfterCheckpoints(u32),
    /// When the victim node's application progress first reaches this
    /// iteration (evaluated node-locally, so it lands at an exact point of
    /// the computation regardless of scheduling).
    AtIteration(u64),
}

/// What a scripted fault does.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// Fail-stop the node hosting `(replica, rank)`.
    Crash {
        /// Victim replica.
        replica: u8,
        /// Victim rank.
        rank: usize,
    },
    /// Fail-stop the next spare in the promotion order: the failure stays
    /// latent until a later crash promotes the dead spare.
    CrashSpare,
    /// Flip `bits` random bits of PUP-visible float state on
    /// `(replica, rank)`, seeded by `seed`.
    Sdc {
        /// Victim replica.
        replica: u8,
        /// Victim rank.
        rank: usize,
        /// Injection seed.
        seed: u64,
        /// Bits to flip (each an independent draw).
        bits: u32,
    },
    /// Suppress outgoing heartbeats from `(replica, rank)` for `secs` —
    /// the node keeps computing; only its liveness signal goes quiet.
    DelayHeartbeats {
        /// Victim replica.
        replica: u8,
        /// Victim rank.
        rank: usize,
        /// Silence duration in seconds.
        secs: f64,
    },
    /// Hard-kill the *driver process itself*: the run stops dead at the
    /// trigger point with no shutdown, no drain, and no final report —
    /// exactly what `kill -9` on the driver leaves behind. Only meaningful
    /// for jobs with a persist dir; the crash-restart battery resumes them
    /// from disk. A fired kill never re-fires on resume.
    KillDriver,
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScriptedFault {
    /// When it fires.
    pub when: Trigger,
    /// What it does.
    pub action: FaultAction,
}

/// The shape of the space [`FaultScript::generate`] samples scenarios from.
#[derive(Debug, Clone)]
pub struct ScenarioSpace {
    /// Ranks per replica of the target job.
    pub ranks: usize,
    /// Spare nodes the job reserves — the crash budget.
    pub spares: usize,
    /// Expected fault-free duration (seconds); fault times are drawn from
    /// its early-to-middle portion so a verifying comparison can follow.
    pub horizon: f64,
    /// Iterations the application runs; iteration triggers are drawn from
    /// its early-to-middle portion.
    pub max_iteration: u64,
    /// The job's heartbeat timeout; generated heartbeat delays stay safely
    /// below it (a delayed-but-alive buddy must never be declared dead).
    pub heartbeat_timeout: f64,
    /// Maximum faults per scenario.
    pub max_faults: usize,
    /// Maximum bits per SDC burst.
    pub sdc_bits_max: u32,
    /// Whether scenarios may kill spares.
    pub allow_spare_kill: bool,
    /// Whether scenarios may delay heartbeats.
    pub allow_heartbeat_delay: bool,
    /// Whether scenarios also hard-kill the driver: when set, every
    /// generated scenario gets exactly one [`FaultAction::KillDriver`] at
    /// a seeded time, so a crash-restart sweep exercises resume under
    /// every node-fault mix the space produces.
    pub allow_driver_kill: bool,
}

/// A reproducible fault scenario: an ordered list of scripted faults.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultScript {
    /// The scheduled faults. Order is preserved but not significant — each
    /// fault fires when its own trigger is due.
    pub faults: Vec<ScriptedFault>,
}

impl FaultScript {
    /// The empty (fault-free) script.
    pub fn new() -> Self {
        Self::default()
    }

    /// Script with one fault.
    pub fn single(when: Trigger, action: FaultAction) -> Self {
        Self {
            faults: vec![ScriptedFault { when, action }],
        }
    }

    /// Add a fault.
    pub fn push(&mut self, when: Trigger, action: FaultAction) -> &mut Self {
        self.faults.push(ScriptedFault { when, action });
        self
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the script schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Sample a scenario from `space`, deterministically from `seed`.
    ///
    /// Crashes are budgeted against the spare pool (a killed spare consumes
    /// two spares: itself, plus the one that replaces it after promotion),
    /// so a generated scenario never runs the job out of spares.
    pub fn generate(seed: u64, space: &ScenarioSpace) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut script = FaultScript::new();
        let want = rng.gen_range(1..space.max_faults.max(1) + 1);
        let mut crash_budget = space.spares;
        for _ in 0..want {
            let roll: f64 = rng.gen_range(0.0..1.0);
            let action = if roll < 0.45 {
                FaultAction::Sdc {
                    replica: rng.gen_range(0..2u8),
                    rank: rng.gen_range(0..space.ranks),
                    seed: rng.gen::<u64>(),
                    bits: rng.gen_range(1..space.sdc_bits_max.max(1) + 1),
                }
            } else if roll < 0.75 && crash_budget >= 1 {
                crash_budget -= 1;
                FaultAction::Crash {
                    replica: rng.gen_range(0..2u8),
                    rank: rng.gen_range(0..space.ranks),
                }
            } else if roll < 0.85 && space.allow_spare_kill && crash_budget >= 2 {
                // The kill itself spends one spare; the promotion that
                // exposes it spends another.
                crash_budget -= 2;
                FaultAction::CrashSpare
            } else if space.allow_heartbeat_delay {
                FaultAction::DelayHeartbeats {
                    replica: rng.gen_range(0..2u8),
                    rank: rng.gen_range(0..space.ranks),
                    secs: rng.gen_range(0.2..0.7) * space.heartbeat_timeout,
                }
            } else {
                FaultAction::Sdc {
                    replica: rng.gen_range(0..2u8),
                    rank: rng.gen_range(0..space.ranks),
                    seed: rng.gen::<u64>(),
                    bits: 1,
                }
            };
            let when = match action {
                // Node-local iteration triggers only make sense for actions
                // with a live victim node.
                FaultAction::Crash { .. } | FaultAction::Sdc { .. } => {
                    let t: f64 = rng.gen_range(0.0..1.0);
                    if t < 0.55 {
                        Trigger::At(rng.gen_range(0.08..0.55) * space.horizon)
                    } else if t < 0.80 {
                        Trigger::AfterCheckpoints(rng.gen_range(1..4u32))
                    } else {
                        let lo = space.max_iteration / 10;
                        let hi = (space.max_iteration / 2).max(lo + 1);
                        Trigger::AtIteration(rng.gen_range(lo..hi))
                    }
                }
                _ => Trigger::At(rng.gen_range(0.08..0.55) * space.horizon),
            };
            script.push(when, action);
        }
        if space.allow_driver_kill {
            // Dead center of the run, jittered: late enough that commits
            // exist to resume from, early enough that meaningful work —
            // often the node faults above — still follows the restart.
            let t = rng.gen_range(0.15..0.75) * space.horizon;
            script.push(Trigger::At(t), FaultAction::KillDriver);
        }
        script
    }

    /// Serialize to the repro text form (one fault per line).
    pub fn to_repro(&self) -> String {
        let mut out = String::new();
        for f in &self.faults {
            let when = match f.when {
                Trigger::At(t) => format!("at={t}"),
                Trigger::AfterCheckpoints(c) => format!("ckpts={c}"),
                Trigger::AtIteration(i) => format!("iter={i}"),
            };
            let line = match f.action {
                FaultAction::Crash { replica, rank } => {
                    format!("crash {when} replica={replica} rank={rank}")
                }
                FaultAction::CrashSpare => format!("spare {when}"),
                FaultAction::Sdc {
                    replica,
                    rank,
                    seed,
                    bits,
                } => format!("sdc {when} replica={replica} rank={rank} seed={seed} bits={bits}"),
                FaultAction::DelayHeartbeats {
                    replica,
                    rank,
                    secs,
                } => format!("hbdelay {when} replica={replica} rank={rank} dur={secs}"),
                FaultAction::KillDriver => format!("killdriver {when}"),
            };
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// Parse the repro text form. Blank lines and `#` comments are skipped.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut script = FaultScript::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut words = line.split_whitespace();
            let kind = words.next().expect("non-empty line has a first word");
            let mut kv = std::collections::BTreeMap::new();
            for w in words {
                let (k, v) = w
                    .split_once('=')
                    .ok_or_else(|| format!("line {}: expected key=value, got {w:?}", lineno + 1))?;
                kv.insert(k.to_string(), v.to_string());
            }
            let err = |m: &str| format!("line {}: {m}", lineno + 1);
            let get_num = |kv: &std::collections::BTreeMap<String, String>,
                           key: &str|
             -> Result<f64, String> {
                kv.get(key)
                    .ok_or_else(|| err(&format!("missing {key}=")))?
                    .parse::<f64>()
                    .map_err(|_| err(&format!("bad {key}=")))
            };
            let when = if kv.contains_key("at") {
                Trigger::At(get_num(&kv, "at")?)
            } else if kv.contains_key("ckpts") {
                Trigger::AfterCheckpoints(get_num(&kv, "ckpts")? as u32)
            } else if kv.contains_key("iter") {
                Trigger::AtIteration(get_num(&kv, "iter")? as u64)
            } else {
                return Err(err("missing trigger (at=, ckpts=, or iter=)"));
            };
            let action = match kind {
                "crash" => FaultAction::Crash {
                    replica: get_num(&kv, "replica")? as u8,
                    rank: get_num(&kv, "rank")? as usize,
                },
                "spare" => FaultAction::CrashSpare,
                "sdc" => FaultAction::Sdc {
                    replica: get_num(&kv, "replica")? as u8,
                    rank: get_num(&kv, "rank")? as usize,
                    seed: kv
                        .get("seed")
                        .ok_or_else(|| err("missing seed="))?
                        .parse::<u64>()
                        .map_err(|_| err("bad seed="))?,
                    bits: kv
                        .get("bits")
                        .map_or(Ok(1), |b| b.parse::<u32>().map_err(|_| err("bad bits=")))?,
                },
                "hbdelay" => FaultAction::DelayHeartbeats {
                    replica: get_num(&kv, "replica")? as u8,
                    rank: get_num(&kv, "rank")? as usize,
                    secs: get_num(&kv, "dur")?,
                },
                "killdriver" => FaultAction::KillDriver,
                other => return Err(err(&format!("unknown fault kind {other:?}"))),
            };
            script.push(when, action);
        }
        Ok(script)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> ScenarioSpace {
        ScenarioSpace {
            ranks: 3,
            spares: 3,
            horizon: 1.0,
            max_iteration: 400,
            heartbeat_timeout: 0.08,
            max_faults: 4,
            sdc_bits_max: 3,
            allow_spare_kill: true,
            allow_heartbeat_delay: true,
            allow_driver_kill: false,
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let s = space();
        for seed in 0..64 {
            assert_eq!(
                FaultScript::generate(seed, &s),
                FaultScript::generate(seed, &s)
            );
        }
        assert_ne!(FaultScript::generate(1, &s), FaultScript::generate(2, &s));
    }

    #[test]
    fn generation_respects_the_crash_budget() {
        let s = space();
        for seed in 0..256 {
            let script = FaultScript::generate(seed, &s);
            assert!(!script.is_empty() && script.len() <= s.max_faults);
            let mut cost = 0;
            for f in &script.faults {
                match f.action {
                    FaultAction::Crash { replica, rank } => {
                        cost += 1;
                        assert!(replica < 2 && rank < s.ranks);
                    }
                    FaultAction::CrashSpare => cost += 2,
                    FaultAction::Sdc {
                        replica,
                        rank,
                        bits,
                        ..
                    } => {
                        assert!(replica < 2 && rank < s.ranks);
                        assert!(bits >= 1 && bits <= s.sdc_bits_max);
                    }
                    FaultAction::DelayHeartbeats { secs, .. } => {
                        assert!(
                            secs < s.heartbeat_timeout,
                            "generated delays must not trip the timeout"
                        );
                    }
                    FaultAction::KillDriver => {
                        panic!("space forbids driver kills but seed {seed} generated one")
                    }
                }
            }
            assert!(cost <= s.spares, "seed {seed} overspends spares");
        }
    }

    #[test]
    fn repro_round_trips() {
        let s = space();
        for seed in 0..128 {
            let script = FaultScript::generate(seed, &s);
            let text = script.to_repro();
            let back = FaultScript::parse(&text).expect("own output parses");
            assert_eq!(back, script, "seed {seed}: {text}");
        }
    }

    #[test]
    fn parse_skips_comments_and_reports_errors() {
        let ok = FaultScript::parse("# header\n\ncrash at=0.5 replica=1 rank=0\n").unwrap();
        assert_eq!(ok.len(), 1);
        assert!(FaultScript::parse("crash replica=1 rank=0").is_err()); // no trigger
        assert!(FaultScript::parse("warp at=1").is_err()); // unknown kind
        assert!(FaultScript::parse("sdc at=1 replica=0 rank=0").is_err()); // no seed
        assert!(FaultScript::parse("crash at=x replica=0 rank=0").is_err());
    }

    #[test]
    fn driver_kill_generation_and_repro() {
        let mut s = space();
        s.allow_driver_kill = true;
        for seed in 0..64 {
            let script = FaultScript::generate(seed, &s);
            let kills: Vec<_> = script
                .faults
                .iter()
                .filter(|f| f.action == FaultAction::KillDriver)
                .collect();
            assert_eq!(kills.len(), 1, "seed {seed}: exactly one driver kill");
            match kills[0].when {
                Trigger::At(t) => assert!(t > 0.0 && t < s.horizon),
                ref other => panic!("driver kill should be time-triggered, got {other:?}"),
            }
            let back = FaultScript::parse(&script.to_repro()).expect("own output parses");
            assert_eq!(back, script, "seed {seed}");
        }
        let parsed = FaultScript::parse("killdriver at=0.25\n").unwrap();
        assert_eq!(parsed.faults[0].action, FaultAction::KillDriver);
        assert_eq!(parsed.faults[0].when, Trigger::At(0.25));
    }

    #[test]
    fn defaulted_bits_parse_as_one() {
        let s = FaultScript::parse("sdc at=0.1 replica=0 rank=1 seed=9").unwrap();
        assert_eq!(
            s.faults[0].action,
            FaultAction::Sdc {
                replica: 0,
                rank: 1,
                seed: 9,
                bits: 1
            }
        );
    }
}
