//! The adaptive checkpoint-interval policy (§2.2 "Adapting to Failures").
//!
//! ACR re-derives the checkpoint period from the *observed* failure stream:
//! each interval is Daly's optimum for the current MTBF estimate, clamped to
//! a configured band. Under a decreasing failure rate (Weibull shape < 1,
//! the common case [29]) the estimate grows over the run and the period
//! stretches with it — the Fig. 12 behaviour (6 s between checkpoints at the
//! start of the run, 17 s at the end).

use acr_model::daly_simple;

use crate::estimator::{MtbfEstimator, PowerLawFit};

/// Configuration of the adaptive policy.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveConfig {
    /// Checkpoint cost δ (seconds) — the Daly input.
    pub delta: f64,
    /// Period used before any failure has been observed.
    pub initial_interval: f64,
    /// Lower clamp on the period (don't thrash).
    pub min_interval: f64,
    /// Upper clamp on the period (bound the unprotected window).
    pub max_interval: f64,
    /// Sliding window length for the MTBF estimator.
    pub window: usize,
    /// When true, fit the power-law process to absolute failure times and
    /// use its instantaneous rate (better for trending failure rates); when
    /// false, use the windowed-mean MTBF.
    pub trend_fit: bool,
}

impl AdaptiveConfig {
    /// A reasonable default around a given checkpoint cost: start at
    /// Daly's period for a 1-hour MTBF, clamp to `[δ, 1 h]`.
    pub fn for_delta(delta: f64) -> Self {
        Self {
            delta,
            initial_interval: daly_simple(delta, 3600.0),
            min_interval: delta.max(1.0),
            max_interval: 3600.0,
            window: 16,
            trend_fit: true,
        }
    }
}

/// Streaming adaptive-interval state: feed it failures, ask it for the next
/// checkpoint period.
#[derive(Debug, Clone)]
pub struct AdaptiveInterval {
    cfg: AdaptiveConfig,
    estimator: MtbfEstimator,
    /// Absolute failure times (for the trend fit).
    history: Vec<f64>,
}

impl AdaptiveInterval {
    /// New policy with the given configuration.
    pub fn new(cfg: AdaptiveConfig) -> Self {
        assert!(cfg.delta > 0.0 && cfg.min_interval > 0.0);
        assert!(cfg.min_interval <= cfg.max_interval);
        Self {
            cfg,
            estimator: MtbfEstimator::new(cfg.window.max(1)),
            history: Vec::new(),
        }
    }

    /// Record a failure observed at absolute time `t`.
    pub fn on_failure(&mut self, t: f64) {
        self.estimator.record_failure(t);
        self.history.push(t);
    }

    /// Failures observed so far.
    pub fn failures(&self) -> usize {
        self.history.len()
    }

    /// The configuration.
    pub fn config(&self) -> &AdaptiveConfig {
        &self.cfg
    }

    /// Current MTBF estimate at time `now`, if any failures were seen.
    pub fn mtbf_estimate(&self, now: f64) -> Option<f64> {
        if self.cfg.trend_fit {
            if let Some(fit) = PowerLawFit::fit(&self.history, now.max(1e-9)) {
                return Some(fit.mtbf_at(now));
            }
        }
        self.estimator.mtbf()
    }

    /// The checkpoint period to use at time `now`: Daly's optimum for the
    /// current estimate, clamped to the configured band.
    pub fn interval_at(&self, now: f64) -> f64 {
        let tau = match self.mtbf_estimate(now) {
            Some(m) if m > 0.0 => daly_simple(self.cfg.delta, m),
            _ => self.cfg.initial_interval,
        };
        tau.clamp(self.cfg.min_interval, self.cfg.max_interval)
    }

    /// Absolute time at which the next periodic checkpoint should fire.
    pub fn next_checkpoint(&self, now: f64) -> f64 {
        now + self.interval_at(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributions::FailureProcess;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg(delta: f64) -> AdaptiveConfig {
        AdaptiveConfig {
            delta,
            initial_interval: 30.0,
            min_interval: 2.0,
            max_interval: 600.0,
            window: 8,
            trend_fit: true,
        }
    }

    #[test]
    fn uses_initial_interval_before_failures() {
        let a = AdaptiveInterval::new(cfg(1.0));
        assert_eq!(a.interval_at(0.0), 30.0);
        assert_eq!(a.next_checkpoint(100.0), 130.0);
    }

    #[test]
    fn shrinks_under_failure_bursts_and_recovers() {
        let mut a = AdaptiveInterval::new(cfg(1.0));
        // burst: failures every 10 s
        for i in 1..=8 {
            a.on_failure(i as f64 * 10.0);
        }
        let busy = a.interval_at(80.0);
        assert!(busy < 30.0, "period should shrink during the burst: {busy}");
        // quiet stretch: two failures 500 s apart
        a.on_failure(600.0);
        a.on_failure(1100.0);
        let quiet = a.interval_at(1100.0);
        assert!(
            quiet > busy * 2.0,
            "period should stretch: {busy} -> {quiet}"
        );
    }

    #[test]
    fn clamps_apply() {
        let mut a = AdaptiveInterval::new(cfg(1.0));
        // insanely dense failures → min clamp
        for i in 1..=20 {
            a.on_failure(i as f64 * 0.01);
        }
        assert_eq!(a.interval_at(0.2), 2.0);
        // a fresh policy with huge MTBF → max clamp
        let mut b = AdaptiveInterval::new(cfg(1.0));
        b.on_failure(1e7);
        b.on_failure(2e7);
        assert_eq!(b.interval_at(2e7), 600.0);
    }

    #[test]
    fn fig12_shape_interval_grows_through_a_decreasing_rate_run() {
        // 30-minute run, ~19 failures, power-law shape 0.6 (§6.4).
        let scale = 1800.0 / 19.0f64.powf(1.0 / 0.6);
        let p = FailureProcess::PowerLaw { shape: 0.6, scale };
        let (mut early_sum, mut late_sum, mut runs) = (0.0, 0.0, 0);
        for seed in 0..12u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let events = p.events_until(&mut rng, 1800.0);
            if events.len() < 10 {
                continue;
            }
            let mut a = AdaptiveInterval::new(AdaptiveConfig {
                delta: 0.5,
                initial_interval: 10.0,
                min_interval: 1.0,
                max_interval: 120.0,
                window: 8,
                trend_fit: true,
            });
            let mut early = 0.0;
            for &t in &events {
                a.on_failure(t);
                if a.failures() == 5 {
                    early = a.interval_at(t);
                }
            }
            early_sum += early;
            late_sum += a.interval_at(1800.0);
            runs += 1;
        }
        assert!(runs >= 8, "need enough meaningful runs, got {runs}");
        let (early, late) = (early_sum / runs as f64, late_sum / runs as f64);
        assert!(
            late > 1.5 * early,
            "interval should grow markedly over the run: {early} -> {late}"
        );
    }

    #[test]
    fn trend_fit_off_uses_windowed_mean() {
        let mut c = cfg(1.0);
        c.trend_fit = false;
        let mut a = AdaptiveInterval::new(c);
        for t in [10.0, 20.0, 30.0] {
            a.on_failure(t);
        }
        assert!((a.mtbf_estimate(30.0).unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn rejects_inverted_clamps() {
        let mut c = cfg(1.0);
        c.min_interval = 100.0;
        c.max_interval = 10.0;
        AdaptiveInterval::new(c);
    }
}
