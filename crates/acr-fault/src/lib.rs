//! # acr-fault — failure distributions, injectors, and online adaptation
//!
//! Everything ACR needs to *produce* failures (for evaluation) and to
//! *learn from* them (for its adaptive checkpoint period, §2.2):
//!
//! * [`FailureDistribution`] — inter-arrival distributions (exponential,
//!   Weibull, log-normal, gamma) implemented with inverse-CDF / standard
//!   samplers on top of `rand`. Schroeder & Gibson's large-scale study \[29\]
//!   found Weibull (decreasing hazard) the best fit for real HPC systems,
//!   which is exactly the regime where adapting the period pays off.
//! * [`FailureProcess`] — renewal processes over those distributions plus
//!   the non-homogeneous power-law (Crow–AMSAA) process used for the
//!   Fig. 12 adaptivity experiment (shape 0.6 ⇒ failure rate decreasing in
//!   time).
//! * [`FailureTrace`] — seeded, reproducible traces of `(time, node, kind)`
//!   events for a whole machine (§6.1's injection methodology).
//! * [`SdcInjector`] / [`BitFlip`] — flip a random bit in checkpoint-visible
//!   user data (§6.1).
//! * [`FaultScript`] / [`ScenarioSpace`] — seeded, replayable fault
//!   scenarios (crashes, SDC bursts, spare kills, heartbeat delays) with a
//!   text repro form, the unit the runtime's deterministic fault campaigns
//!   sweep over.
//! * [`MtbfEstimator`] / [`WeibullFit`] — streaming estimation of the
//!   observed failure behaviour.
//! * [`AdaptiveInterval`] — turns the estimates into the next checkpoint
//!   period (seeded with Daly's formula, re-fit as failures stream in).

#![warn(missing_docs)]

mod adaptive;
mod distributions;
mod estimator;
mod injector;
mod predictor;
mod script;
mod trace;

pub use adaptive::{AdaptiveConfig, AdaptiveInterval};
pub use distributions::{FailureDistribution, FailureProcess};
pub use estimator::{MtbfEstimator, PowerLawFit, WeibullFit};
pub use injector::{flip_random_bit, BitFlip, SdcInjector};
pub use predictor::{Alarm, FailurePredictor, PredictorProfile};
pub use script::{FaultAction, FaultScript, ScenarioSpace, ScriptedFault, Trigger};
pub use trace::{FailureTrace, FaultKind, TraceEvent};
