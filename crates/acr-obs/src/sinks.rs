//! Output sinks for the flight recorder.
//!
//! * **JSONL event log** — one event per line, replayable: parsing the file
//!   back with [`read_jsonl`] reproduces the exact event sequence. Under
//!   virtual time, two runs of the same seed write byte-identical files.
//! * **Metrics snapshot** — Prometheus-style text, rendered by
//!   [`crate::Recorder::expose`].
//! * **Pretty printer** — the human-readable per-line form (also used for
//!   the live `ACR_DEBUG` trace), via [`pretty`].

use crate::event::RecordedEvent;
use std::io::{self, Write};

/// Serialize events as JSONL into a string (one `\n`-terminated line each).
pub fn to_jsonl(events: &[RecordedEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96);
    for ev in events {
        out.push_str(&ev.to_json());
        out.push('\n');
    }
    out
}

/// Write events as JSONL to an arbitrary writer.
pub fn write_jsonl(events: &[RecordedEvent], w: &mut impl Write) -> io::Result<()> {
    w.write_all(to_jsonl(events).as_bytes())
}

/// Parse a JSONL event log back into events. Blank lines are skipped;
/// any malformed line aborts with its line number.
pub fn read_jsonl(s: &str) -> Result<Vec<RecordedEvent>, String> {
    let mut events = Vec::new();
    for (i, line) in s.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        events.push(RecordedEvent::from_json(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(events)
}

/// Render events in the human-readable pretty-printer form, one per line.
pub fn pretty(events: &[RecordedEvent]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for ev in events {
        let _ = writeln!(out, "{ev}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn jsonl_roundtrip() {
        let events = vec![
            RecordedEvent {
                seq: 0,
                t: 0.0,
                node: crate::DRIVER_NODE,
                kind: EventKind::RoundStart { round: 1 },
            },
            RecordedEvent {
                seq: 1,
                t: 0.25,
                node: 2,
                kind: EventKind::CheckpointPack {
                    bytes: 512,
                    chunks: 4,
                    chunk_size: 128,
                },
            },
        ];
        let text = to_jsonl(&events);
        assert_eq!(text.lines().count(), 2);
        let back = read_jsonl(&text).unwrap();
        assert_eq!(events, back);
    }

    #[test]
    fn read_reports_bad_line() {
        let err = read_jsonl("{\"seq\":0}\n").unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
    }
}
