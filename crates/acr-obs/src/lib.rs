//! # acr-obs — the flight recorder and metrics layer
//!
//! The paper's evaluation (§4, Figs. 6–8) rests on *measuring* where
//! resilience time goes: checkpoint pack/send, SDC comparison, consensus
//! pauses, and per-scheme recovery cost. This crate is the instrumentation
//! substrate that turns every run — real or virtual-clock — into an
//! attributable timeline:
//!
//! * [`Recorder`] — a lock-light flight recorder: fixed-size per-node ring
//!   buffers of timestamped structured events, plus atomic counters and
//!   histograms. When disabled, the emit fast path is a single relaxed
//!   atomic load — no allocation, no formatting, no lock.
//! * [`EventKind`] — the typed event taxonomy covering the whole protocol
//!   surface: consensus phase transitions, checkpoint pack/digest/ship
//!   volume, buddy-compare outcomes with divergence windows, heartbeat and
//!   liveness probes, and per-scheme recovery timelines tagged with the
//!   §2.3 classification.
//! * [`sinks`] — a JSONL event-log writer (one file per run, replayable
//!   byte-for-byte under virtual time), a Prometheus-style text metrics
//!   snapshot, and the human-readable pretty printer behind the `ACR_DEBUG`
//!   live trace.
//! * [`StatusModel`] — a deterministic left-fold of the event stream into
//!   "what is currently true" (per-node phase and buddy assignment, epoch
//!   progress, recovery timeline) serving the driver's `/status` endpoint
//!   and the `acr-top` TUI, live or from a replayed store.
//! * [`report`] — folds an event log into a paper-style overhead breakdown
//!   (forward progress vs. checkpoint vs. compare vs. recovery time, per
//!   scheme) whose rows sum to the run's total duration.
//!
//! Timestamps come from whatever time source the embedder installs — the
//! runtime wires in its job [`Clock`](https://docs.rs/), so virtual-mode
//! traces are deterministic and diffable across runs of the same seed.
//!
//! The crate is dependency-free (std only) so it can sit underneath every
//! other crate in the workspace.

#![warn(missing_docs)]

mod event;
mod json;
mod metrics;
mod recorder;
pub mod report;
pub mod sinks;
pub mod status;

pub use event::{EventKind, ObsScope, RecordedEvent, RunPhase};
pub use metrics::{Counter, Histogram};
pub use recorder::{ObsConfig, Recorder, TimeSource, DRIVER_NODE};
pub use report::Breakdown;
pub use status::{JobInfo, NodeRole, NodeStatus, StatusModel, TimelineEntry};
