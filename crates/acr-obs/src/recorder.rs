//! The flight recorder: per-node ring buffers, a global sequence counter,
//! and a metrics registry behind one shared handle.

use crate::event::{EventKind, RecordedEvent};
use crate::metrics::{Counter, Histogram};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Sentinel node id for driver-side events.
pub const DRIVER_NODE: u32 = u32::MAX;

/// The time source a [`Recorder`] stamps events with.
///
/// The runtime installs its job `Clock` here, so virtual-mode traces carry
/// simulated seconds and are deterministic; embedders without a clock can
/// pass a constant.
pub type TimeSource = Arc<dyn Fn() -> f64 + Send + Sync>;

/// Construction-time knobs for a [`Recorder`].
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// Master switch. When `false`, every emit is a single relaxed atomic
    /// load and returns immediately — no allocation, no lock, no
    /// formatting.
    pub enabled: bool,
    /// Capacity of each per-node ring buffer. When a ring is full the
    /// oldest event is dropped (and counted).
    pub ring_capacity: usize,
    /// Job label for multi-job deployments: when set, every metric family
    /// in [`Recorder::expose`] carries a `job="<name>"` label so scrapes
    /// of different jobs on one host stay distinguishable. `None` (the
    /// default) keeps the label-free single-job exposition byte-identical
    /// to earlier releases.
    pub job: Option<String>,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            enabled: true,
            ring_capacity: 4096,
            job: None,
        }
    }
}

#[derive(Debug, Default)]
struct Ring {
    events: VecDeque<RecordedEvent>,
    dropped: u64,
}

/// The flight recorder.
///
/// One recorder serves a whole job: the driver and every node worker hold
/// an `Arc<Recorder>` and emit into their own ring, so contention between
/// nodes is limited to the shared sequence counter. Events are totally
/// ordered by that counter; [`Recorder::drain`] merges the rings back into
/// emission order.
pub struct Recorder {
    enabled: AtomicBool,
    seq: AtomicU64,
    ring_capacity: usize,
    /// One ring per node plus one for the driver (last index).
    rings: Vec<Mutex<Ring>>,
    time: TimeSource,
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    job: Option<String>,
}

impl fmt::Debug for Recorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.is_enabled())
            .field("rings", &self.rings.len())
            .field("seq", &self.seq.load(Ordering::Relaxed))
            .finish()
    }
}

/// Whether `ACR_DEBUG` was set in the environment (read once per process).
fn acr_debug() -> bool {
    static FLAG: OnceLock<bool> = OnceLock::new();
    *FLAG.get_or_init(|| std::env::var_os("ACR_DEBUG").is_some())
}

impl Recorder {
    /// Create a recorder for a job with `nodes` workers (driver included
    /// implicitly). `time` is called at every emission to stamp the event.
    pub fn new(cfg: ObsConfig, nodes: u32, time: TimeSource) -> Arc<Recorder> {
        let rings = (0..=nodes).map(|_| Mutex::new(Ring::default())).collect();
        Arc::new(Recorder {
            enabled: AtomicBool::new(cfg.enabled),
            seq: AtomicU64::new(0),
            ring_capacity: cfg.ring_capacity.max(1),
            rings,
            time,
            counters: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            job: cfg.job,
        })
    }

    /// A permanently disabled recorder (zero-node, constant time source)
    /// for embedders that want instrumentation hooks without a job.
    pub fn disabled() -> Arc<Recorder> {
        Recorder::new(
            ObsConfig {
                enabled: false,
                ring_capacity: 1,
                job: None,
            },
            0,
            Arc::new(|| 0.0),
        )
    }

    /// The job label every exposed metric carries, if one was configured
    /// ([`ObsConfig::job`]).
    pub fn job_label(&self) -> Option<&str> {
        self.job.as_deref()
    }

    /// The disabled-mode fast path: a single relaxed load.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Flip recording on or off at runtime.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether `debug_trace!` sites should format and print. Honors the
    /// `ACR_DEBUG` env-var switch the retired `trace!` macro used.
    #[inline]
    pub fn debug_enabled(&self) -> bool {
        acr_debug()
    }

    /// Record one event for `node` ([`DRIVER_NODE`] for the driver).
    ///
    /// When the recorder is disabled this returns after one relaxed load;
    /// prefer [`Recorder::emit_with`] when building the payload allocates.
    pub fn emit(&self, node: u32, kind: EventKind) {
        if !self.is_enabled() {
            return;
        }
        self.push(node, kind);
    }

    /// Record an event whose payload is built lazily: `make` is not called
    /// (so its arguments are never formatted or allocated) when the
    /// recorder is disabled.
    #[inline]
    pub fn emit_with(&self, node: u32, make: impl FnOnce() -> EventKind) {
        if !self.is_enabled() {
            return;
        }
        self.push(node, make());
    }

    /// Record a free-form debug message and mirror it to stderr.
    ///
    /// Callers guard with [`Recorder::debug_enabled`] (via the
    /// [`debug_trace!`](crate::debug_trace) macro) so the message is never
    /// formatted when `ACR_DEBUG` is unset.
    pub fn emit_debug(&self, node: u32, text: String) {
        let ev = self.stamp(node, EventKind::Debug { text });
        eprintln!("{ev}");
        if self.is_enabled() {
            self.store(ev);
        }
    }

    fn stamp(&self, node: u32, kind: EventKind) -> RecordedEvent {
        RecordedEvent {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            t: (self.time)(),
            node,
            kind,
        }
    }

    fn push(&self, node: u32, kind: EventKind) {
        let ev = self.stamp(node, kind);
        if acr_debug() {
            eprintln!("{ev}");
        }
        self.store(ev);
    }

    fn store(&self, ev: RecordedEvent) {
        let idx = (ev.node as usize).min(self.rings.len() - 1);
        let mut ring = self.rings[idx].lock().expect("obs ring poisoned");
        if ring.events.len() == self.ring_capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(ev);
    }

    /// Copy every buffered event with `seq >= from_seq`, merged into
    /// emission order, **without** consuming the rings.
    ///
    /// This is the read path for live tailing (`GET /events?since=`, the
    /// `/status` fold): pollers remember the highest sequence number they
    /// have seen and ask only for what is new. Unlike [`Recorder::drain`]
    /// the rings stay intact, so the final [`crate::report`] is unaffected
    /// by however many scrapes happened mid-run. Events that rotated out
    /// of a full ring before the caller polled are gone — the
    /// `acr_obs_events_dropped_total` counter is the detector for that.
    pub fn snapshot_since(&self, from_seq: u64) -> Vec<RecordedEvent> {
        let mut all = Vec::new();
        for ring in &self.rings {
            let ring = ring.lock().expect("obs ring poisoned");
            all.extend(ring.events.iter().filter(|ev| ev.seq >= from_seq).cloned());
        }
        all.sort_by_key(|ev| ev.seq);
        all
    }

    /// Take every buffered event, merged back into emission order.
    pub fn drain(&self) -> Vec<RecordedEvent> {
        let mut all = Vec::new();
        for ring in &self.rings {
            let mut ring = ring.lock().expect("obs ring poisoned");
            all.extend(ring.events.drain(..));
        }
        all.sort_by_key(|ev| ev.seq);
        all
    }

    /// Total events discarded to ring wraparound, across all rings.
    pub fn dropped(&self) -> u64 {
        self.rings
            .iter()
            .map(|r| r.lock().expect("obs ring poisoned").dropped)
            .sum()
    }

    /// Get or create the named counter. The handle is cheap to clone and
    /// updates without touching the registry again.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut reg = self.counters.lock().expect("obs registry poisoned");
        reg.entry(name.to_string()).or_default().clone()
    }

    /// Add `by` to the named counter; a no-op (one relaxed load) when the
    /// recorder is disabled.
    pub fn inc_counter(&self, name: &str, by: u64) {
        if !self.is_enabled() {
            return;
        }
        self.counter(name).inc(by);
    }

    /// Get or create the named histogram.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut reg = self.histograms.lock().expect("obs registry poisoned");
        reg.entry(name.to_string()).or_default().clone()
    }

    /// Record an observation in the named histogram; a no-op when the
    /// recorder is disabled.
    pub fn observe(&self, name: &str, v: f64) {
        if !self.is_enabled() {
            return;
        }
        self.histogram(name).observe(v);
    }

    /// Render every registered metric as a Prometheus-style text snapshot.
    ///
    /// Exposition-format guarantees (the `/metrics` endpoint serves this
    /// verbatim, so scrapers rely on them):
    /// - every metric family is preceded by a `# HELP` line and a `# TYPE`
    ///   line, in that order;
    /// - `acr_obs_events_dropped_total` is **always** present (even at 0),
    ///   so the ring-overflow detector does not appear mid-run as a brand
    ///   new series;
    /// - families are emitted in a stable order (counters sorted by name,
    ///   then histograms sorted by name, then the dropped counter).
    ///
    /// A disabled recorder exposes the empty string — there is no scrape
    /// surface when observability is off.
    pub fn expose(&self) -> String {
        use std::fmt::Write;
        if !self.is_enabled() {
            return String::new();
        }
        let mut out = String::new();
        // With a job label configured, every sample line carries
        // `job="<name>"`; without one the exposition stays byte-identical
        // to the label-free single-job format.
        let label = self
            .job
            .as_deref()
            .map(|j| format!("job=\"{}\"", escape_label_value(j)));
        let suffix = match &label {
            Some(l) => format!("{{{l}}}"),
            None => String::new(),
        };
        let counters = self.counters.lock().expect("obs registry poisoned");
        for (name, c) in counters.iter() {
            let _ = writeln!(out, "# HELP {name} {}", metric_help(name));
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name}{suffix} {}", c.get());
        }
        drop(counters);
        let histograms = self.histograms.lock().expect("obs registry poisoned");
        for (name, h) in histograms.iter() {
            let _ = writeln!(out, "# HELP {name} {}", metric_help(name));
            let _ = writeln!(out, "# TYPE {name} histogram");
            h.expose_into(name, label.as_deref(), &mut out);
        }
        drop(histograms);
        let _ = writeln!(
            out,
            "# HELP acr_obs_events_dropped_total {}",
            metric_help("acr_obs_events_dropped_total")
        );
        let _ = writeln!(out, "# TYPE acr_obs_events_dropped_total counter");
        let _ = writeln!(
            out,
            "acr_obs_events_dropped_total{suffix} {}",
            self.dropped()
        );
        out
    }
}

/// Escape a label value per the Prometheus exposition format (backslash,
/// double quote, newline).
fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// One-line `# HELP` text for the metric names the runtime registers.
/// Unknown names (embedder-defined metrics) get a generic line rather
/// than none — the exposition format promises HELP before TYPE for every
/// family.
fn metric_help(name: &str) -> &'static str {
    match name {
        "acr_pack_total" => "Task state captures packed for checkpointing.",
        "acr_pack_bytes_total" => "Bytes of task state packed for checkpointing.",
        "acr_pack_chunks_total" => "Checkpoint chunks produced by packing.",
        "acr_pack_seconds" => "Wall-clock seconds spent packing task state.",
        "acr_compare_wire_bytes_total" => "Bytes shipped between buddies for comparison.",
        "acr_delta_compare_skipped_total" => "Delta rounds that skipped clean-chunk comparison.",
        "acr_delta_fallback_total" => "Delta rounds that fell back to a full-state ship.",
        "acr_global_restarts_total" => "Whole-job restarts from the last verified checkpoint.",
        "acr_heartbeat_expired_total" => "Heartbeat windows that expired on the driver.",
        "acr_nodes_declared_dead_total" => "Nodes the failure detector declared dead.",
        "acr_probe_rounds_total" => "Probe rounds launched against suspect nodes.",
        "acr_send_to_closed_inbox_total" => "Messages dropped on a closed node inbox.",
        "acr_store_appends_total" => "Records appended to the durable driver store.",
        "acr_store_bytes_total" => "Bytes appended to the durable driver store.",
        "acr_store_fsyncs_total" => "fsync calls issued by the durable driver store.",
        "acr_transport_connects_total" => "Transport connections established.",
        "acr_transport_probes_total" => "Transport-level liveness probes sent.",
        "acr_transport_retries_total" => "Transport connect/send retries.",
        "acr_transport_stale_total" => "Stale transport frames discarded after reconnect.",
        "acr_obs_events_dropped_total" => {
            "Events discarded to ring-buffer wraparound (scrape more often or grow ring_capacity)."
        }
        _ => "Embedder-defined metric (no registered help text).",
    }
}

/// Format-and-record a debug message, only evaluating the format arguments
/// when `ACR_DEBUG` is set — the drop-in replacement for the retired
/// `trace!` macro in `acr-runtime`.
///
/// ```
/// # use acr_obs::{debug_trace, Recorder, DRIVER_NODE};
/// # let rec = Recorder::disabled();
/// debug_trace!(rec, DRIVER_NODE, "round {} started", 7);
/// ```
#[macro_export]
macro_rules! debug_trace {
    ($rec:expr, $node:expr, $($arg:tt)*) => {
        if $rec.debug_enabled() {
            $rec.emit_debug($node, format!($($arg)*));
        }
    };
}
