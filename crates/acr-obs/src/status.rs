//! The status fold: turn the structured event stream into "what is
//! currently true".
//!
//! [`StatusModel`] is a deterministic left-fold over [`RecordedEvent`]s —
//! the same events whether they come from a live [`crate::Recorder`] ring
//! (via [`crate::Recorder::snapshot_since`]), a replayed JSONL trace, or a
//! store replay synthesized by the runtime. Feeding the same event
//! sequence twice produces byte-identical [`StatusModel::to_json`] output,
//! which is what makes the `/status` endpoint testable under virtual time.
//!
//! The model tracks:
//! - job identity and lifecycle (scheme, detection, ended/interrupted);
//! - the driver phase and cumulative per-phase seconds;
//! - epoch progress: open round, last committed (clean-verdict) round, and
//!   — after [`StatusModel::mark_source_ended`] — a round the source died
//!   inside of (the *abandoned capture*);
//! - per-node identity (replica/rank/spare), buddy assignment, liveness,
//!   and last observed activity;
//! - checkpoint-ship and delta-checkpoint progress gauges;
//! - transport storms (connects, retries, probes) and the recovery /
//!   restart timeline;
//! - trailing-window event rates, computed from event timestamps only so
//!   virtual-time runs stay deterministic.

use crate::event::{EventKind, RecordedEvent};
use crate::json;
use std::collections::BTreeMap;

/// Timeline entries kept (newest win); old entries age out silently.
const TIMELINE_CAP: usize = 64;
/// Width of the trailing rate window, in (possibly virtual) seconds.
const RATE_WINDOW: f64 = 1.0;

/// Job identity, copied from the `job_start` event.
#[derive(Debug, Clone, PartialEq)]
pub struct JobInfo {
    /// Recovery scheme label (`strong` / `medium` / `weak`).
    pub scheme: String,
    /// Detection mode label (`full-compare` / `checksum` / …).
    pub detection: String,
    /// Ranks per replica.
    pub ranks: u32,
    /// Spare pool size.
    pub spares: u32,
    /// Timestamp of the `job_start` event.
    pub started: f64,
}

/// What a node currently *is* in the replica layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRole {
    /// Active member of a replica: `(replica, rank)`.
    Active(u8, u32),
    /// Idle spare, available for promotion.
    Spare,
    /// Declared dead and (if it was active) replaced or abandoned.
    Failed,
}

impl NodeRole {
    fn label(self) -> &'static str {
        match self {
            NodeRole::Active(..) => "active",
            NodeRole::Spare => "spare",
            NodeRole::Failed => "failed",
        }
    }
}

/// Per-node live state inside a [`StatusModel`].
#[derive(Debug, Clone)]
pub struct NodeStatus {
    /// Current layout role.
    pub role: NodeRole,
    /// Short label of the last observed activity ("forward", "pack",
    /// "ship", "consensus p2", "dead", …).
    pub phase: String,
    /// Timestamp of the last event attributed to this node.
    pub last_t: f64,
    /// Checkpoint captures packed.
    pub packs: u64,
    /// Bytes packed.
    pub pack_bytes: u64,
    /// Buddy-comparison ships sent.
    pub ships: u64,
    /// Wire bytes shipped for comparison.
    pub ship_bytes: u64,
    /// Clean comparison outcomes.
    pub clean: u64,
    /// Diverged comparison outcomes (SDC detections).
    pub diverged: u64,
}

impl NodeStatus {
    fn new(role: NodeRole) -> NodeStatus {
        NodeStatus {
            role,
            phase: "idle".to_string(),
            last_t: 0.0,
            packs: 0,
            pack_bytes: 0,
            ships: 0,
            ship_bytes: 0,
            clean: 0,
            diverged: 0,
        }
    }

    fn touch(&mut self, t: f64, phase: &str) {
        self.last_t = t;
        if self.role != NodeRole::Failed {
            self.phase.clear();
            self.phase.push_str(phase);
        }
    }
}

/// One line of the recovery/fault timeline.
#[derive(Debug, Clone)]
pub struct TimelineEntry {
    /// Event timestamp.
    pub t: f64,
    /// Originating node (`u32::MAX` = driver).
    pub node: u32,
    /// Human-readable description.
    pub what: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RateClass {
    Event,
    Ship,
    Retry,
    Probe,
}

/// The fold. See the module docs for what it tracks; construct with
/// [`StatusModel::default`], feed events with [`StatusModel::apply`] (or
/// [`StatusModel::fold`]), read with [`StatusModel::to_json`] /
/// [`StatusModel::render`].
#[derive(Debug, Clone, Default)]
pub struct StatusModel {
    /// External job name for multi-job deployments (set by the consumer,
    /// not folded from events — events carry no job identity).
    job_label: Option<String>,
    job: Option<JobInfo>,
    ended: Option<bool>,
    interrupted: bool,

    phase: Option<String>,
    phase_since: f64,
    phase_seconds: BTreeMap<String, f64>,

    rounds_started: u64,
    open_round: Option<u64>,
    abandoned_round: Option<u64>,
    committed_round: Option<u64>,
    verdicts_clean: u64,
    verdicts_dirty: u64,
    iteration: u64,

    packs: u64,
    pack_bytes: u64,
    pack_chunks: u64,
    ships: u64,
    ship_wire_bytes: u64,
    compare_clean: u64,
    compare_diverged: u64,
    diverged_bytes: u64,

    delta_raw_bytes: u64,
    delta_shipped_bytes: u64,
    chunks_dirty: u64,

    connects: u64,
    retries: u64,
    probes_sent: u64,
    probe_deaths: u64,
    heartbeats_expired: u64,

    store_appends: u64,
    store_bytes: u64,

    recoveries: u64,
    recoveries_done: u64,
    collapsed: u64,
    restarts: u64,
    faults: u64,

    nodes: BTreeMap<u32, NodeStatus>,
    /// Current holder of each `(replica, rank)` slot.
    hosts: BTreeMap<(u8, u32), u32>,
    /// Slot each failed node vacated, so a later `recovery_start` can hand
    /// the exact identity to the promoted spare.
    vacated: BTreeMap<u32, (u8, u32)>,

    timeline: Vec<TimelineEntry>,
    recent: std::collections::VecDeque<(f64, RateClass)>,

    events_folded: u64,
    last_seq: Option<u64>,
    last_t: f64,
}

impl StatusModel {
    /// Fold a complete event sequence into a fresh model.
    pub fn fold<'a>(events: impl IntoIterator<Item = &'a RecordedEvent>) -> StatusModel {
        let mut m = StatusModel::default();
        for ev in events {
            m.apply(ev);
        }
        m
    }

    /// Number of events folded so far.
    pub fn events_folded(&self) -> u64 {
        self.events_folded
    }

    /// Attach (or clear) the job name this model describes. Shows up as a
    /// `"job_label"` key in [`StatusModel::to_json`] so multi-job scrapers
    /// can tell whose status they are reading; absent when unset, keeping
    /// single-job output byte-identical to earlier releases.
    pub fn set_job_label(&mut self, label: Option<String>) {
        self.job_label = label;
    }

    /// The job name attached with [`StatusModel::set_job_label`], if any.
    pub fn job_label(&self) -> Option<&str> {
        self.job_label.as_deref()
    }

    /// Highest sequence number folded, if any. Feed
    /// `last_seq + 1` to [`crate::Recorder::snapshot_since`] (or an
    /// `/events?since=` poll) to continue incrementally.
    pub fn last_seq(&self) -> Option<u64> {
        self.last_seq
    }

    /// Whether the job ended, and if so whether it completed.
    pub fn ended(&self) -> Option<bool> {
        self.ended
    }

    /// The round the source died inside of, if
    /// [`StatusModel::mark_source_ended`] found one open.
    pub fn abandoned_round(&self) -> Option<u64> {
        self.abandoned_round
    }

    /// Last committed (clean-verdict) round, if any.
    pub fn committed_round(&self) -> Option<u64> {
        self.committed_round
    }

    /// Faults injected so far (the `acr-top` overview column).
    pub fn faults_injected(&self) -> u64 {
        self.faults
    }

    /// Declare that the event source is finished (log EOF, dead driver).
    ///
    /// A live model cannot distinguish "round in flight" from "driver died
    /// mid-capture"; the *consumer* knows when the source is exhausted.
    /// If the job never ended and a round is still open, that round is
    /// marked as the abandoned capture and the model as interrupted —
    /// exactly the signature a killed driver's store leaves behind
    /// (records ending without a job-close).
    pub fn mark_source_ended(&mut self) {
        if self.ended.is_none() {
            self.interrupted = true;
            if let Some(round) = self.open_round.take() {
                self.abandoned_round = Some(round);
            }
        }
    }

    fn accumulate_phase(&mut self, now: f64) {
        if let Some(cur) = &self.phase {
            *self.phase_seconds.entry(cur.clone()).or_insert(0.0) +=
                (now - self.phase_since).max(0.0);
        }
    }

    fn note(&mut self, t: f64, node: u32, what: String) {
        if self.timeline.len() == TIMELINE_CAP {
            self.timeline.remove(0);
        }
        self.timeline.push(TimelineEntry { t, node, what });
    }

    fn rate_mark(&mut self, t: f64, class: RateClass) {
        self.recent.push_back((t, class));
        while let Some(&(t0, _)) = self.recent.front() {
            if t - t0 > RATE_WINDOW {
                self.recent.pop_front();
            } else {
                break;
            }
        }
    }

    fn rate(&self, class: RateClass) -> f64 {
        let n = self
            .recent
            .iter()
            .filter(|(t, c)| *c == class && self.last_t - *t <= RATE_WINDOW)
            .count();
        n as f64 / RATE_WINDOW
    }

    fn node_mut(&mut self, node: u32) -> &mut NodeStatus {
        self.nodes
            .entry(node)
            .or_insert_with(|| NodeStatus::new(NodeRole::Spare))
    }

    /// Fold one event. Events must be applied in sequence order for the
    /// phase/round bookkeeping to be meaningful.
    pub fn apply(&mut self, ev: &RecordedEvent) {
        self.events_folded += 1;
        self.last_seq = Some(ev.seq);
        self.last_t = ev.t;
        self.rate_mark(ev.t, RateClass::Event);
        let t = ev.t;
        let node = ev.node;
        match &ev.kind {
            EventKind::JobStart {
                scheme,
                detection,
                ranks,
                spares,
            } => {
                self.job = Some(JobInfo {
                    scheme: scheme.clone(),
                    detection: detection.clone(),
                    ranks: *ranks,
                    spares: *spares,
                    started: t,
                });
                self.nodes.clear();
                self.hosts.clear();
                for n in 0..2 * *ranks + *spares {
                    let role = if n < 2 * *ranks {
                        let replica = (n >= *ranks) as u8;
                        let rank = n % *ranks;
                        self.hosts.insert((replica, rank), n);
                        NodeRole::Active(replica, rank)
                    } else {
                        NodeRole::Spare
                    };
                    self.nodes.insert(n, NodeStatus::new(role));
                }
            }
            EventKind::JobEnd { completed } => {
                self.accumulate_phase(t);
                self.phase = None;
                self.ended = Some(*completed);
                self.open_round = None;
            }
            EventKind::PhaseEnter { phase } => {
                self.accumulate_phase(t);
                self.phase = Some(phase.label().to_string());
                self.phase_since = t;
            }
            EventKind::RoundStart { round } => {
                self.rounds_started += 1;
                self.open_round = Some(*round);
            }
            EventKind::RoundVerdict {
                round,
                iteration,
                clean,
            } => {
                self.open_round = None;
                self.iteration = self.iteration.max(*iteration);
                if *clean {
                    self.verdicts_clean += 1;
                    self.committed_round = Some(*round);
                } else {
                    self.verdicts_dirty += 1;
                }
            }
            EventKind::ConsensusPhase { phase, .. } => {
                self.node_mut(node).touch(t, &format!("consensus p{phase}"));
            }
            EventKind::CheckpointPack { bytes, chunks, .. } => {
                self.packs += 1;
                self.pack_bytes += bytes;
                self.pack_chunks += u64::from(*chunks);
                let ns = self.node_mut(node);
                ns.packs += 1;
                ns.pack_bytes += bytes;
                ns.touch(t, "pack");
            }
            EventKind::CompareShip {
                iteration,
                wire_bytes,
                ..
            } => {
                self.ships += 1;
                self.ship_wire_bytes += wire_bytes;
                self.iteration = self.iteration.max(*iteration);
                self.rate_mark(t, RateClass::Ship);
                let ns = self.node_mut(node);
                ns.ships += 1;
                ns.ship_bytes += wire_bytes;
                ns.touch(t, "ship");
            }
            EventKind::CompareOutcome {
                clean,
                diverged_bytes,
                ..
            } => {
                if *clean {
                    self.compare_clean += 1;
                    let ns = self.node_mut(node);
                    ns.clean += 1;
                    ns.touch(t, "compare=clean");
                } else {
                    self.compare_diverged += 1;
                    self.diverged_bytes += diverged_bytes;
                    let ns = self.node_mut(node);
                    ns.diverged += 1;
                    ns.touch(t, "compare=DIVERGED");
                    self.note(t, node, format!("SDC: {diverged_bytes} bytes diverged"));
                }
            }
            EventKind::HeartbeatExpired { dead } => {
                self.heartbeats_expired += 1;
                self.note(t, node, format!("heartbeat expired for node {dead}"));
            }
            EventKind::ProbeSent { .. } => {
                self.probes_sent += 1;
                self.rate_mark(t, RateClass::Probe);
            }
            EventKind::ProbeDeath { dead } => {
                self.probe_deaths += 1;
                self.note(t, node, format!("probe declared node {dead} dead"));
            }
            EventKind::NodeDead {
                dead,
                replica,
                rank,
            } => {
                let was_active = matches!(
                    self.nodes.get(dead).map(|n| n.role),
                    Some(NodeRole::Active(..))
                );
                if was_active || self.hosts.get(&(*replica, *rank)) == Some(dead) {
                    self.vacated.insert(*dead, (*replica, *rank));
                }
                let ns = self.node_mut(*dead);
                ns.role = NodeRole::Failed;
                ns.phase = "dead".to_string();
                ns.last_t = t;
                if self.hosts.get(&(*replica, *rank)) == Some(dead) {
                    self.hosts.remove(&(*replica, *rank));
                }
                self.note(
                    t,
                    node,
                    format!("node {dead} dead (replica {replica} rank {rank})"),
                );
            }
            EventKind::FaultInjected { kind, iteration } => {
                self.faults += 1;
                self.note(
                    t,
                    node,
                    format!("fault injected: {kind} @ iter {iteration}"),
                );
            }
            EventKind::RecoveryStart {
                class, dead, spare, ..
            } => {
                self.recoveries += 1;
                // The spare inherits the dead node's (replica, rank). The
                // dead node's identity was recorded before it failed; find
                // the slot it vacated.
                let slot = self
                    .nodes
                    .get(dead)
                    .and_then(|ns| match ns.role {
                        NodeRole::Active(r, k) => Some((r, k)),
                        _ => None,
                    })
                    // Usually node_dead came first and recorded the slot
                    // the corpse vacated.
                    .or_else(|| self.vacated.get(dead).copied())
                    // Last resort: whichever (replica, rank) has no host.
                    .or_else(|| self.vacant_slot());
                if let Some((r, k)) = slot {
                    self.hosts.insert((r, k), *spare);
                    let sp = self.node_mut(*spare);
                    sp.role = NodeRole::Active(r, k);
                    sp.touch(t, "recovering");
                    self.note(
                        t,
                        node,
                        format!("recovery ({class}): spare {spare} takes replica {r} rank {k}"),
                    );
                } else {
                    self.note(
                        t,
                        node,
                        format!("recovery ({class}): node {dead} -> spare {spare}"),
                    );
                }
            }
            EventKind::RecoveryPlan {
                actions,
                inter_replica_messages,
                rework,
            } => {
                self.note(
                    t,
                    node,
                    format!(
                        "recovery plan: {actions} actions, {inter_replica_messages} cross-replica msgs, rework={rework}"
                    ),
                );
            }
            EventKind::RecoveryDone { unverified } => {
                self.recoveries_done += 1;
                self.note(t, node, format!("recovery done (unverified={unverified})"));
            }
            EventKind::RecoveryCollapsed { dead } => {
                self.collapsed += 1;
                self.note(
                    t,
                    node,
                    format!("replica collapsed: node {dead} unrecoverable"),
                );
            }
            EventKind::GlobalRestart { iteration } => {
                self.restarts += 1;
                self.note(
                    t,
                    node,
                    format!("GLOBAL RESTART from iteration {iteration}"),
                );
            }
            EventKind::TransportConnect { .. } => {
                self.connects += 1;
            }
            EventKind::TransportRetry { .. } => {
                self.retries += 1;
                self.rate_mark(t, RateClass::Retry);
            }
            EventKind::WireBytes {
                delta_raw_bytes,
                delta_shipped_bytes,
                chunks_dirty,
                ..
            } => {
                self.delta_raw_bytes += delta_raw_bytes;
                self.delta_shipped_bytes += delta_shipped_bytes;
                self.chunks_dirty += chunks_dirty;
            }
            EventKind::StoreAppend { bytes, .. } => {
                self.store_appends += 1;
                self.store_bytes += bytes;
            }
            EventKind::StoreRecover {
                source,
                replayed,
                skipped,
            } => {
                self.note(
                    t,
                    node,
                    format!(
                        "resumed from {source}: {replayed} records replayed, {skipped} skipped"
                    ),
                );
            }
            EventKind::BatchFlush { .. } | EventKind::Debug { .. } => {}
        }
    }

    /// The current holder of a node's buddy slot — the same rank in the
    /// other replica — or `None` for spares, failed nodes, and vacant
    /// buddy slots.
    pub fn buddy_of(&self, node: u32) -> Option<u32> {
        match self.nodes.get(&node)?.role {
            NodeRole::Active(r, k) => self.hosts.get(&(1 - r, k)).copied(),
            _ => None,
        }
    }

    fn vacant_slot(&self) -> Option<(u8, u32)> {
        let ranks = self.job.as_ref()?.ranks;
        for r in 0..2u8 {
            for k in 0..ranks {
                if !self.hosts.contains_key(&(r, k)) {
                    return Some((r, k));
                }
            }
        }
        None
    }

    /// Serialize the model as deterministic JSON: fixed key order, nodes
    /// sorted by id, timeline in arrival order. Two models built from the
    /// same event sequence serialize byte-identically.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        if let Some(label) = &self.job_label {
            json::push_str(&mut out, "job_label", label);
        }
        match &self.job {
            Some(j) => {
                out.push_str("\"job\":{");
                json::push_str(&mut out, "scheme", &j.scheme);
                json::push_str(&mut out, "detection", &j.detection);
                json::push_raw(&mut out, "ranks", j.ranks);
                json::push_raw(&mut out, "spares", j.spares);
                json::push_raw(&mut out, "started", j.started);
                close(&mut out);
                out.push(',');
            }
            None => out.push_str("\"job\":null,"),
        }
        push_opt_bool(&mut out, "ended", self.ended);
        json::push_raw(&mut out, "interrupted", self.interrupted);
        match &self.phase {
            Some(p) => json::push_str(&mut out, "phase", p),
            None => out.push_str("\"phase\":null,"),
        }
        json::push_raw(&mut out, "phase_since", self.phase_since);
        out.push_str("\"phase_seconds\":{");
        for (name, secs) in &self.phase_seconds {
            json::push_raw(&mut out, name, secs);
        }
        close(&mut out);
        out.push(',');

        out.push_str("\"epoch\":{");
        push_opt_u64(&mut out, "open_round", self.open_round);
        push_opt_u64(&mut out, "committed_round", self.committed_round);
        push_opt_u64(&mut out, "abandoned_round", self.abandoned_round);
        json::push_raw(&mut out, "rounds_started", self.rounds_started);
        json::push_raw(&mut out, "verdicts_clean", self.verdicts_clean);
        json::push_raw(&mut out, "verdicts_dirty", self.verdicts_dirty);
        json::push_raw(&mut out, "iteration", self.iteration);
        close(&mut out);
        out.push(',');

        out.push_str("\"ship\":{");
        json::push_raw(&mut out, "packs", self.packs);
        json::push_raw(&mut out, "pack_bytes", self.pack_bytes);
        json::push_raw(&mut out, "pack_chunks", self.pack_chunks);
        json::push_raw(&mut out, "ships", self.ships);
        json::push_raw(&mut out, "wire_bytes", self.ship_wire_bytes);
        json::push_raw(&mut out, "compare_clean", self.compare_clean);
        json::push_raw(&mut out, "compare_diverged", self.compare_diverged);
        json::push_raw(&mut out, "diverged_bytes", self.diverged_bytes);
        close(&mut out);
        out.push(',');

        out.push_str("\"delta\":{");
        json::push_raw(&mut out, "raw_bytes", self.delta_raw_bytes);
        json::push_raw(&mut out, "shipped_bytes", self.delta_shipped_bytes);
        json::push_raw(&mut out, "chunks_dirty", self.chunks_dirty);
        close(&mut out);
        out.push(',');

        out.push_str("\"transport\":{");
        json::push_raw(&mut out, "connects", self.connects);
        json::push_raw(&mut out, "retries", self.retries);
        json::push_raw(&mut out, "probes_sent", self.probes_sent);
        json::push_raw(&mut out, "probe_deaths", self.probe_deaths);
        json::push_raw(&mut out, "heartbeats_expired", self.heartbeats_expired);
        close(&mut out);
        out.push(',');

        out.push_str("\"store\":{");
        json::push_raw(&mut out, "appends", self.store_appends);
        json::push_raw(&mut out, "bytes", self.store_bytes);
        close(&mut out);
        out.push(',');

        out.push_str("\"recovery\":{");
        json::push_raw(&mut out, "recoveries", self.recoveries);
        json::push_raw(&mut out, "recoveries_done", self.recoveries_done);
        json::push_raw(&mut out, "collapsed", self.collapsed);
        json::push_raw(&mut out, "global_restarts", self.restarts);
        json::push_raw(&mut out, "faults_injected", self.faults);
        close(&mut out);
        out.push(',');

        out.push_str("\"rates\":{");
        json::push_raw(&mut out, "window_seconds", RATE_WINDOW);
        json::push_raw(&mut out, "events_per_sec", self.rate(RateClass::Event));
        json::push_raw(&mut out, "ships_per_sec", self.rate(RateClass::Ship));
        json::push_raw(&mut out, "retries_per_sec", self.rate(RateClass::Retry));
        json::push_raw(&mut out, "probes_per_sec", self.rate(RateClass::Probe));
        close(&mut out);
        out.push(',');

        out.push_str("\"nodes\":[");
        for (id, ns) in &self.nodes {
            out.push('{');
            json::push_raw(&mut out, "node", id);
            json::push_str(&mut out, "role", ns.role.label());
            match ns.role {
                NodeRole::Active(r, k) => {
                    json::push_raw(&mut out, "replica", r);
                    json::push_raw(&mut out, "rank", k);
                }
                NodeRole::Spare | NodeRole::Failed => {
                    out.push_str("\"replica\":null,\"rank\":null,");
                }
            }
            push_opt_u64(&mut out, "buddy", self.buddy_of(*id).map(u64::from));
            json::push_str(&mut out, "phase", &ns.phase);
            json::push_raw(&mut out, "last_t", ns.last_t);
            json::push_raw(&mut out, "packs", ns.packs);
            json::push_raw(&mut out, "pack_bytes", ns.pack_bytes);
            json::push_raw(&mut out, "ships", ns.ships);
            json::push_raw(&mut out, "ship_bytes", ns.ship_bytes);
            json::push_raw(&mut out, "clean", ns.clean);
            json::push_raw(&mut out, "diverged", ns.diverged);
            close(&mut out);
            out.push(',');
        }
        if out.ends_with(',') {
            out.pop();
        }
        out.push_str("],");

        out.push_str("\"timeline\":[");
        for e in &self.timeline {
            out.push('{');
            json::push_raw(&mut out, "t", e.t);
            json::push_raw(&mut out, "node", e.node);
            json::push_str(&mut out, "event", &e.what);
            close(&mut out);
            out.push(',');
        }
        if out.ends_with(',') {
            out.pop();
        }
        out.push_str("],");

        out.push_str("\"fold\":{");
        json::push_raw(&mut out, "events", self.events_folded);
        push_opt_u64(&mut out, "last_seq", self.last_seq);
        json::push_raw(&mut out, "last_t", self.last_t);
        close(&mut out);
        out.push('}');
        out
    }

    /// Render a plain-text status frame (the `acr-top` screen): job line,
    /// epoch/phase gauges, per-node phase grid with buddy assignments, and
    /// the recent recovery timeline. Deterministic for a given model.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        match &self.job {
            Some(j) => {
                let _ = writeln!(
                    out,
                    "ACR job · scheme={} detection={} · {} ranks x2 replicas · {} spares",
                    j.scheme, j.detection, j.ranks, j.spares
                );
            }
            None => {
                let _ = writeln!(out, "ACR job · (no job_start seen)");
            }
        }
        let state = match (self.ended, self.interrupted) {
            (Some(true), _) => "completed".to_string(),
            (Some(false), _) => "ended (incomplete)".to_string(),
            (None, true) => "INTERRUPTED (source died)".to_string(),
            (None, false) => format!("running · phase {}", self.phase.as_deref().unwrap_or("?")),
        };
        let _ = writeln!(
            out,
            "state: {state} · t={:.3} · {} events",
            self.last_t, self.events_folded
        );
        let _ = write!(out, "epoch: ");
        match self.committed_round {
            Some(r) => {
                let _ = write!(out, "committed {r}");
            }
            None => {
                let _ = write!(out, "committed none");
            }
        }
        if let Some(r) = self.open_round {
            let _ = write!(out, " · round {r} open");
        }
        if let Some(r) = self.abandoned_round {
            let _ = write!(out, " · round {r} ABANDONED mid-capture");
        }
        let _ = writeln!(
            out,
            " · iter {} · verdicts {}+{}-",
            self.iteration, self.verdicts_clean, self.verdicts_dirty
        );

        let mut phases: Vec<String> = self
            .phase_seconds
            .iter()
            .map(|(name, secs)| format!("{name} {secs:.3}s"))
            .collect();
        if phases.is_empty() {
            phases.push("(none)".to_string());
        }
        let _ = writeln!(out, "phase-seconds: {}", phases.join(" · "));

        let _ = writeln!(
            out,
            "ship: {} packs / {} B · {} ships / {} B wire · compare {}+ {}- ({} B diverged)",
            self.packs,
            self.pack_bytes,
            self.ships,
            self.ship_wire_bytes,
            self.compare_clean,
            self.compare_diverged,
            self.diverged_bytes
        );
        let _ = writeln!(
            out,
            "delta: {} B raw -> {} B shipped · {} dirty chunks | store: {} appends / {} B",
            self.delta_raw_bytes,
            self.delta_shipped_bytes,
            self.chunks_dirty,
            self.store_appends,
            self.store_bytes
        );
        let _ = writeln!(
            out,
            "transport: {} connects · {} retries · {} probes · {} probe-deaths · {} hb-expired",
            self.connects,
            self.retries,
            self.probes_sent,
            self.probe_deaths,
            self.heartbeats_expired
        );
        let _ = writeln!(
            out,
            "rates/{RATE_WINDOW:.0}s: {:.0} ev · {:.0} ships · {:.0} retries · {:.0} probes",
            self.rate(RateClass::Event),
            self.rate(RateClass::Ship),
            self.rate(RateClass::Retry),
            self.rate(RateClass::Probe)
        );

        let _ = writeln!(out, "nodes:");
        if let Some(j) = &self.job {
            for r in 0..2u8 {
                let _ = write!(out, "  r{r}:");
                for k in 0..j.ranks {
                    match self.hosts.get(&(r, k)) {
                        Some(id) => {
                            let ns = &self.nodes[id];
                            let buddy = self
                                .buddy_of(*id)
                                .map(|b| b.to_string())
                                .unwrap_or_else(|| "-".to_string());
                            let _ = write!(out, " [{id}:{} b={buddy}]", ns.phase);
                        }
                        None => {
                            let _ = write!(out, " [rank {k} VACANT]");
                        }
                    }
                }
                let _ = writeln!(out);
            }
            let mut rest: Vec<String> = Vec::new();
            for (id, ns) in &self.nodes {
                match ns.role {
                    NodeRole::Spare => rest.push(format!("[{id}:spare]")),
                    NodeRole::Failed => rest.push(format!("[{id}:DEAD]")),
                    NodeRole::Active(..) => {}
                }
            }
            if !rest.is_empty() {
                let _ = writeln!(out, "  pool: {}", rest.join(" "));
            }
        } else {
            let _ = writeln!(out, "  (unknown layout)");
        }

        let _ = writeln!(out, "recent events:");
        let tail = self.timeline.iter().rev().take(12).collect::<Vec<_>>();
        if tail.is_empty() {
            let _ = writeln!(out, "  (none)");
        }
        for e in tail.into_iter().rev() {
            let who = if e.node == u32::MAX {
                "driver".to_string()
            } else {
                format!("node {}", e.node)
            };
            let _ = writeln!(out, "  {:>9.3}  {:<8}  {}", e.t, who, e.what);
        }
        out
    }
}

fn close(out: &mut String) {
    if out.ends_with(',') {
        out.pop();
    }
    out.push('}');
}

fn push_opt_u64(out: &mut String, key: &str, v: Option<u64>) {
    match v {
        Some(v) => json::push_raw(out, key, v),
        None => {
            out.push('"');
            out.push_str(key);
            out.push_str("\":null,");
        }
    }
}

fn push_opt_bool(out: &mut String, key: &str, v: Option<bool>) {
    match v {
        Some(v) => json::push_raw(out, key, v),
        None => {
            out.push('"');
            out.push_str(key);
            out.push_str("\":null,");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::RunPhase;

    fn ev(seq: u64, t: f64, node: u32, kind: EventKind) -> RecordedEvent {
        RecordedEvent { seq, t, node, kind }
    }

    fn job_start(seq: u64, t: f64) -> RecordedEvent {
        ev(
            seq,
            t,
            u32::MAX,
            EventKind::JobStart {
                scheme: "strong".into(),
                detection: "full-compare".into(),
                ranks: 2,
                spares: 2,
            },
        )
    }

    #[test]
    fn layout_and_buddies_from_job_start() {
        let m = StatusModel::fold(&[job_start(0, 0.0)]);
        // 2 ranks x 2 replicas + 2 spares = nodes 0..6.
        assert_eq!(m.nodes.len(), 6);
        assert_eq!(m.buddy_of(0), Some(2));
        assert_eq!(m.buddy_of(2), Some(0));
        assert_eq!(m.buddy_of(1), Some(3));
        assert_eq!(m.buddy_of(4), None, "spares have no buddy");
    }

    #[test]
    fn promotion_moves_buddy_assignment() {
        let events = vec![
            job_start(0, 0.0),
            ev(
                1,
                0.5,
                u32::MAX,
                EventKind::NodeDead {
                    dead: 3,
                    replica: 1,
                    rank: 1,
                },
            ),
            ev(
                2,
                0.6,
                u32::MAX,
                EventKind::RecoveryStart {
                    scheme: "strong".into(),
                    class: "verified".into(),
                    dead: 3,
                    spare: 5,
                },
            ),
        ];
        let m = StatusModel::fold(&events);
        assert_eq!(m.nodes[&3].role, NodeRole::Failed);
        assert_eq!(m.nodes[&5].role, NodeRole::Active(1, 1));
        assert_eq!(
            m.buddy_of(1),
            Some(5),
            "rank 1 replica 0 now buddies the promoted spare"
        );
        assert_eq!(m.buddy_of(5), Some(1));
        assert_eq!(m.recoveries, 1);
    }

    #[test]
    fn open_round_becomes_abandoned_only_when_source_ends() {
        let events = vec![
            job_start(0, 0.0),
            ev(1, 0.06, u32::MAX, EventKind::RoundStart { round: 1 }),
        ];
        let mut m = StatusModel::fold(&events);
        assert_eq!(m.open_round, Some(1));
        assert_eq!(m.abandoned_round(), None);
        m.mark_source_ended();
        assert_eq!(m.abandoned_round(), Some(1));
        assert!(m.interrupted);
        assert!(m.to_json().contains("\"abandoned_round\":1"));
        assert!(m.render().contains("ABANDONED"));
    }

    #[test]
    fn completed_job_is_not_interrupted() {
        let events = vec![
            job_start(0, 0.0),
            ev(1, 0.06, u32::MAX, EventKind::RoundStart { round: 1 }),
            ev(
                2,
                0.07,
                u32::MAX,
                EventKind::RoundVerdict {
                    round: 1,
                    iteration: 10,
                    clean: true,
                },
            ),
            ev(3, 0.1, u32::MAX, EventKind::JobEnd { completed: true }),
        ];
        let mut m = StatusModel::fold(&events);
        m.mark_source_ended();
        assert!(!m.interrupted);
        assert_eq!(m.abandoned_round(), None);
        assert_eq!(m.committed_round(), Some(1));
    }

    #[test]
    fn phase_seconds_accumulate_deterministically() {
        let events = vec![
            job_start(0, 0.0),
            ev(
                1,
                0.0,
                u32::MAX,
                EventKind::PhaseEnter {
                    phase: RunPhase::Forward,
                },
            ),
            ev(
                2,
                0.5,
                u32::MAX,
                EventKind::PhaseEnter {
                    phase: RunPhase::Round,
                },
            ),
            ev(
                3,
                0.7,
                u32::MAX,
                EventKind::PhaseEnter {
                    phase: RunPhase::Forward,
                },
            ),
            ev(4, 1.0, u32::MAX, EventKind::JobEnd { completed: true }),
        ];
        let m = StatusModel::fold(&events);
        assert!((m.phase_seconds["forward"] - 0.8).abs() < 1e-12);
        assert!((m.phase_seconds["round"] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn identical_folds_serialize_byte_identically() {
        let build = || {
            let mut events = vec![job_start(0, 0.0)];
            for i in 0..200u64 {
                let t = 0.01 * i as f64;
                events.push(ev(
                    1 + i * 3,
                    t,
                    (i % 4) as u32,
                    EventKind::CheckpointPack {
                        bytes: 1024 + i,
                        chunks: 4,
                        chunk_size: 256,
                    },
                ));
                events.push(ev(
                    2 + i * 3,
                    t,
                    (i % 4) as u32,
                    EventKind::CompareShip {
                        iteration: i,
                        wire_bytes: 8 * i,
                        method: "checksum".into(),
                    },
                ));
                events.push(ev(
                    3 + i * 3,
                    t,
                    u32::MAX,
                    EventKind::RoundVerdict {
                        round: i,
                        iteration: i,
                        clean: i % 7 != 3,
                    },
                ));
            }
            StatusModel::fold(&events).to_json()
        };
        let a = build();
        let b = build();
        assert_eq!(a, b);
        assert!(a.starts_with('{') && a.ends_with('}'));
    }

    #[test]
    fn incremental_apply_matches_batch_fold() {
        let events = vec![
            job_start(0, 0.0),
            ev(1, 0.06, u32::MAX, EventKind::RoundStart { round: 1 }),
            ev(
                2,
                0.07,
                0,
                EventKind::CheckpointPack {
                    bytes: 100,
                    chunks: 1,
                    chunk_size: 100,
                },
            ),
        ];
        let batch = StatusModel::fold(&events).to_json();
        let mut inc = StatusModel::default();
        for e in &events {
            inc.apply(e);
        }
        assert_eq!(inc.to_json(), batch);
    }
}
