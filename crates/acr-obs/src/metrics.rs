//! Atomic counters and histograms with a Prometheus-style text snapshot.
//!
//! Metrics are the home for quantities that are *not* deterministic across
//! runs — wall-clock pack latency, queue depths — which must never leak
//! into the event log (that would break byte-identical virtual-mode
//! traces). Everything here is updated with atomics only; the registry
//! lock in [`crate::Recorder`] is taken once per metric handle, not per
//! update.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Add `by` to the counter.
    pub fn inc(&self, by: u64) {
        self.value.fetch_add(by, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Exponential bucket bounds, in seconds: 1 µs … 10 s.
const BOUNDS: [f64; 8] = [1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0];

/// A fixed-bucket histogram of `f64` observations (typically seconds).
///
/// Buckets are cumulative on exposition (Prometheus `le` convention). The
/// running sum is kept as an `f64` bit-pattern in an `AtomicU64` and
/// updated with a compare-exchange loop, so `observe` never takes a lock.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BOUNDS.len() + 1],
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: Default::default(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
        }
    }
}

impl Histogram {
    /// Record one observation.
    pub fn observe(&self, v: f64) {
        let idx = BOUNDS.iter().position(|b| v <= *b).unwrap_or(BOUNDS.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Render this histogram in Prometheus exposition format. `label` is
    /// an optional pre-escaped `key="value"` pair (the recorder's job
    /// label) prepended to every sample's label set.
    pub(crate) fn expose_into(&self, name: &str, label: Option<&str>, out: &mut String) {
        use std::fmt::Write;
        let lead = match label {
            Some(l) => format!("{l},"),
            None => String::new(),
        };
        let suffix = match label {
            Some(l) => format!("{{{l}}}"),
            None => String::new(),
        };
        let mut cumulative = 0u64;
        for (i, bound) in BOUNDS.iter().enumerate() {
            cumulative += self.buckets[i].load(Ordering::Relaxed);
            let _ = writeln!(out, "{name}_bucket{{{lead}le=\"{bound}\"}} {cumulative}");
        }
        cumulative += self.buckets[BOUNDS.len()].load(Ordering::Relaxed);
        let _ = writeln!(out, "{name}_bucket{{{lead}le=\"+Inf\"}} {cumulative}");
        let _ = writeln!(out, "{name}_sum{suffix} {}", self.sum());
        let _ = writeln!(out, "{name}_count{suffix} {}", self.count());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::default();
        c.inc(3);
        c.inc(4);
        assert_eq!(c.get(), 7);
    }

    #[test]
    fn histogram_buckets_and_sum() {
        let h = Histogram::default();
        h.observe(5e-7); // le 1e-6
        h.observe(5e-4); // le 1e-3
        h.observe(100.0); // +Inf
        assert_eq!(h.count(), 3);
        assert!((h.sum() - 100.0005005).abs() < 1e-9);
        let mut out = String::new();
        h.expose_into("acr_test_seconds", None, &mut out);
        assert!(
            out.contains("acr_test_seconds_bucket{le=\"0.000001\"} 1"),
            "{out}"
        );
        assert!(
            out.contains("acr_test_seconds_bucket{le=\"+Inf\"} 3"),
            "{out}"
        );
        assert!(out.contains("acr_test_seconds_count 3"), "{out}");
    }
}
