//! A minimal flat-JSON writer/parser for the event log.
//!
//! Event records are single-line JSON objects whose values are strings,
//! numbers, or booleans — never nested — so a ~100-line hand parser keeps
//! the crate dependency-free while making the JSONL log fully replayable.
//! Numbers are kept as raw token strings on parse so `u64` fields (seeds,
//! digests) round-trip exactly instead of through an `f64`.

/// Append `"key":"escaped-value",` to a JSON object under construction.
pub(crate) fn push_str(out: &mut String, key: &str, value: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":\"");
    escape_into(out, value);
    out.push_str("\",");
}

/// Append `"key":token,` for an unquoted token (number or boolean).
pub(crate) fn push_raw(out: &mut String, key: &str, token: impl std::fmt::Display) {
    use std::fmt::Write;
    let _ = write!(out, "\"{key}\":{token},");
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// One parsed value: a decoded string or a raw unquoted token.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Val {
    Str(String),
    Raw(String),
}

/// The parsed key/value pairs of one flat JSON object.
#[derive(Debug, Default)]
pub(crate) struct Fields(Vec<(String, Val)>);

impl Fields {
    /// Parse a single-line flat JSON object.
    pub(crate) fn parse(line: &str) -> Result<Fields, String> {
        let mut fields = Vec::new();
        let s = line.trim();
        let inner = s
            .strip_prefix('{')
            .and_then(|s| s.strip_suffix('}'))
            .ok_or_else(|| format!("not a JSON object: {line:?}"))?;
        let mut chars = inner.chars().peekable();
        loop {
            while matches!(chars.peek(), Some(c) if c.is_whitespace() || *c == ',') {
                chars.next();
            }
            if chars.peek().is_none() {
                break;
            }
            let key = parse_string(&mut chars)?;
            match chars.next() {
                Some(':') => {}
                other => return Err(format!("expected ':' after key {key:?}, got {other:?}")),
            }
            let val = match chars.peek() {
                Some('"') => Val::Str(parse_string(&mut chars)?),
                Some(_) => {
                    let mut tok = String::new();
                    while matches!(chars.peek(), Some(c) if *c != ',') {
                        tok.push(chars.next().expect("peeked"));
                    }
                    Val::Raw(tok.trim().to_string())
                }
                None => return Err(format!("missing value for key {key:?}")),
            };
            fields.push((key, val));
        }
        Ok(Fields(fields))
    }

    pub(crate) fn str(&self, key: &str) -> Option<&str> {
        self.0.iter().find(|(k, _)| k == key).and_then(|(_, v)| {
            if let Val::Str(s) = v {
                Some(s.as_str())
            } else {
                None
            }
        })
    }

    fn raw(&self, key: &str) -> Option<&str> {
        self.0.iter().find(|(k, _)| k == key).and_then(|(_, v)| {
            if let Val::Raw(s) = v {
                Some(s.as_str())
            } else {
                None
            }
        })
    }

    pub(crate) fn num<T: std::str::FromStr>(&self, key: &str) -> Option<T> {
        self.raw(key)?.parse().ok()
    }

    pub(crate) fn bool(&self, key: &str) -> Option<bool> {
        match self.raw(key)? {
            "true" => Some(true),
            "false" => Some(false),
            _ => None,
        }
    }
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars>) -> Result<String, String> {
    match chars.next() {
        Some('"') => {}
        other => return Err(format!("expected '\"', got {other:?}")),
    }
    let mut out = String::new();
    loop {
        match chars.next() {
            None => return Err("unterminated string".into()),
            Some('"') => return Ok(out),
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('u') => {
                    let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                    let code =
                        u32::from_str_radix(&hex, 16).map_err(|_| format!("bad \\u{hex}"))?;
                    out.push(char::from_u32(code).ok_or_else(|| format!("bad \\u{hex}"))?);
                }
                other => return Err(format!("bad escape {other:?}")),
            },
            Some(c) => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_escapes() {
        let mut out = String::from("{");
        push_str(&mut out, "a", "x \"y\"\\\n\tz\u{1}");
        push_raw(&mut out, "n", 18446744073709551615u64);
        push_raw(&mut out, "b", true);
        out.pop();
        out.push('}');
        let f = Fields::parse(&out).unwrap();
        assert_eq!(f.str("a"), Some("x \"y\"\\\n\tz\u{1}"));
        assert_eq!(f.num::<u64>("n"), Some(u64::MAX));
        assert_eq!(f.bool("b"), Some(true));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Fields::parse("not json").is_err());
        assert!(Fields::parse("{\"k\" 1}").is_err());
    }
}
