//! Fold an event log into a paper-style overhead breakdown.
//!
//! The driver's [`PhaseEnter`](crate::EventKind::PhaseEnter) events tile
//! the run's timeline — each marker closes the previous phase at the
//! instant it opens the next — so the per-category times produced here sum
//! to the run's total duration *exactly*, the property the paper's Figs.
//! 6–8 overhead stacks rely on. Within a checkpoint round, time up to the
//! last [`CheckpointPack`](crate::EventKind::CheckpointPack) is attributed
//! to **checkpoint** (pack + digest), and the remainder — shipping the
//! comparison record, the buddy compare, and the consensus drain — to
//! **compare**.

use crate::event::{EventKind, RecordedEvent, RunPhase};
use crate::json::{push_raw, push_str};

/// Per-run overhead breakdown: where the time went, per category.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Breakdown {
    /// Recovery scheme name from the `job_start` event.
    pub scheme: String,
    /// Detection method label from the `job_start` event.
    pub detection: String,
    /// Whether the run completed (from `job_end`).
    pub completed: bool,
    /// Total run duration in (clock) seconds.
    pub total: f64,
    /// Application forward-progress time.
    pub forward: f64,
    /// Checkpoint pack + digest time inside rounds.
    pub checkpoint: f64,
    /// Buddy-compare + consensus-pause time inside rounds.
    pub compare: f64,
    /// Rollback + rebuild + ship + restart time.
    pub recovery: f64,
    /// Checkpoint rounds started.
    pub rounds: u64,
    /// Rounds whose verdict was clean (checkpoint verified).
    pub verified_rounds: u64,
    /// Recoveries started (hard errors + SDC rollbacks).
    pub recoveries: u64,
    /// Global restarts (double failures).
    pub restarts: u64,
    /// Total checkpoint bytes packed across all nodes.
    pub pack_bytes: u64,
    /// Total comparison-record bytes shipped between buddies.
    pub compare_wire_bytes: u64,
}

impl Breakdown {
    /// Fold a (seq-ordered) event log into a breakdown.
    pub fn from_events(events: &[RecordedEvent]) -> Breakdown {
        let mut b = Breakdown::default();
        let Some(first) = events.first() else {
            return b;
        };
        let start_t = first.t;
        let mut phase = RunPhase::Forward;
        let mut phase_start = start_t;
        let mut last_pack_t: Option<f64> = None;
        let mut end_t = start_t;

        let close = |b: &mut Breakdown, phase: RunPhase, s: f64, e: f64, pack: Option<f64>| {
            let span = (e - s).max(0.0);
            match phase {
                RunPhase::Forward => b.forward += span,
                RunPhase::Round => match pack {
                    Some(p) => {
                        b.checkpoint += (p - s).max(0.0);
                        b.compare += (e - p).max(0.0);
                    }
                    None => b.checkpoint += span,
                },
                RunPhase::Rollback | RunPhase::Recovery | RunPhase::Ship | RunPhase::Restart => {
                    b.recovery += span
                }
            }
        };

        for ev in events {
            end_t = ev.t;
            match &ev.kind {
                EventKind::JobStart {
                    scheme, detection, ..
                } => {
                    b.scheme = scheme.clone();
                    b.detection = detection.clone();
                }
                EventKind::PhaseEnter { phase: next } => {
                    close(&mut b, phase, phase_start, ev.t, last_pack_t);
                    phase = *next;
                    phase_start = ev.t;
                    last_pack_t = None;
                }
                EventKind::CheckpointPack { bytes, .. } => {
                    last_pack_t = Some(ev.t);
                    b.pack_bytes += bytes;
                }
                EventKind::CompareShip { wire_bytes, .. } => b.compare_wire_bytes += wire_bytes,
                EventKind::RoundStart { .. } => b.rounds += 1,
                EventKind::RoundVerdict { clean: true, .. } => b.verified_rounds += 1,
                EventKind::RecoveryStart { .. } => b.recoveries += 1,
                EventKind::GlobalRestart { .. } => b.restarts += 1,
                EventKind::JobEnd { completed } => {
                    b.completed = *completed;
                    break;
                }
                _ => {}
            }
        }
        close(&mut b, phase, phase_start, end_t, last_pack_t);
        b.total = end_t - start_t;
        b
    }

    /// Fraction of the run not spent on forward progress (the paper's
    /// "resilience overhead").
    pub fn overhead_fraction(&self) -> f64 {
        if self.total > 0.0 {
            1.0 - self.forward / self.total
        } else {
            0.0
        }
    }

    /// Serialize as a single-line JSON object (for `BENCH_overhead.json`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        push_str(&mut out, "scheme", &self.scheme);
        push_str(&mut out, "detection", &self.detection);
        push_raw(&mut out, "completed", self.completed);
        push_raw(&mut out, "total_s", self.total);
        push_raw(&mut out, "forward_s", self.forward);
        push_raw(&mut out, "checkpoint_s", self.checkpoint);
        push_raw(&mut out, "compare_s", self.compare);
        push_raw(&mut out, "recovery_s", self.recovery);
        push_raw(&mut out, "overhead_fraction", self.overhead_fraction());
        push_raw(&mut out, "rounds", self.rounds);
        push_raw(&mut out, "verified_rounds", self.verified_rounds);
        push_raw(&mut out, "recoveries", self.recoveries);
        push_raw(&mut out, "restarts", self.restarts);
        push_raw(&mut out, "pack_bytes", self.pack_bytes);
        push_raw(&mut out, "compare_wire_bytes", self.compare_wire_bytes);
        out.pop();
        out.push('}');
        out
    }
}

/// Render breakdowns as a paper-style text table (one row per run).
pub fn render_table(label_header: &str, rows: &[(String, Breakdown)]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{label_header:<18} {:<8} {:>9}  {:>16}  {:>16}  {:>16}  {:>16}",
        "scheme", "total(s)", "forward", "checkpoint", "compare", "recovery"
    );
    let cell = |secs: f64, total: f64| {
        let pct = if total > 0.0 {
            100.0 * secs / total
        } else {
            0.0
        };
        format!("{secs:>9.4} {pct:>5.1}%")
    };
    for (label, b) in rows {
        let _ = writeln!(
            out,
            "{label:<18} {:<8} {:>9.4}  {}  {}  {}  {}",
            b.scheme,
            b.total,
            cell(b.forward, b.total),
            cell(b.checkpoint, b.total),
            cell(b.compare, b.total),
            cell(b.recovery, b.total),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DRIVER_NODE;

    fn ev(seq: u64, t: f64, node: u32, kind: EventKind) -> RecordedEvent {
        RecordedEvent { seq, t, node, kind }
    }

    #[test]
    fn phases_tile_the_timeline() {
        let events = vec![
            ev(
                0,
                0.0,
                DRIVER_NODE,
                EventKind::JobStart {
                    scheme: "strong".into(),
                    detection: "checksum".into(),
                    ranks: 2,
                    spares: 1,
                },
            ),
            ev(
                1,
                0.0,
                DRIVER_NODE,
                EventKind::PhaseEnter {
                    phase: RunPhase::Forward,
                },
            ),
            ev(
                2,
                1.0,
                DRIVER_NODE,
                EventKind::PhaseEnter {
                    phase: RunPhase::Round,
                },
            ),
            ev(3, 1.0, DRIVER_NODE, EventKind::RoundStart { round: 1 }),
            ev(
                4,
                1.3,
                0,
                EventKind::CheckpointPack {
                    bytes: 100,
                    chunks: 1,
                    chunk_size: 100,
                },
            ),
            ev(
                5,
                1.4,
                1,
                EventKind::CheckpointPack {
                    bytes: 100,
                    chunks: 1,
                    chunk_size: 100,
                },
            ),
            ev(
                6,
                2.0,
                DRIVER_NODE,
                EventKind::PhaseEnter {
                    phase: RunPhase::Forward,
                },
            ),
            ev(
                7,
                3.0,
                DRIVER_NODE,
                EventKind::PhaseEnter {
                    phase: RunPhase::Recovery,
                },
            ),
            ev(
                8,
                3.5,
                DRIVER_NODE,
                EventKind::PhaseEnter {
                    phase: RunPhase::Forward,
                },
            ),
            ev(9, 4.0, DRIVER_NODE, EventKind::JobEnd { completed: true }),
        ];
        let b = Breakdown::from_events(&events);
        assert_eq!(b.scheme, "strong");
        assert!(b.completed);
        assert!((b.total - 4.0).abs() < 1e-12);
        // forward: [0,1) + [2,3) + [3.5,4) = 2.5
        assert!((b.forward - 2.5).abs() < 1e-12, "forward={}", b.forward);
        // checkpoint: [1, 1.4) — up to the last pack.
        assert!((b.checkpoint - 0.4).abs() < 1e-12);
        // compare: [1.4, 2.0).
        assert!((b.compare - 0.6).abs() < 1e-12);
        // recovery: [3.0, 3.5).
        assert!((b.recovery - 0.5).abs() < 1e-12);
        let sum = b.forward + b.checkpoint + b.compare + b.recovery;
        assert!((sum - b.total).abs() < 1e-12, "sum={sum} total={}", b.total);
        assert_eq!(b.rounds, 1);
        assert_eq!(b.pack_bytes, 200);
    }

    #[test]
    fn empty_log_is_zeroed() {
        let b = Breakdown::from_events(&[]);
        assert_eq!(b.total, 0.0);
        assert_eq!(b.overhead_fraction(), 0.0);
    }
}
