//! Fold an event log into a paper-style overhead breakdown.
//!
//! The driver's [`PhaseEnter`](crate::EventKind::PhaseEnter) events tile
//! the run's timeline — each marker closes the previous phase at the
//! instant it opens the next — so the per-category times produced here sum
//! to the run's total duration *exactly*, the property the paper's Figs.
//! 6–8 overhead stacks rely on. Within a checkpoint round, time up to the
//! last [`CheckpointPack`](crate::EventKind::CheckpointPack) is attributed
//! to **checkpoint** (pack + digest), and the remainder — shipping the
//! comparison record, the buddy compare, and the consensus drain — to
//! **compare**.

use crate::event::{EventKind, RecordedEvent, RunPhase};
use crate::json::{push_raw, push_str, Fields};

/// Per-run overhead breakdown: where the time went, per category.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Breakdown {
    /// Recovery scheme name from the `job_start` event.
    pub scheme: String,
    /// Detection method label from the `job_start` event.
    pub detection: String,
    /// Whether the run completed (from `job_end`).
    pub completed: bool,
    /// Total run duration in (clock) seconds.
    pub total: f64,
    /// Application forward-progress time.
    pub forward: f64,
    /// Checkpoint pack + digest time inside rounds.
    pub checkpoint: f64,
    /// Buddy-compare + consensus-pause time inside rounds.
    pub compare: f64,
    /// Rollback + rebuild + ship + restart time.
    pub recovery: f64,
    /// Checkpoint rounds started.
    pub rounds: u64,
    /// Rounds whose verdict was clean (checkpoint verified).
    pub verified_rounds: u64,
    /// Recoveries started (hard errors + SDC rollbacks).
    pub recoveries: u64,
    /// Global restarts (double failures).
    pub restarts: u64,
    /// Total checkpoint bytes packed across all nodes.
    pub pack_bytes: u64,
    /// Total comparison-record bytes shipped between buddies.
    pub compare_wire_bytes: u64,
    /// Successful transport connections (TCP backend; handshakes, including
    /// reconnects after a socket drop).
    pub transport_connects: u64,
    /// Failed transport dial attempts (reconnect backoff retries).
    pub transport_retries: u64,
    /// Frames crossing node endpoints, both directions summed.
    pub wire_frames: u64,
    /// Bytes crossing node endpoints, both directions summed.
    pub wire_bytes: u64,
    /// Uncompressed checkpoint-ship body bytes (Compare/Install frames)
    /// summed over all links' `WireBytes` totals.
    pub wire_ship_raw_bytes: u64,
    /// Wire bytes actually spent on that ship traffic after batching and
    /// the negotiated codec.
    pub wire_ship_wire_bytes: u64,
    /// Send-side flushes that coalesced ≥ 2 frames or applied a codec.
    pub wire_batch_flushes: u64,
    /// What the sent traffic would have cost unbatched (one plain frame
    /// per message) — the baseline for the batching non-regression gate.
    pub wire_plain_bytes: u64,
    /// Full-payload bytes the delta compare records stood in for (what
    /// those compares would have shipped without incremental checkpoints).
    pub wire_delta_raw_bytes: u64,
    /// Body bytes the delta compare records actually occupied.
    pub wire_delta_shipped_bytes: u64,
    /// Dirty chunk windows carried across all delta compare records.
    pub wire_chunks_dirty: u64,
    /// Durable-store writes (journal records + checkpoint slots) the
    /// driver performed.
    pub store_appends: u64,
    /// Bytes those durable writes put on disk, framing included.
    pub store_bytes: u64,
    /// fsyncs the store issued (one per durable write).
    pub store_fsyncs: u64,
}

/// Round to 6 decimals: phase timings in `BENCH_overhead.json` carry
/// sub-microsecond float noise between otherwise identical runs, which
/// made baseline diffs churn on every regeneration.
fn round6(v: f64) -> f64 {
    (v * 1e6).round() / 1e6
}

impl Breakdown {
    /// Fold a (seq-ordered) event log into a breakdown.
    pub fn from_events(events: &[RecordedEvent]) -> Breakdown {
        let mut b = Breakdown::default();
        let Some(first) = events.first() else {
            return b;
        };
        let start_t = first.t;
        let mut phase = RunPhase::Forward;
        let mut phase_start = start_t;
        let mut last_pack_t: Option<f64> = None;
        let mut end_t = start_t;

        let close = |b: &mut Breakdown, phase: RunPhase, s: f64, e: f64, pack: Option<f64>| {
            let span = (e - s).max(0.0);
            match phase {
                RunPhase::Forward => b.forward += span,
                RunPhase::Round => match pack {
                    Some(p) => {
                        b.checkpoint += (p - s).max(0.0);
                        b.compare += (e - p).max(0.0);
                    }
                    None => b.checkpoint += span,
                },
                RunPhase::Rollback | RunPhase::Recovery | RunPhase::Ship | RunPhase::Restart => {
                    b.recovery += span
                }
            }
        };

        let mut iter = events.iter();
        for ev in iter.by_ref() {
            end_t = ev.t;
            match &ev.kind {
                EventKind::JobStart {
                    scheme, detection, ..
                } => {
                    b.scheme = scheme.clone();
                    b.detection = detection.clone();
                }
                EventKind::PhaseEnter { phase: next } => {
                    close(&mut b, phase, phase_start, ev.t, last_pack_t);
                    phase = *next;
                    phase_start = ev.t;
                    last_pack_t = None;
                }
                EventKind::CheckpointPack { bytes, .. } => {
                    last_pack_t = Some(ev.t);
                    b.pack_bytes += bytes;
                }
                EventKind::CompareShip { wire_bytes, .. } => b.compare_wire_bytes += wire_bytes,
                EventKind::TransportConnect { .. } => b.transport_connects += 1,
                EventKind::TransportRetry { .. } => b.transport_retries += 1,
                EventKind::WireBytes {
                    frames_sent,
                    bytes_sent,
                    frames_recv,
                    bytes_recv,
                    ship_raw_bytes,
                    ship_wire_bytes,
                    batch_flushes,
                    plain_bytes,
                    delta_raw_bytes,
                    delta_shipped_bytes,
                    chunks_dirty,
                    ..
                } => {
                    b.wire_frames += frames_sent + frames_recv;
                    b.wire_bytes += bytes_sent + bytes_recv;
                    // Ship/batching totals come from the per-link lifetime
                    // summaries only; per-flush `BatchFlush` events would
                    // double-count them.
                    b.wire_ship_raw_bytes += ship_raw_bytes;
                    b.wire_ship_wire_bytes += ship_wire_bytes;
                    b.wire_batch_flushes += batch_flushes;
                    b.wire_plain_bytes += plain_bytes;
                    b.wire_delta_raw_bytes += delta_raw_bytes;
                    b.wire_delta_shipped_bytes += delta_shipped_bytes;
                    b.wire_chunks_dirty += chunks_dirty;
                }
                EventKind::StoreAppend { bytes, .. } => {
                    b.store_appends += 1;
                    b.store_bytes += bytes;
                    b.store_fsyncs += 1;
                }
                EventKind::RoundStart { .. } => b.rounds += 1,
                EventKind::RoundVerdict { clean: true, .. } => b.verified_rounds += 1,
                EventKind::RecoveryStart { .. } => b.recoveries += 1,
                EventKind::GlobalRestart { .. } => b.restarts += 1,
                EventKind::JobEnd { completed } => {
                    b.completed = *completed;
                    break;
                }
                _ => {}
            }
        }
        close(&mut b, phase, phase_start, end_t, last_pack_t);
        b.total = end_t - start_t;
        // The transport's per-link lifetime summaries are emitted at
        // teardown, after `JobEnd`; keep folding those (and only those)
        // without letting teardown timestamps stretch the phase totals.
        for ev in iter {
            if let EventKind::WireBytes {
                frames_sent,
                bytes_sent,
                frames_recv,
                bytes_recv,
                ship_raw_bytes,
                ship_wire_bytes,
                batch_flushes,
                plain_bytes,
                delta_raw_bytes,
                delta_shipped_bytes,
                chunks_dirty,
                ..
            } = &ev.kind
            {
                b.wire_frames += frames_sent + frames_recv;
                b.wire_bytes += bytes_sent + bytes_recv;
                b.wire_ship_raw_bytes += ship_raw_bytes;
                b.wire_ship_wire_bytes += ship_wire_bytes;
                b.wire_batch_flushes += batch_flushes;
                b.wire_plain_bytes += plain_bytes;
                b.wire_delta_raw_bytes += delta_raw_bytes;
                b.wire_delta_shipped_bytes += delta_shipped_bytes;
                b.wire_chunks_dirty += chunks_dirty;
            }
        }
        b
    }

    /// Fraction of the run not spent on forward progress (the paper's
    /// "resilience overhead").
    pub fn overhead_fraction(&self) -> f64 {
        if self.total > 0.0 {
            1.0 - self.forward / self.total
        } else {
            0.0
        }
    }

    /// Fraction of full-ship bytes the delta compares avoided:
    /// `1 - shipped/raw`, or 0 when no delta records were sent.
    pub fn delta_savings_fraction(&self) -> f64 {
        if self.wire_delta_raw_bytes > 0 {
            1.0 - self.wire_delta_shipped_bytes as f64 / self.wire_delta_raw_bytes as f64
        } else {
            0.0
        }
    }

    /// Serialize as a single-line JSON object (for `BENCH_overhead.json`).
    /// Phase timings are rounded to microsecond precision — enough for any
    /// overhead comparison, and it stops float noise from churning the
    /// checked-in baseline on every regeneration.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        push_str(&mut out, "scheme", &self.scheme);
        push_str(&mut out, "detection", &self.detection);
        push_raw(&mut out, "completed", self.completed);
        push_raw(&mut out, "total_s", round6(self.total));
        push_raw(&mut out, "forward_s", round6(self.forward));
        push_raw(&mut out, "checkpoint_s", round6(self.checkpoint));
        push_raw(&mut out, "compare_s", round6(self.compare));
        push_raw(&mut out, "recovery_s", round6(self.recovery));
        push_raw(
            &mut out,
            "overhead_fraction",
            round6(self.overhead_fraction()),
        );
        push_raw(&mut out, "rounds", self.rounds);
        push_raw(&mut out, "verified_rounds", self.verified_rounds);
        push_raw(&mut out, "recoveries", self.recoveries);
        push_raw(&mut out, "restarts", self.restarts);
        push_raw(&mut out, "pack_bytes", self.pack_bytes);
        push_raw(&mut out, "compare_wire_bytes", self.compare_wire_bytes);
        push_raw(&mut out, "transport_connects", self.transport_connects);
        push_raw(&mut out, "transport_retries", self.transport_retries);
        push_raw(&mut out, "wire_frames", self.wire_frames);
        push_raw(&mut out, "wire_bytes", self.wire_bytes);
        push_raw(&mut out, "wire_ship_raw_bytes", self.wire_ship_raw_bytes);
        push_raw(&mut out, "wire_ship_wire_bytes", self.wire_ship_wire_bytes);
        push_raw(&mut out, "wire_batch_flushes", self.wire_batch_flushes);
        push_raw(&mut out, "wire_plain_bytes", self.wire_plain_bytes);
        push_raw(&mut out, "wire_delta_raw_bytes", self.wire_delta_raw_bytes);
        push_raw(
            &mut out,
            "wire_delta_shipped_bytes",
            self.wire_delta_shipped_bytes,
        );
        push_raw(&mut out, "wire_chunks_dirty", self.wire_chunks_dirty);
        push_raw(&mut out, "store_appends", self.store_appends);
        push_raw(&mut out, "store_bytes", self.store_bytes);
        push_raw(&mut out, "store_fsyncs", self.store_fsyncs);
        out.pop();
        out.push('}');
        out
    }

    /// Parse a [`Breakdown::to_json`] line back. Unknown keys (e.g. the
    /// `scenario` label `BENCH_overhead.json` splices in) are ignored;
    /// missing numeric keys default to zero so older baselines stay
    /// readable after new fields are added.
    pub fn from_json(line: &str) -> Result<Breakdown, String> {
        let f = Fields::parse(line)?;
        Ok(Breakdown {
            scheme: f.str("scheme").unwrap_or_default().to_string(),
            detection: f.str("detection").unwrap_or_default().to_string(),
            completed: f.bool("completed").unwrap_or(false),
            total: f.num("total_s").unwrap_or(0.0),
            forward: f.num("forward_s").unwrap_or(0.0),
            checkpoint: f.num("checkpoint_s").unwrap_or(0.0),
            compare: f.num("compare_s").unwrap_or(0.0),
            recovery: f.num("recovery_s").unwrap_or(0.0),
            rounds: f.num("rounds").unwrap_or(0),
            verified_rounds: f.num("verified_rounds").unwrap_or(0),
            recoveries: f.num("recoveries").unwrap_or(0),
            restarts: f.num("restarts").unwrap_or(0),
            pack_bytes: f.num("pack_bytes").unwrap_or(0),
            compare_wire_bytes: f.num("compare_wire_bytes").unwrap_or(0),
            transport_connects: f.num("transport_connects").unwrap_or(0),
            transport_retries: f.num("transport_retries").unwrap_or(0),
            wire_frames: f.num("wire_frames").unwrap_or(0),
            wire_bytes: f.num("wire_bytes").unwrap_or(0),
            wire_ship_raw_bytes: f.num("wire_ship_raw_bytes").unwrap_or(0),
            wire_ship_wire_bytes: f.num("wire_ship_wire_bytes").unwrap_or(0),
            wire_batch_flushes: f.num("wire_batch_flushes").unwrap_or(0),
            wire_plain_bytes: f.num("wire_plain_bytes").unwrap_or(0),
            wire_delta_raw_bytes: f.num("wire_delta_raw_bytes").unwrap_or(0),
            wire_delta_shipped_bytes: f.num("wire_delta_shipped_bytes").unwrap_or(0),
            wire_chunks_dirty: f.num("wire_chunks_dirty").unwrap_or(0),
            store_appends: f.num("store_appends").unwrap_or(0),
            store_bytes: f.num("store_bytes").unwrap_or(0),
            store_fsyncs: f.num("store_fsyncs").unwrap_or(0),
        })
    }
}

/// Parse a `BENCH_overhead.json` document — a JSON array of scenario-
/// labeled [`Breakdown`] objects, one per line, as `overhead_report`
/// writes it — into `(scenario, breakdown)` rows.
pub fn parse_bench(text: &str) -> Result<Vec<(String, Breakdown)>, String> {
    let mut rows = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        if line.is_empty() || line == "[" || line == "]" {
            continue;
        }
        let f = Fields::parse(line)?;
        let scenario = f
            .str("scenario")
            .ok_or_else(|| format!("row without a scenario label: {line}"))?
            .to_string();
        rows.push((scenario, Breakdown::from_json(line)?));
    }
    Ok(rows)
}

/// Render breakdowns as a paper-style text table (one row per run).
pub fn render_table(label_header: &str, rows: &[(String, Breakdown)]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{label_header:<18} {:<8} {:>9}  {:>16}  {:>16}  {:>16}  {:>16}",
        "scheme", "total(s)", "forward", "checkpoint", "compare", "recovery"
    );
    let cell = |secs: f64, total: f64| {
        let pct = if total > 0.0 {
            100.0 * secs / total
        } else {
            0.0
        };
        format!("{secs:>9.4} {pct:>5.1}%")
    };
    for (label, b) in rows {
        let _ = writeln!(
            out,
            "{label:<18} {:<8} {:>9.4}  {}  {}  {}  {}",
            b.scheme,
            b.total,
            cell(b.forward, b.total),
            cell(b.checkpoint, b.total),
            cell(b.compare, b.total),
            cell(b.recovery, b.total),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DRIVER_NODE;

    fn ev(seq: u64, t: f64, node: u32, kind: EventKind) -> RecordedEvent {
        RecordedEvent { seq, t, node, kind }
    }

    #[test]
    fn phases_tile_the_timeline() {
        let events = vec![
            ev(
                0,
                0.0,
                DRIVER_NODE,
                EventKind::JobStart {
                    scheme: "strong".into(),
                    detection: "checksum".into(),
                    ranks: 2,
                    spares: 1,
                },
            ),
            ev(
                1,
                0.0,
                DRIVER_NODE,
                EventKind::PhaseEnter {
                    phase: RunPhase::Forward,
                },
            ),
            ev(
                2,
                1.0,
                DRIVER_NODE,
                EventKind::PhaseEnter {
                    phase: RunPhase::Round,
                },
            ),
            ev(3, 1.0, DRIVER_NODE, EventKind::RoundStart { round: 1 }),
            ev(
                4,
                1.3,
                0,
                EventKind::CheckpointPack {
                    bytes: 100,
                    chunks: 1,
                    chunk_size: 100,
                },
            ),
            ev(
                5,
                1.4,
                1,
                EventKind::CheckpointPack {
                    bytes: 100,
                    chunks: 1,
                    chunk_size: 100,
                },
            ),
            ev(
                6,
                2.0,
                DRIVER_NODE,
                EventKind::PhaseEnter {
                    phase: RunPhase::Forward,
                },
            ),
            ev(
                7,
                3.0,
                DRIVER_NODE,
                EventKind::PhaseEnter {
                    phase: RunPhase::Recovery,
                },
            ),
            ev(
                8,
                3.5,
                DRIVER_NODE,
                EventKind::PhaseEnter {
                    phase: RunPhase::Forward,
                },
            ),
            ev(9, 4.0, DRIVER_NODE, EventKind::JobEnd { completed: true }),
        ];
        let b = Breakdown::from_events(&events);
        assert_eq!(b.scheme, "strong");
        assert!(b.completed);
        assert!((b.total - 4.0).abs() < 1e-12);
        // forward: [0,1) + [2,3) + [3.5,4) = 2.5
        assert!((b.forward - 2.5).abs() < 1e-12, "forward={}", b.forward);
        // checkpoint: [1, 1.4) — up to the last pack.
        assert!((b.checkpoint - 0.4).abs() < 1e-12);
        // compare: [1.4, 2.0).
        assert!((b.compare - 0.6).abs() < 1e-12);
        // recovery: [3.0, 3.5).
        assert!((b.recovery - 0.5).abs() < 1e-12);
        let sum = b.forward + b.checkpoint + b.compare + b.recovery;
        assert!((sum - b.total).abs() < 1e-12, "sum={sum} total={}", b.total);
        assert_eq!(b.rounds, 1);
        assert_eq!(b.pack_bytes, 200);
    }

    #[test]
    fn empty_log_is_zeroed() {
        let b = Breakdown::from_events(&[]);
        assert_eq!(b.total, 0.0);
        assert_eq!(b.overhead_fraction(), 0.0);
    }

    #[test]
    fn json_roundtrip() {
        let b = Breakdown {
            scheme: "strong".into(),
            detection: "chunked_checksum".into(),
            completed: true,
            total: 1.25,
            forward: 1.0,
            checkpoint: 0.125,
            compare: 0.0625,
            recovery: 0.0625,
            rounds: 3,
            verified_rounds: 3,
            recoveries: 1,
            restarts: 0,
            pack_bytes: 4096,
            compare_wire_bytes: 512,
            transport_connects: 7,
            transport_retries: 2,
            wire_frames: 1201,
            wire_bytes: 88210,
            wire_ship_raw_bytes: 51200,
            wire_ship_wire_bytes: 20480,
            wire_batch_flushes: 97,
            wire_plain_bytes: 91022,
            wire_delta_raw_bytes: 40960,
            wire_delta_shipped_bytes: 10240,
            wire_chunks_dirty: 21,
            store_appends: 15,
            store_bytes: 2048,
            store_fsyncs: 15,
        };
        let parsed = Breakdown::from_json(&b.to_json()).unwrap();
        assert_eq!(parsed, b);
        assert!((b.delta_savings_fraction() - 0.75).abs() < 1e-12);
    }

    /// Phase timings serialize at microsecond precision: sub-µs noise must
    /// not survive a JSON round trip (it churned baseline diffs).
    #[test]
    fn json_rounds_phase_timings_to_six_decimals() {
        let b = Breakdown {
            scheme: "strong".into(),
            total: 1.000000123456,
            forward: 0.9999994,
            checkpoint: 1e-9,
            ..Breakdown::default()
        };
        let parsed = Breakdown::from_json(&b.to_json()).unwrap();
        assert_eq!(parsed.total, 1.0);
        assert_eq!(parsed.forward, 0.999999);
        assert_eq!(parsed.checkpoint, 0.0);
    }

    #[test]
    fn bench_document_parses_with_scenario_labels() {
        let b = Breakdown {
            scheme: "medium".into(),
            total: 0.5,
            forward: 0.5,
            completed: true,
            ..Breakdown::default()
        };
        let json = b.to_json();
        let spliced = format!(
            "{{\"scenario\":\"fault_free\",{}",
            json.strip_prefix('{').unwrap()
        );
        let doc = format!("[\n  {spliced},\n  {spliced}\n]\n");
        let rows = parse_bench(&doc).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, "fault_free");
        assert_eq!(rows[0].1, b);
        // A row missing its scenario label is an error, not a skip.
        assert!(parse_bench(&format!("[\n  {json}\n]\n")).is_err());
    }

    /// Wire-transport events fold into the breakdown's wire columns.
    #[test]
    fn wire_events_are_attributed() {
        let events = vec![
            ev(
                0,
                0.0,
                DRIVER_NODE,
                EventKind::JobStart {
                    scheme: "strong".into(),
                    detection: "checksum".into(),
                    ranks: 2,
                    spares: 1,
                },
            ),
            ev(1, 0.001, 2, EventKind::TransportConnect { attempt: 1 }),
            ev(
                2,
                0.002,
                3,
                EventKind::TransportRetry {
                    attempt: 1,
                    delay_us: 1000,
                },
            ),
            ev(3, 0.003, 3, EventKind::TransportConnect { attempt: 2 }),
            ev(
                4,
                0.9,
                2,
                EventKind::WireBytes {
                    frames_sent: 100,
                    bytes_sent: 5000,
                    frames_recv: 90,
                    bytes_recv: 4500,
                    ship_raw_bytes: 3000,
                    ship_wire_bytes: 1200,
                    batch_flushes: 12,
                    plain_bytes: 5600,
                    delta_raw_bytes: 2000,
                    delta_shipped_bytes: 500,
                    chunks_dirty: 4,
                    codec: "lz".into(),
                },
            ),
            ev(5, 1.0, DRIVER_NODE, EventKind::JobEnd { completed: true }),
        ];
        let b = Breakdown::from_events(&events);
        assert_eq!(b.transport_connects, 2);
        assert_eq!(b.transport_retries, 1);
        assert_eq!(b.wire_frames, 190);
        assert_eq!(b.wire_bytes, 9500);
        assert_eq!(b.wire_ship_raw_bytes, 3000);
        assert_eq!(b.wire_ship_wire_bytes, 1200);
        assert_eq!(b.wire_batch_flushes, 12);
        assert_eq!(b.wire_plain_bytes, 5600);
        assert_eq!(b.wire_delta_raw_bytes, 2000);
        assert_eq!(b.wire_delta_shipped_bytes, 500);
        assert_eq!(b.wire_chunks_dirty, 4);
        assert!((b.delta_savings_fraction() - 0.75).abs() < 1e-12);
    }

    /// Durable-store events fold into the journal-volume columns.
    #[test]
    fn store_events_are_attributed() {
        let events = vec![
            ev(
                0,
                0.0,
                DRIVER_NODE,
                EventKind::StoreAppend {
                    kind: "admit".into(),
                    bytes: 120,
                },
            ),
            ev(
                1,
                0.5,
                DRIVER_NODE,
                EventKind::StoreAppend {
                    kind: "slot".into(),
                    bytes: 4096,
                },
            ),
            ev(2, 1.0, DRIVER_NODE, EventKind::JobEnd { completed: true }),
        ];
        let b = Breakdown::from_events(&events);
        assert_eq!(b.store_appends, 2);
        assert_eq!(b.store_bytes, 4216);
        assert_eq!(b.store_fsyncs, 2);
    }
}
