//! The typed event taxonomy covering the protocol surface.
//!
//! Every event is a [`RecordedEvent`]: a monotone sequence number, a
//! timestamp from the embedder's clock (seconds since job start), the node
//! that emitted it, and a typed [`EventKind`] payload. Events serialize to
//! single-line flat JSON objects and parse back losslessly, so a JSONL log
//! is a replayable record of the run.
//!
//! Payloads carry only *deterministic* quantities — virtual-clock
//! timestamps, byte counts, rounds, digests. Wall-clock latencies (which
//! differ run to run even under virtual time) belong in the metrics
//! registry, never in events; that is what makes two virtual-mode runs of
//! the same seed produce byte-identical logs.

use crate::json::{push_raw, push_str, Fields};
use std::fmt;

/// Which side of the dual-replica protocol an event refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObsScope {
    /// The whole job (driver-side events).
    Global,
    /// One replica (0 or 1) of a dual-replicated rank.
    Replica(u8),
}

impl ObsScope {
    fn label(self) -> String {
        match self {
            ObsScope::Global => "global".to_string(),
            ObsScope::Replica(r) => format!("r{r}"),
        }
    }

    fn parse(s: &str) -> Option<ObsScope> {
        match s {
            "global" => Some(ObsScope::Global),
            _ => s.strip_prefix('r')?.parse().ok().map(ObsScope::Replica),
        }
    }
}

/// Driver-level phase of the run, used to partition the timeline.
///
/// [`PhaseEnter`](EventKind::PhaseEnter) events mark the instant the driver
/// switches phase; consecutive markers therefore tile `[0, total]` with no
/// gaps or overlaps, which is what lets the overhead report's rows sum to
/// the run duration exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RunPhase {
    /// Application forward progress between checkpoint rounds.
    Forward,
    /// A four-phase checkpoint consensus round (pack + compare + commit).
    Round,
    /// Waiting for survivors to roll back after a failure.
    Rollback,
    /// Rebuilding the dead replica on a spare.
    Recovery,
    /// The verification ship-round that closes a weak/medium recovery.
    Ship,
    /// Global restart from the last verified checkpoint (double failure).
    Restart,
}

impl RunPhase {
    /// Stable wire label.
    pub fn label(self) -> &'static str {
        match self {
            RunPhase::Forward => "forward",
            RunPhase::Round => "round",
            RunPhase::Rollback => "rollback",
            RunPhase::Recovery => "recovery",
            RunPhase::Ship => "ship",
            RunPhase::Restart => "restart",
        }
    }

    fn parse(s: &str) -> Option<RunPhase> {
        Some(match s {
            "forward" => RunPhase::Forward,
            "round" => RunPhase::Round,
            "rollback" => RunPhase::Rollback,
            "recovery" => RunPhase::Recovery,
            "ship" => RunPhase::Ship,
            "restart" => RunPhase::Restart,
            _ => return None,
        })
    }
}

/// The typed payload of one flight-recorder event.
///
/// Variants map one-to-one onto the protocol surface described in the
/// paper: §2.2 four-phase consensus, §4.2 buddy comparison, §2.3 recovery
/// schemes, §6.1 liveness. String fields use the protocol's own stable
/// names (`Scheme::name()`, detection-method labels) so logs stay readable
/// without this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// The driver started a job.
    JobStart {
        /// Recovery scheme name (`strong` / `medium` / `weak`).
        scheme: String,
        /// SDC detection method label.
        detection: String,
        /// Number of dual-replicated ranks.
        ranks: u32,
        /// Number of spare nodes.
        spares: u32,
    },
    /// The driver finished (or abandoned) the job.
    JobEnd {
        /// Whether every rank reached the iteration target.
        completed: bool,
    },
    /// The driver entered a new [`RunPhase`].
    PhaseEnter {
        /// The phase being entered at this timestamp.
        phase: RunPhase,
    },
    /// A global checkpoint round began (driver broadcast `StartRound`).
    RoundStart {
        /// Monotone round number.
        round: u64,
    },
    /// A checkpoint round completed and its verdict is known.
    RoundVerdict {
        /// Round number the verdict belongs to.
        round: u64,
        /// Application iteration the checkpoint captured.
        iteration: u64,
        /// `true` when both replicas agreed (checkpoint verified).
        clean: bool,
    },
    /// A node's consensus engine moved to a new §2.2 phase.
    ConsensusPhase {
        /// Which replica's engine (engines are per-replica on each node).
        scope: ObsScope,
        /// Round the engine is processing.
        round: u64,
        /// Engine phase ordinal: 0 idle, 1 collecting, 2 await-decision,
        /// 3 draining, 4 await-go.
        phase: u8,
    },
    /// A node packed its local checkpoint (fused pack+digest pipeline).
    CheckpointPack {
        /// Serialized checkpoint payload size in bytes.
        bytes: u64,
        /// Number of chunks in the per-chunk digest table.
        chunks: u32,
        /// Configured chunk size in bytes.
        chunk_size: u32,
    },
    /// A node shipped its comparison record to its buddy.
    CompareShip {
        /// Application iteration being compared.
        iteration: u64,
        /// Bytes placed on the wire by the detection method.
        wire_bytes: u64,
        /// Detection method label.
        method: String,
    },
    /// The buddy comparison for an iteration resolved.
    CompareOutcome {
        /// Application iteration compared.
        iteration: u64,
        /// `true` when the replicas matched.
        clean: bool,
        /// Total bytes inside divergence windows (0 when clean).
        diverged_bytes: u64,
        /// Number of divergence windows localized.
        windows: u32,
    },
    /// A node's buddy heartbeat lapsed past the timeout.
    HeartbeatExpired {
        /// The node declared silent.
        dead: u32,
    },
    /// The driver sent a liveness probe (§6.1 backstop) to a suspect.
    ProbeSent {
        /// The node being probed.
        suspect: u32,
    },
    /// A liveness probe went unanswered; the suspect is dead.
    ProbeDeath {
        /// The node confirmed dead.
        dead: u32,
    },
    /// The driver committed to a node's death and classified the failure.
    NodeDead {
        /// The dead node.
        dead: u32,
        /// Replica index the dead node belonged to.
        replica: u8,
        /// Rank the dead node computed.
        rank: u32,
    },
    /// A scripted fault fired on a node.
    FaultInjected {
        /// Fault label (`crash`, `sdc`, `heartbeat_delay`, …).
        kind: String,
        /// Application iteration at injection time.
        iteration: u64,
    },
    /// Recovery began for a failure, tagged with the §2.3 classification.
    RecoveryStart {
        /// Recovery scheme in force.
        scheme: String,
        /// §2.3 exposure class of the scheme (`verified` /
        /// `unverified-window` / `unverified`).
        class: String,
        /// The dead node being replaced.
        dead: u32,
        /// Spare chosen as the replacement.
        spare: u32,
    },
    /// The planner produced a recovery plan.
    RecoveryPlan {
        /// Number of planned actions.
        actions: u32,
        /// Cross-replica checkpoint transfers the plan requires.
        inter_replica_messages: u32,
        /// Whether survivors must recompute from an older checkpoint.
        rework: bool,
    },
    /// Recovery finished and the job resumed.
    RecoveryDone {
        /// `true` when the resumed state is not yet buddy-verified
        /// (weak/medium schemes until the next clean round).
        unverified: bool,
    },
    /// Both members of a buddy pair died; recovery collapsed to restart.
    RecoveryCollapsed {
        /// The second casualty that triggered the collapse.
        dead: u32,
    },
    /// The driver restarted every rank from the last verified checkpoint.
    GlobalRestart {
        /// Iteration of the checkpoint being restored.
        iteration: u64,
    },
    /// (TCP transport) a node's endpoint completed the connect/accept
    /// handshake with the driver's router.
    TransportConnect {
        /// Dial attempts this (re)connection took (1 = first try).
        attempt: u32,
    },
    /// (TCP transport) a dial attempt failed; the endpoint backs off.
    TransportRetry {
        /// Failed attempt number since the last successful connect.
        attempt: u32,
        /// Backoff delay before the next attempt, in microseconds.
        delay_us: u64,
    },
    /// (TCP transport) a node endpoint's lifetime wire-traffic totals,
    /// emitted once at teardown so `overhead_report` can attribute
    /// frame/byte volume per node.
    WireBytes {
        /// Frames successfully written to the socket.
        frames_sent: u64,
        /// Bytes successfully written (headers + trailers included).
        bytes_sent: u64,
        /// Frames received and accepted (replay duplicates excluded).
        frames_recv: u64,
        /// Raw bytes read off the socket.
        bytes_recv: u64,
        /// Uncompressed body bytes of checkpoint-ship frames
        /// (`Net::Compare` / `Net::Install`) sent on this link.
        ship_raw_bytes: u64,
        /// Wire bytes actually spent on that ship traffic (its share of
        /// each batched, possibly compressed flush).
        ship_wire_bytes: u64,
        /// Flushes that coalesced ≥ 2 frames or applied a codec.
        batch_flushes: u64,
        /// What `bytes_sent` would have been as one plain frame per
        /// message — the unbatched baseline batching is measured against.
        plain_bytes: u64,
        /// Full-payload bytes the link's delta compare records stood in
        /// for (what a full ship would have cost).
        delta_raw_bytes: u64,
        /// Body bytes those delta records actually occupied.
        delta_shipped_bytes: u64,
        /// Dirty chunk windows carried across all delta records.
        chunks_dirty: u64,
        /// Negotiated ship codec for this link ("none"/"rle"/"lz").
        codec: String,
    },
    /// (TCP transport) one batched flush that coalesced several frames
    /// into a super-frame and/or compressed the payload. Emitted only for
    /// flushes where batching did something (≥ 2 frames or a codec), so
    /// event volume stays bounded by send-side coalescing opportunities.
    BatchFlush {
        /// Frames coalesced into this super-frame.
        frames: u64,
        /// Super-frame payload bytes before compression.
        raw_bytes: u64,
        /// Bytes that went on the wire (header + stored payload + trailer).
        wire_bytes: u64,
        /// Codec actually applied ("none" when compression didn't pay).
        codec: String,
    },
    /// The driver appended a record to its durable event log (or wrote a
    /// checkpoint slot), followed by an fsync.
    StoreAppend {
        /// Record kind label (`admit`, `trigger`, `dead`, `promote`,
        /// `buddy`, `commit`, `closed`, `slot`).
        kind: String,
        /// Bytes this durable write put on disk (framing included).
        bytes: u64,
    },
    /// A resumed driver finished replaying its durable store.
    StoreRecover {
        /// Checkpoint source used: `primary`, `rollback`, or `none`.
        source: String,
        /// Log records replayed into driver state.
        replayed: u64,
        /// Valid post-commit records rolled back over.
        skipped: u64,
    },
    /// A free-form debug message from a `debug_trace!` site.
    Debug {
        /// The formatted message.
        text: String,
    },
}

impl EventKind {
    /// Stable wire name of this event type (the JSON `ev` field).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::JobStart { .. } => "job_start",
            EventKind::JobEnd { .. } => "job_end",
            EventKind::PhaseEnter { .. } => "phase_enter",
            EventKind::RoundStart { .. } => "round_start",
            EventKind::RoundVerdict { .. } => "round_verdict",
            EventKind::ConsensusPhase { .. } => "consensus_phase",
            EventKind::CheckpointPack { .. } => "checkpoint_pack",
            EventKind::CompareShip { .. } => "compare_ship",
            EventKind::CompareOutcome { .. } => "compare_outcome",
            EventKind::HeartbeatExpired { .. } => "heartbeat_expired",
            EventKind::ProbeSent { .. } => "probe_sent",
            EventKind::ProbeDeath { .. } => "probe_death",
            EventKind::NodeDead { .. } => "node_dead",
            EventKind::FaultInjected { .. } => "fault_injected",
            EventKind::RecoveryStart { .. } => "recovery_start",
            EventKind::RecoveryPlan { .. } => "recovery_plan",
            EventKind::RecoveryDone { .. } => "recovery_done",
            EventKind::RecoveryCollapsed { .. } => "recovery_collapsed",
            EventKind::GlobalRestart { .. } => "global_restart",
            EventKind::TransportConnect { .. } => "transport_connect",
            EventKind::TransportRetry { .. } => "transport_retry",
            EventKind::WireBytes { .. } => "wire_bytes",
            EventKind::BatchFlush { .. } => "batch_flush",
            EventKind::StoreAppend { .. } => "store_append",
            EventKind::StoreRecover { .. } => "store_recover",
            EventKind::Debug { .. } => "debug",
        }
    }

    fn write_fields(&self, out: &mut String) {
        match self {
            EventKind::JobStart {
                scheme,
                detection,
                ranks,
                spares,
            } => {
                push_str(out, "scheme", scheme);
                push_str(out, "detection", detection);
                push_raw(out, "ranks", ranks);
                push_raw(out, "spares", spares);
            }
            EventKind::JobEnd { completed } => push_raw(out, "completed", completed),
            EventKind::PhaseEnter { phase } => push_str(out, "phase", phase.label()),
            EventKind::RoundStart { round } => push_raw(out, "round", round),
            EventKind::RoundVerdict {
                round,
                iteration,
                clean,
            } => {
                push_raw(out, "round", round);
                push_raw(out, "iteration", iteration);
                push_raw(out, "clean", clean);
            }
            EventKind::ConsensusPhase {
                scope,
                round,
                phase,
            } => {
                push_str(out, "scope", &scope.label());
                push_raw(out, "round", round);
                push_raw(out, "phase", phase);
            }
            EventKind::CheckpointPack {
                bytes,
                chunks,
                chunk_size,
            } => {
                push_raw(out, "bytes", bytes);
                push_raw(out, "chunks", chunks);
                push_raw(out, "chunk_size", chunk_size);
            }
            EventKind::CompareShip {
                iteration,
                wire_bytes,
                method,
            } => {
                push_raw(out, "iteration", iteration);
                push_raw(out, "wire_bytes", wire_bytes);
                push_str(out, "method", method);
            }
            EventKind::CompareOutcome {
                iteration,
                clean,
                diverged_bytes,
                windows,
            } => {
                push_raw(out, "iteration", iteration);
                push_raw(out, "clean", clean);
                push_raw(out, "diverged_bytes", diverged_bytes);
                push_raw(out, "windows", windows);
            }
            EventKind::HeartbeatExpired { dead } => push_raw(out, "dead", dead),
            EventKind::ProbeSent { suspect } => push_raw(out, "suspect", suspect),
            EventKind::ProbeDeath { dead } => push_raw(out, "dead", dead),
            EventKind::NodeDead {
                dead,
                replica,
                rank,
            } => {
                push_raw(out, "dead", dead);
                push_raw(out, "replica", replica);
                push_raw(out, "rank", rank);
            }
            EventKind::FaultInjected { kind, iteration } => {
                push_str(out, "kind", kind);
                push_raw(out, "iteration", iteration);
            }
            EventKind::RecoveryStart {
                scheme,
                class,
                dead,
                spare,
            } => {
                push_str(out, "scheme", scheme);
                push_str(out, "class", class);
                push_raw(out, "dead", dead);
                push_raw(out, "spare", spare);
            }
            EventKind::RecoveryPlan {
                actions,
                inter_replica_messages,
                rework,
            } => {
                push_raw(out, "actions", actions);
                push_raw(out, "inter_replica_messages", inter_replica_messages);
                push_raw(out, "rework", rework);
            }
            EventKind::RecoveryDone { unverified } => push_raw(out, "unverified", unverified),
            EventKind::RecoveryCollapsed { dead } => push_raw(out, "dead", dead),
            EventKind::GlobalRestart { iteration } => push_raw(out, "iteration", iteration),
            EventKind::TransportConnect { attempt } => push_raw(out, "attempt", attempt),
            EventKind::TransportRetry { attempt, delay_us } => {
                push_raw(out, "attempt", attempt);
                push_raw(out, "delay_us", delay_us);
            }
            EventKind::WireBytes {
                frames_sent,
                bytes_sent,
                frames_recv,
                bytes_recv,
                ship_raw_bytes,
                ship_wire_bytes,
                batch_flushes,
                plain_bytes,
                delta_raw_bytes,
                delta_shipped_bytes,
                chunks_dirty,
                codec,
            } => {
                push_raw(out, "frames_sent", frames_sent);
                push_raw(out, "bytes_sent", bytes_sent);
                push_raw(out, "frames_recv", frames_recv);
                push_raw(out, "bytes_recv", bytes_recv);
                push_raw(out, "ship_raw_bytes", ship_raw_bytes);
                push_raw(out, "ship_wire_bytes", ship_wire_bytes);
                push_raw(out, "batch_flushes", batch_flushes);
                push_raw(out, "plain_bytes", plain_bytes);
                push_raw(out, "delta_raw_bytes", delta_raw_bytes);
                push_raw(out, "delta_shipped_bytes", delta_shipped_bytes);
                push_raw(out, "chunks_dirty", chunks_dirty);
                push_str(out, "codec", codec);
            }
            EventKind::BatchFlush {
                frames,
                raw_bytes,
                wire_bytes,
                codec,
            } => {
                push_raw(out, "frames", frames);
                push_raw(out, "raw_bytes", raw_bytes);
                push_raw(out, "wire_bytes", wire_bytes);
                push_str(out, "codec", codec);
            }
            EventKind::StoreAppend { kind, bytes } => {
                push_str(out, "kind", kind);
                push_raw(out, "bytes", bytes);
            }
            EventKind::StoreRecover {
                source,
                replayed,
                skipped,
            } => {
                push_str(out, "source", source);
                push_raw(out, "replayed", replayed);
                push_raw(out, "skipped", skipped);
            }
            EventKind::Debug { text } => push_str(out, "text", text),
        }
    }

    fn parse(name: &str, f: &Fields) -> Option<EventKind> {
        Some(match name {
            "job_start" => EventKind::JobStart {
                scheme: f.str("scheme")?.to_string(),
                detection: f.str("detection")?.to_string(),
                ranks: f.num("ranks")?,
                spares: f.num("spares")?,
            },
            "job_end" => EventKind::JobEnd {
                completed: f.bool("completed")?,
            },
            "phase_enter" => EventKind::PhaseEnter {
                phase: RunPhase::parse(f.str("phase")?)?,
            },
            "round_start" => EventKind::RoundStart {
                round: f.num("round")?,
            },
            "round_verdict" => EventKind::RoundVerdict {
                round: f.num("round")?,
                iteration: f.num("iteration")?,
                clean: f.bool("clean")?,
            },
            "consensus_phase" => EventKind::ConsensusPhase {
                scope: ObsScope::parse(f.str("scope")?)?,
                round: f.num("round")?,
                phase: f.num("phase")?,
            },
            "checkpoint_pack" => EventKind::CheckpointPack {
                bytes: f.num("bytes")?,
                chunks: f.num("chunks")?,
                chunk_size: f.num("chunk_size")?,
            },
            "compare_ship" => EventKind::CompareShip {
                iteration: f.num("iteration")?,
                wire_bytes: f.num("wire_bytes")?,
                method: f.str("method")?.to_string(),
            },
            "compare_outcome" => EventKind::CompareOutcome {
                iteration: f.num("iteration")?,
                clean: f.bool("clean")?,
                diverged_bytes: f.num("diverged_bytes")?,
                windows: f.num("windows")?,
            },
            "heartbeat_expired" => EventKind::HeartbeatExpired {
                dead: f.num("dead")?,
            },
            "probe_sent" => EventKind::ProbeSent {
                suspect: f.num("suspect")?,
            },
            "probe_death" => EventKind::ProbeDeath {
                dead: f.num("dead")?,
            },
            "node_dead" => EventKind::NodeDead {
                dead: f.num("dead")?,
                replica: f.num("replica")?,
                rank: f.num("rank")?,
            },
            "fault_injected" => EventKind::FaultInjected {
                kind: f.str("kind")?.to_string(),
                iteration: f.num("iteration")?,
            },
            "recovery_start" => EventKind::RecoveryStart {
                scheme: f.str("scheme")?.to_string(),
                class: f.str("class")?.to_string(),
                dead: f.num("dead")?,
                spare: f.num("spare")?,
            },
            "recovery_plan" => EventKind::RecoveryPlan {
                actions: f.num("actions")?,
                inter_replica_messages: f.num("inter_replica_messages")?,
                rework: f.bool("rework")?,
            },
            "recovery_done" => EventKind::RecoveryDone {
                unverified: f.bool("unverified")?,
            },
            "recovery_collapsed" => EventKind::RecoveryCollapsed {
                dead: f.num("dead")?,
            },
            "global_restart" => EventKind::GlobalRestart {
                iteration: f.num("iteration")?,
            },
            "transport_connect" => EventKind::TransportConnect {
                attempt: f.num("attempt")?,
            },
            "transport_retry" => EventKind::TransportRetry {
                attempt: f.num("attempt")?,
                delay_us: f.num("delay_us")?,
            },
            "wire_bytes" => EventKind::WireBytes {
                frames_sent: f.num("frames_sent")?,
                bytes_sent: f.num("bytes_sent")?,
                frames_recv: f.num("frames_recv")?,
                bytes_recv: f.num("bytes_recv")?,
                // Batching fields default to zero so logs written before
                // the batching layer still parse.
                ship_raw_bytes: f.num("ship_raw_bytes").unwrap_or(0),
                ship_wire_bytes: f.num("ship_wire_bytes").unwrap_or(0),
                batch_flushes: f.num("batch_flushes").unwrap_or(0),
                plain_bytes: f.num("plain_bytes").unwrap_or(0),
                // Delta fields likewise default for pre-delta logs.
                delta_raw_bytes: f.num("delta_raw_bytes").unwrap_or(0),
                delta_shipped_bytes: f.num("delta_shipped_bytes").unwrap_or(0),
                chunks_dirty: f.num("chunks_dirty").unwrap_or(0),
                codec: f.str("codec").unwrap_or("none").to_string(),
            },
            "batch_flush" => EventKind::BatchFlush {
                frames: f.num("frames")?,
                raw_bytes: f.num("raw_bytes")?,
                wire_bytes: f.num("wire_bytes")?,
                codec: f.str("codec")?.to_string(),
            },
            "store_append" => EventKind::StoreAppend {
                kind: f.str("kind")?.to_string(),
                bytes: f.num("bytes")?,
            },
            "store_recover" => EventKind::StoreRecover {
                source: f.str("source")?.to_string(),
                replayed: f.num("replayed")?,
                skipped: f.num("skipped")?,
            },
            "debug" => EventKind::Debug {
                text: f.str("text")?.to_string(),
            },
            _ => return None,
        })
    }
}

/// One timestamped, sequenced flight-recorder event.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordedEvent {
    /// Global emission order (monotone across all nodes).
    pub seq: u64,
    /// Seconds since job start, from the embedder's clock.
    pub t: f64,
    /// Emitting node id, or [`crate::DRIVER_NODE`] for the driver.
    pub node: u32,
    /// Typed payload.
    pub kind: EventKind,
}

impl RecordedEvent {
    /// Serialize to a single-line JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push('{');
        push_raw(&mut out, "seq", self.seq);
        push_raw(&mut out, "t", self.t);
        push_raw(&mut out, "node", self.node);
        push_str(&mut out, "ev", self.kind.name());
        self.kind.write_fields(&mut out);
        out.pop();
        out.push('}');
        out
    }

    /// Parse one JSONL line back into an event.
    pub fn from_json(line: &str) -> Result<RecordedEvent, String> {
        let f = Fields::parse(line)?;
        let name = f.str("ev").ok_or("missing \"ev\" field")?;
        Ok(RecordedEvent {
            seq: f.num("seq").ok_or("missing \"seq\" field")?,
            t: f.num("t").ok_or("missing \"t\" field")?,
            node: f.num("node").ok_or("missing \"node\" field")?,
            kind: EventKind::parse(name, &f)
                .ok_or_else(|| format!("bad fields for event {name:?}"))?,
        })
    }
}

impl fmt::Display for RecordedEvent {
    /// The human-readable form used by the `ACR_DEBUG` pretty printer.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.node == crate::DRIVER_NODE {
            write!(f, "[{:>10.6}s driver ] ", self.t)?;
        } else {
            write!(f, "[{:>10.6}s node {:>2}] ", self.t, self.node)?;
        }
        match &self.kind {
            EventKind::Debug { text } => write!(f, "{text}"),
            kind => {
                let json = RecordedEvent {
                    seq: self.seq,
                    t: self.t,
                    node: self.node,
                    kind: kind.clone(),
                }
                .to_json();
                // Show `name key=val ...` by reusing the JSON body minus
                // the header fields.
                write!(f, "{} ", kind.name())?;
                let body = json
                    .trim_start_matches('{')
                    .trim_end_matches('}')
                    .split(",\"")
                    .skip(4)
                    .map(|kv| kv.replace("\":", "=").replace('"', ""))
                    .collect::<Vec<_>>()
                    .join(" ");
                write!(f, "{body}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(kind: EventKind) {
        let ev = RecordedEvent {
            seq: 7,
            t: 1.25,
            node: 3,
            kind,
        };
        let line = ev.to_json();
        let back = RecordedEvent::from_json(&line).unwrap();
        assert_eq!(ev, back, "line: {line}");
    }

    #[test]
    fn all_kinds_roundtrip() {
        roundtrip(EventKind::JobStart {
            scheme: "strong".into(),
            detection: "chunked-checksum".into(),
            ranks: 4,
            spares: 2,
        });
        roundtrip(EventKind::JobEnd { completed: true });
        roundtrip(EventKind::PhaseEnter {
            phase: RunPhase::Recovery,
        });
        roundtrip(EventKind::RoundStart { round: 12 });
        roundtrip(EventKind::RoundVerdict {
            round: 12,
            iteration: 480,
            clean: false,
        });
        roundtrip(EventKind::ConsensusPhase {
            scope: ObsScope::Replica(1),
            round: 3,
            phase: 4,
        });
        roundtrip(EventKind::CheckpointPack {
            bytes: 1 << 30,
            chunks: 1024,
            chunk_size: 1 << 20,
        });
        roundtrip(EventKind::CompareShip {
            iteration: 9,
            wire_bytes: 8,
            method: "checksum".into(),
        });
        roundtrip(EventKind::CompareOutcome {
            iteration: 9,
            clean: false,
            diverged_bytes: 4096,
            windows: 2,
        });
        roundtrip(EventKind::HeartbeatExpired { dead: 5 });
        roundtrip(EventKind::ProbeSent { suspect: 5 });
        roundtrip(EventKind::ProbeDeath { dead: 5 });
        roundtrip(EventKind::NodeDead {
            dead: 5,
            replica: 1,
            rank: 2,
        });
        roundtrip(EventKind::FaultInjected {
            kind: "sdc".into(),
            iteration: 42,
        });
        roundtrip(EventKind::RecoveryStart {
            scheme: "weak".into(),
            class: "unverified".into(),
            dead: 5,
            spare: 8,
        });
        roundtrip(EventKind::RecoveryPlan {
            actions: 3,
            inter_replica_messages: 1,
            rework: true,
        });
        roundtrip(EventKind::RecoveryDone { unverified: true });
        roundtrip(EventKind::RecoveryCollapsed { dead: 6 });
        roundtrip(EventKind::GlobalRestart { iteration: 400 });
        roundtrip(EventKind::TransportConnect { attempt: 3 });
        roundtrip(EventKind::TransportRetry {
            attempt: 2,
            delay_us: 4000,
        });
        roundtrip(EventKind::WireBytes {
            frames_sent: 1201,
            bytes_sent: 88210,
            frames_recv: 1178,
            bytes_recv: 87555,
            ship_raw_bytes: 51200,
            ship_wire_bytes: 20480,
            batch_flushes: 97,
            plain_bytes: 91022,
            delta_raw_bytes: 40960,
            delta_shipped_bytes: 8192,
            chunks_dirty: 13,
            codec: "lz".into(),
        });
        roundtrip(EventKind::BatchFlush {
            frames: 7,
            raw_bytes: 4096,
            wire_bytes: 1210,
            codec: "rle".into(),
        });
        roundtrip(EventKind::StoreAppend {
            kind: "commit".into(),
            bytes: 172,
        });
        roundtrip(EventKind::StoreRecover {
            source: "rollback".into(),
            replayed: 14,
            skipped: 2,
        });
        roundtrip(EventKind::Debug {
            text: "free-form \"quoted\" text\nline 2".into(),
        });
    }

    #[test]
    fn display_is_prefixed_with_time_and_node() {
        let ev = RecordedEvent {
            seq: 0,
            t: 0.5,
            node: crate::DRIVER_NODE,
            kind: EventKind::RoundStart { round: 1 },
        };
        let s = ev.to_string();
        assert!(s.contains("driver"), "{s}");
        assert!(s.contains("round_start"), "{s}");
        assert!(s.contains("round=1"), "{s}");
    }
}
