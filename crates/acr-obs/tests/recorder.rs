//! Recorder behavior: ring wraparound, concurrent emit, deterministic
//! serialization, and the metrics registry.

use acr_obs::{sinks, EventKind, ObsConfig, Recorder, DRIVER_NODE};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[test]
fn ring_wraparound_keeps_newest_and_counts_drops() {
    let rec = Recorder::new(
        ObsConfig {
            enabled: true,
            ring_capacity: 4,
            ..ObsConfig::default()
        },
        1,
        Arc::new(|| 0.0),
    );
    for round in 0..10 {
        rec.emit(0, EventKind::RoundStart { round });
    }
    assert_eq!(rec.dropped(), 6);
    let events = rec.drain();
    assert_eq!(events.len(), 4);
    let rounds: Vec<u64> = events
        .iter()
        .map(|ev| match ev.kind {
            EventKind::RoundStart { round } => round,
            _ => unreachable!(),
        })
        .collect();
    assert_eq!(rounds, vec![6, 7, 8, 9]);
    // Drain empties the rings but keeps the drop count.
    assert!(rec.drain().is_empty());
    assert_eq!(rec.dropped(), 6);
}

#[test]
fn concurrent_emit_from_worker_threads() {
    const THREADS: u32 = 8;
    const PER_THREAD: u64 = 200;
    let rec = Recorder::new(
        ObsConfig {
            enabled: true,
            ring_capacity: 1024,
            ..ObsConfig::default()
        },
        THREADS,
        Arc::new(|| 0.0),
    );
    std::thread::scope(|scope| {
        for node in 0..THREADS {
            let rec = Arc::clone(&rec);
            scope.spawn(move || {
                for round in 0..PER_THREAD {
                    rec.emit(node, EventKind::RoundStart { round });
                    rec.inc_counter("acr_rounds_total", 1);
                }
            });
        }
    });
    let events = rec.drain();
    assert_eq!(events.len(), (THREADS as u64 * PER_THREAD) as usize);
    // Sequence numbers are unique and drain() returns them sorted.
    for pair in events.windows(2) {
        assert!(pair[0].seq < pair[1].seq);
    }
    // Per-node event order matches per-node emission order.
    for node in 0..THREADS {
        let rounds: Vec<u64> = events
            .iter()
            .filter(|ev| ev.node == node)
            .map(|ev| match ev.kind {
                EventKind::RoundStart { round } => round,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(rounds, (0..PER_THREAD).collect::<Vec<_>>());
    }
    assert_eq!(
        rec.counter("acr_rounds_total").get(),
        THREADS as u64 * PER_THREAD
    );
    assert_eq!(rec.dropped(), 0);
}

#[test]
fn disabled_recorder_records_nothing_and_skips_payloads() {
    let rec = Recorder::disabled();
    assert!(!rec.is_enabled());
    rec.emit(DRIVER_NODE, EventKind::JobEnd { completed: true });
    rec.emit_with(DRIVER_NODE, || {
        panic!("payload closure must not run when disabled")
    });
    rec.inc_counter("acr_never", 1);
    rec.observe("acr_never_seconds", 1.0);
    assert!(rec.drain().is_empty());
    assert_eq!(rec.expose(), "");
}

#[test]
fn identical_emission_sequences_serialize_byte_identically() {
    // The same scripted emission against two recorders sharing a virtual
    // time source must produce byte-identical JSONL — the property the
    // end-to-end virtual-mode determinism test relies on.
    let run = || {
        let tick = Arc::new(AtomicU64::new(0));
        let t = Arc::clone(&tick);
        let rec = Recorder::new(
            ObsConfig::default(),
            2,
            Arc::new(move || t.load(Ordering::Relaxed) as f64 * 0.125),
        );
        for round in 0..50 {
            tick.fetch_add(1, Ordering::Relaxed);
            rec.emit(DRIVER_NODE, EventKind::RoundStart { round });
            rec.emit_with(0, || EventKind::CheckpointPack {
                bytes: 1024 * round,
                chunks: 4,
                chunk_size: 256,
            });
            rec.emit(
                1,
                EventKind::CompareShip {
                    iteration: round,
                    wire_bytes: 8,
                    method: "checksum".into(),
                },
            );
        }
        sinks::to_jsonl(&rec.drain())
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
    assert!(!a.is_empty());
    // And the log round-trips through the parser.
    let parsed = sinks::read_jsonl(&a).unwrap();
    assert_eq!(sinks::to_jsonl(&parsed), a);
}

#[test]
fn expose_renders_counters_and_histograms() {
    let rec = Recorder::new(ObsConfig::default(), 1, Arc::new(|| 0.0));
    rec.inc_counter("acr_pack_total", 2);
    rec.observe("acr_pack_seconds", 0.002);
    let text = rec.expose();
    assert!(text.contains("# TYPE acr_pack_total counter"), "{text}");
    assert!(text.contains("acr_pack_total 2"), "{text}");
    assert!(text.contains("# TYPE acr_pack_seconds histogram"), "{text}");
    assert!(text.contains("acr_pack_seconds_count 1"), "{text}");
}

#[test]
fn unknown_node_ids_land_in_the_driver_ring_without_panicking() {
    let rec = Recorder::new(ObsConfig::default(), 2, Arc::new(|| 0.0));
    rec.emit(DRIVER_NODE, EventKind::JobEnd { completed: false });
    rec.emit(999, EventKind::RoundStart { round: 0 });
    assert_eq!(rec.drain().len(), 2);
}
