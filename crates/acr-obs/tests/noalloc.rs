//! Disabled-mode fast-path guarantee: no allocation, no formatting.
//!
//! This test binary installs a counting global allocator and drives the
//! recorder's emit surface with recording switched off; the allocation
//! counter must not move. This is the benchmark-style assertion backing
//! the "single relaxed load when disabled" claim.

use acr_obs::{debug_trace, EventKind, Recorder, DRIVER_NODE};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn disabled_fast_path_does_not_allocate() {
    // Construction allocates (rings, registry); the fast path must not.
    let rec = Recorder::disabled();
    // Force the ACR_DEBUG OnceLock to initialize outside the measured
    // window (reading the env var may allocate on first touch).
    let _ = rec.debug_enabled();

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for round in 0..10_000u64 {
        rec.emit(0, EventKind::RoundStart { round });
        rec.emit_with(DRIVER_NODE, || EventKind::CheckpointPack {
            bytes: round,
            chunks: 16,
            chunk_size: 4096,
        });
        rec.inc_counter("acr_rounds_total", 1);
        rec.observe("acr_pack_seconds", 0.001);
        // The debug macro must not format its arguments either (this test
        // does not set ACR_DEBUG).
        debug_trace!(rec, 0, "round {} of {}", round, 10_000);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "disabled emit path allocated {} times",
        after - before
    );
}
