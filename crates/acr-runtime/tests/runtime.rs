//! End-to-end tests of the replicated runtime: failure-free runs, SDC
//! detection + rollback, fail-stop recovery under all three schemes, and
//! the §2.2 message-consistency guarantee under a communicating workload.

use std::sync::Mutex;
use std::time::Duration;

/// Serialize jobs: each spawns ~10 compute-heavy OS threads, and running
/// many at once can deschedule a node long enough to trip the heartbeat
/// failure detector (a false positive the real machine would not see).
static JOB_SERIAL: Mutex<()> = Mutex::new(());

use acr_pup::{Pup, PupResult, Puper};
use acr_runtime::{AppMsg, DetectionMethod, Fault, Job, JobConfig, Scheme, Task, TaskCtx, TaskId};

/// A token-ring workload: rank `r`'s iteration `i` computes on its local
/// state, then sends a token to rank `r+1`; iteration `i ≥ 1` cannot start
/// until the token of iteration `i−1` arrived from rank `r−1`.
///
/// This is exactly the §2.2 hazard workload: tasks progress at different
/// rates and there is always a token in flight, so a naive uncoordinated
/// snapshot would lose one and hang the restart.
struct RingTask {
    rank: usize,
    iter: u64,
    tokens: u64,
    acc: Vec<f64>,
    checksum: f64,
    total_iters: u64,
    /// Busy-work knob so different ranks run at different speeds.
    spin: u32,
}

impl RingTask {
    fn new(rank: usize, total_iters: u64) -> Self {
        Self {
            rank,
            iter: 0,
            tokens: 0,
            acc: (0..2048).map(|i| (rank * 1000 + i) as f64).collect(),
            checksum: 0.0,
            total_iters,
            spin: 6 + (rank as u32 % 3),
        }
    }
}

impl Task for RingTask {
    fn try_step(&mut self, ctx: &mut TaskCtx<'_>) -> bool {
        if self.done() {
            return false;
        }
        if self.iter > 0 && self.tokens == 0 {
            return false; // waiting for the ring token
        }
        if self.iter > 0 {
            self.tokens -= 1;
        }
        // Deterministic computation that makes every iteration's state
        // distinguishable (so lost/duplicated work is detectable).
        for _ in 0..self.spin {
            for (i, x) in self.acc.iter_mut().enumerate() {
                // Perturbation-preserving dynamics: an injected bit flip
                // persists verbatim instead of being contracted away, so
                // comparison-based detection has something to find.
                *x += ((self.iter as f64 + i as f64) * 1e-3).sin();
            }
        }
        self.checksum += self.acc.iter().sum::<f64>() * 1e-6;
        let next = TaskId {
            rank: (self.rank + 1) % ctx.ranks(),
            task: 0,
        };
        ctx.send(next, self.iter, vec![]);
        self.iter += 1;
        true
    }

    fn on_message(&mut self, _msg: AppMsg, _ctx: &mut TaskCtx<'_>) {
        self.tokens += 1;
    }

    fn progress(&self) -> u64 {
        self.iter
    }

    fn done(&self) -> bool {
        self.iter >= self.total_iters
    }

    fn pup(&mut self, p: &mut dyn Puper) -> PupResult {
        p.pup_usize(&mut self.rank)?;
        p.pup_u64(&mut self.iter)?;
        p.pup_u64(&mut self.tokens)?;
        self.acc.pup(p)?;
        p.pup_f64(&mut self.checksum)?;
        p.pup_u64(&mut self.total_iters)?;
        p.pup_u32(&mut self.spin)
    }
}

fn ring_cfg(scheme: Scheme, detection: DetectionMethod) -> JobConfig {
    JobConfig::builder()
        .ranks(4)
        .tasks_per_rank(1)
        .spares(2)
        .scheme(scheme)
        .detection(detection)
        .checkpoint_interval(Duration::from_millis(100))
        .heartbeat_period(Duration::from_millis(10))
        .heartbeat_timeout(Duration::from_millis(300))
        .max_duration(Duration::from_secs(40))
        .build()
        .expect("valid ring config")
}

const ITERS: u64 = 600;

fn ring_factory(rank: usize, _task: usize) -> Box<dyn Task> {
    Box::new(RingTask::new(rank, ITERS))
}

#[test]
fn failure_free_run_completes_with_identical_replicas() {
    let _serial = JOB_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let report = Job::new(ring_cfg(Scheme::Strong, DetectionMethod::FullCompare)).run(ring_factory);
    assert!(report.completed, "error: {:?}", report.error);
    assert!(report.checkpoints_verified >= 1, "{report:?}");
    assert_eq!(report.sdc_rounds_detected, 0);
    assert_eq!(report.hard_errors_recovered, 0);
    assert!(report.replicas_agree(), "replicas diverged without faults");
    // Both replicas' every rank finished all iterations.
    assert_eq!(report.final_states.len(), 8);
}

#[test]
fn checksum_detection_mode_also_completes() {
    let _serial = JOB_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let report = Job::new(ring_cfg(Scheme::Strong, DetectionMethod::Checksum)).run(ring_factory);
    assert!(report.completed, "error: {:?}", report.error);
    assert!(report.checkpoints_verified >= 1);
    assert!(report.replicas_agree());
}

#[test]
fn injected_sdc_is_detected_and_rolled_back() {
    let _serial = JOB_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let faults = vec![(
        Duration::from_millis(200),
        Fault::Sdc {
            replica: 1,
            rank: 2,
            seed: 7,
        },
    )];
    let report = Job::new(ring_cfg(Scheme::Strong, DetectionMethod::FullCompare))
        .with_timed_faults(faults)
        .run(ring_factory);
    assert!(report.completed, "error: {:?}", report.error);
    assert!(report.sdc_rounds_detected >= 1, "SDC escaped: {report:?}");
    assert!(report.rollbacks >= 1);
    // The rollback purged the corruption: final states agree.
    assert!(report.replicas_agree(), "corruption survived to the end");
}

#[test]
fn injected_sdc_is_detected_by_checksum_exchange() {
    let _serial = JOB_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let faults = vec![(
        Duration::from_millis(200),
        Fault::Sdc {
            replica: 0,
            rank: 1,
            seed: 99,
        },
    )];
    let report = Job::new(ring_cfg(Scheme::Strong, DetectionMethod::Checksum))
        .with_timed_faults(faults)
        .run(ring_factory);
    assert!(report.completed, "error: {:?}", report.error);
    assert!(
        report.sdc_rounds_detected >= 1,
        "checksum missed the flip: {report:?}"
    );
    assert!(report.replicas_agree());
}

/// The chunked pipeline's whole point: a single injected bit flip must be
/// pinned to a few chunk-sized byte ranges of the payload, not just flagged
/// as "something differs somewhere".
#[test]
fn full_compare_localizes_sdc_to_diverged_chunks() {
    let _serial = JOB_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let mut cfg = ring_cfg(Scheme::Strong, DetectionMethod::FullCompare);
    // Small chunks so the ~16 KiB ring payload spans many of them.
    cfg.chunk_size = 256;
    let faults = vec![(
        Duration::from_millis(200),
        Fault::Sdc {
            replica: 1,
            rank: 2,
            seed: 7,
        },
    )];
    let report = Job::new(cfg).with_timed_faults(faults).run(ring_factory);
    assert!(report.completed, "error: {:?}", report.error);
    assert!(report.sdc_rounds_detected >= 1, "SDC escaped: {report:?}");
    assert!(!report.sdc_detections.is_empty(), "no localization records");
    for det in &report.sdc_detections {
        assert!(!det.diverged.is_empty());
        // One flipped f64 perturbs that element and the running checksum:
        // a handful of chunks at most, far from the whole payload.
        assert!(
            det.diverged_bytes() <= 4 * 256,
            "localization too coarse: {det:?}"
        );
        assert!(
            det.diverged_bytes() < det.payload_len / 4,
            "not localized: {det:?}"
        );
        assert!(
            det.fields_flagged >= 1,
            "windowed re-check found nothing: {det:?}"
        );
        for r in &det.diverged {
            assert!(r.start < r.end && r.end <= det.payload_len);
        }
    }
    assert!(report.replicas_agree(), "corruption survived to the end");
}

/// ChunkedChecksum ships only digests, yet still localizes: the per-chunk
/// table on the wire names the diverged ranges without the payload.
#[test]
fn chunked_checksum_detects_and_localizes_sdc() {
    let _serial = JOB_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let mut cfg = ring_cfg(Scheme::Strong, DetectionMethod::ChunkedChecksum);
    cfg.chunk_size = 256;
    let faults = vec![(
        Duration::from_millis(200),
        Fault::Sdc {
            replica: 0,
            rank: 1,
            seed: 99,
        },
    )];
    let report = Job::new(cfg).with_timed_faults(faults).run(ring_factory);
    assert!(report.completed, "error: {:?}", report.error);
    assert!(
        report.sdc_rounds_detected >= 1,
        "table missed the flip: {report:?}"
    );
    assert!(report.rollbacks >= 1);
    assert!(!report.sdc_detections.is_empty());
    for det in &report.sdc_detections {
        assert!(
            det.diverged_bytes() < det.payload_len / 4,
            "not localized: {det:?}"
        );
    }
    assert!(report.replicas_agree());
}

/// ChunkedChecksum must also pass the failure-free path (clean comparisons
/// through digest equality, checkpoints promoted normally).
#[test]
fn chunked_checksum_mode_completes_without_faults() {
    let _serial = JOB_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let report =
        Job::new(ring_cfg(Scheme::Strong, DetectionMethod::ChunkedChecksum)).run(ring_factory);
    assert!(report.completed, "error: {:?}", report.error);
    assert!(report.checkpoints_verified >= 1);
    assert_eq!(report.sdc_rounds_detected, 0);
    assert!(report.replicas_agree());
}

#[test]
fn crash_recovers_via_spare_under_strong_scheme() {
    let _serial = JOB_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let faults = vec![(
        Duration::from_millis(300),
        Fault::Crash {
            replica: 1,
            rank: 1,
        },
    )];
    let report = Job::new(ring_cfg(Scheme::Strong, DetectionMethod::FullCompare))
        .with_timed_faults(faults)
        .run(ring_factory);
    assert!(report.completed, "error: {:?}", report.error);
    assert_eq!(report.hard_errors_recovered, 1);
    assert!(report.replicas_agree(), "restarted rank diverged");
    assert_eq!(report.final_states.len(), 8, "all ranks accounted for");
}

#[test]
fn crash_recovers_under_medium_scheme() {
    let _serial = JOB_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let faults = vec![(
        Duration::from_millis(300),
        Fault::Crash {
            replica: 0,
            rank: 3,
        },
    )];
    let report = Job::new(ring_cfg(Scheme::Medium, DetectionMethod::FullCompare))
        .with_timed_faults(faults)
        .run(ring_factory);
    assert!(report.completed, "error: {:?}", report.error);
    assert_eq!(report.hard_errors_recovered, 1);
    assert!(report.unverified_recoveries >= 1, "{report:?}");
    assert!(report.replicas_agree());
}

#[test]
fn crash_recovers_under_weak_scheme() {
    let _serial = JOB_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let faults = vec![(
        Duration::from_millis(300),
        Fault::Crash {
            replica: 1,
            rank: 0,
        },
    )];
    let report = Job::new(ring_cfg(Scheme::Weak, DetectionMethod::FullCompare))
        .with_timed_faults(faults)
        .run(ring_factory);
    assert!(report.completed, "error: {:?}", report.error);
    assert_eq!(report.hard_errors_recovered, 1);
    assert!(report.unverified_recoveries >= 1, "{report:?}");
    assert!(report.replicas_agree());
}

#[test]
fn crash_before_first_checkpoint_restarts_from_beginning() {
    let _serial = JOB_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let mut cfg = ring_cfg(Scheme::Strong, DetectionMethod::FullCompare);
    cfg.checkpoint_interval = Duration::from_secs(5); // no checkpoint before the crash
    let faults = vec![(
        Duration::from_millis(100),
        Fault::Crash {
            replica: 0,
            rank: 0,
        },
    )];
    let report = Job::new(cfg).with_timed_faults(faults).run(ring_factory);
    assert!(report.completed, "error: {:?}", report.error);
    assert_eq!(report.restarts_from_beginning, 1);
    assert!(report.replicas_agree());
}

#[test]
fn sdc_then_crash_both_handled_in_one_run() {
    let _serial = JOB_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let faults = vec![
        (
            Duration::from_millis(200),
            Fault::Sdc {
                replica: 0,
                rank: 2,
                seed: 5,
            },
        ),
        (
            Duration::from_millis(600),
            Fault::Crash {
                replica: 1,
                rank: 2,
            },
        ),
    ];
    let report = Job::new(ring_cfg(Scheme::Strong, DetectionMethod::FullCompare))
        .with_timed_faults(faults)
        .run(ring_factory);
    assert!(report.completed, "error: {:?}", report.error);
    assert!(report.sdc_rounds_detected >= 1, "{report:?}");
    assert_eq!(report.hard_errors_recovered, 1);
    assert!(report.replicas_agree());
}

#[test]
fn two_crashes_consume_two_spares() {
    let _serial = JOB_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let mut cfg = ring_cfg(Scheme::Strong, DetectionMethod::FullCompare);
    cfg.max_duration = Duration::from_secs(60);
    let faults = vec![
        (
            Duration::from_millis(300),
            Fault::Crash {
                replica: 0,
                rank: 1,
            },
        ),
        (
            Duration::from_millis(900),
            Fault::Crash {
                replica: 1,
                rank: 3,
            },
        ),
    ];
    let report = Job::new(cfg).with_timed_faults(faults).run(ring_factory);
    assert!(report.completed, "error: {:?}", report.error);
    assert_eq!(report.hard_errors_recovered, 2);
    assert!(report.replicas_agree());
}

#[test]
fn out_of_spares_fails_gracefully() {
    let _serial = JOB_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let mut cfg = ring_cfg(Scheme::Strong, DetectionMethod::FullCompare);
    cfg.spares = 0;
    cfg.max_duration = Duration::from_secs(8);
    let faults = vec![(
        Duration::from_millis(200),
        Fault::Crash {
            replica: 0,
            rank: 0,
        },
    )];
    let report = Job::new(cfg).with_timed_faults(faults).run(ring_factory);
    assert!(!report.completed);
    assert!(report.error.is_some());
}

/// Multi-task nodes: the consensus must drain *every* task to the target.
#[test]
fn multiple_tasks_per_rank() {
    let _serial = JOB_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let mut cfg = ring_cfg(Scheme::Strong, DetectionMethod::FullCompare);
    cfg.tasks_per_rank = 2;
    cfg.ranks = 3;
    // Independent counters (no ring) with different speeds per task.
    struct Counter {
        iter: u64,
        stride: u64,
        state: Vec<f64>,
    }
    impl Task for Counter {
        fn try_step(&mut self, _ctx: &mut TaskCtx<'_>) -> bool {
            if self.done() {
                return false;
            }
            for (i, s) in self.state.iter_mut().enumerate() {
                // Perturbation-preserving float dynamics (injected flips
                // must survive to the next comparison).
                *s = *s * 1.000_000_1 + (self.iter as f64 + i as f64) * 1e-6;
            }
            self.iter += 1;
            true
        }
        fn on_message(&mut self, _m: AppMsg, _c: &mut TaskCtx<'_>) {}
        fn progress(&self) -> u64 {
            self.iter
        }
        fn done(&self) -> bool {
            self.iter >= 300
        }
        fn pup(&mut self, p: &mut dyn Puper) -> PupResult {
            p.pup_u64(&mut self.iter)?;
            p.pup_u64(&mut self.stride)?;
            self.state.pup(p)
        }
    }
    let report = Job::new(cfg)
        .with_timed_faults(vec![(
            Duration::from_millis(250),
            Fault::Sdc {
                replica: 1,
                rank: 1,
                seed: 3,
            },
        )])
        .run(|rank, task| {
            Box::new(Counter {
                iter: 0,
                stride: 1 + (rank + task) as u64,
                state: vec![rank as f64 * 17.0 + task as f64; 64],
            })
        });
    assert!(report.completed, "error: {:?}", report.error);
    assert!(report.replicas_agree());
    assert!(report.sdc_rounds_detected >= 1);
    assert_eq!(report.final_states.len(), 6);
    assert!(report.final_states.values().all(|t| t.len() == 2));
}
