//! Virtual-time runtime tests: determinism of scripted runs, scripted
//! trigger kinds, and the heartbeat failure detector's behaviour around its
//! timeout boundary — the regressions only a simulated clock can pin down.

use std::time::Duration;

use acr_pup::{Pup, PupResult, Puper};
use acr_runtime::{
    AppMsg, DetectionMethod, ExecMode, FaultAction, FaultScript, Job, JobConfig, JobReport, Scheme,
    Task, TaskCtx, TaskId, Trigger,
};

/// Small communicating ring (one token in flight per rank) with
/// perturbation-preserving float dynamics.
struct MiniRing {
    rank: usize,
    iter: u64,
    tokens: u64,
    acc: Vec<f64>,
    total_iters: u64,
}

impl MiniRing {
    fn new(rank: usize, total_iters: u64) -> Self {
        Self {
            rank,
            iter: 0,
            tokens: 0,
            acc: (0..32).map(|i| (rank * 100 + i) as f64).collect(),
            total_iters,
        }
    }
}

impl Task for MiniRing {
    fn try_step(&mut self, ctx: &mut TaskCtx<'_>) -> bool {
        if self.done() {
            return false;
        }
        if self.iter > 0 && self.tokens == 0 {
            return false;
        }
        if self.iter > 0 {
            self.tokens -= 1;
        }
        for (i, x) in self.acc.iter_mut().enumerate() {
            *x += ((self.iter as f64 + i as f64) * 1e-3).sin();
        }
        let next = TaskId {
            rank: (self.rank + 1) % ctx.ranks(),
            task: 0,
        };
        ctx.send(next, self.iter, vec![]);
        self.iter += 1;
        true
    }

    fn on_message(&mut self, _msg: AppMsg, _ctx: &mut TaskCtx<'_>) {
        self.tokens += 1;
    }

    fn progress(&self) -> u64 {
        self.iter
    }

    fn done(&self) -> bool {
        self.iter >= self.total_iters
    }

    fn pup(&mut self, p: &mut dyn Puper) -> PupResult {
        p.pup_usize(&mut self.rank)?;
        p.pup_u64(&mut self.iter)?;
        p.pup_u64(&mut self.tokens)?;
        self.acc.pup(p)?;
        p.pup_u64(&mut self.total_iters)
    }
}

const ITERS: u64 = 300;

fn cfg(scheme: Scheme) -> JobConfig {
    JobConfig::builder()
        .ranks(2)
        .tasks_per_rank(1)
        .spares(2)
        .scheme(scheme)
        .detection(DetectionMethod::FullCompare)
        .checkpoint_interval(Duration::from_millis(60))
        .heartbeat_period(Duration::from_millis(5))
        .heartbeat_timeout(Duration::from_millis(40))
        .max_duration(Duration::from_secs(30))
        .build()
        .expect("valid virtual-time config")
}

fn run(scheme: Scheme, script: &FaultScript) -> JobReport {
    Job::new(cfg(scheme))
        .with_faults(script.clone())
        .mode(ExecMode::virtual_default())
        .run(|rank, _| Box::new(MiniRing::new(rank, ITERS)) as Box<dyn Task>)
}

fn trace_has(report: &JobReport, needle: &str) -> bool {
    report.trace.iter().any(|l| l.contains(needle))
}

#[test]
fn fault_free_virtual_run_completes_deterministically() {
    let a = run(Scheme::Strong, &FaultScript::new());
    let b = run(Scheme::Strong, &FaultScript::new());
    assert!(a.completed, "error: {:?}\n{}", a.error, a.trace.join("\n"));
    assert!(a.checkpoints_verified >= 1);
    assert!(a.replicas_agree());
    assert_eq!(a.trace, b.trace, "virtual runs must be byte-identical");
    assert_eq!(a.final_states, b.final_states);
    assert_eq!(a.duration, b.duration);
}

/// The acceptance determinism check: a non-trivial generated scenario,
/// executed twice, produces byte-identical event traces and final states.
#[test]
fn scripted_virtual_run_replays_byte_identically() {
    let space = acr_runtime::ScenarioSpace {
        ranks: 2,
        spares: 2,
        horizon: 0.3,
        max_iteration: ITERS,
        heartbeat_timeout: 0.040,
        max_faults: 3,
        sdc_bits_max: 3,
        allow_spare_kill: true,
        allow_heartbeat_delay: true,
        allow_driver_kill: false,
    };
    for seed in [3u64, 11, 19] {
        let script = FaultScript::generate(seed, &space);
        let a = run(Scheme::Medium, &script);
        let b = run(Scheme::Medium, &script);
        assert_eq!(
            a.trace,
            b.trace,
            "seed {seed}: replay diverged\nscript:\n{}",
            script.to_repro()
        );
        assert_eq!(a.final_states, b.final_states, "seed {seed}");
    }
}

/// Regression (heartbeat false positive): a buddy whose heartbeats stall
/// for *less* than `heartbeat_timeout` is slow-but-alive and must never be
/// declared dead. Only virtual time can place the stall exactly.
#[test]
fn heartbeat_stall_inside_timeout_is_not_a_death() {
    let mut script = FaultScript::new();
    // Timeout is 40 ms; stall 30 ms, so worst-case silence is
    // 30 ms + one 5 ms period — strictly inside the timeout.
    script.push(
        Trigger::At(0.050),
        FaultAction::DelayHeartbeats {
            replica: 1,
            rank: 1,
            secs: 0.030,
        },
    );
    let report = run(Scheme::Strong, &script);
    assert!(
        report.completed,
        "error: {:?}\n{}",
        report.error,
        report.trace.join("\n")
    );
    assert_eq!(
        report.hard_errors_recovered,
        0,
        "false positive: a live node was declared dead\n{}",
        report.trace.join("\n")
    );
    assert!(!trace_has(&report, "declared dead"));
    assert!(report.replicas_agree());
}

/// The mirror case: a stall *longer* than the timeout is (correctly, per
/// §6.1's no-response definition) declared dead even though the node is
/// still running. The runtime must survive the resulting zombie: promote a
/// spare, keep the zombie's stale messages out (rollback epochs), and ignore
/// its final state at shutdown.
#[test]
fn heartbeat_stall_past_timeout_promotes_spare_despite_zombie() {
    let mut script = FaultScript::new();
    script.push(
        Trigger::At(0.050),
        FaultAction::DelayHeartbeats {
            replica: 0,
            rank: 0,
            secs: 0.200,
        },
    );
    let report = run(Scheme::Strong, &script);
    assert!(
        report.completed,
        "error: {:?}\n{}",
        report.error,
        report.trace.join("\n")
    );
    assert_eq!(
        report.hard_errors_recovered,
        1,
        "{}",
        report.trace.join("\n")
    );
    assert!(trace_has(&report, "declared dead"));
    assert!(report.replicas_agree(), "zombie state leaked into the run");
    // Every (replica, rank) must be accounted for by live nodes.
    assert_eq!(report.final_states.len(), 4);
}

/// Iteration-anchored crash: the script names app progress, not a clock
/// time, and recovery still runs (strong scheme re-executes from the last
/// verified checkpoint).
#[test]
fn crash_at_iteration_trigger_recovers() {
    let mut script = FaultScript::new();
    script.push(
        Trigger::AtIteration(ITERS / 3),
        FaultAction::Crash {
            replica: 1,
            rank: 0,
        },
    );
    let report = run(Scheme::Strong, &script);
    assert!(
        report.completed,
        "error: {:?}\n{}",
        report.error,
        report.trace.join("\n")
    );
    assert_eq!(report.crashes_injected_at.len(), 1);
    assert_eq!(report.hard_errors_recovered, 1);
    assert!(report.replicas_agree());
}

/// Checkpoint-anchored SDC: the flip lands right after the second verified
/// round, and the next comparison must catch it (strong scheme, so no
/// escape window exists).
#[test]
fn sdc_after_checkpoints_trigger_is_detected_and_purged() {
    let mut script = FaultScript::new();
    script.push(
        Trigger::AfterCheckpoints(2),
        FaultAction::Sdc {
            replica: 0,
            rank: 1,
            seed: 42,
            bits: 2,
        },
    );
    let report = run(Scheme::Strong, &script);
    assert!(
        report.completed,
        "error: {:?}\n{}",
        report.error,
        report.trace.join("\n")
    );
    assert_eq!(report.sdc_injected_at.len(), 1);
    assert!(
        report.sdc_rounds_detected >= 1,
        "SDC escaped the comparison\n{}",
        report.trace.join("\n")
    );
    assert!(report.rollbacks >= 1);
    assert!(report.replicas_agree());
}

/// A crash arriving before the first verified checkpoint leaves nothing to
/// roll back to: the job must restart from the beginning and still finish
/// correctly — under virtual time this is exact, not racy.
#[test]
fn early_crash_restarts_from_beginning_virtually() {
    let mut script = FaultScript::new();
    script.push(
        Trigger::At(0.010),
        FaultAction::Crash {
            replica: 0,
            rank: 1,
        },
    );
    let report = run(Scheme::Strong, &script);
    assert!(
        report.completed,
        "error: {:?}\n{}",
        report.error,
        report.trace.join("\n")
    );
    assert_eq!(report.restarts_from_beginning, 1);
    assert!(report.replicas_agree());
}
