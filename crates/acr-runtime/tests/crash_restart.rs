//! Driver crash-restart battery: hard-kill the driver at scripted points,
//! resume from the durable store, and require the resumed run to finish
//! with a bit-identical outcome to the uninterrupted run. The C-01..C-04
//! cases pin the store contract — primary recovery, torn-tail healing,
//! corrupt-primary rollback, and the missing-both fail-closed guardrail —
//! end to end through `Job::resume` rather than at the persist layer.

use std::path::{Path, PathBuf};
use std::time::Duration;

use acr_pup::{Pup, PupResult, Puper};
use acr_runtime::campaign::{run_campaign, CampaignConfig, CaseOutcome};
use acr_runtime::{
    AppMsg, DetectionMethod, ExecMode, FaultAction, FaultScript, Job, JobConfig, JobReport, Scheme,
    Task, TaskCtx, TaskId, Trigger,
};
use bytes::Bytes;

/// Small communicating ring (one token in flight per rank) with
/// perturbation-preserving float dynamics — the same workload the
/// virtual-time tests use, so the final state is a pure function of the
/// iteration count.
struct MiniRing {
    rank: usize,
    iter: u64,
    tokens: u64,
    acc: Vec<f64>,
    total_iters: u64,
}

impl MiniRing {
    fn new(rank: usize, total_iters: u64) -> Self {
        Self {
            rank,
            iter: 0,
            tokens: 0,
            acc: (0..32).map(|i| (rank * 100 + i) as f64).collect(),
            total_iters,
        }
    }
}

impl Task for MiniRing {
    fn try_step(&mut self, ctx: &mut TaskCtx<'_>) -> bool {
        if self.done() {
            return false;
        }
        if self.iter > 0 && self.tokens == 0 {
            return false;
        }
        if self.iter > 0 {
            self.tokens -= 1;
        }
        for (i, x) in self.acc.iter_mut().enumerate() {
            *x += ((self.iter as f64 + i as f64) * 1e-3).sin();
        }
        let next = TaskId {
            rank: (self.rank + 1) % ctx.ranks(),
            task: 0,
        };
        ctx.send(next, self.iter, vec![]);
        self.iter += 1;
        true
    }

    fn on_message(&mut self, _msg: AppMsg, _ctx: &mut TaskCtx<'_>) {
        self.tokens += 1;
    }

    fn progress(&self) -> u64 {
        self.iter
    }

    fn done(&self) -> bool {
        self.iter >= self.total_iters
    }

    fn pup(&mut self, p: &mut dyn Puper) -> PupResult {
        p.pup_usize(&mut self.rank)?;
        p.pup_u64(&mut self.iter)?;
        p.pup_u64(&mut self.tokens)?;
        self.acc.pup(p)?;
        p.pup_u64(&mut self.total_iters)
    }
}

const ITERS: u64 = 300;

fn cfg(scheme: Scheme) -> JobConfig {
    JobConfig::builder()
        .ranks(2)
        .tasks_per_rank(1)
        .spares(2)
        .scheme(scheme)
        .detection(DetectionMethod::FullCompare)
        .checkpoint_interval(Duration::from_millis(60))
        .heartbeat_period(Duration::from_millis(5))
        .heartbeat_timeout(Duration::from_millis(40))
        .max_duration(Duration::from_secs(30))
        .build()
        .expect("valid virtual-time config")
}

fn factory(rank: usize, _task: usize) -> Box<dyn Task> {
    Box::new(MiniRing::new(rank, ITERS)) as Box<dyn Task>
}

/// Per-test store directory. `ACR_CRASH_RESTART_DIR` overrides the temp
/// root so CI can upload the stores and `recovery_report.json` files left
/// behind by a failing run.
fn tmp(name: &str) -> PathBuf {
    let root =
        std::env::var_os("ACR_CRASH_RESTART_DIR").map_or_else(std::env::temp_dir, PathBuf::from);
    let dir = root.join(format!("acr_crash_restart_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Run a persisted virtual-mode job with `script` into `dir`.
fn run_persisted(scheme: Scheme, script: &FaultScript, dir: &Path) -> JobReport {
    let mut c = cfg(scheme);
    c.persist_dir = Some(dir.to_path_buf());
    Job::new(c)
        .with_faults(script.clone())
        .mode(ExecMode::virtual_default())
        .run(factory)
}

fn kill_script(at: f64) -> FaultScript {
    let mut s = FaultScript::new();
    s.push(Trigger::At(at), FaultAction::KillDriver);
    s
}

/// The comparable outcome of a run: completion, agreement, every
/// protocol counter, and the bit-exact final task states.
#[allow(clippy::type_complexity)]
fn outcome_tuple(
    r: &JobReport,
) -> (
    bool,
    bool,
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
    std::collections::BTreeMap<(u8, usize), Vec<Bytes>>,
) {
    (
        r.completed,
        r.replicas_agree(),
        r.checkpoints_verified,
        r.sdc_rounds_detected,
        r.rollbacks,
        r.hard_errors_recovered,
        r.unverified_recoveries,
        r.restarts_from_beginning,
        r.final_states.clone(),
    )
}

fn assert_killed(report: &JobReport) {
    assert!(!report.completed);
    assert_eq!(
        report.error.as_deref(),
        Some("driver killed by scripted fault"),
        "expected a scripted kill, got {:?}\n{}",
        report.error,
        report.trace.join("\n")
    );
}

/// C-01: kill after at least one committed epoch, resume from the primary
/// slot, and finish with an outcome bit-identical to the uninterrupted
/// persisted run — counters, agreement, and final task states included.
#[test]
fn c01_kill_after_commit_resumes_from_primary_to_identical_outcome() {
    let base_dir = tmp("c01_base");
    let baseline = run_persisted(Scheme::Strong, &FaultScript::new(), &base_dir);
    assert!(baseline.completed, "baseline: {:?}", baseline.error);
    assert!(baseline.checkpoints_verified >= 2);

    let dir = tmp("c01");
    // First round lands at ~60 ms; 100 ms is mid-interval, clear of any
    // round boundary, with exactly one epoch committed.
    let killed = run_persisted(Scheme::Strong, &kill_script(0.100), &dir);
    assert_killed(&killed);

    let resumed = Job::resume(&dir).run(factory);
    assert!(
        resumed.completed,
        "resume failed: {:?}\n{}",
        resumed.error,
        resumed.trace.join("\n")
    );
    let rec = resumed.recovery.as_ref().expect("resume carries a report");
    assert_eq!(rec.source, "primary");
    assert!(rec.records_replayed > 0);
    // The only record not replayed into state is the kill's own
    // post-commit TriggerFired (kept so the resume never re-arms it).
    assert!(rec.records_skipped <= 1, "report: {rec:?}");
    assert_eq!(
        outcome_tuple(&resumed),
        outcome_tuple(&baseline),
        "resumed outcome differs from the uninterrupted run\nresumed:\n{}",
        resumed.trace.join("\n")
    );
    // The machine-readable report also landed next to the store.
    assert!(dir.join("recovery_report.json").is_file());
}

/// C-02: a torn tail append (power loss mid-write) must be skipped by the
/// self-healing reader, reported in the recovery report, and must not
/// prevent a successful resume.
#[test]
fn c02_torn_tail_is_skipped_and_resume_succeeds() {
    let dir = tmp("c02");
    let killed = run_persisted(Scheme::Strong, &kill_script(0.100), &dir);
    assert_killed(&killed);

    // Simulate a torn append: a record header that promises more payload
    // than was ever written.
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(dir.join("events.log"))
        .unwrap();
    f.write_all(b"ACRE\x40\x00\x00\x00torn").unwrap();
    drop(f);

    let resumed = Job::resume(&dir).run(factory);
    assert!(
        resumed.completed,
        "resume failed: {:?}\n{}",
        resumed.error,
        resumed.trace.join("\n")
    );
    let rec = resumed.recovery.as_ref().expect("resume carries a report");
    assert!(rec.bytes_skipped > 0, "torn tail went unreported: {rec:?}");
    assert!(resumed.replicas_agree());
}

/// C-03: with two committed epochs the slots alternate; corrupting the
/// primary slot must fall back to the rollback slot — an older but valid
/// epoch — and still finish correctly.
#[test]
fn c03_corrupt_primary_falls_back_to_rollback_slot() {
    let dir = tmp("c03");
    // ~160 ms: two rounds (~60, ~120 ms) have committed, one per slot.
    let killed = run_persisted(Scheme::Strong, &kill_script(0.160), &dir);
    assert_killed(&killed);

    // The newest commit lives in slot B (second commit); flip a byte in
    // whichever slot file the journal names last by corrupting both
    // candidates' newest: slot 1 holds commit #2.
    let path = dir.join("ckpt_b.slot");
    let mut bytes = std::fs::read(&path).expect("slot B exists after two commits");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&path, bytes).unwrap();

    let resumed = Job::resume(&dir).run(factory);
    assert!(
        resumed.completed,
        "resume failed: {:?}\n{}",
        resumed.error,
        resumed.trace.join("\n")
    );
    let rec = resumed.recovery.as_ref().expect("resume carries a report");
    assert_eq!(rec.source, "rollback", "diagnostics: {:?}", rec.diagnostics);
    assert!(resumed.replicas_agree());

    // Bit-identical to the uninterrupted run regardless of the rollback:
    // the final state is a pure function of the iteration count.
    let base_dir = tmp("c03_base");
    let baseline = run_persisted(Scheme::Strong, &FaultScript::new(), &base_dir);
    assert_eq!(resumed.final_states, baseline.final_states);
}

/// C-04: both slots gone after a commit — resume must fail closed with a
/// diagnosis, never guess at state, and still write the machine-readable
/// recovery report.
#[test]
fn c04_missing_both_slots_fails_closed() {
    let dir = tmp("c04");
    let killed = run_persisted(Scheme::Strong, &kill_script(0.100), &dir);
    assert_killed(&killed);

    let _ = std::fs::remove_file(dir.join("ckpt_a.slot"));
    let _ = std::fs::remove_file(dir.join("ckpt_b.slot"));

    let resumed = Job::resume(&dir).run(factory);
    assert!(!resumed.completed);
    let err = resumed.error.as_deref().expect("fail-closed error");
    assert!(
        err.contains("refusing to resume"),
        "unexpected error: {err}"
    );
    let rec = resumed.recovery.as_ref().expect("failure carries a report");
    assert_eq!(rec.source, "failed");
    assert!(!rec.diagnostics.is_empty());
    assert!(resumed.final_states.is_empty(), "no state may be invented");
    assert!(dir.join("recovery_report.json").is_file());
}

/// A kill before the first commit resumes with no checkpoint: the job
/// restarts from its initial state under the journaled script filter and
/// still finishes identically.
#[test]
fn kill_before_first_commit_restarts_from_initial_state() {
    let dir = tmp("precommit");
    // First round opens at ~60 ms; 30 ms is before any commit.
    let killed = run_persisted(Scheme::Strong, &kill_script(0.030), &dir);
    assert_killed(&killed);

    let resumed = Job::resume(&dir).run(factory);
    assert!(
        resumed.completed,
        "resume failed: {:?}\n{}",
        resumed.error,
        resumed.trace.join("\n")
    );
    assert_eq!(resumed.recovery.as_ref().unwrap().source, "none");
    assert!(resumed.replicas_agree());

    let base_dir = tmp("precommit_base");
    let baseline = run_persisted(Scheme::Strong, &FaultScript::new(), &base_dir);
    assert_eq!(resumed.final_states, baseline.final_states);
}

/// A killed-and-resumed run is itself deterministic: the whole
/// kill → resume pipeline replayed from scratch produces byte-identical
/// resumed traces and final states.
#[test]
fn kill_resume_pipeline_is_deterministic() {
    let mut traces = Vec::new();
    let mut finals = Vec::new();
    for pass in 0..2 {
        let dir = tmp(&format!("det{pass}"));
        let killed = run_persisted(Scheme::Medium, &kill_script(0.100), &dir);
        assert_killed(&killed);
        let resumed = Job::resume(&dir).run(factory);
        assert!(resumed.completed, "pass {pass}: {:?}", resumed.error);
        traces.push(resumed.trace);
        finals.push(resumed.final_states);
    }
    assert_eq!(traces[0], traces[1], "resumed replay diverged");
    assert_eq!(finals[0], finals[1]);
}

/// A kill landing *between* a node death and the next commit: the resumed
/// driver must replay the journaled promotion (or run the recovery itself)
/// and still finish with both replicas agreeing.
#[test]
fn kill_after_crash_recovery_resumes_promotion() {
    let dir = tmp("promo");
    let mut script = kill_script(0.200);
    // Crash at an iteration close to mid-run; the recovery promotes a
    // spare and a later round commits the post-promotion epoch before the
    // kill lands.
    script.push(
        Trigger::AtIteration(ITERS / 4),
        FaultAction::Crash {
            replica: 1,
            rank: 0,
        },
    );
    let killed = run_persisted(Scheme::Strong, &script, &dir);
    assert_killed(&killed);
    assert_eq!(
        killed.hard_errors_recovered,
        1,
        "{}",
        killed.trace.join("\n")
    );

    let resumed = Job::resume(&dir).run(factory);
    assert!(
        resumed.completed,
        "resume failed: {:?}\n{}",
        resumed.error,
        resumed.trace.join("\n")
    );
    assert!(resumed.replicas_agree());
    // The journal's promotion replayed into the resumed counters.
    assert_eq!(resumed.hard_errors_recovered, 1);
    assert_eq!(resumed.final_states.len(), 4);
}

/// Satellite sweep: 8 seeds × 3 schemes of generated scenarios with the
/// driver-kill trigger armed. Every killed case is resumed from its store
/// and the resumed outcome classified against the fault-free reference —
/// no violations allowed, and at least one scenario must actually kill.
#[test]
fn driver_kill_campaign_sweep_survives_restart() {
    let root = tmp("campaign");
    let cfg = CampaignConfig {
        seeds: (0..8).collect(),
        driver_kill: true,
        persist_dir: Some(root.clone()),
        repro_dir: Some(root.join("repros")),
        ..CampaignConfig::default()
    };
    let report = run_campaign(&cfg);
    assert_eq!(report.cases.len(), 8 * cfg.schemes.len());
    let mut kills = 0;
    for case in &report.cases {
        assert!(
            !matches!(case.outcome, CaseOutcome::Violation(_)),
            "seed {} scheme {:?}: {:?}\ntrace:\n{}",
            case.seed,
            case.scheme,
            case.outcome,
            case.report.trace.join("\n"),
        );
        if case.report.recovery.is_some() {
            kills += 1;
        }
    }
    assert!(
        kills > 0,
        "no scenario ever killed the driver; the sweep proved nothing"
    );
}

// ---------------------------------------------------------------------------
// Multi-job store isolation (service layout)
// ---------------------------------------------------------------------------

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Service-layout isolation: `Job::resume` on job A is **byte-
    /// identical** — journal bytes and full outcome tuple — whether or
    /// not job B's store sits beside it under the same `jobs/` root. The
    /// kill lands mid-interval (`60·round + offset` ms, clear of round
    /// boundaries) so at least one epoch is always committed, and the
    /// sibling job is itself either completed or killed.
    #[test]
    fn resume_is_byte_identical_beside_sibling_job_store(
        round in 1u64..3,
        offset_ms in 15u64..50,
        sibling_killed in any::<bool>(),
    ) {
        let kill_at = (round * 60 + offset_ms) as f64 / 1000.0;
        let tag = format!("iso_{round}_{offset_ms}_{sibling_killed}");

        // Root 1: job A alone.
        let solo_root = tmp(&format!("{tag}_solo"));
        let a_solo = acr_store::job_store_dir(&solo_root, 1, "job-a");
        let killed = run_persisted(Scheme::Strong, &kill_script(kill_at), &a_solo);
        assert_killed(&killed);
        let resumed_solo = Job::resume(&a_solo).run(factory);
        prop_assert!(
            resumed_solo.completed,
            "solo resume failed: {:?}",
            resumed_solo.error
        );

        // Root 2: job B's store is written first, then job A runs and
        // resumes beside it.
        let shared_root = tmp(&format!("{tag}_shared"));
        let b_dir = acr_store::job_store_dir(&shared_root, 2, "job-b");
        let b_script = if sibling_killed {
            kill_script(0.100)
        } else {
            FaultScript::new()
        };
        let _sibling = run_persisted(Scheme::Strong, &b_script, &b_dir);
        let a_shared = acr_store::job_store_dir(&shared_root, 1, "job-a");
        let killed2 = run_persisted(Scheme::Strong, &kill_script(kill_at), &a_shared);
        assert_killed(&killed2);
        let resumed_shared = Job::resume(&a_shared).run(factory);
        prop_assert!(
            resumed_shared.completed,
            "shared resume failed: {:?}",
            resumed_shared.error
        );

        prop_assert_eq!(
            outcome_tuple(&resumed_shared),
            outcome_tuple(&resumed_solo),
            "sibling store changed job A's resumed outcome"
        );
        prop_assert_eq!(
            std::fs::read(a_solo.join("events.log")).unwrap(),
            std::fs::read(a_shared.join("events.log")).unwrap(),
            "sibling store changed job A's journal bytes"
        );
        let _ = std::fs::remove_dir_all(&solo_root);
        let _ = std::fs::remove_dir_all(&shared_root);
    }
}
