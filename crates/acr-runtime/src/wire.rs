//! Wire serialization for the TCP transport: length-prefixed frames with a
//! Fletcher-64 body trailer, tag-byte codecs for the `message.rs` protocol
//! enums, and the connect/accept handshake records.
//!
//! ## Frame format
//!
//! Every message crossing a socket travels in one frame (all integers
//! little-endian):
//!
//! ```text
//! magic   u32   0x41435246 ("ACRF")
//! len     u32   body length in bytes (≤ MAX_FRAME_BODY)
//! to      u32   destination node index; DRIVER_DEST for the driver
//! seq     u64   per-link-direction sequence number, starting at 1
//! body    [u8; len]   tag-byte-encoded Net or Event
//! check   u64   fletcher64(body)
//! ```
//!
//! `seq` is what makes a transient socket drop lossless: each side keeps a
//! replay ring of sent frames and, on reconnect, the handshake exchanges the
//! highest `seq` each side has *received* so the peer can replay exactly the
//! frames the dead socket swallowed. Receivers drop `seq` values they have
//! already seen (replayed duplicates).
//!
//! ## Super-frames (batching + compression)
//!
//! Several frames headed for the same socket may be coalesced into one
//! *super-frame* so a flush costs one syscall instead of one per frame:
//!
//! ```text
//! magic    u32   0x53524341 ("ACRS")
//! wire_len u32   stored payload length (≤ MAX_FRAME_BODY)
//! count    u16   number of sub-frames inside
//! codec    u8    WireCodec tag the payload is stored under
//! raw_len  u32   payload length after decompression
//! payload  [u8; wire_len]   codec(concat of sub-records)
//! check    u64   fletcher64(payload as stored)
//! ```
//!
//! Each sub-record is `to u32 · seq u64 · len u32 · body`: the same triple a
//! plain frame carries, so batching is invisible above the decoder. The
//! payload may be compressed with an optional std-only [`WireCodec`]
//! (byte-RLE or an LZSS-style "LZ-lite"), negotiated at HELLO/WELCOME time:
//! the hello advertises a codec bitmask, the welcome picks one. Checkpoint
//! ship bodies (`Compare`/`Install`) are where compression pays; an encoder
//! that fails to shrink the payload stores it uncompressed (`codec` says
//! what was actually stored, never what was merely attempted).
//!
//! The body codec is deliberately hand-rolled (no serde in the dependency
//! tree): one tag byte per enum variant, fixed little-endian scalars,
//! `u64`-length-prefixed byte strings.

use acr_core::{Checkpoint, ChunkTable, ConsensusMsg, Detection, DetectionMethod};
use acr_pup::fletcher64;
use bytes::Bytes;

use crate::message::{AppMsg, Ctrl, Event, Net, NodeFault, Scope, TaskId};

/// Frame magic: `"ACRF"` little-endian.
pub const FRAME_MAGIC: u32 = u32::from_le_bytes(*b"ACRF");
/// Super-frame (batched, possibly compressed) magic: `"ACRS"`.
pub const SUPER_MAGIC: u32 = u32::from_le_bytes(*b"ACRS");
/// Handshake (client hello) magic: `"ACRH"`.
pub const HELLO_MAGIC: u32 = u32::from_le_bytes(*b"ACRH");
/// Handshake (server welcome) magic: `"ACRW"`.
pub const WELCOME_MAGIC: u32 = u32::from_le_bytes(*b"ACRW");
/// Wire protocol version carried by the handshake. Version 2 added
/// super-frames and the codec negotiation byte in hello/welcome; version 3
/// added the delta detection record and the welcome's delta-checkpoint
/// knobs; version 4 added the hello's job id, which a multi-job reactor
/// uses to route the link into its job's namespace.
pub const WIRE_VERSION: u32 = 4;
/// `to` value addressing the driver rather than a node.
pub const DRIVER_DEST: u32 = u32::MAX;
/// Upper bound on a frame body; anything larger is a corrupt length field.
pub const MAX_FRAME_BODY: usize = 256 << 20;

/// Frame header bytes ahead of the body (magic + len + to + seq).
pub const FRAME_HEADER: usize = 4 + 4 + 4 + 8;
/// Trailer bytes after the body (the Fletcher-64 checksum).
pub const FRAME_TRAILER: usize = 8;
/// Super-frame header bytes (magic + wire_len + count + codec + raw_len).
pub const SUPER_HEADER: usize = 4 + 4 + 2 + 1 + 4;
/// Per-sub-frame overhead inside a super-frame payload (to + seq + len).
pub const SUPER_RECORD_HEADER: usize = 4 + 8 + 4;
/// Encoded hello length (fixed): magic, version, job, node, last_recv,
/// codecs. The job id (added in wire version 4) scopes the link: node
/// indices are per-job namespaces, so a service reactor hosting several
/// jobs routes a frame's `to` within the job its link handshook into.
pub const HELLO_LEN: usize = 4 + 4 + 4 + 4 + 8 + 1;
/// Encoded welcome length (fixed); the final byte is the chosen codec tag.
/// The `+ 1 + 4` pair is the delta-checkpoint enable flag and anchor
/// interval added in wire version 3.
pub const WELCOME_LEN: usize = 4 + 4 + 8 + 4 * 4 + 1 + 8 + 8 + 8 + 1 + 4 + 1;

/// Only compress payloads at least this large: below it the codec header
/// bookkeeping eats any saving and the CPU is better spent elsewhere.
pub const COMPRESS_MIN: usize = 128;

/// A decoding failure. `Truncated` is only returned by the fixed-size
/// handshake parsers and the body codecs; the incremental [`FrameDecoder`]
/// reports an incomplete frame as `Ok(None)` instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The stream does not start with the expected magic — garbage, or a
    /// desynchronized peer. The connection must be dropped.
    BadMagic(u32),
    /// The length field exceeds [`MAX_FRAME_BODY`].
    TooLarge(usize),
    /// The body's Fletcher-64 trailer does not match.
    Checksum {
        /// Checksum computed over the received body.
        expected: u64,
        /// Checksum carried in the frame trailer.
        found: u64,
    },
    /// An unknown enum tag inside a frame body.
    BadTag {
        /// Which type was being decoded.
        what: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// The buffer ended mid-record.
    Truncated,
    /// Handshake version mismatch.
    BadVersion(u32),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:#010x}"),
            WireError::TooLarge(n) => write!(f, "frame body of {n} bytes exceeds the cap"),
            WireError::Checksum { expected, found } => {
                write!(
                    f,
                    "frame checksum mismatch: body {expected:#x}, trailer {found:#x}"
                )
            }
            WireError::BadTag { what, tag } => write!(f, "unknown {what} tag {tag}"),
            WireError::Truncated => write!(f, "record truncated"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------------
// Compression codecs
// ---------------------------------------------------------------------------

/// Payload codec a super-frame may be stored under. Negotiated at
/// handshake time: the hello carries a bitmask of codecs the client can
/// decode ([`WireCodec::bit`]), the welcome answers with the single codec
/// the link will use for compressible flushes. `None` is always legal and
/// is what an encoder falls back to when compression does not pay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireCodec {
    /// Payload stored verbatim.
    None,
    /// Byte-oriented run-length encoding (PackBits-style). Cheap, wins on
    /// long zero runs — freshly-initialised or sparse checkpoint payloads.
    Rle,
    /// LZSS-style "LZ-lite": greedy single-probe hash matching over a
    /// 64 KiB window, flag-byte groups of 8 literals/copies. Wins on
    /// repetitive structured state (striding f64 fields, repeated tables).
    #[default]
    Lz,
}

impl WireCodec {
    /// Wire tag carried in super-frame headers and the welcome.
    pub fn tag(self) -> u8 {
        match self {
            WireCodec::None => 0,
            WireCodec::Rle => 1,
            WireCodec::Lz => 2,
        }
    }

    /// Inverse of [`WireCodec::tag`].
    pub fn from_tag(tag: u8) -> Result<Self, WireError> {
        Ok(match tag {
            0 => WireCodec::None,
            1 => WireCodec::Rle,
            2 => WireCodec::Lz,
            t => {
                return Err(WireError::BadTag {
                    what: "WireCodec",
                    tag: t,
                })
            }
        })
    }

    /// This codec's bit in the hello's supported-codec bitmask.
    pub fn bit(self) -> u8 {
        1 << self.tag()
    }

    /// Stable lower-case label for metrics and event streams.
    pub fn name(self) -> &'static str {
        match self {
            WireCodec::None => "none",
            WireCodec::Rle => "rle",
            WireCodec::Lz => "lz",
        }
    }
}

/// Bitmask of every codec this build can decode (advertised in the hello).
pub fn codec_mask_all() -> u8 {
    WireCodec::None.bit() | WireCodec::Rle.bit() | WireCodec::Lz.bit()
}

/// Pick the link codec: the server's preference if the client offered it,
/// otherwise uncompressed.
pub(crate) fn negotiate_codec(preferred: WireCodec, offered_mask: u8) -> WireCodec {
    if offered_mask & preferred.bit() != 0 {
        preferred
    } else {
        WireCodec::None
    }
}

/// Compress `data` under `codec`. The caller compares lengths and keeps
/// the original when compression does not shrink it.
fn compress(codec: WireCodec, data: &[u8]) -> Vec<u8> {
    match codec {
        WireCodec::None => data.to_vec(),
        WireCodec::Rle => rle_compress(data),
        WireCodec::Lz => lz_compress(data),
    }
}

/// Decompress a stored payload; `raw_len` is the expected output length
/// from the super-frame header and any mismatch is a decode error.
fn decompress(codec: WireCodec, data: &[u8], raw_len: usize) -> Result<Vec<u8>, WireError> {
    let out = match codec {
        WireCodec::None => data.to_vec(),
        WireCodec::Rle => rle_decompress(data, raw_len)?,
        WireCodec::Lz => lz_decompress(data, raw_len)?,
    };
    if out.len() != raw_len {
        return Err(WireError::Truncated);
    }
    Ok(out)
}

/// PackBits-style RLE. Control byte `c`: `0..=127` → copy `c+1` literal
/// bytes; `129..=255` → repeat the next byte `257-c` times; `128` is
/// never emitted and rejected on decode.
fn rle_compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    let mut i = 0;
    while i < data.len() {
        // Measure the run starting here.
        let b = data[i];
        let mut run = 1;
        while run < 128 && i + run < data.len() && data[i + run] == b {
            run += 1;
        }
        if run >= 3 {
            out.push((257 - run) as u8);
            out.push(b);
            i += run;
            continue;
        }
        // Literal stretch: emit until the next ≥3 run or 128 bytes.
        let start = i;
        i += run;
        while i < data.len() && i - start < 128 {
            let c = data[i];
            let mut r = 1;
            while r < 3 && i + r < data.len() && data[i + r] == c {
                r += 1;
            }
            if r >= 3 {
                break;
            }
            i += r;
        }
        let lit = (i - start).min(128);
        out.push((lit - 1) as u8);
        out.extend_from_slice(&data[start..start + lit]);
        i = start + lit;
    }
    out
}

fn rle_decompress(data: &[u8], raw_len: usize) -> Result<Vec<u8>, WireError> {
    let mut out = Vec::with_capacity(raw_len);
    let mut i = 0;
    while i < data.len() {
        let c = data[i];
        i += 1;
        if c < 128 {
            let n = c as usize + 1;
            if i + n > data.len() {
                return Err(WireError::Truncated);
            }
            out.extend_from_slice(&data[i..i + n]);
            i += n;
        } else if c == 128 {
            return Err(WireError::BadTag {
                what: "rle control",
                tag: c,
            });
        } else {
            let n = 257 - c as usize;
            if i >= data.len() {
                return Err(WireError::Truncated);
            }
            out.resize(out.len() + n, data[i]);
            i += 1;
        }
        if out.len() > raw_len {
            return Err(WireError::TooLarge(out.len()));
        }
    }
    Ok(out)
}

/// LZ-lite window: matches may reach back up to `u16::MAX` bytes.
const LZ_WINDOW: usize = u16::MAX as usize;
/// Minimum/maximum encodable match length (`len` byte stores `len-4`).
const LZ_MIN_MATCH: usize = 4;
const LZ_MAX_MATCH: usize = 255 + LZ_MIN_MATCH;

fn lz_hash(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes(bytes[..4].try_into().unwrap());
    (v.wrapping_mul(2_654_435_761) >> 16) as usize
}

/// Greedy LZSS with flag-byte groups: each flag byte covers 8 items, bit
/// set → a 3-byte copy (`offset u16 LE`, `len-4 u8`), bit clear → one
/// literal byte. A single-probe hash table keeps compression O(n).
fn lz_compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    // Hash table of position+1 (0 = empty) for 4-byte sequences.
    let mut table = vec![0u32; 1 << 16];
    let mut i = 0;
    let mut flag_at = usize::MAX;
    let mut flag_bit = 8;
    let mut push_item = |out: &mut Vec<u8>, is_match: bool| {
        if flag_bit == 8 {
            flag_at = out.len();
            out.push(0);
            flag_bit = 0;
        }
        if is_match {
            out[flag_at] |= 1 << flag_bit;
        }
        flag_bit += 1;
    };
    while i < data.len() {
        let mut matched = 0usize;
        let mut offset = 0usize;
        if i + LZ_MIN_MATCH <= data.len() {
            let h = lz_hash(&data[i..]);
            let cand = table[h] as usize;
            table[h] = (i + 1) as u32;
            if cand > 0 {
                let p = cand - 1;
                let off = i - p;
                if (1..=LZ_WINDOW).contains(&off) {
                    let max = (data.len() - i).min(LZ_MAX_MATCH);
                    let mut l = 0;
                    while l < max && data[p + l] == data[i + l] {
                        l += 1;
                    }
                    if l >= LZ_MIN_MATCH {
                        matched = l;
                        offset = off;
                    }
                }
            }
        }
        if matched > 0 {
            push_item(&mut out, true);
            out.extend_from_slice(&(offset as u16).to_le_bytes());
            out.push((matched - LZ_MIN_MATCH) as u8);
            i += matched;
        } else {
            push_item(&mut out, false);
            out.push(data[i]);
            i += 1;
        }
    }
    out
}

fn lz_decompress(data: &[u8], raw_len: usize) -> Result<Vec<u8>, WireError> {
    let mut out = Vec::with_capacity(raw_len);
    let mut i = 0;
    while i < data.len() {
        let flags = data[i];
        i += 1;
        for bit in 0..8 {
            if i >= data.len() {
                break;
            }
            if flags & (1 << bit) != 0 {
                if i + 3 > data.len() {
                    return Err(WireError::Truncated);
                }
                let offset = u16::from_le_bytes(data[i..i + 2].try_into().unwrap()) as usize;
                let len = data[i + 2] as usize + LZ_MIN_MATCH;
                i += 3;
                if offset == 0 || offset > out.len() {
                    return Err(WireError::Truncated);
                }
                let start = out.len() - offset;
                // Overlapping copies are legal (offset < len repeats).
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            } else {
                out.push(data[i]);
                i += 1;
            }
            if out.len() > raw_len {
                return Err(WireError::TooLarge(out.len()));
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Primitive writers / reader
// ---------------------------------------------------------------------------

fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}
fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}
fn put_usize(buf: &mut Vec<u8>, v: usize) {
    put_u64(buf, v as u64);
}
fn put_bytes(buf: &mut Vec<u8>, v: &[u8]) {
    put_u64(buf, v.len() as u64);
    buf.extend_from_slice(v);
}

/// Cursor over a received body.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() - self.pos < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn usize(&mut self) -> Result<usize, WireError> {
        Ok(self.u64()? as usize)
    }
    fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let n = self.usize()?;
        if n > MAX_FRAME_BODY {
            return Err(WireError::TooLarge(n));
        }
        self.take(n)
    }
    fn finish(self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Truncated)
        }
    }
}

// ---------------------------------------------------------------------------
// Frame layer
// ---------------------------------------------------------------------------

/// One decoded frame: destination, link sequence number, opaque body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Destination node index, or [`DRIVER_DEST`].
    pub to: u32,
    /// Per-link-direction sequence number (starts at 1).
    pub seq: u64,
    /// Tag-byte-encoded message body.
    pub body: Vec<u8>,
}

/// Encode one frame ready for the socket.
pub fn encode_frame(to: u32, seq: u64, body: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(FRAME_HEADER + body.len() + FRAME_TRAILER);
    put_u32(&mut buf, FRAME_MAGIC);
    put_u32(&mut buf, body.len() as u32);
    put_u32(&mut buf, to);
    put_u64(&mut buf, seq);
    buf.extend_from_slice(body);
    put_u64(&mut buf, fletcher64(body));
    buf
}

/// The result of encoding one flush via [`encode_batch`].
#[derive(Debug, Clone)]
pub struct EncodedBatch {
    /// Exactly what goes on the socket: one plain frame or one super-frame.
    pub bytes: Vec<u8>,
    /// Codec the payload was *actually stored* under ([`WireCodec::None`]
    /// when compression was skipped or did not pay).
    pub codec: WireCodec,
    /// Concatenated sub-record payload length before compression. For a
    /// plain-frame fallback this is the body length.
    pub raw_payload: usize,
    /// Number of frames coalesced into this flush.
    pub frames: usize,
}

/// Encode one flush worth of frames for a single socket. A lone frame
/// stays a plain `"ACRF"` frame unless compressing it beats the plain
/// encoding outright; two or more frames always coalesce into a
/// super-frame (whose per-record overhead, 16 bytes, undercuts the
/// 28-byte plain header+trailer — batching never costs bytes).
///
/// The caller must keep the batch payload under [`MAX_FRAME_BODY`] and
/// the frame count under `u16::MAX` (the reactor's flush loop splits
/// batches long before either bound).
pub fn encode_batch(records: &[(u32, u64, &[u8])], codec: WireCodec) -> EncodedBatch {
    assert!(!records.is_empty(), "encode_batch of zero frames");
    assert!(
        records.len() <= u16::MAX as usize,
        "batch frame count overflow"
    );
    let plain_single = |records: &[(u32, u64, &[u8])]| {
        let (to, seq, body) = records[0];
        EncodedBatch {
            bytes: encode_frame(to, seq, body),
            codec: WireCodec::None,
            raw_payload: body.len(),
            frames: 1,
        }
    };
    if records.len() == 1 && codec == WireCodec::None {
        return plain_single(records);
    }
    let raw_len: usize = records
        .iter()
        .map(|(_, _, b)| SUPER_RECORD_HEADER + b.len())
        .sum();
    assert!(raw_len <= MAX_FRAME_BODY, "batch payload exceeds frame cap");
    let mut raw = Vec::with_capacity(raw_len);
    for &(to, seq, body) in records {
        put_u32(&mut raw, to);
        put_u64(&mut raw, seq);
        put_u32(&mut raw, body.len() as u32);
        raw.extend_from_slice(body);
    }
    let (stored, used) = if codec != WireCodec::None && raw.len() >= COMPRESS_MIN {
        let c = compress(codec, &raw);
        if c.len() < raw.len() {
            (c, codec)
        } else {
            (raw.clone(), WireCodec::None)
        }
    } else {
        (raw.clone(), WireCodec::None)
    };
    if records.len() == 1 {
        // A singleton super-frame only earns its keep when compression
        // beats the plain encoding.
        let super_total = SUPER_HEADER + stored.len() + FRAME_TRAILER;
        let plain_total = FRAME_HEADER + records[0].2.len() + FRAME_TRAILER;
        if super_total >= plain_total {
            return plain_single(records);
        }
    }
    let mut buf = Vec::with_capacity(SUPER_HEADER + stored.len() + FRAME_TRAILER);
    put_u32(&mut buf, SUPER_MAGIC);
    put_u32(&mut buf, stored.len() as u32);
    buf.extend_from_slice(&(records.len() as u16).to_le_bytes());
    put_u8(&mut buf, used.tag());
    put_u32(&mut buf, raw.len() as u32);
    buf.extend_from_slice(&stored);
    put_u64(&mut buf, fletcher64(&stored));
    EncodedBatch {
        bytes: buf,
        codec: used,
        raw_payload: raw.len(),
        frames: records.len(),
    }
}

/// Incremental frame decoder for a byte stream delivered in arbitrary
/// chunks (partial reads, coalesced writes). Feed bytes as they arrive,
/// then pull complete frames — a super-frame is unpacked transparently,
/// its sub-frames queued and returned one at a time. Any error is fatal
/// for the stream: the decoder stays poisoned and the connection should
/// be dropped (a fresh connection starts a fresh decoder).
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    pos: usize,
    poisoned: bool,
    pending: std::collections::VecDeque<Frame>,
}

impl FrameDecoder {
    /// Fresh decoder for a new connection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append received bytes.
    pub fn feed(&mut self, data: &[u8]) {
        // Compact lazily: drop consumed prefix once it dominates the buffer.
        if self.pos > 4096 && self.pos * 2 > self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(data);
    }

    fn poison<T>(&mut self, e: WireError) -> Result<T, WireError> {
        self.poisoned = true;
        Err(e)
    }

    /// Next complete frame, `Ok(None)` if more bytes are needed.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, WireError> {
        if let Some(f) = self.pending.pop_front() {
            return Ok(Some(f));
        }
        if self.poisoned {
            return Err(WireError::Truncated);
        }
        let avail = &self.buf[self.pos..];
        if avail.len() < 4 {
            return Ok(None);
        }
        match u32::from_le_bytes(avail[0..4].try_into().unwrap()) {
            FRAME_MAGIC => self.next_plain(),
            SUPER_MAGIC => self.next_super(),
            magic => self.poison(WireError::BadMagic(magic)),
        }
    }

    fn next_plain(&mut self) -> Result<Option<Frame>, WireError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < FRAME_HEADER {
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[4..8].try_into().unwrap()) as usize;
        if len > MAX_FRAME_BODY {
            return self.poison(WireError::TooLarge(len));
        }
        let total = FRAME_HEADER + len + FRAME_TRAILER;
        if avail.len() < total {
            return Ok(None);
        }
        let to = u32::from_le_bytes(avail[8..12].try_into().unwrap());
        let seq = u64::from_le_bytes(avail[12..20].try_into().unwrap());
        let body = avail[FRAME_HEADER..FRAME_HEADER + len].to_vec();
        let found = u64::from_le_bytes(avail[FRAME_HEADER + len..total].try_into().unwrap());
        let expected = fletcher64(&body);
        if expected != found {
            return self.poison(WireError::Checksum { expected, found });
        }
        self.pos += total;
        Ok(Some(Frame { to, seq, body }))
    }

    fn next_super(&mut self) -> Result<Option<Frame>, WireError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < SUPER_HEADER {
            return Ok(None);
        }
        let wire_len = u32::from_le_bytes(avail[4..8].try_into().unwrap()) as usize;
        if wire_len > MAX_FRAME_BODY {
            return self.poison(WireError::TooLarge(wire_len));
        }
        let count = u16::from_le_bytes(avail[8..10].try_into().unwrap()) as usize;
        let codec_tag = avail[10];
        let raw_len = u32::from_le_bytes(avail[11..15].try_into().unwrap()) as usize;
        if raw_len > MAX_FRAME_BODY {
            return self.poison(WireError::TooLarge(raw_len));
        }
        let total = SUPER_HEADER + wire_len + FRAME_TRAILER;
        if avail.len() < total {
            return Ok(None);
        }
        let stored = &avail[SUPER_HEADER..SUPER_HEADER + wire_len];
        let found = u64::from_le_bytes(avail[SUPER_HEADER + wire_len..total].try_into().unwrap());
        let expected = fletcher64(stored);
        if expected != found {
            return self.poison(WireError::Checksum { expected, found });
        }
        // An empty batch is never emitted; a zero count means corruption
        // the checksum happened to miss structurally.
        if count == 0 {
            return self.poison(WireError::Truncated);
        }
        let codec = match WireCodec::from_tag(codec_tag) {
            Ok(c) => c,
            Err(e) => return self.poison(e),
        };
        let raw = match decompress(codec, stored, raw_len) {
            Ok(r) => r,
            Err(e) => return self.poison(e),
        };
        // Unpack sub-records; they must exactly tile the raw payload.
        let mut frames = Vec::with_capacity(count);
        let mut pos = 0usize;
        for _ in 0..count {
            if raw.len() - pos < SUPER_RECORD_HEADER {
                return self.poison(WireError::Truncated);
            }
            let to = u32::from_le_bytes(raw[pos..pos + 4].try_into().unwrap());
            let seq = u64::from_le_bytes(raw[pos + 4..pos + 12].try_into().unwrap());
            let len = u32::from_le_bytes(raw[pos + 12..pos + 16].try_into().unwrap()) as usize;
            pos += SUPER_RECORD_HEADER;
            if len > MAX_FRAME_BODY || raw.len() - pos < len {
                return self.poison(WireError::Truncated);
            }
            frames.push(Frame {
                to,
                seq,
                body: raw[pos..pos + len].to_vec(),
            });
            pos += len;
        }
        if pos != raw.len() {
            return self.poison(WireError::Truncated);
        }
        self.pos += total;
        let mut it = frames.into_iter();
        let first = it.next();
        self.pending.extend(it);
        Ok(first)
    }
}

// ---------------------------------------------------------------------------
// Handshake
// ---------------------------------------------------------------------------

/// Client hello: which job the link belongs to, the connecting node's
/// identity within that job, the highest frame sequence it has received
/// from the router (so the router can replay the tail a dropped socket
/// swallowed), and the bitmask of [`WireCodec`]s it can decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Hello {
    pub job: u32,
    pub node: u32,
    pub last_recv_seq: u64,
    pub codecs: u8,
}

pub(crate) fn encode_hello(h: &Hello) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HELLO_LEN);
    put_u32(&mut buf, HELLO_MAGIC);
    put_u32(&mut buf, WIRE_VERSION);
    put_u32(&mut buf, h.job);
    put_u32(&mut buf, h.node);
    put_u64(&mut buf, h.last_recv_seq);
    put_u8(&mut buf, h.codecs);
    debug_assert_eq!(buf.len(), HELLO_LEN);
    buf
}

pub(crate) fn decode_hello(buf: &[u8]) -> Result<Hello, WireError> {
    let mut r = Reader::new(buf);
    let magic = r.u32()?;
    if magic != HELLO_MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = r.u32()?;
    if version != WIRE_VERSION {
        return Err(WireError::BadVersion(version));
    }
    let h = Hello {
        job: r.u32()?,
        node: r.u32()?,
        last_recv_seq: r.u64()?,
        codecs: r.u8()?,
    };
    r.finish()?;
    Ok(h)
}

/// The job-shape blob the welcome carries, enough for a remote node host to
/// build its `NodeConfig` and a private replica layout matching the
/// driver's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct WelcomeCfg {
    pub ranks: u32,
    pub tasks_per_rank: u32,
    pub spares: u32,
    pub total: u32,
    pub detection: DetectionMethod,
    pub chunk_size: u64,
    pub heartbeat_period_ns: u64,
    pub heartbeat_timeout_ns: u64,
    pub delta_checkpoints: bool,
    pub delta_anchor_interval: u32,
}

/// Server welcome: the router's highest received sequence from this node
/// (the node replays everything above it), the job shape, and the codec
/// the link will use for compressible flushes (chosen from the hello's
/// offered bitmask).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Welcome {
    pub last_recv_seq: u64,
    pub cfg: WelcomeCfg,
    pub codec: WireCodec,
}

fn detection_tag(d: DetectionMethod) -> u8 {
    match d {
        DetectionMethod::FullCompare => 0,
        DetectionMethod::Checksum => 1,
        DetectionMethod::ChunkedChecksum => 2,
    }
}

fn detection_from_tag(tag: u8) -> Result<DetectionMethod, WireError> {
    Ok(match tag {
        0 => DetectionMethod::FullCompare,
        1 => DetectionMethod::Checksum,
        2 => DetectionMethod::ChunkedChecksum,
        t => {
            return Err(WireError::BadTag {
                what: "DetectionMethod",
                tag: t,
            })
        }
    })
}

pub(crate) fn encode_welcome(w: &Welcome) -> Vec<u8> {
    let mut buf = Vec::with_capacity(WELCOME_LEN);
    put_u32(&mut buf, WELCOME_MAGIC);
    put_u32(&mut buf, WIRE_VERSION);
    put_u64(&mut buf, w.last_recv_seq);
    put_u32(&mut buf, w.cfg.ranks);
    put_u32(&mut buf, w.cfg.tasks_per_rank);
    put_u32(&mut buf, w.cfg.spares);
    put_u32(&mut buf, w.cfg.total);
    put_u8(&mut buf, detection_tag(w.cfg.detection));
    put_u64(&mut buf, w.cfg.chunk_size);
    put_u64(&mut buf, w.cfg.heartbeat_period_ns);
    put_u64(&mut buf, w.cfg.heartbeat_timeout_ns);
    put_u32(&mut buf, w.cfg.delta_anchor_interval);
    put_u8(&mut buf, w.cfg.delta_checkpoints as u8);
    put_u8(&mut buf, w.codec.tag());
    debug_assert_eq!(buf.len(), WELCOME_LEN);
    buf
}

pub(crate) fn decode_welcome(buf: &[u8]) -> Result<Welcome, WireError> {
    let mut r = Reader::new(buf);
    let magic = r.u32()?;
    if magic != WELCOME_MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = r.u32()?;
    if version != WIRE_VERSION {
        return Err(WireError::BadVersion(version));
    }
    let last_recv_seq = r.u64()?;
    let cfg = WelcomeCfg {
        ranks: r.u32()?,
        tasks_per_rank: r.u32()?,
        spares: r.u32()?,
        total: r.u32()?,
        detection: detection_from_tag(r.u8()?)?,
        chunk_size: r.u64()?,
        heartbeat_period_ns: r.u64()?,
        heartbeat_timeout_ns: r.u64()?,
        delta_anchor_interval: r.u32()?,
        delta_checkpoints: r.u8()? != 0,
    };
    let codec = WireCodec::from_tag(r.u8()?)?;
    r.finish()?;
    Ok(Welcome {
        last_recv_seq,
        cfg,
        codec,
    })
}

// ---------------------------------------------------------------------------
// Body codec: shared pieces
// ---------------------------------------------------------------------------

fn put_scope(buf: &mut Vec<u8>, s: Scope) {
    match s {
        Scope::Global => put_u8(buf, 0),
        Scope::Replica(r) => {
            put_u8(buf, 1);
            put_u8(buf, r);
        }
    }
}

fn get_scope(r: &mut Reader<'_>) -> Result<Scope, WireError> {
    Ok(match r.u8()? {
        0 => Scope::Global,
        1 => Scope::Replica(r.u8()?),
        t => {
            return Err(WireError::BadTag {
                what: "Scope",
                tag: t,
            })
        }
    })
}

fn put_consensus(buf: &mut Vec<u8>, m: &ConsensusMsg) {
    match *m {
        ConsensusMsg::Start { round } => {
            put_u8(buf, 0);
            put_u64(buf, round);
        }
        ConsensusMsg::Contribute { round, max } => {
            put_u8(buf, 1);
            put_u64(buf, round);
            put_u64(buf, max);
        }
        ConsensusMsg::Decide { round, iteration } => {
            put_u8(buf, 2);
            put_u64(buf, round);
            put_u64(buf, iteration);
        }
        ConsensusMsg::ReadyUp { round } => {
            put_u8(buf, 3);
            put_u64(buf, round);
        }
        ConsensusMsg::Go { round } => {
            put_u8(buf, 4);
            put_u64(buf, round);
        }
    }
}

fn get_consensus(r: &mut Reader<'_>) -> Result<ConsensusMsg, WireError> {
    Ok(match r.u8()? {
        0 => ConsensusMsg::Start { round: r.u64()? },
        1 => ConsensusMsg::Contribute {
            round: r.u64()?,
            max: r.u64()?,
        },
        2 => ConsensusMsg::Decide {
            round: r.u64()?,
            iteration: r.u64()?,
        },
        3 => ConsensusMsg::ReadyUp { round: r.u64()? },
        4 => ConsensusMsg::Go { round: r.u64()? },
        t => {
            return Err(WireError::BadTag {
                what: "ConsensusMsg",
                tag: t,
            })
        }
    })
}

fn put_chunk_table(buf: &mut Vec<u8>, t: &ChunkTable) {
    put_u32(buf, t.chunk_size);
    put_u64(buf, t.digests.len() as u64);
    for &d in &t.digests {
        put_u64(buf, d);
    }
}

fn get_chunk_table(r: &mut Reader<'_>) -> Result<ChunkTable, WireError> {
    let chunk_size = r.u32()?;
    let n = r.usize()?;
    if n > MAX_FRAME_BODY / 8 {
        return Err(WireError::TooLarge(n));
    }
    let mut digests = Vec::with_capacity(n);
    for _ in 0..n {
        digests.push(r.u64()?);
    }
    Ok(ChunkTable {
        chunk_size,
        digests,
    })
}

fn put_detection(buf: &mut Vec<u8>, d: &Detection) {
    match d {
        Detection::Payload(p) => {
            put_u8(buf, 0);
            put_bytes(buf, p);
        }
        Detection::Digest(x) => {
            put_u8(buf, 1);
            put_u64(buf, *x);
        }
        Detection::DigestTable { digest, table } => {
            put_u8(buf, 2);
            put_u64(buf, *digest);
            put_chunk_table(buf, table);
        }
        Detection::Delta {
            base_iteration,
            payload_len,
            digest,
            table,
            dirty,
        } => {
            // Fixed prefix layout (the transport classifies ship traffic by
            // peeking at these offsets without a full decode — see the
            // `delta_compare_body_offsets_are_pinned` test):
            //   [0]      detection tag 3
            //   [1..9]   base_iteration u64
            //   [9..17]  payload_len u64
            //   [17..25] digest u64
            //   [25..29] dirty chunk count u32
            put_u8(buf, 3);
            put_u64(buf, *base_iteration);
            put_usize(buf, *payload_len);
            put_u64(buf, *digest);
            put_u32(buf, dirty.len() as u32);
            put_chunk_table(buf, table);
            for (index, window) in dirty {
                put_u32(buf, *index);
                put_bytes(buf, window);
            }
        }
    }
}

fn get_detection(r: &mut Reader<'_>) -> Result<Detection, WireError> {
    Ok(match r.u8()? {
        0 => Detection::Payload(Bytes::copy_from_slice(r.bytes()?)),
        1 => Detection::Digest(r.u64()?),
        2 => Detection::DigestTable {
            digest: r.u64()?,
            table: get_chunk_table(r)?,
        },
        3 => {
            let base_iteration = r.u64()?;
            let payload_len = r.usize()?;
            if payload_len > MAX_FRAME_BODY {
                return Err(WireError::TooLarge(payload_len));
            }
            let digest = r.u64()?;
            let n = r.u32()? as usize;
            let table = get_chunk_table(r)?;
            let chunk_size = table.chunk_size as usize;
            let total_chunks = if chunk_size == 0 {
                0
            } else {
                payload_len.div_ceil(chunk_size)
            };
            // Strict structural validation: the table must cover the whole
            // payload and every window must be a real chunk span, indices
            // strictly increasing. A record that fails here poisons the
            // frame rather than reaching the protocol layer malformed.
            if (chunk_size == 0 && payload_len > 0)
                || table.digests.len() != total_chunks
                || n > total_chunks
            {
                return Err(WireError::Truncated);
            }
            let mut dirty = Vec::with_capacity(n);
            let mut prev: Option<u32> = None;
            for _ in 0..n {
                let index = r.u32()?;
                let window = r.bytes()?;
                if (index as usize) >= total_chunks || prev.is_some_and(|p| index <= p) {
                    return Err(WireError::Truncated);
                }
                let span = acr_pup::chunk_span(chunk_size, payload_len, index);
                if window.len() != span.len() {
                    return Err(WireError::Truncated);
                }
                prev = Some(index);
                dirty.push((index, Bytes::copy_from_slice(window)));
            }
            Detection::Delta {
                base_iteration,
                payload_len,
                digest,
                table,
                dirty,
            }
        }
        t => {
            return Err(WireError::BadTag {
                what: "Detection",
                tag: t,
            })
        }
    })
}

fn put_checkpoint(buf: &mut Vec<u8>, c: &Checkpoint) {
    put_u64(buf, c.iteration);
    put_bytes(buf, &c.payload);
    put_u64(buf, c.digest);
    match &c.chunks {
        None => put_u8(buf, 0),
        Some(t) => {
            put_u8(buf, 1);
            put_chunk_table(buf, t);
        }
    }
}

fn get_checkpoint(r: &mut Reader<'_>) -> Result<Checkpoint, WireError> {
    let iteration = r.u64()?;
    let payload = Bytes::copy_from_slice(r.bytes()?);
    let digest = r.u64()?;
    Ok(match r.u8()? {
        0 => Checkpoint::new(iteration, payload, digest),
        1 => Checkpoint::with_chunks(iteration, payload, digest, get_chunk_table(r)?),
        t => {
            return Err(WireError::BadTag {
                what: "Checkpoint.chunks",
                tag: t,
            })
        }
    })
}

fn put_app_msg(buf: &mut Vec<u8>, m: &AppMsg) {
    put_usize(buf, m.from.rank);
    put_usize(buf, m.from.task);
    put_u64(buf, m.tag);
    put_bytes(buf, &m.data);
}

fn get_app_msg(r: &mut Reader<'_>) -> Result<AppMsg, WireError> {
    Ok(AppMsg {
        from: TaskId {
            rank: r.usize()?,
            task: r.usize()?,
        },
        tag: r.u64()?,
        data: r.bytes()?.to_vec(),
    })
}

fn put_node_fault(buf: &mut Vec<u8>, f: NodeFault) {
    match f {
        NodeFault::Crash => put_u8(buf, 0),
        NodeFault::Sdc { seed, bits } => {
            put_u8(buf, 1);
            put_u64(buf, seed);
            put_u32(buf, bits);
        }
    }
}

fn get_node_fault(r: &mut Reader<'_>) -> Result<NodeFault, WireError> {
    Ok(match r.u8()? {
        0 => NodeFault::Crash,
        1 => NodeFault::Sdc {
            seed: r.u64()?,
            bits: r.u32()?,
        },
        t => {
            return Err(WireError::BadTag {
                what: "NodeFault",
                tag: t,
            })
        }
    })
}

// ---------------------------------------------------------------------------
// Net codec
// ---------------------------------------------------------------------------

fn put_ctrl(buf: &mut Vec<u8>, c: &Ctrl) {
    match *c {
        Ctrl::StartRound { scope, round } => {
            put_u8(buf, 0);
            put_scope(buf, scope);
            put_u64(buf, round);
        }
        Ctrl::AbortRound { floor } => {
            put_u8(buf, 1);
            put_u64(buf, floor);
        }
        Ctrl::Rollback { floor } => {
            put_u8(buf, 2);
            put_u64(buf, floor);
        }
        Ctrl::SendVerifiedTo { to } => {
            put_u8(buf, 3);
            put_usize(buf, to);
        }
        Ctrl::AssumeIdentity {
            replica,
            rank,
            buddy,
            floor,
        } => {
            put_u8(buf, 4);
            put_u8(buf, replica);
            put_usize(buf, rank);
            put_usize(buf, buddy);
            put_u64(buf, floor);
        }
        Ctrl::BuddyChanged { buddy } => {
            put_u8(buf, 5);
            put_usize(buf, buddy);
        }
        Ctrl::RoundComplete => put_u8(buf, 6),
        Ctrl::Park => put_u8(buf, 7),
        Ctrl::Resume { floor } => {
            put_u8(buf, 8);
            put_u64(buf, floor);
        }
        Ctrl::HardRestart { floor } => {
            put_u8(buf, 9);
            put_u64(buf, floor);
        }
        Ctrl::InjectCrash => put_u8(buf, 10),
        Ctrl::InjectSdc { seed, bits } => {
            put_u8(buf, 11);
            put_u64(buf, seed);
            put_u32(buf, bits);
        }
        Ctrl::ScheduleFault {
            at_iteration,
            fault,
        } => {
            put_u8(buf, 12);
            put_u64(buf, at_iteration);
            put_node_fault(buf, fault);
        }
        Ctrl::MuteHeartbeats { secs } => {
            put_u8(buf, 13);
            put_f64(buf, secs);
        }
        Ctrl::Ping { token } => {
            put_u8(buf, 14);
            put_u64(buf, token);
        }
        Ctrl::Shutdown => put_u8(buf, 15),
        Ctrl::LayoutChanged { dead } => {
            put_u8(buf, 16);
            put_usize(buf, dead);
        }
        Ctrl::ReportVerified { round } => {
            put_u8(buf, 17);
            put_u64(buf, round);
        }
        Ctrl::Halt => put_u8(buf, 18),
    }
}

fn get_ctrl(r: &mut Reader<'_>) -> Result<Ctrl, WireError> {
    Ok(match r.u8()? {
        0 => Ctrl::StartRound {
            scope: get_scope(r)?,
            round: r.u64()?,
        },
        1 => Ctrl::AbortRound { floor: r.u64()? },
        2 => Ctrl::Rollback { floor: r.u64()? },
        3 => Ctrl::SendVerifiedTo { to: r.usize()? },
        4 => Ctrl::AssumeIdentity {
            replica: r.u8()?,
            rank: r.usize()?,
            buddy: r.usize()?,
            floor: r.u64()?,
        },
        5 => Ctrl::BuddyChanged { buddy: r.usize()? },
        6 => Ctrl::RoundComplete,
        7 => Ctrl::Park,
        8 => Ctrl::Resume { floor: r.u64()? },
        9 => Ctrl::HardRestart { floor: r.u64()? },
        10 => Ctrl::InjectCrash,
        11 => Ctrl::InjectSdc {
            seed: r.u64()?,
            bits: r.u32()?,
        },
        12 => Ctrl::ScheduleFault {
            at_iteration: r.u64()?,
            fault: get_node_fault(r)?,
        },
        13 => Ctrl::MuteHeartbeats { secs: r.f64()? },
        14 => Ctrl::Ping { token: r.u64()? },
        15 => Ctrl::Shutdown,
        16 => Ctrl::LayoutChanged { dead: r.usize()? },
        17 => Ctrl::ReportVerified { round: r.u64()? },
        18 => Ctrl::Halt,
        t => {
            return Err(WireError::BadTag {
                what: "Ctrl",
                tag: t,
            })
        }
    })
}

/// Encode a node-bound protocol message into a frame body.
pub(crate) fn encode_net(msg: &Net) -> Vec<u8> {
    let mut buf = Vec::new();
    match msg {
        Net::App {
            to_task,
            epoch,
            msg,
        } => {
            put_u8(&mut buf, 0);
            put_usize(&mut buf, *to_task);
            put_u64(&mut buf, *epoch);
            put_app_msg(&mut buf, msg);
        }
        Net::Consensus { scope, msg } => {
            put_u8(&mut buf, 1);
            put_scope(&mut buf, *scope);
            put_consensus(&mut buf, msg);
        }
        Net::Compare {
            iteration,
            detection,
        } => {
            put_u8(&mut buf, 2);
            put_u64(&mut buf, *iteration);
            put_detection(&mut buf, detection);
        }
        Net::CompareResult { iteration, clean } => {
            put_u8(&mut buf, 3);
            put_u64(&mut buf, *iteration);
            put_u8(&mut buf, *clean as u8);
        }
        Net::Install { checkpoint } => {
            put_u8(&mut buf, 4);
            put_checkpoint(&mut buf, checkpoint);
        }
        Net::Heartbeat { from } => {
            put_u8(&mut buf, 5);
            put_usize(&mut buf, *from);
        }
        Net::Ctrl(c) => {
            put_u8(&mut buf, 6);
            put_ctrl(&mut buf, c);
        }
    }
    buf
}

/// Decode a frame body into a node-bound protocol message.
pub(crate) fn decode_net(buf: &[u8]) -> Result<Net, WireError> {
    let mut r = Reader::new(buf);
    let msg = match r.u8()? {
        0 => Net::App {
            to_task: r.usize()?,
            epoch: r.u64()?,
            msg: get_app_msg(&mut r)?,
        },
        1 => Net::Consensus {
            scope: get_scope(&mut r)?,
            msg: get_consensus(&mut r)?,
        },
        2 => Net::Compare {
            iteration: r.u64()?,
            detection: get_detection(&mut r)?,
        },
        3 => Net::CompareResult {
            iteration: r.u64()?,
            clean: r.u8()? != 0,
        },
        4 => Net::Install {
            checkpoint: get_checkpoint(&mut r)?,
        },
        5 => Net::Heartbeat { from: r.usize()? },
        6 => Net::Ctrl(get_ctrl(&mut r)?),
        t => {
            return Err(WireError::BadTag {
                what: "Net",
                tag: t,
            })
        }
    };
    r.finish()?;
    Ok(msg)
}

/// Encode a `Compare` record exactly as it crosses the wire as a frame
/// body — the public surface behind the pinned compare-body offsets.
/// Property tests and diagnostic tooling build and inspect delta records
/// through this pair without reaching into the crate-private `Net` codec.
pub fn encode_compare_body(iteration: u64, detection: &Detection) -> Vec<u8> {
    encode_net(&Net::Compare {
        iteration,
        detection: detection.clone(),
    })
}

/// Decode a frame body produced by [`encode_compare_body`], applying the
/// same strict structural validation the transport does.
pub fn decode_compare_body(buf: &[u8]) -> Result<(u64, Detection), WireError> {
    match decode_net(buf)? {
        Net::Compare {
            iteration,
            detection,
        } => Ok((iteration, detection)),
        _ => Err(WireError::BadTag {
            what: "Net::Compare",
            tag: buf.first().copied().unwrap_or(u8::MAX),
        }),
    }
}

// ---------------------------------------------------------------------------
// Event codec
// ---------------------------------------------------------------------------

/// Encode a driver-bound event into a frame body.
pub(crate) fn encode_event(ev: &Event) -> Vec<u8> {
    let mut buf = Vec::new();
    match ev {
        Event::BuddyDead { reporter, dead } => {
            put_u8(&mut buf, 0);
            put_usize(&mut buf, *reporter);
            put_usize(&mut buf, *dead);
        }
        Event::CheckpointDone {
            node,
            round,
            iteration,
            verified,
        } => {
            put_u8(&mut buf, 1);
            put_usize(&mut buf, *node);
            put_u64(&mut buf, *round);
            put_u64(&mut buf, *iteration);
            put_u8(
                &mut buf,
                match verified {
                    None => 0,
                    Some(false) => 1,
                    Some(true) => 2,
                },
            );
        }
        Event::SdcDetected {
            node,
            iteration,
            diverged,
            payload_len,
            fields_flagged,
        } => {
            put_u8(&mut buf, 2);
            put_usize(&mut buf, *node);
            put_u64(&mut buf, *iteration);
            put_u64(&mut buf, diverged.len() as u64);
            for range in diverged {
                put_usize(&mut buf, range.start);
                put_usize(&mut buf, range.end);
            }
            put_usize(&mut buf, *payload_len);
            put_usize(&mut buf, *fields_flagged);
        }
        Event::FaultInjected { node, at, fault } => {
            put_u8(&mut buf, 3);
            put_usize(&mut buf, *node);
            put_f64(&mut buf, *at);
            put_node_fault(&mut buf, *fault);
        }
        Event::RolledBack { node } => {
            put_u8(&mut buf, 4);
            put_usize(&mut buf, *node);
        }
        Event::Installed { node, iteration } => {
            put_u8(&mut buf, 5);
            put_usize(&mut buf, *node);
            put_u64(&mut buf, *iteration);
        }
        Event::AllTasksDone { node } => {
            put_u8(&mut buf, 6);
            put_usize(&mut buf, *node);
        }
        Event::Pong { node, token } => {
            put_u8(&mut buf, 7);
            put_usize(&mut buf, *node);
            put_u64(&mut buf, *token);
        }
        Event::FinalState {
            node,
            identity,
            tasks,
        } => {
            put_u8(&mut buf, 8);
            put_usize(&mut buf, *node);
            match identity {
                None => put_u8(&mut buf, 0),
                Some((replica, rank)) => {
                    put_u8(&mut buf, 1);
                    put_u8(&mut buf, *replica);
                    put_usize(&mut buf, *rank);
                }
            }
            put_u64(&mut buf, tasks.len() as u64);
            for t in tasks {
                put_bytes(&mut buf, t);
            }
        }
        Event::TransportStale { node } => {
            put_u8(&mut buf, 9);
            put_usize(&mut buf, *node);
        }
        Event::VerifiedState {
            node,
            round,
            iteration,
            digest,
            payload,
        } => {
            put_u8(&mut buf, 10);
            put_usize(&mut buf, *node);
            put_u64(&mut buf, *round);
            put_u64(&mut buf, *iteration);
            put_u64(&mut buf, *digest);
            put_bytes(&mut buf, payload);
        }
    }
    buf
}

/// Decode a frame body into a driver-bound event.
pub(crate) fn decode_event(buf: &[u8]) -> Result<Event, WireError> {
    let mut r = Reader::new(buf);
    let ev = match r.u8()? {
        0 => Event::BuddyDead {
            reporter: r.usize()?,
            dead: r.usize()?,
        },
        1 => Event::CheckpointDone {
            node: r.usize()?,
            round: r.u64()?,
            iteration: r.u64()?,
            verified: match r.u8()? {
                0 => None,
                1 => Some(false),
                2 => Some(true),
                t => {
                    return Err(WireError::BadTag {
                        what: "CheckpointDone.verified",
                        tag: t,
                    })
                }
            },
        },
        2 => {
            let node = r.usize()?;
            let iteration = r.u64()?;
            let n = r.usize()?;
            if n > MAX_FRAME_BODY / 16 {
                return Err(WireError::TooLarge(n));
            }
            let mut diverged = Vec::with_capacity(n);
            for _ in 0..n {
                let start = r.usize()?;
                let end = r.usize()?;
                diverged.push(start..end);
            }
            Event::SdcDetected {
                node,
                iteration,
                diverged,
                payload_len: r.usize()?,
                fields_flagged: r.usize()?,
            }
        }
        3 => Event::FaultInjected {
            node: r.usize()?,
            at: r.f64()?,
            fault: get_node_fault(&mut r)?,
        },
        4 => Event::RolledBack { node: r.usize()? },
        5 => Event::Installed {
            node: r.usize()?,
            iteration: r.u64()?,
        },
        6 => Event::AllTasksDone { node: r.usize()? },
        7 => Event::Pong {
            node: r.usize()?,
            token: r.u64()?,
        },
        8 => {
            let node = r.usize()?;
            let identity = match r.u8()? {
                0 => None,
                1 => Some((r.u8()?, r.usize()?)),
                t => {
                    return Err(WireError::BadTag {
                        what: "FinalState.identity",
                        tag: t,
                    })
                }
            };
            let n = r.usize()?;
            if n > MAX_FRAME_BODY / 8 {
                return Err(WireError::TooLarge(n));
            }
            let mut tasks = Vec::with_capacity(n);
            for _ in 0..n {
                tasks.push(Bytes::copy_from_slice(r.bytes()?));
            }
            Event::FinalState {
                node,
                identity,
                tasks,
            }
        }
        9 => Event::TransportStale { node: r.usize()? },
        10 => Event::VerifiedState {
            node: r.usize()?,
            round: r.u64()?,
            iteration: r.u64()?,
            digest: r.u64()?,
            payload: Bytes::copy_from_slice(r.bytes()?),
        },
        t => {
            return Err(WireError::BadTag {
                what: "Event",
                tag: t,
            })
        }
    };
    r.finish()?;
    Ok(ev)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_nets() -> Vec<Net> {
        vec![
            Net::App {
                to_task: 3,
                epoch: 7,
                msg: AppMsg {
                    from: TaskId { rank: 1, task: 2 },
                    tag: 99,
                    data: vec![1, 2, 3, 255],
                },
            },
            Net::Consensus {
                scope: Scope::Global,
                msg: ConsensusMsg::Start { round: 5 },
            },
            Net::Consensus {
                scope: Scope::Replica(1),
                msg: ConsensusMsg::Contribute { round: 5, max: 42 },
            },
            Net::Consensus {
                scope: Scope::Global,
                msg: ConsensusMsg::Decide {
                    round: 5,
                    iteration: 40,
                },
            },
            Net::Consensus {
                scope: Scope::Global,
                msg: ConsensusMsg::ReadyUp { round: 5 },
            },
            Net::Consensus {
                scope: Scope::Replica(0),
                msg: ConsensusMsg::Go { round: 5 },
            },
            Net::Compare {
                iteration: 40,
                detection: Detection::Payload(Bytes::from_static(b"payload")),
            },
            Net::Compare {
                iteration: 40,
                detection: Detection::Digest(0xdead_beef),
            },
            Net::Compare {
                iteration: 40,
                detection: Detection::DigestTable {
                    digest: 0xfeed,
                    table: ChunkTable {
                        chunk_size: 64,
                        digests: vec![1, 2, 3],
                    },
                },
            },
            Net::Compare {
                iteration: 42,
                detection: Detection::Delta {
                    base_iteration: 40,
                    payload_len: 10,
                    digest: 0xabcd,
                    table: ChunkTable {
                        chunk_size: 4,
                        digests: vec![11, 22, 33],
                    },
                    dirty: vec![
                        (0, Bytes::from_static(b"abcd")),
                        (2, Bytes::from_static(b"xy")),
                    ],
                },
            },
            Net::Compare {
                iteration: 43,
                detection: Detection::Delta {
                    base_iteration: 41,
                    payload_len: 0,
                    digest: 0,
                    table: ChunkTable {
                        chunk_size: 4,
                        digests: vec![],
                    },
                    dirty: vec![],
                },
            },
            Net::CompareResult {
                iteration: 40,
                clean: true,
            },
            Net::CompareResult {
                iteration: 41,
                clean: false,
            },
            Net::Install {
                checkpoint: Checkpoint::new(9, Bytes::from_static(b"state"), 0xabc),
            },
            Net::Install {
                checkpoint: Checkpoint::with_chunks(
                    9,
                    Bytes::from_static(b"statestate"),
                    0xabc,
                    ChunkTable {
                        chunk_size: 4,
                        digests: vec![7, 8, 9],
                    },
                ),
            },
            Net::Heartbeat { from: 4 },
            Net::Ctrl(Ctrl::StartRound {
                scope: Scope::Global,
                round: 2,
            }),
            Net::Ctrl(Ctrl::AbortRound { floor: 3 }),
            Net::Ctrl(Ctrl::Rollback { floor: 4 }),
            Net::Ctrl(Ctrl::SendVerifiedTo { to: 6 }),
            Net::Ctrl(Ctrl::AssumeIdentity {
                replica: 1,
                rank: 3,
                buddy: 2,
                floor: 11,
            }),
            Net::Ctrl(Ctrl::BuddyChanged { buddy: 5 }),
            Net::Ctrl(Ctrl::RoundComplete),
            Net::Ctrl(Ctrl::Park),
            Net::Ctrl(Ctrl::Resume { floor: 12 }),
            Net::Ctrl(Ctrl::HardRestart { floor: 13 }),
            Net::Ctrl(Ctrl::InjectCrash),
            Net::Ctrl(Ctrl::InjectSdc { seed: 77, bits: 3 }),
            Net::Ctrl(Ctrl::ScheduleFault {
                at_iteration: 100,
                fault: NodeFault::Sdc { seed: 5, bits: 2 },
            }),
            Net::Ctrl(Ctrl::ScheduleFault {
                at_iteration: 101,
                fault: NodeFault::Crash,
            }),
            Net::Ctrl(Ctrl::MuteHeartbeats { secs: 0.125 }),
            Net::Ctrl(Ctrl::Ping { token: 31 }),
            Net::Ctrl(Ctrl::Shutdown),
            Net::Ctrl(Ctrl::LayoutChanged { dead: 3 }),
            Net::Ctrl(Ctrl::ReportVerified { round: 17 }),
            Net::Ctrl(Ctrl::Halt),
        ]
    }

    fn all_events() -> Vec<Event> {
        vec![
            Event::BuddyDead {
                reporter: 1,
                dead: 2,
            },
            Event::CheckpointDone {
                node: 0,
                round: 3,
                iteration: 40,
                verified: None,
            },
            Event::CheckpointDone {
                node: 0,
                round: 3,
                iteration: 40,
                verified: Some(false),
            },
            Event::CheckpointDone {
                node: 0,
                round: 3,
                iteration: 40,
                verified: Some(true),
            },
            Event::SdcDetected {
                node: 2,
                iteration: 40,
                diverged: vec![0..8, 64..72],
                payload_len: 128,
                fields_flagged: 1,
            },
            Event::FaultInjected {
                node: 1,
                at: 0.25,
                fault: NodeFault::Crash,
            },
            Event::FaultInjected {
                node: 1,
                at: 0.5,
                fault: NodeFault::Sdc { seed: 9, bits: 1 },
            },
            Event::RolledBack { node: 3 },
            Event::Installed {
                node: 4,
                iteration: 40,
            },
            Event::AllTasksDone { node: 5 },
            Event::Pong { node: 6, token: 8 },
            Event::FinalState {
                node: 7,
                identity: Some((1, 3)),
                tasks: vec![Bytes::from_static(b"a"), Bytes::from_static(b"bb")],
            },
            Event::FinalState {
                node: 8,
                identity: None,
                tasks: vec![],
            },
            Event::TransportStale { node: 9 },
            Event::VerifiedState {
                node: 10,
                round: 4,
                iteration: 80,
                digest: 0xfeed,
                payload: Bytes::from_static(b"ckpt"),
            },
        ]
    }

    /// Debug-format equality stands in for PartialEq (Net/Event carry types
    /// without Eq); the codec round-trip must preserve every field.
    #[test]
    fn net_codec_round_trips_every_variant() {
        for msg in all_nets() {
            let body = encode_net(&msg);
            let back = decode_net(&body).expect("decodes");
            assert_eq!(format!("{msg:?}"), format!("{back:?}"));
        }
    }

    #[test]
    fn event_codec_round_trips_every_variant() {
        for ev in all_events() {
            let body = encode_event(&ev);
            let back = decode_event(&body).expect("decodes");
            assert_eq!(format!("{ev:?}"), format!("{back:?}"));
        }
    }

    #[test]
    fn frame_round_trips_through_incremental_decoder() {
        let bodies: Vec<Vec<u8>> = all_nets().iter().map(encode_net).collect();
        let mut stream = Vec::new();
        for (i, body) in bodies.iter().enumerate() {
            stream.extend_from_slice(&encode_frame(i as u32, i as u64 + 1, body));
        }
        // Feed one byte at a time: the decoder must handle any split.
        let mut dec = FrameDecoder::new();
        let mut out = Vec::new();
        for b in &stream {
            dec.feed(std::slice::from_ref(b));
            while let Some(f) = dec.next_frame().expect("clean stream") {
                out.push(f);
            }
        }
        assert_eq!(out.len(), bodies.len());
        for (i, f) in out.iter().enumerate() {
            assert_eq!(f.to, i as u32);
            assert_eq!(f.seq, i as u64 + 1);
            assert_eq!(f.body, bodies[i]);
        }
    }

    #[test]
    fn decoder_rejects_garbage_prefix_and_corrupt_body() {
        let mut dec = FrameDecoder::new();
        dec.feed(b"GETS / HTTP/1.1\r\n\r\n__");
        assert!(matches!(dec.next_frame(), Err(WireError::BadMagic(_))));

        let mut frame = encode_frame(1, 1, b"hello world body");
        let flip = FRAME_HEADER + 3;
        frame[flip] ^= 0x40;
        let mut dec = FrameDecoder::new();
        dec.feed(&frame);
        assert!(matches!(dec.next_frame(), Err(WireError::Checksum { .. })));
    }

    #[test]
    fn hello_and_welcome_round_trip() {
        let h = Hello {
            job: 7,
            node: 5,
            last_recv_seq: 123,
            codecs: codec_mask_all(),
        };
        let buf = encode_hello(&h);
        assert_eq!(buf.len(), HELLO_LEN);
        assert_eq!(decode_hello(&buf).unwrap(), h);

        let w = Welcome {
            last_recv_seq: 456,
            cfg: WelcomeCfg {
                ranks: 4,
                tasks_per_rank: 1,
                spares: 2,
                total: 10,
                detection: DetectionMethod::ChunkedChecksum,
                chunk_size: 2048,
                heartbeat_period_ns: 5_000_000,
                heartbeat_timeout_ns: 40_000_000,
                delta_checkpoints: true,
                delta_anchor_interval: 16,
            },
            codec: WireCodec::Lz,
        };
        let buf = encode_welcome(&w);
        assert_eq!(buf.len(), WELCOME_LEN);
        assert_eq!(decode_welcome(&buf).unwrap(), w);
    }

    fn delta_compare(dirty: Vec<(u32, Bytes)>) -> Net {
        Net::Compare {
            iteration: 42,
            detection: Detection::Delta {
                base_iteration: 41,
                payload_len: 10,
                digest: 0xfeed_f00d,
                table: ChunkTable {
                    chunk_size: 4,
                    digests: vec![1, 2, 3],
                },
                dirty,
            },
        }
    }

    /// The transport classifies delta ship traffic by peeking at fixed
    /// offsets in the Compare body instead of running the full decoder;
    /// this test pins those offsets so a codec reshuffle cannot silently
    /// break the accounting.
    #[test]
    fn delta_compare_body_offsets_are_pinned() {
        let body = encode_net(&delta_compare(vec![(1, Bytes::from_static(b"abcd"))]));
        assert_eq!(body[0], 2, "Net::Compare tag");
        assert_eq!(u64::from_le_bytes(body[1..9].try_into().unwrap()), 42);
        assert_eq!(body[9], 3, "Detection::Delta tag");
        assert_eq!(
            u64::from_le_bytes(body[10..18].try_into().unwrap()),
            41,
            "base_iteration"
        );
        assert_eq!(
            u64::from_le_bytes(body[18..26].try_into().unwrap()),
            10,
            "payload_len"
        );
        assert_eq!(
            u64::from_le_bytes(body[26..34].try_into().unwrap()),
            0xfeed_f00d,
            "digest"
        );
        assert_eq!(
            u32::from_le_bytes(body[34..38].try_into().unwrap()),
            1,
            "dirty count"
        );
    }

    #[test]
    fn malformed_delta_records_are_rejected() {
        let w4 = Bytes::from_static(b"abcd");
        let w2 = Bytes::from_static(b"xy");
        // Well-formed baselines decode.
        assert!(decode_net(&encode_net(&delta_compare(vec![]))).is_ok());
        assert!(decode_net(&encode_net(&delta_compare(vec![
            (0, w4.clone()),
            (2, w2.clone())
        ])))
        .is_ok());
        let bad = vec![
            // Out-of-bounds chunk index (3 chunks: 0..=2).
            delta_compare(vec![(3, w2.clone())]),
            // Non-increasing indices.
            delta_compare(vec![(1, w4.clone()), (1, w4.clone())]),
            delta_compare(vec![(2, w2.clone()), (0, w4.clone())]),
            // Window length disagrees with the chunk span (tail is 2 bytes).
            delta_compare(vec![(2, w4.clone())]),
            delta_compare(vec![(0, w2.clone())]),
        ];
        for msg in bad {
            let body = encode_net(&msg);
            assert!(decode_net(&body).is_err(), "{msg:?} must be rejected");
        }
        // Truncation anywhere in the record is rejected.
        let body = encode_net(&delta_compare(vec![(0, w4), (2, w2)]));
        for cut in 1..body.len() {
            assert!(decode_net(&body[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn codec_negotiation_prefers_offered_codec_else_none() {
        assert_eq!(
            negotiate_codec(WireCodec::Lz, codec_mask_all()),
            WireCodec::Lz
        );
        assert_eq!(
            negotiate_codec(WireCodec::Rle, WireCodec::None.bit() | WireCodec::Rle.bit()),
            WireCodec::Rle
        );
        assert_eq!(
            negotiate_codec(WireCodec::Lz, WireCodec::None.bit()),
            WireCodec::None
        );
    }

    fn decode_all(bytes: &[u8]) -> Vec<Frame> {
        let mut dec = FrameDecoder::new();
        dec.feed(bytes);
        let mut out = Vec::new();
        while let Some(f) = dec.next_frame().expect("clean stream") {
            out.push(f);
        }
        out
    }

    #[test]
    fn batch_of_many_frames_round_trips_and_never_costs_bytes() {
        for codec in [WireCodec::None, WireCodec::Rle, WireCodec::Lz] {
            let bodies: Vec<Vec<u8>> = all_nets().iter().map(encode_net).collect();
            let records: Vec<(u32, u64, &[u8])> = bodies
                .iter()
                .enumerate()
                .map(|(i, b)| (i as u32, i as u64 + 1, b.as_slice()))
                .collect();
            let batch = encode_batch(&records, codec);
            let plain: usize = bodies
                .iter()
                .map(|b| FRAME_HEADER + b.len() + FRAME_TRAILER)
                .sum();
            assert!(
                batch.bytes.len() <= plain,
                "{codec:?}: batch {} > plain {plain}",
                batch.bytes.len()
            );
            let frames = decode_all(&batch.bytes);
            assert_eq!(frames.len(), records.len());
            for (f, (to, seq, body)) in frames.iter().zip(&records) {
                assert_eq!((f.to, f.seq, f.body.as_slice()), (*to, *seq, *body));
            }
        }
    }

    #[test]
    fn two_frame_batch_beats_two_plain_frames() {
        // The smallest possible batch must already undercut plain framing —
        // the "batching must not regress" gate holds by construction.
        let records: Vec<(u32, u64, &[u8])> = vec![(1, 1, b"x"), (2, 2, b"y")];
        let batch = encode_batch(&records, WireCodec::None);
        let plain = 2 * (FRAME_HEADER + 1 + FRAME_TRAILER);
        assert!(batch.bytes.len() < plain);
        assert_eq!(decode_all(&batch.bytes).len(), 2);
    }

    #[test]
    fn incompressible_singleton_stays_a_plain_frame() {
        // Pseudo-random bytes: neither codec can shrink them, so a lone
        // frame must keep the cheaper plain encoding.
        let mut x = 0x9e3779b97f4a7c15u64;
        let body: Vec<u8> = (0..512)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        for codec in [WireCodec::Rle, WireCodec::Lz] {
            let batch = encode_batch(&[(3, 7, body.as_slice())], codec);
            assert_eq!(batch.codec, WireCodec::None);
            assert_eq!(batch.bytes.len(), FRAME_HEADER + body.len() + FRAME_TRAILER);
            let frames = decode_all(&batch.bytes);
            assert_eq!(frames[0].body, body);
        }
    }

    #[test]
    fn compressible_singleton_ships_compressed() {
        let body = vec![0u8; 4096];
        for codec in [WireCodec::Rle, WireCodec::Lz] {
            let batch = encode_batch(&[(3, 7, body.as_slice())], codec);
            assert_eq!(batch.codec, codec, "{codec:?} should win on zeros");
            assert!(batch.bytes.len() < body.len() / 4);
            let frames = decode_all(&batch.bytes);
            assert_eq!(frames.len(), 1);
            assert_eq!(frames[0].body, body);
        }
    }

    #[test]
    fn rle_and_lz_round_trip_awkward_inputs() {
        let cases: Vec<Vec<u8>> = vec![
            vec![],
            vec![7],
            vec![0; 1],
            vec![0; 2],
            vec![0; 3],
            vec![0; 127],
            vec![0; 128],
            vec![0; 129],
            vec![0; 100_000],
            (0..=255u8).collect(),
            (0..1024).map(|i| (i % 7) as u8).collect(),
            b"abcabcabcabcabcabcabcabc".to_vec(),
            {
                let mut v = vec![1, 2, 3, 4];
                v.extend_from_slice(&[9u8; 300]);
                v.extend_from_slice(&[1, 2, 3, 4, 1, 2, 3, 4]);
                v
            },
        ];
        for data in &cases {
            let c = rle_compress(data);
            assert_eq!(&rle_decompress(&c, data.len()).unwrap(), data, "rle");
            let c = lz_compress(data);
            assert_eq!(&lz_decompress(&c, data.len()).unwrap(), data, "lz");
        }
    }

    #[test]
    fn corrupt_super_frames_poison_the_decoder() {
        let records: Vec<(u32, u64, &[u8])> = vec![(1, 1, &[0u8; 300]), (2, 2, &[0u8; 300])];
        let good = encode_batch(&records, WireCodec::Lz).bytes;

        // Flipped payload bit → checksum failure.
        let mut bad = good.clone();
        bad[SUPER_HEADER + 2] ^= 0x10;
        let mut dec = FrameDecoder::new();
        dec.feed(&bad);
        assert!(matches!(dec.next_frame(), Err(WireError::Checksum { .. })));
        assert!(dec.next_frame().is_err(), "decoder must stay poisoned");

        // Lying raw_len (header is not checksummed) → strict tiling check.
        let mut bad = good.clone();
        bad[11] ^= 0x01;
        let mut dec = FrameDecoder::new();
        dec.feed(&bad);
        assert!(dec.next_frame().is_err());

        // Lying count.
        let mut bad = good.clone();
        bad[8] = bad[8].wrapping_add(1);
        let mut dec = FrameDecoder::new();
        dec.feed(&bad);
        assert!(dec.next_frame().is_err());

        // Unknown codec tag.
        let mut bad = good;
        bad[10] = 0xEE;
        let mut dec = FrameDecoder::new();
        dec.feed(&bad);
        assert!(matches!(
            dec.next_frame(),
            Err(WireError::BadTag {
                what: "WireCodec",
                ..
            })
        ));
    }

    #[test]
    fn mixed_plain_and_super_frames_share_one_stream() {
        let a = encode_frame(1, 1, b"plain");
        let recs: Vec<(u32, u64, &[u8])> = vec![(2, 2, b"bb"), (3, 3, b"ccc")];
        let b = encode_batch(&recs, WireCodec::Rle).bytes;
        let c = encode_frame(4, 4, b"tail");
        let mut stream = Vec::new();
        stream.extend_from_slice(&a);
        stream.extend_from_slice(&b);
        stream.extend_from_slice(&c);
        // Byte-at-a-time: partial super-frames must decode as Ok(None).
        let mut dec = FrameDecoder::new();
        let mut out = Vec::new();
        for byte in &stream {
            dec.feed(std::slice::from_ref(byte));
            while let Some(f) = dec.next_frame().expect("clean stream") {
                out.push(f);
            }
        }
        let got: Vec<(u32, u64)> = out.iter().map(|f| (f.to, f.seq)).collect();
        assert_eq!(got, vec![(1, 1), (2, 2), (3, 3), (4, 4)]);
    }
}
