//! The job driver: launches the node threads, triggers checkpoint rounds,
//! reacts to failure reports, and executes the recovery schemes.
//!
//! In the paper's Charm++ implementation these responsibilities live in the
//! distributed runtime; here the *mechanisms* (consensus, buddy exchange,
//! comparison, heartbeat detection, state transfer) are fully distributed
//! across the node threads, while the *policy* reactions (when to open a
//! round, which recovery plan to execute) are centralized in this driver —
//! an engineering simplification that leaves every protocol code path
//! exercised for real.

use std::collections::{BTreeMap, HashSet, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use acr_core::{DetectionMethod, RecoveryPlanner, ReplicaLayout, Scheme};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::RwLock;

use crate::message::{Ctrl, Event, Net, NodeIndex, Scope};
use crate::node::{NodeConfig, NodeWorker, TaskFactory};
use crate::task::Task;
use crate::trace::trace;

/// Configuration of a replicated job.
#[derive(Debug, Clone)]
pub struct JobConfig {
    /// Ranks per replica.
    pub ranks: usize,
    /// Tasks per rank.
    pub tasks_per_rank: usize,
    /// Spare nodes reserved for crash recovery (§2.1).
    pub spares: usize,
    /// Recovery scheme (§2.3).
    pub scheme: Scheme,
    /// SDC detection method (§4.2).
    pub detection: DetectionMethod,
    /// Bytes per chunk of the fused pack+digest pipeline — the granularity
    /// at which a detected divergence is localized. Must be a positive
    /// multiple of 4.
    pub chunk_size: usize,
    /// Periodic checkpoint interval.
    pub checkpoint_interval: Duration,
    /// Buddy heartbeat period.
    pub heartbeat_period: Duration,
    /// Silence after which a buddy is declared dead (§6.1).
    pub heartbeat_timeout: Duration,
    /// Wall-clock safety limit; exceeding it fails the job.
    pub max_duration: Duration,
}

impl Default for JobConfig {
    fn default() -> Self {
        Self {
            ranks: 4,
            tasks_per_rank: 1,
            spares: 2,
            scheme: Scheme::Strong,
            detection: DetectionMethod::FullCompare,
            chunk_size: acr_pup::DEFAULT_CHUNK_SIZE,
            checkpoint_interval: Duration::from_millis(150),
            heartbeat_period: Duration::from_millis(10),
            heartbeat_timeout: Duration::from_millis(80),
            max_duration: Duration::from_secs(60),
        }
    }
}

/// A fault to inject while the job runs (§6.1 methodology).
#[derive(Debug, Clone, Copy)]
pub enum Fault {
    /// Fail-stop: the node hosting `(replica, rank)` stops responding.
    Crash {
        /// Victim replica.
        replica: u8,
        /// Victim rank.
        rank: usize,
    },
    /// Flip one random bit of PUP-visible state on `(replica, rank)`.
    Sdc {
        /// Victim replica.
        replica: u8,
        /// Victim rank.
        rank: usize,
        /// Injection seed.
        seed: u64,
    },
}

/// One SDC detection, with the divergence localization the chunk table (or
/// windowed payload diff) provided.
#[derive(Debug, Clone)]
pub struct SdcDetection {
    /// Node that performed the comparison (replica-1 side).
    pub node: NodeIndex,
    /// Iteration of the mismatching checkpoint.
    pub iteration: u64,
    /// Diverged payload byte ranges, sorted and coalesced. The whole payload
    /// when the detection method cannot localize (plain `Checksum`).
    pub diverged: Vec<std::ops::Range<usize>>,
    /// Local checkpoint payload length.
    pub payload_len: usize,
    /// Mismatching fields found by the field-level re-check restricted to
    /// the diverged ranges (`FullCompare` only; 0 otherwise).
    pub fields_flagged: usize,
}

impl SdcDetection {
    /// Total bytes across the diverged ranges.
    pub fn diverged_bytes(&self) -> usize {
        self.diverged.iter().map(|r| r.end - r.start).sum()
    }
}

/// Outcome of a job run.
#[derive(Debug, Default)]
pub struct JobReport {
    /// Coordinated checkpoints that passed buddy comparison.
    pub checkpoints_verified: usize,
    /// Checkpoint rounds whose comparison found silent data corruption.
    pub sdc_rounds_detected: usize,
    /// Per-detection localization records (one per mismatching node-pair
    /// comparison, possibly several per detected round).
    pub sdc_detections: Vec<SdcDetection>,
    /// Rollbacks of both replicas (SDC response).
    pub rollbacks: usize,
    /// Hard errors recovered via spare promotion.
    pub hard_errors_recovered: usize,
    /// Recovery checkpoints installed without comparison (medium/weak).
    pub unverified_recoveries: usize,
    /// Restarts from the very beginning (crash before the first verified
    /// checkpoint).
    pub restarts_from_beginning: usize,
    /// The job ran to completion (vs. timed out or ran out of spares).
    pub completed: bool,
    /// Failure description when `completed` is false.
    pub error: Option<String>,
    /// Final packed task states per `(replica, rank)`.
    pub final_states: BTreeMap<(u8, usize), Vec<Bytes>>,
}

impl JobReport {
    /// Whether the two replicas finished with bit-identical application
    /// state — the ground-truth check that no SDC survived.
    pub fn replicas_agree(&self) -> bool {
        let ranks: HashSet<usize> = self.final_states.keys().map(|&(_, rank)| rank).collect();
        ranks.iter().all(|&rank| {
            match (
                self.final_states.get(&(0, rank)),
                self.final_states.get(&(1, rank)),
            ) {
                (Some(a), Some(b)) => a == b,
                _ => false,
            }
        })
    }

    /// Final state of one task, if present.
    pub fn task_state(&self, replica: u8, rank: usize, task: usize) -> Option<&Bytes> {
        self.final_states.get(&(replica, rank))?.get(task)
    }
}

#[derive(Debug)]
enum Phase {
    Running,
    GlobalRound {
        round: u64,
        pending: HashSet<NodeIndex>,
        sdc: bool,
        iteration: u64,
    },
    AwaitRollback {
        pending: HashSet<NodeIndex>,
    },
    Recovery(Recovery),
}

#[derive(Debug)]
struct Recovery {
    expect_installed: HashSet<NodeIndex>,
    expect_rolled: HashSet<NodeIndex>,
    expect_ckpt: HashSet<NodeIndex>,
    ship_round: Option<u64>,
    to_resume: Vec<NodeIndex>,
    counts_as_unverified: bool,
}

impl Recovery {
    fn finished(&self) -> bool {
        self.expect_installed.is_empty()
            && self.expect_rolled.is_empty()
            && self.expect_ckpt.is_empty()
    }
}

/// A replicated job. Construct with [`Job::run`].
pub struct Job;

struct Driver {
    cfg: JobConfig,
    layout: Arc<RwLock<ReplicaLayout>>,
    peers: Arc<Vec<Sender<Net>>>,
    events: Receiver<Event>,
    start: Instant,
    round_counter: u64,
    phase: Phase,
    verified_exists: bool,
    weak_parked: bool,
    /// `(replica, rank)` of the most recent crash recovery (identifies the
    /// parked replica for the deferred weak-scheme ship).
    last_recovery_identity: Option<(u8, usize)>,
    done_nodes: HashSet<NodeIndex>,
    dead_nodes: HashSet<NodeIndex>,
    pending_failures: VecDeque<NodeIndex>,
    next_ckpt: f64,
    report: JobReport,
}

impl Job {
    /// Run a job to completion: spawn `2·ranks + spares` node threads, keep
    /// it checkpointing, inject `faults` at their scheduled offsets, and
    /// collect the report.
    ///
    /// `factory` constructs task `task` of rank `rank`; it is called
    /// identically for both replicas (and again for spare-node restarts),
    /// so it must be deterministic.
    pub fn run<F>(cfg: JobConfig, factory: F, faults: Vec<(Duration, Fault)>) -> JobReport
    where
        F: Fn(usize, usize) -> Box<dyn Task> + Send + Sync + 'static,
    {
        assert!(cfg.ranks >= 1 && cfg.tasks_per_rank >= 1);
        assert!(
            cfg.chunk_size >= 4 && cfg.chunk_size.is_multiple_of(4),
            "chunk_size must be a positive multiple of 4"
        );
        let total = 2 * cfg.ranks + cfg.spares;
        let layout = Arc::new(RwLock::new(
            ReplicaLayout::new(total, cfg.spares).expect("valid job shape"),
        ));
        let factory: Arc<TaskFactory> = Arc::new(factory);
        let (event_tx, event_rx) = unbounded::<Event>();
        let mut senders = Vec::with_capacity(total);
        let mut receivers = Vec::with_capacity(total);
        for _ in 0..total {
            let (tx, rx) = unbounded::<Net>();
            senders.push(tx);
            receivers.push(rx);
        }
        let peers = Arc::new(senders);
        let start = Instant::now();

        let mut handles = Vec::with_capacity(total);
        for (index, inbox) in receivers.into_iter().enumerate() {
            let node_cfg = NodeConfig {
                index,
                ranks: cfg.ranks,
                tasks_per_rank: cfg.tasks_per_rank,
                detection: cfg.detection,
                chunk_size: cfg.chunk_size,
                heartbeat_period: cfg.heartbeat_period,
                heartbeat_timeout: cfg.heartbeat_timeout,
            };
            let identity = layout.read().locate(index);
            let worker = NodeWorker::new(
                node_cfg,
                identity,
                Arc::clone(&layout),
                Arc::clone(&peers),
                event_tx.clone(),
                inbox,
                Arc::clone(&factory),
                start,
            );
            handles.push(
                std::thread::Builder::new()
                    .name(format!("acr-node-{index}"))
                    .spawn(move || worker.run())
                    .expect("spawn node thread"),
            );
        }

        let mut driver = Driver {
            next_ckpt: cfg.checkpoint_interval.as_secs_f64(),
            cfg,
            layout,
            peers,
            events: event_rx,
            start,
            round_counter: 0,
            phase: Phase::Running,
            verified_exists: false,
            weak_parked: false,
            last_recovery_identity: None,
            done_nodes: HashSet::new(),
            dead_nodes: HashSet::new(),
            pending_failures: VecDeque::new(),
            report: JobReport::default(),
        };
        driver.event_loop(faults);
        driver.shutdown(handles)
    }
}

impl Driver {
    fn now(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    fn send(&self, node: NodeIndex, ctrl: Ctrl) {
        let _ = self.peers[node].send(Net::Ctrl(ctrl));
    }

    fn active_nodes(&self) -> Vec<NodeIndex> {
        self.layout
            .read()
            .active_nodes()
            .map(|(n, _, _)| n)
            .collect()
    }

    fn replica_nodes(&self, replica: u8) -> Vec<NodeIndex> {
        let layout = self.layout.read();
        (0..layout.ranks())
            .map(|r| layout.host(replica, r))
            .collect()
    }

    fn alloc_round(&mut self) -> u64 {
        self.round_counter += 1;
        self.round_counter
    }

    fn event_loop(&mut self, mut faults: Vec<(Duration, Fault)>) {
        faults.sort_by_key(|(t, _)| *t);
        let mut faults = VecDeque::from(faults);
        let max = self.cfg.max_duration.as_secs_f64();
        loop {
            if let Ok(ev) = self.events.recv_timeout(Duration::from_millis(1)) {
                self.handle_event(ev);
            }
            let now = self.now();
            if now > max {
                self.report.error = Some(format!(
                    "job exceeded max_duration ({max:.1}s) in phase {:?}",
                    self.phase
                ));
                return;
            }
            // Inject due faults regardless of phase — failures don't wait.
            while let Some(&(at, fault)) = faults.front() {
                if at.as_secs_f64() > now {
                    break;
                }
                faults.pop_front();
                self.inject(fault);
            }
            if matches!(self.phase, Phase::Running) {
                if let Some(dead) = self.pending_failures.pop_front() {
                    self.start_recovery(dead);
                    continue;
                }
                let everyone_done = self
                    .active_nodes()
                    .iter()
                    .all(|n| self.done_nodes.contains(n));
                if everyone_done && !self.weak_parked {
                    self.report.completed = true;
                    return;
                }
                if now >= self.next_ckpt {
                    if self.weak_parked {
                        self.start_ship_round();
                    } else {
                        self.start_global_round();
                    }
                }
            }
        }
    }

    fn inject(&mut self, fault: Fault) {
        let layout = self.layout.read();
        match fault {
            Fault::Crash { replica, rank } => {
                let node = layout.host(replica, rank);
                drop(layout);
                self.send(node, Ctrl::InjectCrash);
            }
            Fault::Sdc {
                replica,
                rank,
                seed,
            } => {
                let node = layout.host(replica, rank);
                drop(layout);
                self.send(node, Ctrl::InjectSdc { seed });
            }
        }
    }

    fn start_global_round(&mut self) {
        let round = self.alloc_round();
        let nodes = self.active_nodes();
        for &n in &nodes {
            self.send(
                n,
                Ctrl::StartRound {
                    scope: Scope::Global,
                    round,
                },
            );
        }
        self.phase = Phase::GlobalRound {
            round,
            pending: nodes.into_iter().collect(),
            sdc: false,
            iteration: 0,
        };
    }

    fn handle_event(&mut self, ev: Event) {
        match ev {
            Event::BuddyDead { dead, .. } => self.on_dead(dead),
            Event::CheckpointDone {
                node,
                round,
                iteration,
                verified,
            } => {
                match &mut self.phase {
                    Phase::GlobalRound {
                        round: r,
                        pending,
                        sdc,
                        iteration: it,
                    } if *r == round => {
                        pending.remove(&node);
                        *it = iteration;
                        if verified == Some(false) {
                            *sdc = true;
                        }
                        if pending.is_empty() {
                            let had_sdc = *sdc;
                            if had_sdc {
                                self.report.sdc_rounds_detected += 1;
                                self.begin_rollback();
                            } else {
                                self.report.checkpoints_verified += 1;
                                self.verified_exists = true;
                                for n in self.active_nodes() {
                                    self.send(n, Ctrl::RoundComplete);
                                }
                                self.back_to_running();
                            }
                        }
                    }
                    Phase::Recovery(rec) if rec.ship_round == Some(round) => {
                        rec.expect_ckpt.remove(&node);
                        self.maybe_finish_recovery();
                    }
                    _ => {} // stale round
                }
            }
            Event::SdcDetected {
                node,
                iteration,
                diverged,
                payload_len,
                fields_flagged,
            } => {
                // Rounds are counted via the CheckpointDone verdicts; here we
                // record where the corruption was localized.
                self.report.sdc_detections.push(SdcDetection {
                    node,
                    iteration,
                    diverged,
                    payload_len,
                    fields_flagged,
                });
            }
            Event::RolledBack { node } => match &mut self.phase {
                Phase::AwaitRollback { pending } => {
                    pending.remove(&node);
                    if pending.is_empty() {
                        self.back_to_running();
                    }
                }
                Phase::Recovery(rec) => {
                    rec.expect_rolled.remove(&node);
                    self.maybe_finish_recovery();
                }
                _ => {}
            },
            Event::Installed { node, .. } => {
                if let Phase::Recovery(rec) = &mut self.phase {
                    rec.expect_installed.remove(&node);
                    self.maybe_finish_recovery();
                }
            }
            Event::AllTasksDone { node } => {
                self.done_nodes.insert(node);
            }
            Event::FinalState { .. } => {
                // Only expected during shutdown; ignore here.
            }
        }
    }

    fn begin_rollback(&mut self) {
        self.report.rollbacks += 1;
        let floor = self.alloc_round();
        let nodes = self.active_nodes();
        for &n in &nodes {
            self.done_nodes.remove(&n);
            self.send(n, Ctrl::Rollback { floor });
        }
        self.phase = Phase::AwaitRollback {
            pending: nodes.into_iter().collect(),
        };
    }

    fn back_to_running(&mut self) {
        self.phase = Phase::Running;
        self.next_ckpt = self.now() + self.cfg.checkpoint_interval.as_secs_f64();
    }

    fn on_dead(&mut self, dead: NodeIndex) {
        if self.dead_nodes.contains(&dead) || self.layout.read().locate(dead).is_none() {
            return; // duplicate report or not an active node
        }
        trace!(
            "[driver t={:.3}] node {dead} declared dead (phase {:?})",
            self.now(),
            self.phase
        );
        self.dead_nodes.insert(dead);
        self.done_nodes.remove(&dead);
        match &self.phase {
            Phase::Running => self.start_recovery(dead),
            Phase::GlobalRound { round, .. } => {
                // The dead node will never finish the round: abort it, then
                // recover.
                let stale = *round;
                let floor = self.alloc_round();
                for n in self.active_nodes() {
                    if n != dead {
                        self.send(n, Ctrl::AbortRound { floor });
                    }
                }
                let _ = stale;
                self.phase = Phase::Running;
                self.start_recovery(dead);
            }
            _ => self.pending_failures.push_back(dead),
        }
    }

    fn start_recovery(&mut self, dead: NodeIndex) {
        let Some((replica, rank)) = self.layout.read().locate(dead) else {
            return;
        };
        let spare = match self.layout.write().replace_with_spare(dead) {
            Ok(s) => s,
            Err(e) => {
                self.report.error = Some(format!("cannot recover node {dead}: {e}"));
                self.report.completed = false;
                // Force the loop to end via max_duration; mark by setting
                // next_ckpt far away.
                self.next_ckpt = f64::INFINITY;
                return;
            }
        };
        self.report.hard_errors_recovered += 1;
        self.last_recovery_identity = Some((replica, rank));
        let healthy = 1 - replica;
        let buddy_node = self.layout.read().host(healthy, rank);
        let floor = self.alloc_round();

        // Quiesce the crashed replica (its other nodes keep state; the
        // spare starts parked by construction).
        let crashed_nodes = self.replica_nodes(replica);
        for &n in &crashed_nodes {
            if n != spare {
                self.send(n, Ctrl::Park);
            }
            self.done_nodes.remove(&n);
        }
        self.send(
            spare,
            Ctrl::AssumeIdentity {
                replica,
                rank,
                buddy: buddy_node,
                floor,
            },
        );
        self.send(buddy_node, Ctrl::BuddyChanged { buddy: spare });

        // Consult the planner for the scheme's action list (the executable
        // plan is what §2.3 specifies; the driver is its interpreter).
        let planner = RecoveryPlanner::new(self.cfg.scheme, self.cfg.ranks);
        let _plan = planner.plan_hard_error(dead, buddy_node, spare, replica);

        if !self.verified_exists {
            // Crash before any verified checkpoint: restart everything.
            self.report.restarts_from_beginning += 1;
            let all = self.active_nodes();
            for &n in &all {
                self.done_nodes.remove(&n);
                self.send(n, Ctrl::Rollback { floor });
            }
            self.phase = Phase::Recovery(Recovery {
                expect_installed: HashSet::new(),
                expect_rolled: all.iter().copied().collect(),
                expect_ckpt: HashSet::new(),
                ship_round: None,
                to_resume: crashed_nodes,
                counts_as_unverified: false,
            });
            return;
        }

        match self.cfg.scheme {
            Scheme::Strong => {
                self.send(buddy_node, Ctrl::SendVerifiedTo { to: spare });
                let mut expect_rolled = HashSet::new();
                for &n in &crashed_nodes {
                    if n != spare {
                        self.send(n, Ctrl::Rollback { floor });
                        expect_rolled.insert(n);
                    }
                }
                self.phase = Phase::Recovery(Recovery {
                    expect_installed: [spare].into_iter().collect(),
                    expect_rolled,
                    expect_ckpt: HashSet::new(),
                    ship_round: None,
                    to_resume: crashed_nodes,
                    counts_as_unverified: false,
                });
            }
            Scheme::Medium => {
                let ship_round = self.alloc_round();
                let healthy_nodes = self.replica_nodes(healthy);
                for &n in &healthy_nodes {
                    self.send(
                        n,
                        Ctrl::StartRound {
                            scope: Scope::Replica(healthy),
                            round: ship_round,
                        },
                    );
                }
                self.phase = Phase::Recovery(Recovery {
                    expect_installed: crashed_nodes.iter().copied().collect(),
                    expect_rolled: HashSet::new(),
                    expect_ckpt: healthy_nodes.into_iter().collect(),
                    ship_round: Some(ship_round),
                    to_resume: crashed_nodes,
                    counts_as_unverified: true,
                });
            }
            Scheme::Weak => {
                // Let the healthy replica run on; ship at the next periodic
                // checkpoint time (§2.3: "zero-overhead" recovery).
                self.weak_parked = true;
                self.phase = Phase::Running;
            }
        }
    }

    /// The deferred weak-scheme ship: run a replica-local checkpoint in the
    /// healthy replica and install it across the parked replica.
    fn start_ship_round(&mut self) {
        self.weak_parked = false;
        let (replica, _) = self
            .last_recovery_identity
            .expect("weak ship requires a recorded recovery");
        let healthy = 1 - replica;
        let ship_round = self.alloc_round();
        let healthy_nodes = self.replica_nodes(healthy);
        let crashed_nodes = self.replica_nodes(replica);
        for &n in &healthy_nodes {
            self.send(
                n,
                Ctrl::StartRound {
                    scope: Scope::Replica(healthy),
                    round: ship_round,
                },
            );
        }
        self.phase = Phase::Recovery(Recovery {
            expect_installed: crashed_nodes.iter().copied().collect(),
            expect_rolled: HashSet::new(),
            expect_ckpt: healthy_nodes.into_iter().collect(),
            ship_round: Some(ship_round),
            to_resume: crashed_nodes,
            counts_as_unverified: true,
        });
    }

    fn maybe_finish_recovery(&mut self) {
        let Phase::Recovery(rec) = &self.phase else {
            return;
        };
        if !rec.finished() {
            return;
        }
        let Phase::Recovery(rec) = std::mem::replace(&mut self.phase, Phase::Running) else {
            unreachable!()
        };
        if rec.counts_as_unverified {
            self.report.unverified_recoveries += 1;
            // The shipped state becomes the de-facto baseline.
            self.verified_exists = true;
        }
        let floor = self.alloc_round();
        // Unpause the shipping replica's engines and unpark the recovered
        // replica.
        for n in self.active_nodes() {
            self.send(n, Ctrl::RoundComplete);
        }
        for n in rec.to_resume {
            self.send(n, Ctrl::Resume { floor });
        }
        self.back_to_running();
    }

    fn shutdown(&mut self, handles: Vec<std::thread::JoinHandle<()>>) -> JobReport {
        let total = self.peers.len();
        for n in 0..total {
            self.send(n, Ctrl::Shutdown);
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut received = 0;
        while received < total && Instant::now() < deadline {
            match self.events.recv_timeout(Duration::from_millis(50)) {
                Ok(Event::FinalState {
                    identity, tasks, ..
                }) => {
                    received += 1;
                    if let Some((replica, rank)) = identity {
                        if !tasks.is_empty() {
                            self.report.final_states.insert((replica, rank), tasks);
                        }
                    }
                }
                Ok(_) => {}
                Err(_) => break,
            }
        }
        for h in handles {
            let _ = h.join();
        }
        std::mem::take(&mut self.report)
    }
}
