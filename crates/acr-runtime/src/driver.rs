//! The job driver: launches the node workers, triggers checkpoint rounds,
//! reacts to failure reports, and executes the recovery schemes.
//!
//! In the paper's Charm++ implementation these responsibilities live in the
//! distributed runtime; here the *mechanisms* (consensus, buddy exchange,
//! comparison, heartbeat detection, state transfer) are fully distributed
//! across the node workers, while the *policy* reactions (when to open a
//! round, which recovery plan to execute) are centralized in this driver —
//! an engineering simplification that leaves every protocol code path
//! exercised for real.
//!
//! Two execution modes share all of that policy code ([`ExecMode`]):
//!
//! * **Threaded** — every node is an OS thread, time is the wall clock; the
//!   production-shaped mode.
//! * **Virtual** — all nodes are pumped round-robin on the caller's thread
//!   against a simulated [`Clock`] that advances in fixed quanta between
//!   passes. Message order, heartbeat expiry, fault triggers, and therefore
//!   the entire event trace are a pure function of the configuration and
//!   fault script — the substrate of the deterministic fault campaigns.

use std::collections::{BTreeMap, HashSet, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use acr_core::{Checkpoint, DetectionMethod, RecoveryPlanner, ReplicaLayout, Scheme};
use acr_fault::{FaultAction, FaultScript, ScriptedFault, Trigger};
use acr_obs::{debug_trace, EventKind, ObsConfig, RecordedEvent, Recorder, RunPhase, DRIVER_NODE};
use acr_store::{RecoveryReport, SlotData, SlotEntry};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver};
use parking_lot::RwLock;

use crate::clock::Clock;
use crate::message::{Ctrl, Event, Net, NodeFault, NodeIndex, Scope};
use crate::node::{NodeConfig, NodeWorker, Pump, TaskFactory};
use crate::persist::{
    AdmitRecord, CommitRecord, DriverRecord, DriverStore, ResumePlan, NO_NODE, REPORT_FILE,
};
use crate::task::Task;
use crate::transport::{build_fabric, FabricHandle, Port, TransportKind};

/// Configuration of a replicated job.
#[derive(Debug, Clone)]
pub struct JobConfig {
    /// Ranks per replica.
    pub ranks: usize,
    /// Tasks per rank.
    pub tasks_per_rank: usize,
    /// Spare nodes reserved for crash recovery (§2.1).
    pub spares: usize,
    /// Recovery scheme (§2.3).
    pub scheme: Scheme,
    /// SDC detection method (§4.2).
    pub detection: DetectionMethod,
    /// Bytes per chunk of the fused pack+digest pipeline — the granularity
    /// at which a detected divergence is localized. Must be a positive
    /// multiple of 4.
    pub chunk_size: usize,
    /// Periodic checkpoint interval.
    pub checkpoint_interval: Duration,
    /// Buddy heartbeat period.
    pub heartbeat_period: Duration,
    /// Silence after which a buddy is declared dead (§6.1).
    pub heartbeat_timeout: Duration,
    /// Ship incremental delta checkpoints on the buddy-compare path:
    /// between full-checkpoint anchors, only chunks whose digests changed
    /// since the previous round travel, and clean chunks are covered by
    /// their digest table. Only effective with
    /// [`DetectionMethod::FullCompare`] (the checksum methods already ship
    /// a few bytes per round); correctness never depends on it — any base
    /// mismatch falls back to a full ship.
    pub delta_checkpoints: bool,
    /// Rounds between full-checkpoint anchors when `delta_checkpoints` is
    /// on: every K-th compare ships the whole payload so a corrupted or
    /// lost base can never persist. Must be ≥ 1 when deltas are enabled.
    pub delta_anchor_interval: u32,
    /// Job-clock safety limit; exceeding it fails the job. Wall seconds in
    /// threaded mode, virtual seconds under [`ExecMode::Virtual`].
    pub max_duration: Duration,
    /// Flight-recorder configuration: master switch and per-node ring
    /// capacity. Disabled, every instrumentation site costs one relaxed
    /// atomic load.
    pub obs: ObsConfig,
    /// Wire fabric the job's messages travel over. The TCP backend
    /// requires [`ExecMode::Threaded`]; [`ExecMode::Virtual`] runs are
    /// in-process by construction.
    pub transport: TransportKind,
    /// Durable store directory, enabling driver crash-restart: the driver
    /// journals every policy decision to an append-only event log and
    /// persists each verified epoch into alternating checkpoint slots, so
    /// a killed job can be resumed with [`Job::resume`]. `None` (the
    /// default) keeps the job fully in-memory and byte-identical to
    /// pre-persistence behavior.
    pub persist_dir: Option<PathBuf>,
    /// Bind address (e.g. `"127.0.0.1:7070"`, or port `0` for an
    /// OS-assigned port) of the opt-in operator endpoint serving
    /// `GET /metrics`, `GET /status`, and `GET /events?since=<seq>` from a
    /// dedicated listener thread for the lifetime of the job. `None` (the
    /// default) serves nothing. Read-only: the endpoint observes the
    /// flight recorder and never perturbs the protocol or the job clock.
    pub http_addr: Option<String>,
    /// Where the driver publishes the endpoint's *bound* address once the
    /// listener is up — the only way to learn the port when `http_addr`
    /// asked for port `0`.
    pub http_bound: Option<crate::http::AddrSlot>,
}

impl Default for JobConfig {
    fn default() -> Self {
        Self {
            ranks: 4,
            tasks_per_rank: 1,
            spares: 2,
            scheme: Scheme::Strong,
            detection: DetectionMethod::FullCompare,
            chunk_size: acr_pup::DEFAULT_CHUNK_SIZE,
            checkpoint_interval: Duration::from_millis(150),
            heartbeat_period: Duration::from_millis(10),
            heartbeat_timeout: Duration::from_millis(80),
            delta_checkpoints: false,
            delta_anchor_interval: 16,
            max_duration: Duration::from_secs(60),
            obs: ObsConfig::default(),
            transport: TransportKind::InProcess,
            persist_dir: None,
            http_addr: None,
            http_bound: None,
        }
    }
}

impl JobConfig {
    /// Start building a validated configuration from the defaults. Unlike
    /// a raw struct literal, [`JobConfigBuilder::build`] checks every
    /// shape invariant up front and reports a [`ConfigError`] instead of
    /// panicking mid-job.
    pub fn builder() -> JobConfigBuilder {
        JobConfigBuilder {
            cfg: JobConfig::default(),
        }
    }

    /// Check the mode-independent invariants (the builder's checks, for
    /// configurations that bypassed it).
    pub(crate) fn validate(&self) -> Result<(), ConfigError> {
        if self.ranks == 0 {
            return Err(ConfigError::ZeroRanks);
        }
        if self.tasks_per_rank == 0 {
            return Err(ConfigError::ZeroTasksPerRank);
        }
        if self.chunk_size < 4 || !self.chunk_size.is_multiple_of(4) {
            return Err(ConfigError::BadChunkSize {
                got: self.chunk_size,
            });
        }
        if self.delta_checkpoints && self.delta_anchor_interval == 0 {
            return Err(ConfigError::BadDeltaAnchor);
        }
        if self.heartbeat_period.is_zero() || self.heartbeat_timeout <= self.heartbeat_period {
            return Err(ConfigError::BadHeartbeat {
                period: self.heartbeat_period,
                timeout: self.heartbeat_timeout,
            });
        }
        let total = 2 * self.ranks + self.spares;
        if let Err(e) = ReplicaLayout::new(total, self.spares) {
            return Err(ConfigError::BadLayout {
                total,
                spares: self.spares,
                reason: format!("{e:?}"),
            });
        }
        Ok(())
    }
}

/// An invalid job configuration (or configuration/mode combination),
/// reported by [`JobConfigBuilder::build`] before a job ever starts
/// instead of by a runtime panic halfway into one.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `ranks` must be at least 1.
    ZeroRanks,
    /// `tasks_per_rank` must be at least 1.
    ZeroTasksPerRank,
    /// `chunk_size` must be a positive multiple of 4 (the fused pipeline
    /// digests word-aligned chunks).
    BadChunkSize {
        /// The rejected value.
        got: usize,
    },
    /// `heartbeat_timeout` must exceed `heartbeat_period` (and the period
    /// must be nonzero) or every buddy is declared dead on its first
    /// silent interval.
    BadHeartbeat {
        /// Configured heartbeat period.
        period: Duration,
        /// Configured heartbeat timeout.
        timeout: Duration,
    },
    /// The derived `2·ranks + spares` node layout cannot be split into
    /// two replicas plus a spare pool.
    BadLayout {
        /// Total nodes the shape implies.
        total: usize,
        /// Spares requested.
        spares: usize,
        /// Underlying layout error.
        reason: String,
    },
    /// `delta_anchor_interval` must be ≥ 1 when `delta_checkpoints` is
    /// enabled — an interval of 0 would never ship a full anchor and a
    /// lost base could stall delta shipping forever.
    BadDeltaAnchor,
    /// The TCP transport needs wall-clock threads;
    /// [`ExecMode::Virtual`] runs are in-process by construction.
    TcpRequiresThreaded,
    /// A virtual-mode quantum must be positive or time never advances.
    ZeroQuantum,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroRanks => write!(f, "ranks must be >= 1"),
            ConfigError::ZeroTasksPerRank => write!(f, "tasks_per_rank must be >= 1"),
            ConfigError::BadChunkSize { got } => {
                write!(f, "chunk_size must be a positive multiple of 4, got {got}")
            }
            ConfigError::BadHeartbeat { period, timeout } => write!(
                f,
                "heartbeat_timeout ({timeout:?}) must exceed a nonzero heartbeat_period \
                 ({period:?})"
            ),
            ConfigError::BadLayout {
                total,
                spares,
                reason,
            } => write!(
                f,
                "cannot lay out {total} nodes with {spares} spares as two replicas: {reason}"
            ),
            ConfigError::BadDeltaAnchor => {
                write!(
                    f,
                    "delta_anchor_interval must be >= 1 when delta_checkpoints is enabled"
                )
            }
            ConfigError::TcpRequiresThreaded => {
                write!(f, "the TCP transport requires ExecMode::Threaded")
            }
            ConfigError::ZeroQuantum => write!(f, "virtual quantum must be positive"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Builder for [`JobConfig`] with up-front validation: start from
/// [`JobConfig::builder`], chain setters, finish with
/// [`build`](JobConfigBuilder::build) — the one place shape invariants
/// are checked, so misconfigurations fail as a typed [`ConfigError`]
/// instead of a panic once the job is already running.
///
/// ```
/// use acr_runtime::JobConfig;
///
/// let cfg = JobConfig::builder()
///     .ranks(2)
///     .spares(2)
///     .build()
///     .expect("valid config");
/// assert_eq!(cfg.ranks, 2);
/// assert!(JobConfig::builder().chunk_size(6).build().is_err());
/// ```
#[derive(Debug, Clone)]
pub struct JobConfigBuilder {
    cfg: JobConfig,
}

impl JobConfigBuilder {
    /// Ranks per replica (must end up ≥ 1).
    pub fn ranks(mut self, ranks: usize) -> Self {
        self.cfg.ranks = ranks;
        self
    }

    /// Tasks per rank (must end up ≥ 1).
    pub fn tasks_per_rank(mut self, tasks: usize) -> Self {
        self.cfg.tasks_per_rank = tasks;
        self
    }

    /// Spare nodes reserved for crash recovery.
    pub fn spares(mut self, spares: usize) -> Self {
        self.cfg.spares = spares;
        self
    }

    /// Recovery scheme.
    pub fn scheme(mut self, scheme: Scheme) -> Self {
        self.cfg.scheme = scheme;
        self
    }

    /// SDC detection method.
    pub fn detection(mut self, detection: DetectionMethod) -> Self {
        self.cfg.detection = detection;
        self
    }

    /// Chunk size of the fused pack+digest pipeline (positive multiple
    /// of 4).
    pub fn chunk_size(mut self, bytes: usize) -> Self {
        self.cfg.chunk_size = bytes;
        self
    }

    /// Periodic checkpoint interval.
    pub fn checkpoint_interval(mut self, interval: Duration) -> Self {
        self.cfg.checkpoint_interval = interval;
        self
    }

    /// Buddy heartbeat period (must end up nonzero and below the
    /// timeout).
    pub fn heartbeat_period(mut self, period: Duration) -> Self {
        self.cfg.heartbeat_period = period;
        self
    }

    /// Silence after which a buddy is declared dead.
    pub fn heartbeat_timeout(mut self, timeout: Duration) -> Self {
        self.cfg.heartbeat_timeout = timeout;
        self
    }

    /// Enable incremental delta checkpoints on the buddy-compare path.
    pub fn delta_checkpoints(mut self, on: bool) -> Self {
        self.cfg.delta_checkpoints = on;
        self
    }

    /// Rounds between full-checkpoint anchors under delta shipping (must
    /// end up ≥ 1 when deltas are enabled).
    pub fn delta_anchor_interval(mut self, rounds: u32) -> Self {
        self.cfg.delta_anchor_interval = rounds;
        self
    }

    /// Job-clock safety limit.
    pub fn max_duration(mut self, limit: Duration) -> Self {
        self.cfg.max_duration = limit;
        self
    }

    /// Flight-recorder configuration.
    pub fn obs(mut self, obs: ObsConfig) -> Self {
        self.cfg.obs = obs;
        self
    }

    /// Wire fabric the job's messages travel over.
    pub fn transport(mut self, transport: TransportKind) -> Self {
        self.cfg.transport = transport;
        self
    }

    /// Enable durable persistence into `dir` (event log + checkpoint
    /// slots), making the job resumable with [`Job::resume`].
    pub fn persist_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cfg.persist_dir = Some(dir.into());
        self
    }

    /// Serve the operator endpoint (`/metrics`, `/status`,
    /// `/events?since=`) on `addr` for the lifetime of the job. Use port
    /// `0` plus [`JobConfigBuilder::http_bound`] to let the OS pick.
    pub fn http_addr(mut self, addr: impl Into<String>) -> Self {
        self.cfg.http_addr = Some(addr.into());
        self
    }

    /// Publish the endpoint's bound address into `slot` once the listener
    /// is up (needed to discover an OS-assigned port while the job is
    /// still running).
    pub fn http_bound(mut self, slot: crate::http::AddrSlot) -> Self {
        self.cfg.http_bound = Some(slot);
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<JobConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// How a job executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// One OS thread per node, wall-clock time.
    Threaded,
    /// All nodes pumped on the calling thread against a simulated clock
    /// advancing `quantum` per scheduler pass: fully deterministic.
    Virtual {
        /// Virtual time added after each round-robin pass. Smaller quanta
        /// give finer-grained timing (and slower runs); must be positive.
        quantum: Duration,
    },
}

impl ExecMode {
    /// The default deterministic mode: virtual time at a 1 ms quantum.
    pub fn virtual_default() -> Self {
        ExecMode::Virtual {
            quantum: Duration::from_millis(1),
        }
    }
}

/// A fault to inject while the job runs (§6.1 methodology).
#[derive(Debug, Clone, Copy)]
pub enum Fault {
    /// Fail-stop: the node hosting `(replica, rank)` stops responding.
    Crash {
        /// Victim replica.
        replica: u8,
        /// Victim rank.
        rank: usize,
    },
    /// Flip one random bit of PUP-visible state on `(replica, rank)`.
    Sdc {
        /// Victim replica.
        replica: u8,
        /// Victim rank.
        rank: usize,
        /// Injection seed.
        seed: u64,
    },
}

/// One SDC detection, with the divergence localization the chunk table (or
/// windowed payload diff) provided.
#[derive(Debug, Clone)]
pub struct SdcDetection {
    /// Node that performed the comparison (replica-1 side).
    pub node: NodeIndex,
    /// Iteration of the mismatching checkpoint.
    pub iteration: u64,
    /// Diverged payload byte ranges, sorted and coalesced. The whole payload
    /// when the detection method cannot localize (plain `Checksum`).
    pub diverged: Vec<std::ops::Range<usize>>,
    /// Local checkpoint payload length.
    pub payload_len: usize,
    /// Mismatching fields found by the field-level re-check restricted to
    /// the diverged ranges (`FullCompare` only; 0 otherwise).
    pub fields_flagged: usize,
}

impl SdcDetection {
    /// Total bytes across the diverged ranges.
    pub fn diverged_bytes(&self) -> usize {
        self.diverged.iter().map(|r| r.end - r.start).sum()
    }
}

/// Outcome of a job run.
#[derive(Debug, Default)]
pub struct JobReport {
    /// Coordinated checkpoints that passed buddy comparison.
    pub checkpoints_verified: usize,
    /// Checkpoint rounds whose comparison found silent data corruption.
    pub sdc_rounds_detected: usize,
    /// Per-detection localization records (one per mismatching node-pair
    /// comparison, possibly several per detected round).
    pub sdc_detections: Vec<SdcDetection>,
    /// Rollbacks of both replicas (SDC response).
    pub rollbacks: usize,
    /// Hard errors recovered via spare promotion.
    pub hard_errors_recovered: usize,
    /// Recovery checkpoints installed without comparison (medium/weak).
    pub unverified_recoveries: usize,
    /// Restarts from the very beginning (crash before the first verified
    /// checkpoint, or a failure landing inside an in-flight recovery that
    /// leaves no consistent checkpoint line).
    pub restarts_from_beginning: usize,
    /// The job ran to completion (vs. timed out or ran out of spares).
    pub completed: bool,
    /// Failure description when `completed` is false.
    pub error: Option<String>,
    /// Final packed task states per `(replica, rank)`.
    pub final_states: BTreeMap<(u8, usize), Vec<Bytes>>,
    /// Job-clock duration of the run (wall or virtual seconds).
    pub duration: f64,
    /// Timestamped event trace. Under [`ExecMode::Virtual`] this is byte-
    /// for-byte reproducible for a given configuration and fault script —
    /// the campaign determinism check compares exactly these lines.
    pub trace: Vec<String>,
    /// Job-clock start times of rounds that completed verified-clean.
    pub verified_round_starts: Vec<f64>,
    /// Job-clock times of unverified (medium/weak ship) recoveries.
    pub unverified_recoveries_at: Vec<f64>,
    /// Job-clock times SDC injections actually landed (node-reported).
    pub sdc_injected_at: Vec<f64>,
    /// Job-clock times crash injections actually landed (node-reported).
    pub crashes_injected_at: Vec<f64>,
    /// The flight-recorder event log, drained at shutdown and merged into
    /// emission order. Serialize with [`acr_obs::sinks::to_jsonl`]; fold
    /// into a per-phase overhead breakdown with
    /// [`acr_obs::Breakdown::from_events`]. Under [`ExecMode::Virtual`]
    /// the serialized log is byte-identical across replays of the same
    /// configuration and script.
    pub events: Vec<RecordedEvent>,
    /// Prometheus-style text snapshot of the recorder's counters and
    /// histograms at shutdown.
    pub metrics: String,
    /// Machine-readable recovery report when this run was produced by
    /// [`Job::resume`]: which slot was loaded, how much of the journal
    /// replayed, and what was skipped or repaired along the way.
    pub recovery: Option<RecoveryReport>,
}

impl JobReport {
    /// Whether the two replicas finished with bit-identical application
    /// state — the ground-truth check that no SDC survived.
    pub fn replicas_agree(&self) -> bool {
        let ranks: HashSet<usize> = self.final_states.keys().map(|&(_, rank)| rank).collect();
        ranks.iter().all(|&rank| {
            match (
                self.final_states.get(&(0, rank)),
                self.final_states.get(&(1, rank)),
            ) {
                (Some(a), Some(b)) => a == b,
                _ => false,
            }
        })
    }

    /// Final state of one task, if present.
    pub fn task_state(&self, replica: u8, rank: usize, task: usize) -> Option<&Bytes> {
        self.final_states.get(&(replica, rank))?.get(task)
    }
}

#[derive(Debug)]
enum Phase {
    Running,
    GlobalRound {
        round: u64,
        pending: HashSet<NodeIndex>,
        sdc: bool,
        iteration: u64,
        started: f64,
    },
    AwaitRollback {
        pending: HashSet<NodeIndex>,
    },
    Recovery(Recovery),
    /// A verified round is being captured into the durable store: every
    /// active node was asked to report its verified state, and the epoch
    /// commits to a slot once all reports are in. Only entered when
    /// persistence is configured.
    Persist {
        round: u64,
        iteration: u64,
        pending: HashSet<NodeIndex>,
        states: BTreeMap<(u8, usize), (u64, u64, Bytes)>,
    },
}

#[derive(Debug)]
struct Recovery {
    expect_installed: HashSet<NodeIndex>,
    expect_rolled: HashSet<NodeIndex>,
    expect_ckpt: HashSet<NodeIndex>,
    ship_round: Option<u64>,
    to_resume: Vec<NodeIndex>,
    counts_as_unverified: bool,
    /// A further failure landed inside this recovery and broke its
    /// dependency chain; when the surviving expectations drain, the driver
    /// restarts the job from the beginning instead of resuming.
    failed: bool,
}

impl Recovery {
    fn finished(&self) -> bool {
        self.expect_installed.is_empty()
            && self.expect_rolled.is_empty()
            && self.expect_ckpt.is_empty()
    }
}

/// A scripted fault awaiting its driver-side trigger. `seq` is the fault's
/// index in the script, the identity the journal uses to avoid re-firing
/// already-consumed faults after a resume.
#[derive(Debug, Clone, Copy)]
struct PendingTrigger {
    seq: usize,
    when: Trigger,
    action: FaultAction,
}

/// An outstanding driver liveness probe (see [`Ctrl::Ping`]): the backstop
/// failure detector for deaths the buddy-heartbeat graph cannot observe,
/// e.g. both members of a buddy pair crashing close together so that
/// neither lives to report the other.
#[derive(Debug)]
struct Probe {
    token: u64,
    sent_at: f64,
    awaiting: HashSet<NodeIndex>,
}

#[derive(Debug, PartialEq, Eq)]
enum LoopCtl {
    Continue,
    Done,
}

/// A replicated job. Configure with [`Job::new`], optionally attach a
/// fault scenario and an execution mode, then [`JobBuilder::run`]:
///
/// ```no_run
/// use acr_runtime::{ExecMode, Job, JobConfig};
/// # fn factory(_rank: usize, _task: usize) -> Box<dyn acr_runtime::Task> { unimplemented!() }
///
/// let cfg = JobConfig::builder().ranks(2).build().unwrap();
/// let report = Job::new(cfg)
///     .mode(ExecMode::virtual_default())
///     .run(factory);
/// assert!(report.completed);
/// ```
pub struct Job;

/// A configured job, ready to run: holds the validated [`JobConfig`],
/// the fault scenario (empty by default), and the execution mode
/// (threaded by default). Produced by [`Job::new`].
#[derive(Debug, Clone)]
pub struct JobBuilder {
    pub(crate) cfg: JobConfig,
    pub(crate) script: FaultScript,
    pub(crate) mode: ExecMode,
    /// Set by [`Job::resume`]: rebuild configuration, script, and state
    /// from this store directory instead of the fields above.
    pub(crate) resume_from: Option<PathBuf>,
}

impl JobBuilder {
    /// Attach a scripted fault scenario (replacing any previous one).
    pub fn with_faults(mut self, script: FaultScript) -> Self {
        self.script = script;
        self
    }

    /// Attach wall-clock-offset faults, the ergonomic form for threaded
    /// demos: each entry fires at its [`Duration`] into the run.
    pub fn with_timed_faults(mut self, faults: Vec<(Duration, Fault)>) -> Self {
        let mut script = FaultScript::new();
        for (at, fault) in faults {
            let when = Trigger::At(at.as_secs_f64());
            let action = match fault {
                Fault::Crash { replica, rank } => FaultAction::Crash { replica, rank },
                Fault::Sdc {
                    replica,
                    rank,
                    seed,
                } => FaultAction::Sdc {
                    replica,
                    rank,
                    seed,
                    bits: 1,
                },
            };
            script.push(when, action);
        }
        self.script = script;
        self
    }

    /// Select the execution mode (threaded wall clock by default).
    pub fn mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    /// Run the job to completion and collect its report.
    ///
    /// `factory` constructs task `task` of rank `rank`; it is called
    /// identically for both replicas (and again for spare-node restarts),
    /// so it must be deterministic. Under [`ExecMode::Virtual`] the run
    /// is deterministic end to end: the same configuration and script
    /// always produce the same [`JobReport`], event trace included, byte
    /// for byte.
    ///
    /// # Panics
    ///
    /// If the configuration bypassed [`JobConfig::builder`] and violates
    /// a shape invariant, or the configuration/mode combination is
    /// invalid ([`ConfigError::TcpRequiresThreaded`],
    /// [`ConfigError::ZeroQuantum`]).
    pub fn run<F>(self, factory: F) -> JobReport
    where
        F: Fn(usize, usize) -> Box<dyn Task> + Send + Sync + 'static,
    {
        if let Some(dir) = self.resume_from {
            return resume_job(dir, factory);
        }
        run_job(self.cfg, factory, &self.script, self.mode, None)
    }
}

struct Driver {
    cfg: JobConfig,
    layout: Arc<RwLock<ReplicaLayout>>,
    port: Arc<dyn Port>,
    /// `2·ranks + spares` (the fabric no longer exposes a peers vec to
    /// count).
    total: usize,
    /// Remote node hosts keep private layout copies that must be told
    /// about spare promotions (`Ctrl::LayoutChanged`).
    distributed_layout: bool,
    /// Owns the transport's background machinery (TCP router/endpoints).
    fabric: FabricHandle,
    /// Nodes whose wire link went stale and are being probed: node →
    /// probe deadline (job clock). A Pong clears the suspicion; expiry
    /// declares the node dead.
    transport_suspects: BTreeMap<NodeIndex, f64>,
    events: Receiver<Event>,
    clock: Clock,
    round_counter: u64,
    phase: Phase,
    verified_exists: bool,
    weak_parked: bool,
    /// `(replica, rank)` of the most recent crash recovery (identifies the
    /// parked replica for the deferred weak-scheme ship).
    last_recovery_identity: Option<(u8, usize)>,
    /// A failure collapsed an in-flight recovery (or struck before any
    /// verified checkpoint): once pending promotions are done, hard-restart
    /// the whole job.
    needs_global_restart: bool,
    done_nodes: HashSet<NodeIndex>,
    dead_nodes: HashSet<NodeIndex>,
    pending_failures: VecDeque<NodeIndex>,
    triggers: Vec<PendingTrigger>,
    next_ckpt: f64,
    /// Job-clock time of the last node event (or waiting-phase entry):
    /// silence past this + 2·heartbeat_timeout in a waiting phase raises a
    /// liveness probe.
    last_event: f64,
    probe: Option<Probe>,
    report: JobReport,
    rec: Arc<Recorder>,
    /// Durable store (event log + checkpoint slots) when persistence is
    /// configured; `None` keeps the run fully in-memory.
    store: Option<DriverStore>,
    /// The armed script's faults, indexed by script position (`seq`).
    script_faults: Vec<ScriptedFault>,
    /// Per-`seq` fired flags, pre-seeded from the journal on resume so
    /// consumed faults never fire twice.
    fired: Vec<bool>,
    /// Checkpoint slot the next epoch commit writes (alternates A/B).
    next_slot: u8,
    /// A scripted `KillDriver` fired: stop the policy loop dead, skipping
    /// every shutdown nicety, to model a driver crash.
    killed: bool,
    /// Whether this run executes under [`ExecMode::Virtual`] (scripted
    /// driver kills are only meaningful there).
    virtual_mode: bool,
}

impl Job {
    /// Configure a job: returns a [`JobBuilder`] holding `cfg` with an
    /// empty fault scenario and the threaded execution mode, ready for
    /// [`JobBuilder::run`].
    #[allow(clippy::new_ret_no_self)]
    pub fn new(cfg: JobConfig) -> JobBuilder {
        JobBuilder {
            cfg,
            script: FaultScript::new(),
            mode: ExecMode::Threaded,
            resume_from: None,
        }
    }

    /// Resume a persisted virtual-mode job from its store directory.
    ///
    /// The returned builder ignores any configuration, script, or mode
    /// attached to it: everything is rebuilt from the journal's admission
    /// record — the job continues from its last committed epoch with the
    /// already-consumed script entries filtered out. `factory` must be the
    /// same deterministic task factory the original run used.
    ///
    /// Resume **fails closed**: a missing or closed journal, a threaded-
    /// mode journal, or an unrecoverable store (both slots unusable after
    /// a commit) produces a [`JobReport`] with `error` set and the
    /// diagnosis in `recovery` — it never guesses at state.
    pub fn resume(dir: impl Into<PathBuf>) -> JobBuilder {
        JobBuilder {
            cfg: JobConfig::default(),
            script: FaultScript::new(),
            mode: ExecMode::Threaded,
            resume_from: Some(dir.into()),
        }
    }
}

/// The one true job entry point ([`JobBuilder::run`] delegates here):
/// validate, build the fabric, spawn or pump the node workers, and drive
/// the policy loop to a report. `resume` carries the loaded [`ResumePlan`]
/// when this run continues a persisted job.
fn run_job<F>(
    cfg: JobConfig,
    factory: F,
    script: &FaultScript,
    mode: ExecMode,
    resume: Option<(PathBuf, ResumePlan)>,
) -> JobReport
where
    F: Fn(usize, usize) -> Box<dyn Task> + Send + Sync + 'static,
{
    {
        // Configurations from `JobConfig::builder()` already passed these
        // checks; raw struct literals get them here, fatally.
        if let Err(e) = cfg.validate() {
            panic!("invalid JobConfig: {e}");
        }
        if let ExecMode::Virtual { quantum } = mode {
            if quantum.is_zero() {
                panic!("invalid JobConfig: {}", ConfigError::ZeroQuantum);
            }
            if !matches!(cfg.transport, TransportKind::InProcess) {
                panic!("invalid JobConfig: {}", ConfigError::TcpRequiresThreaded);
            }
        }
        let total = 2 * cfg.ranks + cfg.spares;
        let layout = Arc::new(RwLock::new(
            ReplicaLayout::new(total, cfg.spares).expect("valid job shape"),
        ));
        let factory: Arc<TaskFactory> = Arc::new(factory);
        let (event_tx, event_rx) = unbounded::<Event>();
        let clock = match mode {
            ExecMode::Threaded => Clock::real(),
            ExecMode::Virtual { .. } => Clock::simulated(),
        };
        // One flight recorder serves the whole job; events are stamped with
        // the job clock, so virtual-mode logs are deterministic.
        let rec = {
            let c = clock.clone();
            Recorder::new(cfg.obs.clone(), total as u32, Arc::new(move || c.now()))
        };
        // The operator endpoint observes the recorder from its own thread;
        // it is up before the first protocol event and torn down after the
        // last, in both execution modes.
        let http = match &cfg.http_addr {
            Some(addr) => match crate::http::StatusServer::start(addr, Arc::clone(&rec)) {
                Ok(server) => {
                    if let Some(slot) = &cfg.http_bound {
                        slot.set(server.local_addr());
                    }
                    Some(server)
                }
                Err(e) => {
                    return JobReport {
                        error: Some(format!("cannot bind http endpoint {addr}: {e}")),
                        ..Default::default()
                    };
                }
            },
            None => None,
        };
        let fabric = build_fabric(&cfg, total, event_tx, &rec);

        let mut workers = Vec::with_capacity(total);
        for (index, (inbox, port)) in fabric
            .inboxes
            .into_iter()
            .zip(fabric.node_ports)
            .enumerate()
        {
            let node_cfg = NodeConfig {
                index,
                ranks: cfg.ranks,
                tasks_per_rank: cfg.tasks_per_rank,
                detection: cfg.detection,
                chunk_size: cfg.chunk_size,
                heartbeat_period: cfg.heartbeat_period,
                heartbeat_timeout: cfg.heartbeat_timeout,
                delta_checkpoints: cfg.delta_checkpoints,
                delta_anchor_interval: cfg.delta_anchor_interval,
                private_layout: false,
            };
            let identity = layout.read().locate(index);
            workers.push(NodeWorker::new(
                node_cfg,
                identity,
                Arc::clone(&layout),
                port,
                inbox,
                Arc::clone(&factory),
                clock.clone(),
                Arc::clone(&rec),
            ));
        }

        let remote_nodes = fabric.remote_nodes;
        let mut driver = Driver {
            next_ckpt: cfg.checkpoint_interval.as_secs_f64(),
            cfg,
            layout,
            port: fabric.driver_port,
            total,
            distributed_layout: remote_nodes,
            fabric: fabric.handle,
            transport_suspects: BTreeMap::new(),
            events: event_rx,
            clock,
            round_counter: 0,
            phase: Phase::Running,
            verified_exists: false,
            weak_parked: false,
            last_recovery_identity: None,
            needs_global_restart: false,
            done_nodes: HashSet::new(),
            dead_nodes: HashSet::new(),
            pending_failures: VecDeque::new(),
            triggers: Vec::new(),
            last_event: 0.0,
            probe: None,
            report: JobReport::default(),
            rec,
            store: None,
            script_faults: Vec::new(),
            fired: Vec::new(),
            next_slot: 0,
            killed: false,
            virtual_mode: matches!(mode, ExecMode::Virtual { .. }),
        };
        driver.rec.emit_with(DRIVER_NODE, || EventKind::JobStart {
            scheme: driver.cfg.scheme.name().to_string(),
            detection: driver.cfg.detection.name().to_string(),
            ranks: driver.cfg.ranks as u32,
            spares: driver.cfg.spares as u32,
        });
        driver.enter_phase(RunPhase::Forward);
        match resume {
            Some((dir, plan)) => driver.apply_resume(&dir, plan),
            None => {
                if let Some(dir) = driver.cfg.persist_dir.clone() {
                    match DriverStore::create(&dir, Arc::clone(&driver.rec)) {
                        Ok(store) => {
                            driver.store = Some(store);
                            let admit = admit_record(&driver.cfg, script, mode);
                            driver.journal(&DriverRecord::JobAdmitted(admit));
                        }
                        Err(e) => {
                            driver.report.error =
                                Some(format!("cannot create persist dir {}: {e}", dir.display()));
                        }
                    }
                }
                driver.arm_script(script, &HashSet::new());
            }
        }

        let report = match mode {
            ExecMode::Threaded => {
                let handles: Vec<_> = workers
                    .into_iter()
                    .enumerate()
                    .map(|(index, worker)| {
                        std::thread::Builder::new()
                            .name(format!("acr-node-{index}"))
                            .spawn(move || worker.run())
                            .expect("spawn node thread")
                    })
                    .collect();
                // Over TCP, hold the job until every node's link has
                // handshaken (local endpoints connect in microseconds;
                // remote node hosts may still be starting up).
                match driver.fabric.wait_transport_ready() {
                    Ok(()) => driver.run_threaded(),
                    Err(e) => {
                        driver.tlog(format!("transport never became ready: {e}"));
                        driver.report.error = Some(e);
                    }
                }
                driver.shutdown_threaded(handles)
            }
            ExecMode::Virtual { quantum } => {
                driver.run_virtual(&mut workers, quantum.as_secs_f64());
                std::mem::take(&mut driver.report)
            }
        };
        if let Some(server) = http {
            server.stop();
        }
        report
    }
}

/// Resume a persisted job ([`Job::resume`] delegates here): load and
/// validate the plan, rebuild the configuration from the admission record,
/// and hand [`run_job`] the plan to apply. Fails closed — any doubt about
/// the store's integrity returns an error report instead of a guess.
fn resume_job<F>(dir: PathBuf, factory: F) -> JobReport
where
    F: Fn(usize, usize) -> Box<dyn Task> + Send + Sync + 'static,
{
    let plan = match ResumePlan::load(&dir) {
        Ok(plan) => plan,
        Err((msg, report)) => {
            let _ = report.write_json(dir.join(REPORT_FILE));
            return JobReport {
                error: Some(msg),
                recovery: Some(report),
                ..Default::default()
            };
        }
    };
    let a = &plan.admit;
    let quantum = Duration::from_secs_f64(
        a.virtual_quantum
            .expect("ResumePlan::load refuses threaded journals"),
    );
    let cfg = JobConfig {
        ranks: a.ranks as usize,
        tasks_per_rank: a.tasks_per_rank as usize,
        spares: a.spares as usize,
        scheme: scheme_from_tag(a.scheme),
        detection: detection_from_tag(a.detection),
        chunk_size: a.chunk_size as usize,
        checkpoint_interval: Duration::from_secs_f64(a.checkpoint_interval),
        heartbeat_period: Duration::from_secs_f64(a.heartbeat_period),
        heartbeat_timeout: Duration::from_secs_f64(a.heartbeat_timeout),
        delta_checkpoints: a.delta_checkpoints,
        delta_anchor_interval: a.delta_anchor_interval,
        max_duration: Duration::from_secs_f64(a.max_duration),
        obs: ObsConfig::default(),
        transport: TransportKind::InProcess,
        persist_dir: Some(dir.clone()),
        http_addr: None,
        http_bound: None,
    };
    let script = plan.script.clone();
    run_job(
        cfg,
        factory,
        &script,
        ExecMode::Virtual { quantum },
        Some((dir, plan)),
    )
}

/// The journal's admission record for this job: everything a resume needs
/// to rebuild the configuration and script without the caller's help.
fn admit_record(cfg: &JobConfig, script: &FaultScript, mode: ExecMode) -> AdmitRecord {
    AdmitRecord {
        ranks: cfg.ranks as u64,
        tasks_per_rank: cfg.tasks_per_rank as u64,
        spares: cfg.spares as u64,
        scheme: scheme_tag(cfg.scheme),
        detection: detection_tag(cfg.detection),
        chunk_size: cfg.chunk_size as u64,
        checkpoint_interval: cfg.checkpoint_interval.as_secs_f64(),
        heartbeat_period: cfg.heartbeat_period.as_secs_f64(),
        heartbeat_timeout: cfg.heartbeat_timeout.as_secs_f64(),
        max_duration: cfg.max_duration.as_secs_f64(),
        delta_checkpoints: cfg.delta_checkpoints,
        delta_anchor_interval: cfg.delta_anchor_interval,
        virtual_quantum: match mode {
            ExecMode::Virtual { quantum } => Some(quantum.as_secs_f64()),
            ExecMode::Threaded => None,
        },
        script: script.to_repro(),
    }
}

fn scheme_tag(s: Scheme) -> u8 {
    match s {
        Scheme::Strong => 0,
        Scheme::Medium => 1,
        Scheme::Weak => 2,
    }
}

pub(crate) fn scheme_from_tag(t: u8) -> Scheme {
    match t {
        0 => Scheme::Strong,
        1 => Scheme::Medium,
        _ => Scheme::Weak,
    }
}

fn detection_tag(d: DetectionMethod) -> u8 {
    match d {
        DetectionMethod::FullCompare => 0,
        DetectionMethod::Checksum => 1,
        DetectionMethod::ChunkedChecksum => 2,
    }
}

pub(crate) fn detection_from_tag(t: u8) -> DetectionMethod {
    match t {
        0 => DetectionMethod::FullCompare,
        1 => DetectionMethod::Checksum,
        _ => DetectionMethod::ChunkedChecksum,
    }
}

impl Driver {
    fn now(&self) -> f64 {
        self.clock.now()
    }

    fn tlog(&mut self, line: String) {
        self.report
            .trace
            .push(format!("{:10.6} {line}", self.now()));
    }

    /// Mark a driver-phase transition in the flight recorder. Consecutive
    /// markers tile the run's timeline, which is what lets the overhead
    /// report's per-phase rows sum to the total duration exactly.
    fn enter_phase(&self, phase: RunPhase) {
        self.rec.emit(DRIVER_NODE, EventKind::PhaseEnter { phase });
    }

    /// Stamp the run's end marker. Emitted where `duration` is recorded —
    /// before teardown — so the overhead breakdown's total matches the
    /// reported duration; teardown events land after it and are ignored by
    /// the fold.
    fn emit_job_end(&self) {
        self.rec.emit(
            DRIVER_NODE,
            EventKind::JobEnd {
                completed: self.report.completed,
            },
        );
    }

    /// Close out the flight recorder into the report: the merged event log
    /// and the metrics snapshot.
    fn finalize_obs(&mut self) {
        self.report.events = self.rec.drain();
        self.report.metrics = self.rec.expose();
    }

    fn send(&self, node: NodeIndex, ctrl: Ctrl) {
        self.port.send(node, Net::Ctrl(ctrl));
    }

    fn active_nodes(&self) -> Vec<NodeIndex> {
        self.layout
            .read()
            .active_nodes()
            .map(|(n, _, _)| n)
            .collect()
    }

    fn replica_nodes(&self, replica: u8) -> Vec<NodeIndex> {
        let layout = self.layout.read();
        (0..layout.ranks())
            .map(|r| layout.host(replica, r))
            .collect()
    }

    fn alloc_round(&mut self) -> u64 {
        self.round_counter += 1;
        self.round_counter
    }

    /// Append one record to the journal, if persistence is on. An append
    /// failure is terminal — a journal that silently misses records would
    /// resume into a corrupt state, so the job fails instead.
    fn journal(&mut self, record: &DriverRecord) {
        let Some(store) = &mut self.store else {
            return;
        };
        if let Err(e) = store.append(record) {
            self.report.error = Some(format!("event-log append failed: {e}"));
        }
    }

    /// Mark script index `seq` consumed and journal the fire.
    fn journal_fired(&mut self, seq: usize, node: u64) {
        if let Some(f) = self.fired.get_mut(seq) {
            *f = true;
        }
        self.journal(&DriverRecord::TriggerFired {
            seq: seq as u64,
            node,
        });
    }

    /// A node reported an injected fault that was armed as a node-local
    /// iteration trigger: find its script entry and journal the fire (the
    /// driver-side triggers journal at send time instead). Matching is by
    /// shape — victim identity for crashes, seed+bits for SDC — against
    /// the first unfired iteration entry, which is unambiguous because
    /// `arm_script` armed them all from the same script.
    fn journal_node_fault(&mut self, node: NodeIndex, fault: NodeFault) {
        if self.store.is_none() {
            return;
        }
        let located = self.layout.read().locate(node);
        let mut matched = None;
        for (seq, f) in self.script_faults.iter().enumerate() {
            if self.fired.get(seq).copied().unwrap_or(true) {
                continue;
            }
            if !matches!(f.when, Trigger::AtIteration(_)) {
                continue;
            }
            let hit = match (f.action, fault) {
                (FaultAction::Crash { replica, rank }, NodeFault::Crash) => {
                    located == Some((replica, rank))
                }
                (FaultAction::Sdc { seed, bits, .. }, NodeFault::Sdc { seed: s, bits: b }) => {
                    seed == s && bits == b
                }
                _ => false,
            };
            if hit {
                matched = Some(seq);
                break;
            }
        }
        if let Some(seq) = matched {
            self.journal_fired(seq, NO_NODE);
        }
    }

    /// Split a script between driver-side triggers (time, checkpoint count)
    /// and node-local iteration triggers, arming the latter immediately.
    /// `dropped` holds script indices whose effects are already part of
    /// committed history (resume's trigger filter): they are never re-armed.
    fn arm_script(&mut self, script: &FaultScript, dropped: &HashSet<usize>) {
        self.script_faults = script.faults.clone();
        self.fired = vec![false; script.faults.len()];
        for &seq in dropped {
            if let Some(f) = self.fired.get_mut(seq) {
                *f = true;
            }
        }
        for (seq, fault) in script.faults.iter().enumerate() {
            if dropped.contains(&seq) {
                continue;
            }
            match (fault.when, fault.action) {
                (Trigger::AtIteration(k), FaultAction::Crash { replica, rank }) => {
                    let node = self.layout.read().host(replica, rank);
                    self.send(
                        node,
                        Ctrl::ScheduleFault {
                            at_iteration: k,
                            fault: NodeFault::Crash,
                        },
                    );
                }
                (
                    Trigger::AtIteration(k),
                    FaultAction::Sdc {
                        replica,
                        rank,
                        seed,
                        bits,
                    },
                ) => {
                    let node = self.layout.read().host(replica, rank);
                    self.send(
                        node,
                        Ctrl::ScheduleFault {
                            at_iteration: k,
                            fault: NodeFault::Sdc { seed, bits },
                        },
                    );
                }
                // Iteration triggers need a live victim rank; for the other
                // actions they degenerate to "as soon as possible".
                (Trigger::AtIteration(_), action) => self.triggers.push(PendingTrigger {
                    seq,
                    when: Trigger::At(0.0),
                    action,
                }),
                (when, action) => self.triggers.push(PendingTrigger { seq, when, action }),
            }
        }
    }

    /// Fire every driver-side trigger that is due. Failures don't wait for
    /// a convenient phase — they fire whenever their trigger says.
    fn fire_due_triggers(&mut self) {
        let now = self.now();
        let ckpts = self.report.checkpoints_verified as u32;
        let mut due = Vec::new();
        self.triggers.retain(|t| {
            let ready = match t.when {
                Trigger::At(at) => now >= at,
                Trigger::AfterCheckpoints(c) => ckpts >= c,
                Trigger::AtIteration(_) => unreachable!("compiled to node-local triggers"),
            };
            if ready {
                due.push((t.seq, t.action));
            }
            !ready
        });
        for (seq, action) in due {
            self.fire(seq, action);
        }
    }

    fn fire(&mut self, seq: usize, action: FaultAction) {
        match action {
            FaultAction::Crash { replica, rank } => {
                self.journal_fired(seq, NO_NODE);
                let node = self.layout.read().host(replica, rank);
                self.send(node, Ctrl::InjectCrash);
            }
            FaultAction::Sdc {
                replica,
                rank,
                seed,
                bits,
            } => {
                self.journal_fired(seq, NO_NODE);
                let node = self.layout.read().host(replica, rank);
                self.send(node, Ctrl::InjectSdc { seed, bits });
            }
            FaultAction::CrashSpare => {
                // Kill the spare the next promotion would pick; the failure
                // stays latent until a crash promotes the corpse. Journal
                // the corpse's index: it is in no checkpoint, so a resume
                // must re-halt it explicitly.
                let spare = self.layout.read().peek_spare();
                self.journal_fired(seq, spare.map_or(NO_NODE, |s| s as u64));
                if let Some(spare) = spare {
                    self.send(spare, Ctrl::InjectCrash);
                }
            }
            FaultAction::DelayHeartbeats {
                replica,
                rank,
                secs,
            } => {
                self.journal_fired(seq, NO_NODE);
                let node = self.layout.read().host(replica, rank);
                self.send(node, Ctrl::MuteHeartbeats { secs });
            }
            FaultAction::KillDriver => {
                if !self.virtual_mode {
                    self.tlog("scripted driver kill ignored (threaded mode)".into());
                    return;
                }
                // Journal the fire *before* dying: the kept record is what
                // stops a resume from re-arming the kill forever.
                self.journal_fired(seq, NO_NODE);
                self.tlog("scripted driver kill".into());
                self.killed = true;
            }
        }
    }

    /// One policy pass: timeouts, due faults, pending recoveries, completion
    /// detection, checkpoint scheduling. Shared by both execution modes.
    fn poll(&mut self) -> LoopCtl {
        let now = self.now();
        let max = self.cfg.max_duration.as_secs_f64();
        if self.report.error.is_some() {
            return LoopCtl::Done;
        }
        if now > max {
            self.report.error = Some(format!(
                "job exceeded max_duration ({max:.1}s) in phase {:?}",
                self.phase
            ));
            self.tlog("error: max_duration exceeded".into());
            return LoopCtl::Done;
        }
        // A kill firing mid-persist would journal a TriggerFired between
        // the round's records and its commit, muddying the capture
        // boundary; hold fire until the epoch commits or is abandoned.
        if !matches!(self.phase, Phase::Persist { .. }) {
            self.fire_due_triggers();
        }
        if self.killed {
            return LoopCtl::Done;
        }
        self.poll_probe();
        self.poll_transport_suspects();
        if matches!(self.phase, Phase::Running) {
            if let Some(dead) = self.pending_failures.pop_front() {
                self.start_recovery(dead);
                return LoopCtl::Continue;
            }
            if self.needs_global_restart {
                self.global_restart();
                return LoopCtl::Continue;
            }
            let everyone_done = self
                .active_nodes()
                .iter()
                .all(|n| self.done_nodes.contains(n));
            if everyone_done && !self.weak_parked {
                self.report.completed = true;
                self.tlog("job completed".into());
                return LoopCtl::Done;
            }
            if now >= self.next_ckpt {
                if self.weak_parked {
                    self.start_ship_round();
                } else {
                    self.start_global_round();
                }
            }
        }
        LoopCtl::Continue
    }

    /// Threaded policy loop: alternate event receipt and policy passes.
    fn run_threaded(&mut self) {
        loop {
            if let Ok(ev) = self.events.recv_timeout(Duration::from_millis(1)) {
                self.handle_event(ev);
            }
            if self.poll() == LoopCtl::Done {
                return;
            }
        }
    }

    /// Virtual-time executor: a deterministic single-threaded round-robin —
    /// drain driver events, run one policy pass, pump every worker once in
    /// index order, advance the clock one quantum. Ends by delivering
    /// `Shutdown` and pumping until every worker has exited.
    fn run_virtual(&mut self, workers: &mut [NodeWorker], quantum: f64) {
        loop {
            while let Ok(ev) = self.events.try_recv() {
                self.handle_event(ev);
            }
            if self.poll() == LoopCtl::Done {
                break;
            }
            for w in workers.iter_mut() {
                let _ = w.pump();
            }
            self.clock.advance(quantum);
        }
        if self.killed {
            // A scripted driver kill models `kill -9`: no JobClosed record,
            // no shutdown handshake, no final-state collection — the store
            // holds exactly what the fsynced appends left behind. The
            // in-memory report is still returned so tests can introspect
            // the truncated run.
            self.report.completed = false;
            self.report.error = Some("driver killed by scripted fault".into());
            self.report.duration = self.now();
            self.finalize_obs();
            return;
        }
        self.report.duration = self.now();
        self.emit_job_end();
        self.close_journal();

        let total = workers.len();
        for n in 0..total {
            self.send(n, Ctrl::Shutdown);
        }
        let mut exited = vec![false; total];
        // Each non-exited worker consumes at least one queued message per
        // pass, so a few passes suffice; the bound is a hang backstop.
        for _ in 0..10_000 {
            for (i, w) in workers.iter_mut().enumerate() {
                if !exited[i] && w.pump() == Pump::Exited {
                    exited[i] = true;
                }
            }
            while let Ok(ev) = self.events.try_recv() {
                self.record_final_state(ev);
            }
            if exited.iter().all(|&e| e) {
                break;
            }
            self.clock.advance(quantum);
        }
        self.finalize_obs();
    }

    fn record_final_state(&mut self, ev: Event) {
        if let Event::FinalState {
            node,
            identity,
            tasks,
        } = ev
        {
            // A node declared dead may still be running (a muted-heartbeat
            // false positive): its stale state must not shadow the state of
            // the spare that replaced it.
            if self.dead_nodes.contains(&node) {
                return;
            }
            if let Some((replica, rank)) = identity {
                if !tasks.is_empty() {
                    self.report.final_states.insert((replica, rank), tasks);
                }
            }
        }
    }

    fn handle_event(&mut self, ev: Event) {
        self.last_event = self.now();
        match ev {
            Event::BuddyDead { reporter, dead } => self.on_dead(reporter, dead),
            Event::Pong { node, token } => {
                // Any Pong proves the node is alive *and* its wire path
                // works again, whichever probe asked.
                self.transport_suspects.remove(&node);
                if let Some(p) = &mut self.probe {
                    if p.token == token {
                        p.awaiting.remove(&node);
                    }
                }
            }
            Event::TransportStale { node } => self.on_transport_stale(node),
            Event::FaultInjected { node, at, fault } => {
                self.journal_node_fault(node, fault);
                match fault {
                    NodeFault::Crash => {
                        self.report.crashes_injected_at.push(at);
                        self.tlog(format!("fault crash landed node={node} at={at:.6}"));
                    }
                    NodeFault::Sdc { seed, bits } => {
                        self.report.sdc_injected_at.push(at);
                        self.tlog(format!(
                            "fault sdc landed node={node} at={at:.6} seed={seed} bits={bits}"
                        ));
                    }
                }
            }
            Event::CheckpointDone {
                node,
                round,
                iteration,
                verified,
            } => {
                match &mut self.phase {
                    Phase::GlobalRound {
                        round: r,
                        pending,
                        sdc,
                        iteration: it,
                        started,
                    } if *r == round => {
                        pending.remove(&node);
                        *it = iteration;
                        if verified == Some(false) {
                            *sdc = true;
                        }
                        if pending.is_empty() {
                            let had_sdc = *sdc;
                            let started = *started;
                            self.rec.emit(
                                DRIVER_NODE,
                                EventKind::RoundVerdict {
                                    round,
                                    iteration,
                                    clean: !had_sdc,
                                },
                            );
                            if had_sdc {
                                self.report.sdc_rounds_detected += 1;
                                self.tlog(format!("round {round} detected sdc iter={iteration}"));
                                self.begin_rollback();
                            } else {
                                self.report.checkpoints_verified += 1;
                                self.report.verified_round_starts.push(started);
                                self.verified_exists = true;
                                self.tlog(format!("round {round} verified iter={iteration}"));
                                if self.store.is_some() {
                                    // Capture the verified epoch durably
                                    // before releasing the round.
                                    self.begin_persist(round, iteration);
                                } else {
                                    for n in self.active_nodes() {
                                        self.send(n, Ctrl::RoundComplete);
                                    }
                                    self.back_to_running();
                                }
                            }
                        }
                    }
                    Phase::Recovery(rec) if rec.ship_round == Some(round) => {
                        rec.expect_ckpt.remove(&node);
                        self.maybe_finish_recovery();
                    }
                    _ => {} // stale round
                }
            }
            Event::SdcDetected {
                node,
                iteration,
                diverged,
                payload_len,
                fields_flagged,
            } => {
                // Rounds are counted via the CheckpointDone verdicts; here we
                // record where the corruption was localized.
                self.report.sdc_detections.push(SdcDetection {
                    node,
                    iteration,
                    diverged,
                    payload_len,
                    fields_flagged,
                });
            }
            Event::RolledBack { node } => match &mut self.phase {
                Phase::AwaitRollback { pending } => {
                    pending.remove(&node);
                    if pending.is_empty() {
                        self.tlog("rollback complete".into());
                        self.back_to_running();
                    }
                }
                Phase::Recovery(rec) => {
                    rec.expect_rolled.remove(&node);
                    self.maybe_finish_recovery();
                }
                _ => {}
            },
            Event::Installed { node, .. } => {
                if let Phase::Recovery(rec) = &mut self.phase {
                    rec.expect_installed.remove(&node);
                    self.maybe_finish_recovery();
                }
            }
            Event::VerifiedState {
                node,
                round,
                iteration,
                digest,
                payload,
            } => {
                let located = self.layout.read().locate(node);
                let mut ready = false;
                if let Phase::Persist {
                    round: r,
                    pending,
                    states,
                    ..
                } = &mut self.phase
                {
                    if *r == round {
                        pending.remove(&node);
                        if let Some((replica, rank)) = located {
                            states.insert((replica, rank), (iteration, digest, payload));
                        }
                        ready = pending.is_empty();
                    }
                }
                if ready {
                    self.commit_epoch();
                }
            }
            Event::AllTasksDone { node } => {
                self.done_nodes.insert(node);
            }
            Event::FinalState { .. } => {
                // Only expected during shutdown; ignore here.
            }
        }
    }

    /// The backstop failure detector. Buddy heartbeats (§6.1) cannot cover
    /// every death: when both members of a buddy pair crash close together,
    /// neither lives to report the other, and any round they participate in
    /// waits on them forever. Whenever a waiting phase sees no node events
    /// for 2·heartbeat_timeout, the driver pings every active node; nodes
    /// that stay silent for another heartbeat_timeout are declared dead.
    fn poll_probe(&mut self) {
        if matches!(self.phase, Phase::Running) {
            self.probe = None;
            return;
        }
        let now = self.now();
        let timeout = self.cfg.heartbeat_timeout.as_secs_f64();
        match self.probe.take() {
            None => {
                if now - self.last_event > 2.0 * timeout {
                    let token = self.alloc_round();
                    let nodes = self.active_nodes();
                    self.tlog(format!("liveness probe token={token}"));
                    self.rec.inc_counter("acr_probe_rounds_total", 1);
                    for &n in &nodes {
                        self.rec
                            .emit_with(DRIVER_NODE, || EventKind::ProbeSent { suspect: n as u32 });
                        self.send(n, Ctrl::Ping { token });
                    }
                    self.probe = Some(Probe {
                        token,
                        sent_at: now,
                        awaiting: nodes.into_iter().collect(),
                    });
                }
            }
            Some(p) => {
                if p.awaiting.is_empty() {
                    // Everyone answered: the stall is slowness, not death.
                    self.last_event = now;
                } else if now - p.sent_at > timeout {
                    // Deterministic order: declare in ascending node index.
                    let mut dead: Vec<NodeIndex> = p.awaiting.into_iter().collect();
                    dead.sort_unstable();
                    self.last_event = now;
                    for d in dead {
                        self.tlog(format!("node {d} failed liveness probe"));
                        self.rec
                            .emit_with(DRIVER_NODE, || EventKind::ProbeDeath { dead: d as u32 });
                        self.declare_dead(d);
                    }
                } else {
                    self.probe = Some(p);
                }
            }
        }
    }

    /// The router's stale monitor says `node`'s socket has been gone
    /// longer than the grace window. A dead socket is not a dead node —
    /// the endpoint may be mid-backoff — so the report feeds the
    /// liveness machinery instead of declaring death: send a targeted
    /// `Ping` and give the node two heartbeat timeouts to reconnect and
    /// answer (the replay ring preserves the Ping across the reattach).
    fn on_transport_stale(&mut self, node: NodeIndex) {
        if self.dead_nodes.contains(&node)
            || self.transport_suspects.contains_key(&node)
            || self.layout.read().locate(node).is_none()
        {
            return; // already dead, already suspected, or an idle spare
        }
        let token = self.alloc_round();
        let timeout = self.cfg.heartbeat_timeout.as_secs_f64();
        self.tlog(format!("transport stale: probing node {node}"));
        self.rec.inc_counter("acr_transport_probes_total", 1);
        self.rec.emit_with(DRIVER_NODE, || EventKind::ProbeSent {
            suspect: node as u32,
        });
        self.send(node, Ctrl::Ping { token });
        self.transport_suspects
            .insert(node, self.now() + 2.0 * timeout);
    }

    /// Expire transport-stale probes: a suspect that never answered its
    /// targeted Ping is dead for real.
    fn poll_transport_suspects(&mut self) {
        let now = self.now();
        let expired: Vec<NodeIndex> = self
            .transport_suspects
            .iter()
            .filter(|&(_, &deadline)| now >= deadline)
            .map(|(&n, _)| n)
            .collect();
        for node in expired {
            self.transport_suspects.remove(&node);
            if self.dead_nodes.contains(&node) {
                continue;
            }
            self.tlog(format!("node {node} failed transport probe"));
            self.rec
                .emit_with(DRIVER_NODE, || EventKind::ProbeDeath { dead: node as u32 });
            self.declare_dead(node);
        }
    }

    fn begin_rollback(&mut self) {
        self.last_event = self.now();
        self.enter_phase(RunPhase::Rollback);
        self.report.rollbacks += 1;
        let floor = self.alloc_round();
        let nodes = self.active_nodes();
        for &n in &nodes {
            self.done_nodes.remove(&n);
            self.send(n, Ctrl::Rollback { floor });
        }
        self.phase = Phase::AwaitRollback {
            pending: nodes.into_iter().collect(),
        };
    }

    fn back_to_running(&mut self) {
        self.enter_phase(RunPhase::Forward);
        self.phase = Phase::Running;
        self.next_ckpt = self.now() + self.cfg.checkpoint_interval.as_secs_f64();
    }

    /// A round verified clean with persistence on: collect every active
    /// node's verified state before releasing the round, so the epoch can
    /// commit to a slot as one consistent line.
    fn begin_persist(&mut self, round: u64, iteration: u64) {
        self.last_event = self.now();
        self.tlog(format!("round {round} persisting"));
        let nodes = self.active_nodes();
        for &n in &nodes {
            self.send(n, Ctrl::ReportVerified { round });
        }
        self.phase = Phase::Persist {
            round,
            iteration,
            pending: nodes.into_iter().collect(),
            states: BTreeMap::new(),
        };
    }

    /// All verified-state reports are in: write the epoch to the next slot,
    /// journal the commit, and release the round. After the journal append
    /// returns, this epoch is what a resume restores.
    fn commit_epoch(&mut self) {
        let Phase::Persist {
            round,
            iteration,
            states,
            ..
        } = std::mem::replace(&mut self.phase, Phase::Running)
        else {
            unreachable!("commit_epoch outside Persist");
        };
        let slot = self.next_slot;
        let data = SlotData {
            epoch: round,
            entries: states
                .iter()
                .map(|(&(replica, rank), (it, _digest, payload))| SlotEntry {
                    replica,
                    rank: rank as u64,
                    iteration: *it,
                    payload: payload.to_vec(),
                })
                .collect(),
        };
        if let Some(store) = &mut self.store {
            if let Err(e) = store.write_slot(slot, &data) {
                self.report.error = Some(format!("checkpoint slot write failed: {e}"));
                return;
            }
        }
        self.next_slot = 1 - slot;
        let commit = CommitRecord {
            round,
            slot,
            t: self.now(),
            iteration,
            round_counter: self.round_counter,
            checkpoints_verified: self.report.checkpoints_verified as u64,
            sdc_rounds_detected: self.report.sdc_rounds_detected as u64,
            rollbacks: self.report.rollbacks as u64,
            hard_errors_recovered: self.report.hard_errors_recovered as u64,
            unverified_recoveries: self.report.unverified_recoveries as u64,
            restarts_from_beginning: self.report.restarts_from_beginning as u64,
            verified_round_starts: self.report.verified_round_starts.clone(),
            unverified_recoveries_at: self.report.unverified_recoveries_at.clone(),
            sdc_injected_at: self.report.sdc_injected_at.clone(),
            crashes_injected_at: self.report.crashes_injected_at.clone(),
        };
        self.journal(&DriverRecord::EpochCommit(commit));
        self.tlog(format!("epoch {round} committed to slot {slot}"));
        for n in self.active_nodes() {
            self.send(n, Ctrl::RoundComplete);
        }
        self.back_to_running();
    }

    /// Append the journal's terminal record. A closed journal refuses to
    /// resume — the job either completed or failed in a way a resume
    /// cannot mend (e.g. out of spares).
    fn close_journal(&mut self) {
        if self.store.is_some() {
            let completed = self.report.completed;
            self.journal(&DriverRecord::JobClosed { completed });
        }
    }

    /// Rebuild driver state from a [`ResumePlan`]: reopen the journal
    /// compacted, advance the clock to the committed epoch, replay the
    /// layout history (halting corpses), seed every active node with its
    /// slot checkpoint, and re-arm the filtered fault script.
    fn apply_resume(&mut self, dir: &Path, plan: ResumePlan) {
        match DriverStore::resume(dir, &plan.kept, Arc::clone(&self.rec)) {
            Ok(store) => self.store = Some(store),
            Err(e) => {
                self.report.error = Some(format!("cannot reopen event log: {e}"));
                return;
            }
        }
        self.next_slot = plan.next_slot;
        self.rec.emit_with(DRIVER_NODE, || EventKind::StoreRecover {
            source: plan.report.source.clone(),
            replayed: plan.report.records_replayed,
            skipped: plan.report.records_skipped,
        });
        if let Some(c) = &plan.commit {
            // The resumed job clock continues from the commit time so
            // time-anchored triggers and the max_duration budget keep their
            // original meaning.
            self.clock.advance(c.t);
        }
        self.last_event = self.now();

        // Replay the pre-commit layout history. Promotions must pick the
        // same spares they picked originally (the layout allocator is
        // deterministic); divergence means the journal does not describe
        // this job, and resuming would corrupt state.
        for p in &plan.promotions {
            let picked = self.layout.write().replace_with_spare(p.dead);
            match picked {
                Ok(s) if s == p.spare => {}
                other => {
                    self.report.error = Some(format!(
                        "journal replay diverged: promotion of node {} expected spare {}, \
                         layout gave {other:?}",
                        p.dead, p.spare
                    ));
                    return;
                }
            }
            self.dead_nodes.insert(p.dead);
            self.send(p.dead, Ctrl::Halt);
            let buddy = self.layout.read().host(1 - p.replica, p.rank);
            self.send(
                p.spare,
                Ctrl::AssumeIdentity {
                    replica: p.replica,
                    rank: p.rank,
                    buddy,
                    floor: 0,
                },
            );
            self.send(p.spare, Ctrl::Resume { floor: 0 });
            self.last_recovery_identity = Some((p.replica, p.rank));
        }
        // Deaths the journal recorded without a matching promotion (the
        // kill landed between the death and its recovery): halt the corpse
        // and let the resumed driver run the recovery itself.
        let promoted: HashSet<usize> = plan.promotions.iter().map(|p| p.dead).collect();
        for &n in &plan.dead {
            if promoted.contains(&n) {
                continue;
            }
            if self.dead_nodes.insert(n) {
                self.send(n, Ctrl::Halt);
                self.pending_failures.push_back(n);
            }
        }
        // Pre-commit CrashSpare corpses are in no checkpoint: re-halt.
        for &n in &plan.halt_targets {
            self.send(n, Ctrl::Halt);
        }

        if let Some(c) = &plan.commit {
            self.round_counter = c.round_counter;
            self.report.checkpoints_verified = c.checkpoints_verified as usize;
            self.report.sdc_rounds_detected = c.sdc_rounds_detected as usize;
            self.report.rollbacks = c.rollbacks as usize;
            self.report.hard_errors_recovered = c.hard_errors_recovered as usize;
            self.report.unverified_recoveries = c.unverified_recoveries as usize;
            self.report.restarts_from_beginning = c.restarts_from_beginning as usize;
            self.report.verified_round_starts = c.verified_round_starts.clone();
            self.report.unverified_recoveries_at = c.unverified_recoveries_at.clone();
            self.report.sdc_injected_at = c.sdc_injected_at.clone();
            self.report.crashes_injected_at = c.crashes_injected_at.clone();
            self.verified_exists = true;
            self.next_ckpt = c.t + self.cfg.checkpoint_interval.as_secs_f64();
            // Every worker armed its heartbeat watch at clock 0; with the
            // clock now at the commit time, re-watch before the first tick
            // or every buddy would look timed out instantly.
            for n in self.active_nodes() {
                let buddy = self
                    .layout
                    .read()
                    .buddy(n)
                    .expect("active node has a buddy");
                self.send(n, Ctrl::BuddyChanged { buddy });
            }
            for (&(replica, rank), (it, digest, payload)) in &plan.slot_states {
                let node = self.layout.read().host(replica, rank);
                self.port.send(
                    node,
                    Net::Install {
                        checkpoint: Checkpoint::new(*it, payload.clone(), *digest),
                    },
                );
            }
            self.tlog(format!(
                "resumed from {} checkpoint: epoch {} iteration {}",
                plan.report.source, c.round, c.iteration
            ));
        } else {
            for n in self.active_nodes() {
                let buddy = self
                    .layout
                    .read()
                    .buddy(n)
                    .expect("active node has a buddy");
                self.send(n, Ctrl::BuddyChanged { buddy });
            }
            if !plan.promotions.is_empty() {
                // The layout changed but no epoch was ever captured:
                // restart the application from a common clean slate.
                self.needs_global_restart = true;
            }
            self.tlog("resumed with no committed epoch: restarting from initial state".into());
        }
        self.report.recovery = Some(plan.report.clone());
        if let Err(e) = plan.report.write_json(dir.join(REPORT_FILE)) {
            self.tlog(format!("could not write recovery report: {e}"));
        }
        // Arm last, after the layout replay, so iteration-trigger faults
        // target the nodes *currently* hosting their victim ranks.
        let script = plan.script.clone();
        self.arm_script(&script, &plan.dropped_seqs);
    }

    fn on_dead(&mut self, reporter: NodeIndex, dead: NodeIndex) {
        if self.dead_nodes.contains(&dead) || self.layout.read().locate(dead).is_none() {
            return; // duplicate report or not an active node
        }
        // Only the node *currently* paired with `dead` is its failure
        // detector. A node declared dead by mistake (e.g. a muted-heartbeat
        // false positive) keeps running with a stale watch list; its reports
        // against nodes that merely stopped heartbeating *to it* must not
        // kill healthy nodes.
        if self.layout.read().buddy(dead) != Ok(reporter) {
            self.tlog(format!(
                "ignoring death report of node {dead} from non-buddy {reporter}"
            ));
            return;
        }
        self.declare_dead(dead);
    }

    /// Process a legitimate death report (from the current buddy, or from
    /// the driver's own liveness probe).
    fn declare_dead(&mut self, dead: NodeIndex) {
        let located = self.layout.read().locate(dead);
        let Some((replica, rank)) = located else {
            return; // not an active node
        };
        if self.dead_nodes.contains(&dead) {
            return; // duplicate report
        }
        debug_trace!(
            self.rec,
            DRIVER_NODE,
            "[driver t={:.3}] node {dead} declared dead (phase {:?})",
            self.now(),
            self.phase
        );
        self.rec.emit_with(DRIVER_NODE, || EventKind::NodeDead {
            dead: dead as u32,
            replica,
            rank: rank as u32,
        });
        self.rec.inc_counter("acr_nodes_declared_dead_total", 1);
        self.dead_nodes.insert(dead);
        self.done_nodes.remove(&dead);
        self.tlog(format!("node {dead} declared dead"));
        self.journal(&DriverRecord::NodeDead { node: dead as u64 });
        match &self.phase {
            Phase::Running => self.start_recovery(dead),
            Phase::GlobalRound { .. } => {
                // The dead node will never finish the round: abort it, then
                // recover.
                let floor = self.alloc_round();
                for n in self.active_nodes() {
                    if n != dead {
                        self.send(n, Ctrl::AbortRound { floor });
                    }
                }
                self.phase = Phase::Running;
                self.start_recovery(dead);
            }
            Phase::Persist { .. } => {
                // The round already verified clean; only its durable
                // capture is incomplete. Abandon the capture (the store
                // keeps the previous epoch), release the round, and
                // recover — exactly what would happen had the death landed
                // a moment after the commit.
                self.tlog("epoch persist abandoned by death".into());
                for n in self.active_nodes() {
                    if n != dead {
                        self.send(n, Ctrl::RoundComplete);
                    }
                }
                self.back_to_running();
                self.start_recovery(dead);
            }
            Phase::AwaitRollback { .. } => {
                // Its RolledBack will never arrive; don't wait for it.
                self.pending_failures.push_back(dead);
                if let Phase::AwaitRollback { pending } = &mut self.phase {
                    pending.remove(&dead);
                    if pending.is_empty() {
                        self.tlog("rollback complete (minus dead node)".into());
                        self.back_to_running();
                    }
                }
            }
            Phase::Recovery(_) => {
                self.pending_failures.push_back(dead);
                let (partner, located) = {
                    let layout = self.layout.read();
                    match layout.locate(dead) {
                        Some((r, k)) => (layout.host(1 - r, k), true),
                        None => (0, false),
                    }
                };
                let Phase::Recovery(rec) = &mut self.phase else {
                    unreachable!()
                };
                // Strip the dead node from the recovery's dependency chain:
                // anything it owed (rollback, ship checkpoint) or was owed
                // (install from its now-dead buddy) will never complete.
                let mut hit = rec.expect_installed.remove(&dead);
                hit |= rec.expect_rolled.remove(&dead);
                if rec.expect_ckpt.remove(&dead) {
                    hit = true;
                    // Its ship-round install target starves too.
                    if located {
                        rec.expect_installed.remove(&partner);
                    }
                }
                // The dead node was the pending install *source* for its
                // buddy (strong scheme's SendVerifiedTo).
                if located && rec.expect_installed.remove(&partner) {
                    hit = true;
                }
                if hit {
                    rec.failed = true;
                    self.rec
                        .emit_with(DRIVER_NODE, || EventKind::RecoveryCollapsed {
                            dead: dead as u32,
                        });
                    self.tlog(format!("recovery collapsed by death of node {dead}"));
                    // Surviving participants of an in-flight ship round
                    // would wait forever for the dead member's consensus
                    // vote: don't wait for the remaining expectations —
                    // unstick everyone and queue the global restart now.
                    self.verified_exists = false;
                    self.weak_parked = false;
                    self.needs_global_restart = true;
                    self.enter_phase(RunPhase::Forward);
                    self.phase = Phase::Running;
                    let floor = self.alloc_round();
                    for n in self.active_nodes() {
                        if n != dead {
                            self.send(n, Ctrl::AbortRound { floor });
                        }
                    }
                }
            }
        }
    }

    fn start_recovery(&mut self, dead: NodeIndex) {
        let Some((replica, rank)) = self.layout.read().locate(dead) else {
            return;
        };
        self.last_event = self.now();
        let prev_identity = self.last_recovery_identity;
        let promotion = self.layout.write().replace_with_spare(dead);
        let spare = match promotion {
            Ok(s) => s,
            Err(e) => {
                self.report.error = Some(format!("cannot recover node {dead}: {e}"));
                self.report.completed = false;
                self.tlog(format!("error: cannot recover node {dead}: {e}"));
                return;
            }
        };
        self.report.hard_errors_recovered += 1;
        self.journal(&DriverRecord::SparePromoted {
            dead: dead as u64,
            spare: spare as u64,
            replica,
            rank: rank as u64,
        });
        if self.distributed_layout {
            // Remote node hosts hold private layout copies: broadcast the
            // promotion so their layouts stay in lockstep with ours.
            for n in 0..self.total {
                self.send(n, Ctrl::LayoutChanged { dead });
            }
        }
        self.last_recovery_identity = Some((replica, rank));
        let healthy = 1 - replica;
        let buddy_node = self.layout.read().host(healthy, rank);
        let floor = self.alloc_round();
        self.enter_phase(RunPhase::Recovery);
        self.rec
            .emit_with(DRIVER_NODE, || EventKind::RecoveryStart {
                scheme: self.cfg.scheme.name().to_string(),
                class: self.cfg.scheme.sdc_exposure_class().to_string(),
                dead: dead as u32,
                spare: spare as u32,
            });
        self.tlog(format!(
            "recovery start dead={dead} replica={replica} rank={rank} spare={spare}"
        ));

        // Quiesce the crashed replica (its other nodes keep state; the
        // spare starts parked by construction).
        let crashed_nodes = self.replica_nodes(replica);
        for &n in &crashed_nodes {
            if n != spare {
                self.send(n, Ctrl::Park);
            }
            self.done_nodes.remove(&n);
        }
        self.send(
            spare,
            Ctrl::AssumeIdentity {
                replica,
                rank,
                buddy: buddy_node,
                floor,
            },
        );
        self.send(buddy_node, Ctrl::BuddyChanged { buddy: spare });

        // Consult the planner for the scheme's action list (the executable
        // plan is what §2.3 specifies; the driver is its interpreter).
        let planner = RecoveryPlanner::new(self.cfg.scheme, self.cfg.ranks);
        let _plan = planner.plan_hard_error_recorded(
            dead,
            buddy_node,
            spare,
            replica,
            &self.rec,
            DRIVER_NODE,
        );

        if !self.verified_exists || self.needs_global_restart {
            // Crash before any verified checkpoint (or amid a collapsed
            // recovery): promotion done, the pending global restart resets
            // every node to a common clean slate.
            self.needs_global_restart = true;
            self.weak_parked = false;
            self.enter_phase(RunPhase::Forward);
            self.phase = Phase::Running;
            return;
        }

        match self.cfg.scheme {
            Scheme::Strong => {
                self.send(buddy_node, Ctrl::SendVerifiedTo { to: spare });
                let mut expect_rolled = HashSet::new();
                for &n in &crashed_nodes {
                    if n != spare {
                        self.send(n, Ctrl::Rollback { floor });
                        expect_rolled.insert(n);
                    }
                }
                self.phase = Phase::Recovery(Recovery {
                    expect_installed: [spare].into_iter().collect(),
                    expect_rolled,
                    expect_ckpt: HashSet::new(),
                    ship_round: None,
                    to_resume: crashed_nodes,
                    counts_as_unverified: false,
                    failed: false,
                });
            }
            Scheme::Medium => {
                let ship_round = self.alloc_round();
                let healthy_nodes = self.replica_nodes(healthy);
                for &n in &healthy_nodes {
                    self.send(
                        n,
                        Ctrl::StartRound {
                            scope: Scope::Replica(healthy),
                            round: ship_round,
                        },
                    );
                }
                self.phase = Phase::Recovery(Recovery {
                    expect_installed: crashed_nodes.iter().copied().collect(),
                    expect_rolled: HashSet::new(),
                    expect_ckpt: healthy_nodes.into_iter().collect(),
                    ship_round: Some(ship_round),
                    to_resume: crashed_nodes,
                    counts_as_unverified: true,
                    failed: false,
                });
            }
            Scheme::Weak => {
                if self.weak_parked {
                    if let Some((prev_replica, _)) = prev_identity {
                        if prev_replica != replica {
                            // While one replica waited for its deferred
                            // ship, the *other* replica lost a node too:
                            // neither replica holds a complete state any
                            // more — §2.3's restart-from-the-beginning case.
                            self.tlog(
                                "weak double failure across replicas: restart from beginning"
                                    .into(),
                            );
                            self.needs_global_restart = true;
                            self.weak_parked = false;
                            self.enter_phase(RunPhase::Forward);
                            self.phase = Phase::Running;
                            return;
                        }
                    }
                }
                // Let the healthy replica run on; ship at the next periodic
                // checkpoint time (§2.3: "zero-overhead" recovery).
                self.weak_parked = true;
                self.enter_phase(RunPhase::Forward);
                self.phase = Phase::Running;
            }
        }
    }

    /// The deferred weak-scheme ship: run a replica-local checkpoint in the
    /// healthy replica and install it across the parked replica.
    fn start_ship_round(&mut self) {
        self.last_event = self.now();
        self.weak_parked = false;
        let (replica, _) = self
            .last_recovery_identity
            .expect("weak ship requires a recorded recovery");
        let healthy = 1 - replica;
        let ship_round = self.alloc_round();
        let healthy_nodes = self.replica_nodes(healthy);
        let crashed_nodes = self.replica_nodes(replica);
        self.enter_phase(RunPhase::Ship);
        self.tlog(format!("weak ship round {ship_round} starts"));
        for &n in &healthy_nodes {
            self.send(
                n,
                Ctrl::StartRound {
                    scope: Scope::Replica(healthy),
                    round: ship_round,
                },
            );
        }
        self.phase = Phase::Recovery(Recovery {
            expect_installed: crashed_nodes.iter().copied().collect(),
            expect_rolled: HashSet::new(),
            expect_ckpt: healthy_nodes.into_iter().collect(),
            ship_round: Some(ship_round),
            to_resume: crashed_nodes,
            counts_as_unverified: true,
            failed: false,
        });
    }

    fn maybe_finish_recovery(&mut self) {
        let Phase::Recovery(rec) = &self.phase else {
            return;
        };
        if !rec.finished() {
            return;
        }
        let Phase::Recovery(rec) = std::mem::replace(&mut self.phase, Phase::Running) else {
            unreachable!()
        };
        if rec.failed {
            // The dependency chain broke: no consistent checkpoint line
            // survives across both replicas. Queue a restart from the very
            // beginning (after pending spare promotions).
            self.verified_exists = false;
            self.weak_parked = false;
            self.needs_global_restart = true;
            self.back_to_running();
            return;
        }
        if rec.counts_as_unverified {
            self.report.unverified_recoveries += 1;
            let now = self.now();
            self.report.unverified_recoveries_at.push(now);
            // The shipped state becomes the de-facto baseline.
            self.verified_exists = true;
        }
        self.rec.emit_with(DRIVER_NODE, || EventKind::RecoveryDone {
            unverified: rec.counts_as_unverified,
        });
        let floor = self.alloc_round();
        self.tlog("recovery complete".into());
        // Unpause the shipping replica's engines and unpark the recovered
        // replica.
        for n in self.active_nodes() {
            self.send(n, Ctrl::RoundComplete);
        }
        for n in rec.to_resume {
            self.send(n, Ctrl::Resume { floor });
        }
        self.back_to_running();
    }

    /// Restart the whole job from the application's initial state: every
    /// active node discards its checkpoints and rebuilds its tasks. Used
    /// when a crash precedes the first verified checkpoint, and when a
    /// failure inside an in-flight recovery leaves no consistent line.
    fn global_restart(&mut self) {
        self.last_event = self.now();
        self.needs_global_restart = false;
        self.verified_exists = false;
        self.weak_parked = false;
        self.last_recovery_identity = None;
        self.report.restarts_from_beginning += 1;
        let floor = self.alloc_round();
        let nodes = self.active_nodes();
        self.enter_phase(RunPhase::Restart);
        self.rec
            .emit(DRIVER_NODE, EventKind::GlobalRestart { iteration: 0 });
        self.rec.inc_counter("acr_global_restarts_total", 1);
        self.tlog("restart from beginning".into());
        for &n in &nodes {
            self.done_nodes.remove(&n);
            self.send(n, Ctrl::HardRestart { floor });
        }
        self.phase = Phase::AwaitRollback {
            pending: nodes.into_iter().collect(),
        };
    }

    fn start_global_round(&mut self) {
        self.last_event = self.now();
        let round = self.alloc_round();
        let nodes = self.active_nodes();
        let started = self.now();
        self.enter_phase(RunPhase::Round);
        self.rec.emit(DRIVER_NODE, EventKind::RoundStart { round });
        self.journal(&DriverRecord::RoundOpened { round });
        self.tlog(format!("round {round} starts"));
        for &n in &nodes {
            self.send(
                n,
                Ctrl::StartRound {
                    scope: Scope::Global,
                    round,
                },
            );
        }
        self.phase = Phase::GlobalRound {
            round,
            pending: nodes.into_iter().collect(),
            sdc: false,
            iteration: 0,
            started,
        };
    }

    fn shutdown_threaded(&mut self, handles: Vec<std::thread::JoinHandle<()>>) -> JobReport {
        self.report.duration = self.now();
        self.emit_job_end();
        self.close_journal();
        let total = self.total;
        for n in 0..total {
            self.send(n, Ctrl::Shutdown);
        }
        // The drain deadline runs on the job clock, not a raw wall-clock
        // read, so a virtual-time driver could never hang here; the attempt
        // bound covers clocks that stand still regardless.
        let deadline = self.now() + 10.0;
        let mut received = 0;
        let mut attempts = 0u32;
        while received < total && self.now() < deadline && attempts < 10_000 {
            attempts += 1;
            match self.events.recv_timeout(Duration::from_millis(50)) {
                Ok(ev) => {
                    if matches!(ev, Event::FinalState { .. }) {
                        received += 1;
                    }
                    self.record_final_state(ev);
                }
                Err(_) => break,
            }
        }
        // Tear the fabric down before joining: a TCP worker wedged on a
        // link that never came up only exits once its endpoint drops the
        // inbox sender.
        self.fabric.teardown();
        for h in handles {
            let _ = h.join();
        }
        self.finalize_obs();
        std::mem::take(&mut self.report)
    }
}
