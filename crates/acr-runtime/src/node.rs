//! The node worker: a message-driven scheduler thread hosting application
//! tasks plus the per-node half of the ACR protocol.

use std::sync::Arc;
use std::time::{Duration, Instant};

use acr_core::{
    Checkpoint, CheckpointStore, ConsensusAction, ConsensusEngine, ConsensusMsg, Detection,
    DetectionMethod, HeartbeatMonitor, ReplicaLayout, SdcDetector,
};
use acr_pup::{fletcher64, Packer, Unpacker};
use bytes::Bytes;
use crossbeam::channel::{Receiver, Sender};
use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::message::{AppMsg, Ctrl, Event, Net, NodeIndex, Scope, TaskId};
use crate::task::{Task, TaskCtx};

/// Shared constructor for application tasks: `(rank, task_index)` → task.
/// Both replicas call it with the same arguments, so the two copies start
/// bit-identical.
pub(crate) type TaskFactory = dyn Fn(usize, usize) -> Box<dyn Task> + Send + Sync;

pub(crate) struct NodeConfig {
    pub index: NodeIndex,
    pub ranks: usize,
    pub tasks_per_rank: usize,
    pub detection: DetectionMethod,
    pub heartbeat_period: Duration,
    pub heartbeat_timeout: Duration,
}

pub(crate) struct NodeWorker {
    cfg: NodeConfig,
    identity: Option<(u8, usize)>,
    tasks: Vec<Box<dyn Task>>,
    engine_global: Option<ConsensusEngine>,
    engine_replica: Option<ConsensusEngine>,
    store: CheckpointStore,
    detector: SdcDetector,
    monitor: HeartbeatMonitor,
    buddy: Option<NodeIndex>,
    layout: Arc<RwLock<ReplicaLayout>>,
    peers: Arc<Vec<Sender<Net>>>,
    events: Sender<Event>,
    inbox: Receiver<Net>,
    factory: Arc<TaskFactory>,
    start: Instant,
    crashed: bool,
    parked: bool,
    done_reported: bool,
    last_heartbeat: f64,
    /// Round floor for freshly built engines.
    floor: u64,
    /// Iteration of the in-flight checkpoint, per scope, so stale compare
    /// traffic can be recognized.
    pending_remote: Option<(u64, Detection)>,
    /// `(round, iteration)` of a tentative global checkpoint whose verdict
    /// is pending.
    awaiting_verdict: Option<(u64, u64)>,
    outbox: Vec<(TaskId, AppMsg)>,
    /// Non-app messages set aside while draining the inbox at checkpoint
    /// time; processed before new receives, preserving order.
    backlog: std::collections::VecDeque<Net>,
    /// Rollback epoch: application messages stamped with an older epoch are
    /// from an execution that has been rolled back and are dropped.
    epoch: u64,
    /// Application messages from peers that already entered a newer epoch;
    /// delivered once this node's own reset arrives.
    future_msgs: Vec<(u64, usize, AppMsg)>,
}

impl NodeWorker {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        cfg: NodeConfig,
        identity: Option<(u8, usize)>,
        layout: Arc<RwLock<ReplicaLayout>>,
        peers: Arc<Vec<Sender<Net>>>,
        events: Sender<Event>,
        inbox: Receiver<Net>,
        factory: Arc<TaskFactory>,
        start: Instant,
    ) -> Self {
        let detector = SdcDetector::new(cfg.detection);
        let timeout = cfg.heartbeat_timeout.as_secs_f64();
        let mut w = Self {
            cfg,
            identity,
            tasks: Vec::new(),
            engine_global: None,
            engine_replica: None,
            store: CheckpointStore::new(),
            detector,
            monitor: HeartbeatMonitor::new(timeout),
            buddy: None,
            layout,
            peers,
            events,
            inbox,
            factory,
            start,
            crashed: false,
            parked: false,
            done_reported: false,
            last_heartbeat: 0.0,
            floor: 0,
            pending_remote: None,
            awaiting_verdict: None,
            outbox: Vec::new(),
            backlog: std::collections::VecDeque::new(),
            epoch: 0,
            future_msgs: Vec::new(),
        };
        if let Some((_, rank)) = w.identity {
            w.tasks = (0..w.cfg.tasks_per_rank).map(|t| (w.factory)(rank, t)).collect();
            w.rebuild_engines(0);
            let buddy = w.layout.read().buddy(w.cfg.index).expect("active node has a buddy");
            w.buddy = Some(buddy);
            w.monitor.watch(buddy, 0.0);
        }
        w
    }

    fn now(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    fn send(&self, node: NodeIndex, msg: Net) {
        // A send to a node whose channel is gone (job tearing down) is
        // silently dropped, like a packet to a powered-off host.
        let _ = self.peers[node].send(msg);
    }

    fn rebuild_engines(&mut self, floor: u64) {
        self.floor = floor;
        let Some((replica, rank)) = self.identity else {
            self.engine_global = None;
            self.engine_replica = None;
            return;
        };
        let ranks = self.cfg.ranks;
        let mut global = ConsensusEngine::new(replica as usize * ranks + rank, 2 * ranks, self.tasks.len());
        let mut local = ConsensusEngine::new(rank, ranks, self.tasks.len());
        for (t, task) in self.tasks.iter().enumerate() {
            let _ = global.report_progress(t, task.progress());
            let _ = local.report_progress(t, task.progress());
        }
        global.set_round_floor(floor);
        local.set_round_floor(floor);
        self.engine_global = Some(global);
        self.engine_replica = Some(local);
    }

    /// Physical node currently hosting a consensus participant.
    fn participant_node(&self, scope: Scope, participant: usize) -> NodeIndex {
        let layout = self.layout.read();
        match scope {
            Scope::Global => {
                let ranks = self.cfg.ranks;
                layout.host((participant / ranks) as u8, participant % ranks)
            }
            Scope::Replica(r) => layout.host(r, participant),
        }
    }

    fn dispatch_consensus(&mut self, scope: Scope, actions: Vec<ConsensusAction>) {
        for action in actions {
            match action {
                ConsensusAction::Send { to, msg } => {
                    let node = self.participant_node(scope, to);
                    self.send(node, Net::Consensus { scope, msg });
                }
                ConsensusAction::Checkpoint { round, iteration } => {
                    self.take_checkpoint(scope, round, iteration);
                }
            }
        }
    }

    fn engine_feed(&mut self, scope: Scope, msg: ConsensusMsg) {
        let engine = match scope {
            Scope::Global => self.engine_global.as_mut(),
            Scope::Replica(_) => self.engine_replica.as_mut(),
        };
        let Some(engine) = engine else { return };
        let actions = engine.on_message(msg);
        if std::env::var_os("ACR_DEBUG").is_some() {
            eprintln!("[node {} {:?}] consensus {scope:?} {msg:?} -> {} actions",
                self.cfg.index, self.identity, actions.len());
        }
        self.dispatch_consensus(scope, actions);
    }

    fn pack_tasks(&mut self) -> Bytes {
        let mut packer = Packer::new();
        for task in &mut self.tasks {
            task.pup(&mut packer).expect("packing task state cannot fail");
        }
        Bytes::from(packer.finish())
    }

    fn unpack_tasks(&mut self, payload: &[u8]) {
        let mut u = Unpacker::new(payload);
        for task in &mut self.tasks {
            task.pup(&mut u).expect("checkpoint payload matches task set");
        }
        u.finish().expect("checkpoint fully consumed");
        self.done_reported = false;
    }

    /// Deliver every application message already enqueued in the inbox and
    /// set the rest aside.
    ///
    /// Called immediately before packing a coordinated checkpoint. Any
    /// message a task sent during an iteration at or below the checkpoint
    /// target was enqueued in the receiver's channel *causally before* that
    /// task reported ready — and the `Go` that triggers this pack is
    /// causally after every ReadyUp — so this drain captures the complete
    /// consistent cut: no in-flight application message can escape the
    /// checkpoint (the §2.2 "message c will not be stored anywhere" hazard).
    fn drain_app_messages(&mut self) {
        let mut kept = std::collections::VecDeque::new();
        while let Ok(m) = self.inbox.try_recv() {
            match m {
                Net::App { to_task, epoch, msg } => self.receive_app(to_task, epoch, msg),
                other => kept.push_back(other),
            }
        }
        self.backlog.append(&mut kept);
    }

    fn take_checkpoint(&mut self, scope: Scope, round: u64, iteration: u64) {
        self.drain_app_messages();
        let payload = self.pack_tasks();
        let digest = fletcher64(&payload);
        if std::env::var_os("ACR_DEBUG").is_some() {
            eprintln!("[node {} {:?}] ckpt scope={scope:?} round={round} iter={iteration} digest={digest:x} progress={:?}",
                self.cfg.index, self.identity,
                self.tasks.iter().map(|t| t.progress()).collect::<Vec<_>>());
        }
        self.store.store_tentative(Checkpoint { iteration, payload, digest });
        match scope {
            Scope::Global => {
                let (replica, _) = self.identity.expect("checkpointing node has identity");
                let buddy = self.buddy.expect("active node has a buddy");
                if replica == 0 {
                    // Ship content (or digest) for comparison (§2.1: "the
                    // remote checkpoint is sent to replica 2 only for SDC
                    // detection purposes").
                    let detection = self
                        .detector
                        .outgoing(self.store.tentative().expect("just stored"));
                    self.awaiting_verdict = Some((round, iteration));
                    self.send(buddy, Net::Compare { iteration, detection });
                } else {
                    self.awaiting_verdict = Some((round, iteration));
                    self.try_compare(round);
                }
            }
            Scope::Replica(_) => {
                // Recovery ship (medium/weak): promote unverified and send
                // to the buddy, which installs it wholesale.
                self.store.promote();
                let ckpt = self.store.rollback_target().expect("just promoted").clone();
                let buddy = self.buddy.expect("active node has a buddy");
                self.send(buddy, Net::Install { checkpoint: ckpt });
                let _ = self.events.send(Event::CheckpointDone {
                    node: self.cfg.index,
                    round,
                    iteration,
                    verified: None,
                });
            }
        }
    }

    /// Replica-1 side: compare once both the local tentative checkpoint and
    /// the buddy's detection message are present.
    fn try_compare(&mut self, round: u64) {
        let Some(tentative) = self.store.tentative() else { return };
        let Some((iteration, _)) = self.pending_remote else { return };
        if iteration != tentative.iteration {
            return; // stale traffic from an aborted round
        }
        let (_, detection) = self.pending_remote.take().expect("checked above");
        // Promotion is deferred to the driver's RoundComplete: a mismatch
        // *anywhere* invalidates the whole round, so locally-clean pairs
        // must not advance their rollback target ahead of the others.
        let clean = !self.detector.diverged(tentative, &detection);
        if std::env::var_os("ACR_DEBUG").is_some() {
            eprintln!("[node {} {:?}] compare iter={iteration} clean={clean} local_len={} local_digest={:x}",
                self.cfg.index, self.identity, tentative.len(), tentative.digest);
            if !clean {
                if let acr_core::Detection::Payload(remote) = &detection {
                    for (off, (a, b)) in tentative.payload.iter().zip(remote.iter()).enumerate() {
                        if a != b {
                            eprintln!("  first diff at byte {off}: local={a:#x} remote={b:#x}");
                            break;
                        }
                    }
                }
            }
        }
        let buddy = self.buddy.expect("active node has a buddy");
        self.send(buddy, Net::CompareResult { iteration, clean });
        self.awaiting_verdict = None;
        if !clean {
            let _ = self.events.send(Event::SdcDetected { node: self.cfg.index, iteration });
        }
        let _ = self.events.send(Event::CheckpointDone {
            node: self.cfg.index,
            round,
            iteration,
            verified: Some(clean),
        });
    }

    fn handle_ctrl(&mut self, ctrl: Ctrl) -> bool {
        match ctrl {
            Ctrl::StartRound { scope, round } => {
                if std::env::var_os("ACR_DEBUG").is_some() {
                    eprintln!("[node {} {:?}] StartRound {scope:?} round={round} progress={:?}",
                        self.cfg.index, self.identity,
                        self.tasks.iter().map(|t| t.progress()).collect::<Vec<_>>());
                }
                self.engine_feed(scope, ConsensusMsg::Start { round });
            }
            Ctrl::AbortRound { floor } => {
                self.awaiting_verdict = None;
                self.pending_remote = None;
                self.rebuild_engines(floor);
            }
            Ctrl::Rollback { floor } => {
                self.store.discard_tentative();
                self.pending_remote = None;
                self.awaiting_verdict = None;
                if let Some(ckpt) = self.store.rollback_target() {
                    let payload = ckpt.payload.clone();
                    self.unpack_tasks(&payload);
                } else if let Some((_, rank)) = self.identity {
                    // No checkpoint yet: restart from the beginning.
                    self.tasks =
                        (0..self.cfg.tasks_per_rank).map(|t| (self.factory)(rank, t)).collect();
                }
                self.rebuild_engines(floor);
                // Epoch bump comes *after* the state restore: entering the
                // epoch releases stashed messages from peers that rolled
                // back first, and those must land in the restored tasks,
                // not in state about to be overwritten.
                self.enter_epoch(floor);
                if std::env::var_os("ACR_DEBUG").is_some() {
                    eprintln!("[node {} {:?}] rolled back to progress={:?} (floor {floor}, epoch {})",
                        self.cfg.index, self.identity,
                        self.tasks.iter().map(|t| t.progress()).collect::<Vec<_>>(), self.epoch);
                }
                let _ = self.events.send(Event::RolledBack { node: self.cfg.index });
            }
            Ctrl::SendVerifiedTo { to } => {
                let ckpt = self
                    .store
                    .rollback_target()
                    .expect("driver only requests existing checkpoints")
                    .clone();
                self.send(to, Net::Install { checkpoint: ckpt });
            }
            Ctrl::AssumeIdentity { replica, rank, buddy, floor } => {
                self.identity = Some((replica, rank));
                self.tasks =
                    (0..self.cfg.tasks_per_rank).map(|t| (self.factory)(rank, t)).collect();
                self.buddy = Some(buddy);
                let now = self.now();
                self.monitor.watch(buddy, now);
                self.store = CheckpointStore::new();
                self.rebuild_engines(floor);
                self.enter_epoch(floor);
                self.parked = true; // driver resumes explicitly
            }
            Ctrl::BuddyChanged { buddy } => {
                if let Some(old) = self.buddy {
                    self.monitor.unwatch(old);
                }
                self.buddy = Some(buddy);
                let now = self.now();
                self.monitor.watch(buddy, now);
            }
            Ctrl::RoundComplete => {
                // The driver saw a clean verdict from every buddy pair: the
                // tentative checkpoint becomes the verified rollback target
                // on every node simultaneously (a consistent global cut).
                self.store.promote();
                if let Some(e) = self.engine_global.as_mut() {
                    e.checkpoint_done();
                }
                if let Some(e) = self.engine_replica.as_mut() {
                    e.checkpoint_done();
                }
            }
            Ctrl::Park => {
                self.parked = true;
            }
            Ctrl::Resume { floor } => {
                self.enter_epoch(floor);
                self.parked = false;
                self.rebuild_engines(floor);
            }
            Ctrl::InjectCrash => {
                self.crashed = true;
            }
            Ctrl::InjectSdc { seed } => {
                self.inject_sdc(seed);
            }
            Ctrl::Shutdown => {
                let tasks: Vec<Bytes> = if self.crashed {
                    Vec::new()
                } else {
                    let ids: Vec<usize> = (0..self.tasks.len()).collect();
                    ids.iter()
                        .map(|&t| {
                            let mut p = Packer::new();
                            self.tasks[t].pup(&mut p).expect("final pack");
                            Bytes::from(p.finish())
                        })
                        .collect()
                };
                let _ = self.events.send(Event::FinalState {
                    node: self.cfg.index,
                    identity: self.identity,
                    tasks,
                });
                return true;
            }
        }
        false
    }

    /// §6.1 SDC injection: flip one random bit of the victim task's
    /// floating-point *user data* (the paper targets "the user data that
    /// will be checkpointed"; corrupting runtime counters would crash or
    /// hang instead of staying silent). Float payloads accept every bit
    /// pattern, so the corrupted state always unpacks cleanly.
    fn inject_sdc(&mut self, seed: u64) {
        if self.tasks.is_empty() {
            return;
        }
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let victim = rng.gen_range(0..self.tasks.len());
        let mut mapper = acr_pup::RegionMapper::new();
        self.tasks[victim].pup(&mut mapper).expect("region mapping cannot fail");
        let mut packer = Packer::new();
        self.tasks[victim].pup(&mut packer).expect("pack for injection");
        let mut payload = packer.finish();
        if mapper.float_bytes() == 0 {
            return; // nothing silent to corrupt
        }
        let nth = rng.gen_range(0..mapper.float_bytes());
        let byte = mapper.nth_float_byte(nth).expect("nth < float_bytes");
        let bit = rng.gen_range(0..8u8);
        payload[byte] ^= 1 << bit;
        let mut u = Unpacker::new(&payload);
        self.tasks[victim].pup(&mut u).expect("float flip keeps structure");
        u.finish().expect("float flip keeps structure");
    }

    /// Enter a new rollback epoch: in-flight messages from older epochs are
    /// invalid from now on; messages from peers that got there first are
    /// released.
    fn enter_epoch(&mut self, epoch: u64) {
        if epoch <= self.epoch {
            return;
        }
        self.epoch = epoch;
        let ready: Vec<(usize, AppMsg)> = {
            let (now, later): (Vec<_>, Vec<_>) =
                self.future_msgs.drain(..).partition(|&(e, _, _)| e <= epoch);
            self.future_msgs = later;
            now.into_iter()
                .filter(|&(e, _, _)| e == epoch)
                .map(|(_, t, m)| (t, m))
                .collect()
        };
        for (to_task, msg) in ready {
            self.deliver_app(to_task, msg);
        }
    }

    fn receive_app(&mut self, to_task: usize, epoch: u64, msg: AppMsg) {
        use std::cmp::Ordering;
        match epoch.cmp(&self.epoch) {
            Ordering::Less => {} // rolled-back execution: drop
            Ordering::Equal => {
                if self.parked {
                    // Parked = quiesced for recovery: current-epoch traffic
                    // is pre-crash residue, and the state about to replace
                    // ours (rollback or buddy install) carries its own
                    // complete message cut. Drop it.
                } else {
                    self.deliver_app(to_task, msg);
                }
            }
            Ordering::Greater => self.future_msgs.push((epoch, to_task, msg)),
        }
    }

    fn deliver_app(&mut self, to_task: usize, msg: AppMsg) {
        let Some((_, rank)) = self.identity else { return };
        if to_task >= self.tasks.len() {
            return;
        }
        let mut outbox = std::mem::take(&mut self.outbox);
        {
            let mut ctx =
                TaskCtx::new(TaskId { rank, task: to_task }, self.cfg.ranks, &mut outbox);
            self.tasks[to_task].on_message(msg, &mut ctx);
        }
        self.outbox = outbox;
        self.flush_outbox();
    }

    fn flush_outbox(&mut self) {
        let Some((replica, _)) = self.identity else {
            self.outbox.clear();
            return;
        };
        let sends = std::mem::take(&mut self.outbox);
        for (to, msg) in sends {
            let node = self.layout.read().host(replica, to.rank);
            self.send(node, Net::App { to_task: to.task, epoch: self.epoch, msg });
        }
    }

    fn step_tasks(&mut self) {
        let Some((_, rank)) = self.identity else { return };
        if self.parked {
            return;
        }
        for t in 0..self.tasks.len() {
            if self.tasks[t].done() {
                continue;
            }
            let may = self.engine_global.as_ref().map_or(true, |e| e.may_advance(t))
                && self.engine_replica.as_ref().map_or(true, |e| e.may_advance(t));
            if !may {
                continue;
            }
            let mut outbox = std::mem::take(&mut self.outbox);
            let advanced = {
                let mut ctx = TaskCtx::new(TaskId { rank, task: t }, self.cfg.ranks, &mut outbox);
                self.tasks[t].try_step(&mut ctx)
            };
            self.outbox = outbox;
            self.flush_outbox();
            if advanced {
                let progress = self.tasks[t].progress();
                if let Some(e) = self.engine_global.as_mut() {
                    let actions = e.report_progress(t, progress);
                    self.dispatch_consensus(Scope::Global, actions);
                }
                if let Some((replica, _)) = self.identity {
                    if let Some(e) = self.engine_replica.as_mut() {
                        let actions = e.report_progress(t, progress);
                        self.dispatch_consensus(Scope::Replica(replica), actions);
                    }
                }
            }
        }
        if !self.done_reported && !self.tasks.is_empty() && self.tasks.iter().all(|t| t.done()) {
            self.done_reported = true;
            let _ = self.events.send(Event::AllTasksDone { node: self.cfg.index });
        }
    }

    fn heartbeat_tick(&mut self) {
        let now = self.now();
        if now - self.last_heartbeat >= self.cfg.heartbeat_period.as_secs_f64() {
            self.last_heartbeat = now;
            if let Some(buddy) = self.buddy {
                self.send(buddy, Net::Heartbeat { from: self.cfg.index });
            }
        }
        for dead in self.monitor.expired(now) {
            let _ = self
                .events
                .send(Event::BuddyDead { reporter: self.cfg.index, dead });
        }
    }

    pub(crate) fn run(mut self) {
        loop {
            let msg = match self.backlog.pop_front() {
                Some(m) => Ok(m),
                None => self.inbox.recv_timeout(Duration::from_millis(1)),
            };
            if self.crashed {
                // §6.1 "no-response scheme": the process on that node stops
                // responding to any communication — it only leaves when the
                // job tears down.
                match msg {
                    Ok(Net::Ctrl(Ctrl::Shutdown)) => {
                        let _ = self.events.send(Event::FinalState {
                            node: self.cfg.index,
                            identity: self.identity,
                            tasks: Vec::new(),
                        });
                        return;
                    }
                    _ => continue,
                }
            }
            match msg {
                Ok(Net::App { to_task, epoch, msg }) => self.receive_app(to_task, epoch, msg),
                Ok(Net::Consensus { scope, msg }) => self.engine_feed(scope, msg),
                Ok(Net::Compare { iteration, detection }) => {
                    let now = self.now();
                    if let Some(b) = self.buddy {
                        self.monitor.heard_from(b, now);
                    }
                    self.pending_remote = Some((iteration, detection));
                    if let Some((round, _)) = self.awaiting_verdict {
                        self.try_compare(round);
                    }
                }
                Ok(Net::CompareResult { iteration, clean }) => {
                    if let Some((round, it)) = self.awaiting_verdict {
                        if it == iteration {
                            self.awaiting_verdict = None;
                            let _ = clean;
                            let _ = self.events.send(Event::CheckpointDone {
                                node: self.cfg.index,
                                round,
                                iteration,
                                verified: Some(clean),
                            });
                        }
                    }
                }
                Ok(Net::Install { checkpoint }) => {
                    let iteration = checkpoint.iteration;
                    let payload = checkpoint.payload.clone();
                    self.store.install_verified(checkpoint);
                    self.unpack_tasks(&payload);
                    self.rebuild_engines(self.floor);
                    let _ = self
                        .events
                        .send(Event::Installed { node: self.cfg.index, iteration });
                }
                Ok(Net::Heartbeat { from }) => {
                    let now = self.now();
                    self.monitor.heard_from(from, now);
                }
                Ok(Net::Ctrl(ctrl)) => {
                    if self.handle_ctrl(ctrl) {
                        return;
                    }
                }
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
            }
            self.heartbeat_tick();
            self.step_tasks();
        }
    }
}
