//! The node worker: a message-driven scheduler thread hosting application
//! tasks plus the per-node half of the ACR protocol.

use std::sync::Arc;
use std::time::Duration;

use acr_core::{
    Checkpoint, CheckpointStore, ChunkTable, ConsensusAction, ConsensusEngine, ConsensusMsg,
    ConsensusObserver, Detection, DetectionMethod, GammaBetaEstimator, HeartbeatMonitor,
    ReplicaLayout, SdcDetector,
};
use acr_fault::SdcInjector;
use acr_obs::{debug_trace, EventKind, ObsScope, Recorder};
use acr_pup::{
    apply_delta, assemble_chunks, chunk_span, diff_tables, fletcher64, record_pack, Checker,
    ChunkPiece, ChunkedDigest, Packer, Puper, Sizer, SlicePacker, Unpacker,
};
use bytes::Bytes;
use crossbeam::channel::Receiver;
use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::clock::Clock;
use crate::message::{AppMsg, Ctrl, Event, Net, NodeFault, NodeIndex, Scope, TaskId};
use crate::task::{Task, TaskCtx};
use crate::transport::Port;

/// Every task's packed bytes start at a multiple of this (trailing zero
/// padding rounds each task segment up). Word-aligned segment boundaries are
/// what let per-segment Fletcher states merge into exact chunk and payload
/// digests, so tasks can be packed concurrently.
const SEGMENT_ALIGN: usize = 8;

/// Zero padding needed after `offset` to reach the next segment boundary.
fn padding_after(offset: usize) -> usize {
    (SEGMENT_ALIGN - offset % SEGMENT_ALIGN) % SEGMENT_ALIGN
}

/// Worker threads to pack `tasks` task segments with.
fn pack_workers(tasks: usize) -> usize {
    std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .min(tasks)
}

/// Pack one task into its padded segment, digesting in the same pass.
fn pack_segment(
    task: &mut dyn Task,
    segment: &mut [u8],
    chunk_size: usize,
    offset: usize,
) -> Vec<ChunkPiece> {
    let mut p = SlicePacker::digesting(segment, chunk_size, offset);
    task.pup(&mut p).expect("packing task state cannot fail");
    p.pad_to_end();
    let (written, pieces) = p.finish();
    debug_assert_eq!(written, segment.len(), "pad_to_end fills the segment");
    pieces
}

/// One unit of the parallel pack: task index, the task, its segment's
/// global payload offset, and the segment itself.
type PackJob<'a> = (usize, &'a mut Box<dyn Task>, usize, &'a mut [u8]);

/// Pack every task into one payload — each task in its own 8-byte-aligned,
/// zero-padded segment — computing the per-chunk Fletcher table in the same
/// memory pass. With `workers > 1` the segments are packed concurrently on
/// scoped threads; the result is bit-identical regardless of worker count
/// (segment layout is fixed up front, and per-segment digest states merge
/// exactly).
fn pack_tasks_parallel(
    tasks: &mut [Box<dyn Task>],
    chunk_size: usize,
    workers: usize,
) -> (Vec<u8>, ChunkedDigest) {
    let sizes: Vec<usize> = tasks
        .iter_mut()
        .map(|task| {
            let mut s = Sizer::new();
            task.pup(&mut s).expect("sizing task state cannot fail");
            s.bytes().div_ceil(SEGMENT_ALIGN) * SEGMENT_ALIGN
        })
        .collect();
    let total: usize = sizes.iter().sum();
    let mut buf = vec![0u8; total];

    // Carve the buffer into disjoint per-task segments at known offsets.
    let mut jobs: Vec<PackJob> = Vec::with_capacity(sizes.len());
    let mut rest = buf.as_mut_slice();
    let mut offset = 0;
    for (t, (task, &size)) in tasks.iter_mut().zip(&sizes).enumerate() {
        let (segment, tail) = rest.split_at_mut(size);
        jobs.push((t, task, offset, segment));
        offset += size;
        rest = tail;
    }

    let mut pieces: Vec<(usize, Vec<ChunkPiece>)> = if workers <= 1 {
        jobs.into_iter()
            .map(|(t, task, off, seg)| (t, pack_segment(task.as_mut(), seg, chunk_size, off)))
            .collect()
    } else {
        let mut buckets: Vec<Vec<_>> = (0..workers).map(|_| Vec::new()).collect();
        for (i, job) in jobs.into_iter().enumerate() {
            buckets[i % workers].push(job);
        }
        std::thread::scope(|s| {
            let handles: Vec<_> = buckets
                .into_iter()
                .map(|bucket| {
                    s.spawn(move || {
                        bucket
                            .into_iter()
                            .map(|(t, task, off, seg)| {
                                (t, pack_segment(task.as_mut(), seg, chunk_size, off))
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("pack worker panicked"))
                .collect()
        })
    };
    pieces.sort_by_key(|&(t, _)| t);
    let digest = assemble_chunks(chunk_size, pieces.into_iter().flat_map(|(_, p)| p));
    (buf, digest)
}

/// Shared constructor for application tasks: `(rank, task_index)` → task.
/// Both replicas call it with the same arguments, so the two copies start
/// bit-identical.
pub(crate) type TaskFactory = dyn Fn(usize, usize) -> Box<dyn Task> + Send + Sync;

pub(crate) struct NodeConfig {
    pub index: NodeIndex,
    pub ranks: usize,
    pub tasks_per_rank: usize,
    pub detection: DetectionMethod,
    pub chunk_size: usize,
    pub heartbeat_period: Duration,
    pub heartbeat_timeout: Duration,
    /// Ship only dirty chunk windows on the buddy-compare path (the §4.2
    /// decision applied per chunk), with periodic full-payload anchors.
    pub delta_checkpoints: bool,
    /// Compares between full-payload anchors when deltas are on.
    pub delta_anchor_interval: u32,
    /// This node keeps its own copy of the replica layout (remote node
    /// hosts over TCP) rather than sharing the driver's: spare promotions
    /// arrive as `Ctrl::LayoutChanged` and must be applied locally.
    pub private_layout: bool,
}

/// γ-sample floor: the virtual clock legitimately measures zero seconds for
/// an in-pump pack; flooring the sample keeps the estimator deterministically
/// fed (and a pack too fast to time is exactly when checksumming wins).
const MIN_GAMMA_SECS: f64 = 1e-9;

/// Sender-side record of the last comparison this node shipped — the base
/// the buddy is expected to hold when the next delta record arrives.
struct PrevShip {
    iteration: u64,
    payload_len: usize,
    chunk_digests: Vec<u64>,
}

/// Incremental-checkpoint state. The sender half (previous chunk table,
/// anchor cadence, γ/β estimator) is live on replica 0; the receiver half
/// (retained base payload) on replica 1. Every protocol disruption clears
/// the whole thing — correctness never depends on this state, only wire
/// savings do: a delta record always carries the full digest and chunk
/// table, so a buddy without the base still reaches the same verdict.
#[derive(Default)]
struct DeltaState {
    prev: Option<PrevShip>,
    /// Compares since the last full-payload ship.
    rounds_since_anchor: u32,
    estimator: GammaBetaEstimator,
    /// `(iteration, sent_at, wire_bytes)` of the in-flight compare ship,
    /// closed into a β sample by its `CompareResult`.
    ship_in_flight: Option<(u64, f64, usize)>,
    /// Receiver side: the buddy payload from the last compare processed,
    /// keyed by its iteration — what the next delta overlays onto.
    base: Option<(u64, Bytes)>,
    /// Receiver side: this node's *own* per-chunk digests at the base
    /// iteration. Chunks whose digest is unchanged here AND absent from the
    /// sender's dirty set were byte-verified clean at the base round on both
    /// sides, so the next compare may skip them (transitivity through the
    /// common verified base). Purely an optimization key: when it is stale
    /// or absent the compare simply runs over every chunk.
    local_base: Option<(u64, Vec<u64>)>,
}

pub(crate) struct NodeWorker {
    cfg: NodeConfig,
    identity: Option<(u8, usize)>,
    tasks: Vec<Box<dyn Task>>,
    engine_global: Option<ConsensusEngine>,
    engine_replica: Option<ConsensusEngine>,
    store: CheckpointStore,
    detector: SdcDetector,
    monitor: HeartbeatMonitor,
    buddy: Option<NodeIndex>,
    layout: Arc<RwLock<ReplicaLayout>>,
    port: Arc<dyn Port>,
    inbox: Receiver<Net>,
    factory: Arc<TaskFactory>,
    clock: Clock,
    rec: Arc<Recorder>,
    crashed: bool,
    parked: bool,
    done_reported: bool,
    last_heartbeat: f64,
    /// Outgoing heartbeats are suppressed until this job-clock time
    /// (`Ctrl::MuteHeartbeats` — a slow-but-alive node).
    hb_muted_until: f64,
    /// Scripted faults armed against node-local progress
    /// (`Ctrl::ScheduleFault`).
    scheduled_faults: Vec<(u64, NodeFault)>,
    /// Round floor for freshly built engines.
    floor: u64,
    /// Incremental-checkpoint continuity (see [`DeltaState`]).
    delta: DeltaState,
    /// Iteration of the in-flight checkpoint, per scope, so stale compare
    /// traffic can be recognized.
    pending_remote: Option<(u64, Detection)>,
    /// `(round, iteration)` of a tentative global checkpoint whose verdict
    /// is pending.
    awaiting_verdict: Option<(u64, u64)>,
    outbox: Vec<(TaskId, AppMsg)>,
    /// Non-app messages set aside while draining the inbox at checkpoint
    /// time; processed before new receives, preserving order.
    backlog: std::collections::VecDeque<Net>,
    /// Rollback epoch: application messages stamped with an older epoch are
    /// from an execution that has been rolled back and are dropped.
    epoch: u64,
    /// Application messages from peers that already entered a newer epoch;
    /// delivered once this node's own reset arrives.
    future_msgs: Vec<(u64, usize, AppMsg)>,
}

impl NodeWorker {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        cfg: NodeConfig,
        identity: Option<(u8, usize)>,
        layout: Arc<RwLock<ReplicaLayout>>,
        port: Arc<dyn Port>,
        inbox: Receiver<Net>,
        factory: Arc<TaskFactory>,
        clock: Clock,
        rec: Arc<Recorder>,
    ) -> Self {
        let detector = SdcDetector::new(cfg.detection);
        let timeout = cfg.heartbeat_timeout.as_secs_f64();
        let mut w = Self {
            cfg,
            identity,
            tasks: Vec::new(),
            engine_global: None,
            engine_replica: None,
            store: CheckpointStore::new(),
            detector,
            monitor: HeartbeatMonitor::new(timeout),
            buddy: None,
            layout,
            port,
            inbox,
            factory,
            clock,
            rec,
            crashed: false,
            parked: false,
            done_reported: false,
            last_heartbeat: 0.0,
            hb_muted_until: 0.0,
            scheduled_faults: Vec::new(),
            floor: 0,
            delta: DeltaState::default(),
            pending_remote: None,
            awaiting_verdict: None,
            outbox: Vec::new(),
            backlog: std::collections::VecDeque::new(),
            epoch: 0,
            future_msgs: Vec::new(),
        };
        if let Some((_, rank)) = w.identity {
            w.tasks = (0..w.cfg.tasks_per_rank)
                .map(|t| (w.factory)(rank, t))
                .collect();
            w.rebuild_engines(0);
            let buddy = w
                .layout
                .read()
                .buddy(w.cfg.index)
                .expect("active node has a buddy");
            w.buddy = Some(buddy);
            w.monitor.watch(buddy, 0.0);
        }
        w
    }

    fn now(&self) -> f64 {
        self.clock.now()
    }

    /// This node's id in the flight recorder's numbering.
    fn obs_node(&self) -> u32 {
        self.cfg.index as u32
    }

    fn send(&self, node: NodeIndex, msg: Net) {
        // Delivery is best-effort either way, but never *silently* so:
        // the in-process port counts sends into a closed inbox, and the
        // TCP port's broken-socket case feeds the reactor's stale-link
        // scan and thence the driver's liveness probe.
        self.port.send(node, msg);
    }

    fn rebuild_engines(&mut self, floor: u64) {
        self.floor = floor;
        let Some((replica, rank)) = self.identity else {
            self.engine_global = None;
            self.engine_replica = None;
            return;
        };
        let ranks = self.cfg.ranks;
        let mut global =
            ConsensusEngine::new(replica as usize * ranks + rank, 2 * ranks, self.tasks.len())
                .with_observer(ConsensusObserver {
                    recorder: Arc::clone(&self.rec),
                    node: self.obs_node(),
                    scope: ObsScope::Global,
                });
        let mut local =
            ConsensusEngine::new(rank, ranks, self.tasks.len()).with_observer(ConsensusObserver {
                recorder: Arc::clone(&self.rec),
                node: self.obs_node(),
                scope: ObsScope::Replica(replica),
            });
        for (t, task) in self.tasks.iter().enumerate() {
            let _ = global.report_progress(t, task.progress());
            let _ = local.report_progress(t, task.progress());
        }
        global.set_round_floor(floor);
        local.set_round_floor(floor);
        self.engine_global = Some(global);
        self.engine_replica = Some(local);
    }

    /// Physical node currently hosting a consensus participant.
    fn participant_node(&self, scope: Scope, participant: usize) -> NodeIndex {
        let layout = self.layout.read();
        match scope {
            Scope::Global => {
                let ranks = self.cfg.ranks;
                layout.host((participant / ranks) as u8, participant % ranks)
            }
            Scope::Replica(r) => layout.host(r, participant),
        }
    }

    fn dispatch_consensus(&mut self, scope: Scope, actions: Vec<ConsensusAction>) {
        for action in actions {
            match action {
                ConsensusAction::Send { to, msg } => {
                    let node = self.participant_node(scope, to);
                    self.send(node, Net::Consensus { scope, msg });
                }
                ConsensusAction::Checkpoint { round, iteration } => {
                    self.take_checkpoint(scope, round, iteration);
                }
            }
        }
    }

    fn engine_feed(&mut self, scope: Scope, msg: ConsensusMsg) {
        let engine = match scope {
            Scope::Global => self.engine_global.as_mut(),
            Scope::Replica(_) => self.engine_replica.as_mut(),
        };
        let Some(engine) = engine else { return };
        let actions = engine.on_message(msg);
        debug_trace!(
            self.rec,
            self.obs_node(),
            "[node {} {:?}] consensus {scope:?} {msg:?} -> {} actions",
            self.cfg.index,
            self.identity,
            actions.len()
        );
        self.dispatch_consensus(scope, actions);
    }

    /// Fused checkpoint pipeline: pack all tasks and compute the chunked
    /// Fletcher table in one memory pass, parallelized across worker threads
    /// when the node hosts several tasks.
    fn pack_tasks(&mut self) -> (Bytes, ChunkedDigest) {
        let workers = pack_workers(self.tasks.len());
        let (buf, digest) = pack_tasks_parallel(&mut self.tasks, self.cfg.chunk_size, workers);
        (Bytes::from(buf), digest)
    }

    fn unpack_tasks(&mut self, payload: &[u8]) {
        let mut u = Unpacker::new(payload);
        for task in &mut self.tasks {
            task.pup(&mut u)
                .expect("checkpoint payload matches task set");
            // Consume the segment's zero padding (see SEGMENT_ALIGN).
            let mut pad = [0u8; SEGMENT_ALIGN];
            let n = padding_after(u.offset());
            u.pup_u8_slice(&mut pad[..n])
                .expect("checkpoint includes segment padding");
        }
        u.finish().expect("checkpoint fully consumed");
        self.done_reported = false;
    }

    /// Deliver every application message already enqueued in the inbox and
    /// set the rest aside.
    ///
    /// Called immediately before packing a coordinated checkpoint. Any
    /// message a task sent during an iteration at or below the checkpoint
    /// target was enqueued in the receiver's channel *causally before* that
    /// task reported ready — and the `Go` that triggers this pack is
    /// causally after every ReadyUp — so this drain captures the complete
    /// consistent cut: no in-flight application message can escape the
    /// checkpoint (the §2.2 "message c will not be stored anywhere" hazard).
    fn drain_app_messages(&mut self) {
        let mut kept = std::collections::VecDeque::new();
        while let Ok(m) = self.inbox.try_recv() {
            match m {
                Net::App {
                    to_task,
                    epoch,
                    msg,
                } => self.receive_app(to_task, epoch, msg),
                other => kept.push_back(other),
            }
        }
        self.backlog.append(&mut kept);
    }

    fn take_checkpoint(&mut self, scope: Scope, round: u64, iteration: u64) {
        self.drain_app_messages();
        let pack_started = std::time::Instant::now();
        let pack_clock_started = self.now();
        let (payload, chunked) = self.pack_tasks();
        // γ is measured on the job clock (deterministically zero under the
        // virtual executor, floored below) so ship decisions replay exactly.
        let pack_clock_secs = self.now() - pack_clock_started;
        // Deterministic pack facts go into the event log; the wall-clock
        // latency goes only into the histogram (it would break virtual-mode
        // log determinism).
        record_pack(
            &self.rec,
            self.obs_node(),
            &chunked,
            payload.len(),
            pack_started.elapsed().as_secs_f64(),
        );
        debug_trace!(self.rec, self.obs_node(),
            "[node {} {:?}] ckpt scope={scope:?} round={round} iter={iteration} digest={:x} chunks={} progress={:?}",
            self.cfg.index, self.identity, chunked.digest, chunked.chunk_digests.len(),
            self.tasks.iter().map(|t| t.progress()).collect::<Vec<_>>());
        let table = ChunkTable {
            chunk_size: chunked.chunk_size as u32,
            digests: chunked.chunk_digests.clone(),
        };
        self.store.store_tentative(Checkpoint::with_chunks(
            iteration,
            payload.clone(),
            chunked.digest,
            table.clone(),
        ));
        match scope {
            Scope::Global => {
                let (replica, _) = self.identity.expect("checkpointing node has identity");
                let buddy = self.buddy.expect("active node has a buddy");
                if replica == 0 {
                    // Ship content (or digest) for comparison (§2.1: "the
                    // remote checkpoint is sent to replica 2 only for SDC
                    // detection purposes"). With delta checkpoints on, this
                    // may thin to the dirty chunk windows only.
                    let detection = self.plan_compare_ship(
                        iteration,
                        &payload,
                        &chunked,
                        &table,
                        pack_clock_secs,
                    );
                    self.detector.record_ship(
                        &detection,
                        &self.rec,
                        self.cfg.index as u32,
                        iteration,
                    );
                    if self.delta_enabled() {
                        self.delta.ship_in_flight =
                            Some((iteration, self.now(), detection.wire_bytes()));
                    }
                    self.awaiting_verdict = Some((round, iteration));
                    self.send(
                        buddy,
                        Net::Compare {
                            iteration,
                            detection,
                        },
                    );
                } else {
                    self.awaiting_verdict = Some((round, iteration));
                    self.try_compare(round);
                }
            }
            Scope::Replica(_) => {
                // Recovery ship (medium/weak): promote unverified and send
                // to the buddy, which installs it wholesale.
                self.store.promote();
                let ckpt = self.store.rollback_target().expect("just promoted").clone();
                let buddy = self.buddy.expect("active node has a buddy");
                self.send(buddy, Net::Install { checkpoint: ckpt });
                self.port.send_event(Event::CheckpointDone {
                    node: self.cfg.index,
                    round,
                    iteration,
                    verified: None,
                });
            }
        }
    }

    /// Delta shipping applies only to FullCompare comparisons — the other
    /// methods never ship payload bytes, so there is nothing to thin.
    fn delta_enabled(&self) -> bool {
        self.cfg.delta_checkpoints && self.cfg.detection == DetectionMethod::FullCompare
    }

    /// Forget all incremental-checkpoint continuity. Every disruption that
    /// can desynchronize the sender's idea of the buddy's base from what the
    /// buddy actually holds lands here; the next compare full-ships (a fresh
    /// anchor) and the chain restarts.
    fn reset_delta_state(&mut self) {
        self.delta = DeltaState::default();
    }

    /// Decide what the replica-0 node ships for comparison this round: the
    /// detector's full message, or — when deltas are enabled, the anchor is
    /// not due, the previous round's table is available, and a fresh γ/β
    /// estimate says checksumming clean chunks beats shipping them — an
    /// incremental record carrying only the dirty chunk windows.
    fn plan_compare_ship(
        &mut self,
        iteration: u64,
        payload: &Bytes,
        chunked: &ChunkedDigest,
        table: &ChunkTable,
        pack_secs: f64,
    ) -> Detection {
        if !self.delta_enabled() {
            return self
                .detector
                .outgoing(self.store.tentative().expect("just stored"));
        }
        self.delta
            .estimator
            .observe_gamma(payload.len(), pack_secs.max(MIN_GAMMA_SECS));
        self.delta.estimator.mark_round();
        let detection = self.build_delta(payload, chunked, table);
        let anchored = !matches!(detection, Detection::Delta { .. });
        // This round's table is what the next round diffs against, and its
        // payload is the base the buddy will retain after comparing.
        self.delta.prev = Some(PrevShip {
            iteration,
            payload_len: payload.len(),
            chunk_digests: table.digests.clone(),
        });
        self.delta.rounds_since_anchor = if anchored {
            0
        } else {
            self.delta.rounds_since_anchor + 1
        };
        detection
    }

    /// The delta record for this round, or the full payload when any
    /// eligibility condition fails (§4.2 fallbacks are always full ships).
    fn build_delta(
        &self,
        payload: &Bytes,
        chunked: &ChunkedDigest,
        table: &ChunkTable,
    ) -> Detection {
        let full = || Detection::Payload(payload.clone());
        let Some(prev) = &self.delta.prev else {
            return full(); // first compare of a chain: anchor
        };
        if self.delta.rounds_since_anchor + 1 >= self.cfg.delta_anchor_interval {
            return full(); // periodic anchor bounds fallback chains
        }
        if prev.payload_len != payload.len() {
            return full(); // repacked size changed: base is incompatible
        }
        // Per-chunk §4.2 rule: covering clean chunks by digest only pays
        // when γ < β/4; a stale or unsampled estimate full-ships.
        match self.delta.estimator.estimate() {
            Some(est) if est.checksum_wins() => {}
            _ => return full(),
        }
        let Some(plan) = diff_tables(&prev.chunk_digests, chunked, payload.len()) else {
            return full();
        };
        if plan.is_full() {
            return full(); // everything moved: the delta would be a copy
        }
        let dirty: Vec<(u32, Bytes)> = plan
            .dirty
            .iter()
            .map(|&index| {
                (
                    index,
                    payload.slice(chunk_span(plan.chunk_size, plan.payload_len, index)),
                )
            })
            .collect();
        let delta = Detection::Delta {
            base_iteration: prev.iteration,
            payload_len: payload.len(),
            digest: chunked.digest,
            table: table.clone(),
            dirty,
        };
        // The record carries the full chunk table; for very dirty rounds
        // that overhead can exceed the payload itself.
        if delta.wire_bytes() >= payload.len() {
            return full();
        }
        delta
    }

    /// This node's own tentative per-chunk digest table, if the in-flight
    /// checkpoint carries one (the receiver side of the clean-chunk-skip
    /// bookkeeping).
    fn tentative_chunks(&self) -> Option<(u32, Vec<u64>)> {
        self.store
            .tentative()
            .and_then(|t| t.chunks.as_ref())
            .map(|c| (c.chunk_size, c.digests.clone()))
    }

    /// Resolve a buddy detection message into the form the comparison runs
    /// on. A delta record is overlaid onto the retained base and verified
    /// against its whole-payload digest; success yields a byte-exact
    /// [`Detection::Payload`], so comparison and the field-level re-check
    /// behave exactly as under a full ship. Failure (base missing or
    /// mismatched, overlay rejected, digest wrong) falls back to the
    /// record's own digest-table-grade comparison — same verdict, coarser
    /// localization — and drops the base. Full payloads are retained as the
    /// next round's base.
    ///
    /// The second return value is the clean-chunk-skip candidate set: when a
    /// delta resolves against a base whose round was byte-verified on both
    /// sides, only chunks dirty on the sender (its dirty windows) or the
    /// receiver (own digest changed since that base) can possibly differ —
    /// every other chunk matched byte-for-byte at the base round and is
    /// unchanged since on both sides. `Some(indices)` (sorted, deduplicated)
    /// licenses the restricted compare; `None` means compare everything.
    fn resolve_incoming(
        &mut self,
        iteration: u64,
        detection: Detection,
    ) -> (Detection, Option<Vec<usize>>) {
        if !self.delta_enabled() {
            return (detection, None);
        }
        match &detection {
            Detection::Payload(p) => {
                self.delta.base = Some((iteration, p.clone()));
                // A full ship round, once verified, is a fresh transitivity
                // anchor: remember our own chunk digests at this iteration.
                self.delta.local_base = self
                    .tentative_chunks()
                    .map(|(_, digests)| (iteration, digests));
                (detection, None)
            }
            Detection::Delta {
                base_iteration,
                payload_len,
                digest,
                table,
                dirty,
            } => {
                if let Some((base_iter, base)) = self.delta.base.take() {
                    if base_iter == *base_iteration && base.len() == *payload_len {
                        let windows: Vec<(u32, &[u8])> =
                            dirty.iter().map(|(i, w)| (*i, w.as_ref())).collect();
                        if let Some(rebuilt) =
                            apply_delta(&base, table.chunk_size as usize, *payload_len, &windows)
                        {
                            if fletcher64(&rebuilt) == *digest {
                                let payload = Bytes::from(rebuilt);
                                self.delta.base = Some((iteration, payload.clone()));
                                let candidates =
                                    self.skip_candidates(*base_iteration, table, dirty);
                                self.delta.local_base = self
                                    .tentative_chunks()
                                    .map(|(_, digests)| (iteration, digests));
                                return (Detection::Payload(payload), candidates);
                            }
                        }
                    }
                }
                self.delta.base = None;
                self.delta.local_base = None;
                self.rec.inc_counter("acr_delta_fallback_total", 1);
                (detection, None)
            }
            _ => (detection, None),
        }
    }

    /// Chunk indices that can possibly differ this round, or `None` when the
    /// transitivity preconditions don't hold (stale or absent own-base
    /// digests, chunk geometry changed) and the full compare must run.
    fn skip_candidates(
        &self,
        base_iteration: u64,
        table: &ChunkTable,
        dirty: &[(u32, Bytes)],
    ) -> Option<Vec<usize>> {
        let (lb_iter, lb_digests) = self.delta.local_base.as_ref()?;
        if *lb_iter != base_iteration {
            return None; // our anchor is from a different round than the delta's
        }
        let (cur_chunk_size, cur_digests) = self.tentative_chunks()?;
        if cur_chunk_size != table.chunk_size
            || cur_digests.len() != lb_digests.len()
            || cur_digests.len() != table.digests.len()
        {
            return None; // geometry drifted: per-chunk correspondence is void
        }
        let mut candidates: std::collections::BTreeSet<usize> =
            dirty.iter().map(|&(i, _)| i as usize).collect();
        for (i, (cur, old)) in cur_digests.iter().zip(lb_digests).enumerate() {
            if cur != old {
                candidates.insert(i);
            }
        }
        Some(candidates.into_iter().collect())
    }

    /// Replica-1 side: compare once both the local tentative checkpoint and
    /// the buddy's detection message are present.
    fn try_compare(&mut self, round: u64) {
        let Some(tentative_iter) = self.store.tentative().map(|t| t.iteration) else {
            return;
        };
        let Some((iteration, _)) = self.pending_remote else {
            return;
        };
        if iteration != tentative_iter {
            return; // stale traffic from an aborted round
        }
        let (_, detection) = self.pending_remote.take().expect("checked above");
        let (detection, candidates) = self.resolve_incoming(iteration, detection);
        let tentative = self.store.tentative().expect("checked above");
        // Promotion is deferred to the driver's RoundComplete: a mismatch
        // *anywhere* invalidates the whole round, so locally-clean pairs
        // must not advance their rollback target ahead of the others.
        let divergence = match (&detection, &candidates) {
            (Detection::Payload(remote), Some(cands)) => {
                // Transitivity through the verified base (see
                // `resolve_incoming`): chunks outside the candidate set are
                // provably identical and need not be re-read.
                let total = tentative.chunks.as_ref().map_or(0, |t| t.digests.len());
                let skipped = total.saturating_sub(cands.len()) as u64;
                if skipped > 0 {
                    self.rec
                        .inc_counter("acr_delta_compare_skipped_total", skipped);
                }
                self.detector.diverged_restricted_recorded(
                    tentative,
                    remote,
                    cands,
                    &self.rec,
                    self.cfg.index as u32,
                    iteration,
                )
            }
            _ => self.detector.diverged_recorded(
                tentative,
                &detection,
                &self.rec,
                self.cfg.index as u32,
                iteration,
            ),
        };
        let clean = divergence.is_clean();
        let payload_len = tentative.len();
        debug_trace!(self.rec, self.obs_node(),
            "[node {} {:?}] compare iter={iteration} clean={clean} local_len={payload_len} local_digest={:x} diverged={:?}",
            self.cfg.index, self.identity, tentative.digest, divergence.ranges);
        // On a FullCompare mismatch, re-check at field granularity — but
        // only inside the diverged chunks the table localized, not the whole
        // payload. Live tasks are frozen at the checkpoint state here (packs
        // happen under the consensus pause), so traversing them against the
        // remote payload is exact.
        let mut fields_flagged = 0;
        if !clean {
            if let Detection::Payload(remote) = &detection {
                if remote.len() == payload_len {
                    fields_flagged = self.check_diverged_fields(remote, &divergence.ranges);
                }
            }
        }
        let buddy = self.buddy.expect("active node has a buddy");
        self.send(buddy, Net::CompareResult { iteration, clean });
        self.awaiting_verdict = None;
        if !clean {
            self.port.send_event(Event::SdcDetected {
                node: self.cfg.index,
                iteration,
                diverged: divergence.ranges,
                payload_len,
                fields_flagged,
            });
        }
        self.port.send_event(Event::CheckpointDone {
            node: self.cfg.index,
            round,
            iteration,
            verified: Some(clean),
        });
    }

    /// Field-level comparison of live tasks against the buddy payload,
    /// restricted to the given diverged byte windows. Returns the number of
    /// mismatching fields found (0 if the traversal itself fails — the
    /// verdict already stands, this only refines diagnostics).
    fn check_diverged_fields(
        &mut self,
        reference: &[u8],
        windows: &[std::ops::Range<usize>],
    ) -> usize {
        let mut c = Checker::new(reference).with_windows(windows.iter().cloned());
        for task in &mut self.tasks {
            if task.pup(&mut c).is_err() {
                return 0;
            }
            let mut pad = [0u8; SEGMENT_ALIGN];
            let n = padding_after(c.offset());
            if c.pup_u8_slice(&mut pad[..n]).is_err() {
                return 0;
            }
        }
        c.finish().map_or(0, |report| report.mismatch_count)
    }

    fn handle_ctrl(&mut self, ctrl: Ctrl) -> bool {
        match ctrl {
            Ctrl::StartRound { scope, round } => {
                debug_trace!(
                    self.rec,
                    self.obs_node(),
                    "[node {} {:?}] StartRound {scope:?} round={round} progress={:?}",
                    self.cfg.index,
                    self.identity,
                    self.tasks.iter().map(|t| t.progress()).collect::<Vec<_>>()
                );
                self.engine_feed(scope, ConsensusMsg::Start { round });
            }
            Ctrl::AbortRound { floor } => {
                self.awaiting_verdict = None;
                self.pending_remote = None;
                self.reset_delta_state();
                self.rebuild_engines(floor);
            }
            Ctrl::Rollback { floor } => {
                self.store.discard_tentative();
                self.pending_remote = None;
                self.awaiting_verdict = None;
                self.reset_delta_state();
                if let Some(ckpt) = self.store.rollback_target() {
                    let payload = ckpt.payload.clone();
                    self.unpack_tasks(&payload);
                } else if let Some((_, rank)) = self.identity {
                    // No checkpoint yet: restart from the beginning.
                    self.tasks = (0..self.cfg.tasks_per_rank)
                        .map(|t| (self.factory)(rank, t))
                        .collect();
                }
                self.rebuild_engines(floor);
                // Epoch bump comes *after* the state restore: entering the
                // epoch releases stashed messages from peers that rolled
                // back first, and those must land in the restored tasks,
                // not in state about to be overwritten.
                self.enter_epoch(floor);
                debug_trace!(
                    self.rec,
                    self.obs_node(),
                    "[node {} {:?}] rolled back to progress={:?} (floor {floor}, epoch {})",
                    self.cfg.index,
                    self.identity,
                    self.tasks.iter().map(|t| t.progress()).collect::<Vec<_>>(),
                    self.epoch
                );
                self.port.send_event(Event::RolledBack {
                    node: self.cfg.index,
                });
            }
            Ctrl::SendVerifiedTo { to } => {
                let ckpt = self
                    .store
                    .rollback_target()
                    .expect("driver only requests existing checkpoints")
                    .clone();
                self.send(to, Net::Install { checkpoint: ckpt });
            }
            Ctrl::AssumeIdentity {
                replica,
                rank,
                buddy,
                floor,
            } => {
                self.identity = Some((replica, rank));
                self.tasks = (0..self.cfg.tasks_per_rank)
                    .map(|t| (self.factory)(rank, t))
                    .collect();
                self.buddy = Some(buddy);
                let now = self.now();
                self.monitor.watch(buddy, now);
                self.store = CheckpointStore::new();
                self.reset_delta_state();
                self.rebuild_engines(floor);
                self.enter_epoch(floor);
                self.parked = true; // driver resumes explicitly
            }
            Ctrl::BuddyChanged { buddy } => {
                if let Some(old) = self.buddy {
                    self.monitor.unwatch(old);
                }
                self.buddy = Some(buddy);
                let now = self.now();
                self.monitor.watch(buddy, now);
                // The new buddy holds no base from us (nor we from it).
                self.reset_delta_state();
            }
            Ctrl::RoundComplete => {
                // The driver saw a clean verdict from every buddy pair: the
                // tentative checkpoint becomes the verified rollback target
                // on every node simultaneously (a consistent global cut).
                self.store.promote();
                if let Some(e) = self.engine_global.as_mut() {
                    e.checkpoint_done();
                }
                if let Some(e) = self.engine_replica.as_mut() {
                    e.checkpoint_done();
                }
            }
            Ctrl::Park => {
                self.parked = true;
            }
            Ctrl::Resume { floor } => {
                self.enter_epoch(floor);
                self.parked = false;
                self.reset_delta_state();
                self.rebuild_engines(floor);
            }
            Ctrl::HardRestart { floor } => {
                // No consistent checkpoint line survives: scrap everything
                // and start the application over (a §2.3 restart-from-
                // beginning, as after a weak-scheme buddy double failure).
                self.store = CheckpointStore::new();
                self.pending_remote = None;
                self.awaiting_verdict = None;
                self.reset_delta_state();
                if let Some((_, rank)) = self.identity {
                    self.tasks = (0..self.cfg.tasks_per_rank)
                        .map(|t| (self.factory)(rank, t))
                        .collect();
                }
                self.done_reported = false;
                self.parked = false;
                self.rebuild_engines(floor);
                self.enter_epoch(floor);
                self.port.send_event(Event::RolledBack {
                    node: self.cfg.index,
                });
            }
            Ctrl::InjectCrash => {
                self.apply_fault(NodeFault::Crash);
            }
            Ctrl::InjectSdc { seed, bits } => {
                self.apply_fault(NodeFault::Sdc { seed, bits });
            }
            Ctrl::ScheduleFault {
                at_iteration,
                fault,
            } => {
                self.scheduled_faults.push((at_iteration, fault));
            }
            Ctrl::MuteHeartbeats { secs } => {
                self.hb_muted_until = self.now() + secs;
            }
            Ctrl::Ping { token } => {
                self.port.send_event(Event::Pong {
                    node: self.cfg.index,
                    token,
                });
            }
            Ctrl::Shutdown => {
                self.report_final_state();
                return true;
            }
            Ctrl::ReportVerified { round } => {
                // The driver holds the round open (Phase::Persist) until every
                // active node answers, so the tentative checkpoint — promoted
                // only on the RoundComplete that follows — is still in place.
                // The rollback target covers the pathological reorder where a
                // promotion slipped in first.
                let ckpt = self
                    .store
                    .tentative()
                    .or_else(|| self.store.rollback_target());
                if let Some(t) = ckpt {
                    self.port.send_event(Event::VerifiedState {
                        node: self.cfg.index,
                        round,
                        iteration: t.iteration,
                        digest: t.digest,
                        payload: t.payload.clone(),
                    });
                }
            }
            Ctrl::Halt => {
                // Replayed death from a resumed journal: same terminal
                // behavior as an injected crash, but silent — no
                // FaultInjected event, so restored counters stay exact.
                self.crashed = true;
            }
            Ctrl::LayoutChanged { dead } => {
                // Only meaningful for private layouts (remote node hosts);
                // in-process nodes share the driver's layout, which already
                // reflects the promotion.
                if self.cfg.private_layout {
                    let _ = self.layout.write().replace_with_spare(dead);
                }
            }
        }
        false
    }

    /// Send the shutdown `FinalState` event (empty for a crashed node).
    fn report_final_state(&mut self) {
        let tasks: Vec<Bytes> = if self.crashed {
            Vec::new()
        } else {
            let ids: Vec<usize> = (0..self.tasks.len()).collect();
            ids.iter()
                .map(|&t| {
                    let mut p = Packer::new();
                    self.tasks[t].pup(&mut p).expect("final pack");
                    Bytes::from(p.finish())
                })
                .collect()
        };
        self.port.send_event(Event::FinalState {
            node: self.cfg.index,
            identity: self.identity,
            tasks,
        });
    }

    /// Apply an injected fault to this node, reporting the exact job-clock
    /// time it landed.
    fn apply_fault(&mut self, fault: NodeFault) {
        let iteration = self.tasks.iter().map(|t| t.progress()).max().unwrap_or(0);
        match fault {
            NodeFault::Crash => {
                self.rec
                    .emit_with(self.obs_node(), || EventKind::FaultInjected {
                        kind: "crash".to_string(),
                        iteration,
                    });
                self.port.send_event(Event::FaultInjected {
                    node: self.cfg.index,
                    at: self.now(),
                    fault,
                });
                self.crashed = true;
            }
            NodeFault::Sdc { seed, bits } => {
                if self.inject_sdc(seed, bits) {
                    self.rec
                        .emit_with(self.obs_node(), || EventKind::FaultInjected {
                            kind: "sdc".to_string(),
                            iteration,
                        });
                    self.port.send_event(Event::FaultInjected {
                        node: self.cfg.index,
                        at: self.now(),
                        fault,
                    });
                }
            }
        }
    }

    /// Fire scripted faults whose iteration trigger the application's
    /// node-local progress has reached.
    fn poll_scheduled_faults(&mut self) {
        if self.scheduled_faults.is_empty() || self.tasks.is_empty() {
            return;
        }
        let progress = self
            .tasks
            .iter()
            .map(|t| t.progress())
            .max()
            .expect("non-empty");
        let mut due = Vec::new();
        self.scheduled_faults.retain(|&(at, fault)| {
            if progress >= at {
                due.push(fault);
                false
            } else {
                true
            }
        });
        for fault in due {
            self.apply_fault(fault);
            if self.crashed {
                return;
            }
        }
    }

    /// §6.1 SDC injection: flip `bits` random bits of the victim task's
    /// floating-point *user data* (the paper targets "the user data that
    /// will be checkpointed"; corrupting runtime counters would crash or
    /// hang instead of staying silent). Float payloads accept every bit
    /// pattern, so the corrupted state always unpacks cleanly.
    ///
    /// The victim task is drawn first, then the [`SdcInjector`] continues
    /// the same seeded stream for the (float-byte, bit) draws — for
    /// `bits == 1` this reproduces the historical single-flip stream bit
    /// for bit, so existing test seeds keep their meaning.
    ///
    /// Returns whether at least one bit actually flipped.
    fn inject_sdc(&mut self, seed: u64, bits: u32) -> bool {
        if self.tasks.is_empty() {
            return false;
        }
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let victim = rng.gen_range(0..self.tasks.len());
        let mut mapper = acr_pup::RegionMapper::new();
        self.tasks[victim]
            .pup(&mut mapper)
            .expect("region mapping cannot fail");
        let mut packer = Packer::new();
        self.tasks[victim]
            .pup(&mut packer)
            .expect("pack for injection");
        let mut payload = packer.finish();
        if mapper.float_bytes() == 0 {
            return false; // nothing silent to corrupt
        }
        let mut injector = SdcInjector::from_rng(rng);
        for _ in 0..bits.max(1) {
            injector.corrupt_indexed(&mut payload, mapper.float_bytes(), |n| {
                mapper.nth_float_byte(n)
            });
        }
        if injector.log().is_empty() {
            return false;
        }
        let mut u = Unpacker::new(&payload);
        self.tasks[victim]
            .pup(&mut u)
            .expect("float flip keeps structure");
        u.finish().expect("float flip keeps structure");
        true
    }

    /// Enter a new rollback epoch: in-flight messages from older epochs are
    /// invalid from now on; messages from peers that got there first are
    /// released.
    fn enter_epoch(&mut self, epoch: u64) {
        if epoch <= self.epoch {
            return;
        }
        self.epoch = epoch;
        let ready: Vec<(usize, AppMsg)> = {
            let (now, later): (Vec<_>, Vec<_>) = self
                .future_msgs
                .drain(..)
                .partition(|&(e, _, _)| e <= epoch);
            self.future_msgs = later;
            now.into_iter()
                .filter(|&(e, _, _)| e == epoch)
                .map(|(_, t, m)| (t, m))
                .collect()
        };
        for (to_task, msg) in ready {
            self.deliver_app(to_task, msg);
        }
    }

    fn receive_app(&mut self, to_task: usize, epoch: u64, msg: AppMsg) {
        use std::cmp::Ordering;
        match epoch.cmp(&self.epoch) {
            Ordering::Less => {} // rolled-back execution: drop
            Ordering::Equal => {
                if self.parked {
                    // Parked = quiesced for recovery: current-epoch traffic
                    // is pre-crash residue, and the state about to replace
                    // ours (rollback or buddy install) carries its own
                    // complete message cut. Drop it.
                } else {
                    self.deliver_app(to_task, msg);
                }
            }
            Ordering::Greater => self.future_msgs.push((epoch, to_task, msg)),
        }
    }

    fn deliver_app(&mut self, to_task: usize, msg: AppMsg) {
        let Some((_, rank)) = self.identity else {
            return;
        };
        if to_task >= self.tasks.len() {
            return;
        }
        let mut outbox = std::mem::take(&mut self.outbox);
        {
            let mut ctx = TaskCtx::new(
                TaskId {
                    rank,
                    task: to_task,
                },
                self.cfg.ranks,
                &mut outbox,
            );
            self.tasks[to_task].on_message(msg, &mut ctx);
        }
        self.outbox = outbox;
        self.flush_outbox();
    }

    fn flush_outbox(&mut self) {
        let Some((replica, _)) = self.identity else {
            self.outbox.clear();
            return;
        };
        let sends = std::mem::take(&mut self.outbox);
        for (to, msg) in sends {
            let node = self.layout.read().host(replica, to.rank);
            self.send(
                node,
                Net::App {
                    to_task: to.task,
                    epoch: self.epoch,
                    msg,
                },
            );
        }
    }

    fn step_tasks(&mut self) {
        let Some((_, rank)) = self.identity else {
            return;
        };
        if self.parked {
            return;
        }
        for t in 0..self.tasks.len() {
            if self.tasks[t].done() {
                continue;
            }
            let may = self.engine_global.as_ref().is_none_or(|e| e.may_advance(t))
                && self
                    .engine_replica
                    .as_ref()
                    .is_none_or(|e| e.may_advance(t));
            if !may {
                continue;
            }
            let mut outbox = std::mem::take(&mut self.outbox);
            let advanced = {
                let mut ctx = TaskCtx::new(TaskId { rank, task: t }, self.cfg.ranks, &mut outbox);
                self.tasks[t].try_step(&mut ctx)
            };
            self.outbox = outbox;
            self.flush_outbox();
            if advanced {
                let progress = self.tasks[t].progress();
                if let Some(e) = self.engine_global.as_mut() {
                    let actions = e.report_progress(t, progress);
                    self.dispatch_consensus(Scope::Global, actions);
                }
                if let Some((replica, _)) = self.identity {
                    if let Some(e) = self.engine_replica.as_mut() {
                        let actions = e.report_progress(t, progress);
                        self.dispatch_consensus(Scope::Replica(replica), actions);
                    }
                }
            }
        }
        if !self.done_reported && !self.tasks.is_empty() && self.tasks.iter().all(|t| t.done()) {
            self.done_reported = true;
            self.port.send_event(Event::AllTasksDone {
                node: self.cfg.index,
            });
        }
    }

    fn heartbeat_tick(&mut self) {
        let now = self.now();
        if now - self.last_heartbeat >= self.cfg.heartbeat_period.as_secs_f64()
            && now >= self.hb_muted_until
        {
            self.last_heartbeat = now;
            if let Some(buddy) = self.buddy {
                self.send(
                    buddy,
                    Net::Heartbeat {
                        from: self.cfg.index,
                    },
                );
            }
        }
        for dead in self.monitor.expired(now) {
            self.rec
                .emit_with(self.obs_node(), || EventKind::HeartbeatExpired {
                    dead: dead as u32,
                });
            self.rec.inc_counter("acr_heartbeat_expired_total", 1);
            self.port.send_event(Event::BuddyDead {
                reporter: self.cfg.index,
                dead,
            });
        }
    }

    /// Handle one delivered message. Returns `true` when the node should
    /// exit its scheduler loop (shutdown).
    fn handle_net(&mut self, msg: Net) -> bool {
        match msg {
            Net::App {
                to_task,
                epoch,
                msg,
            } => self.receive_app(to_task, epoch, msg),
            Net::Consensus { scope, msg } => self.engine_feed(scope, msg),
            Net::Compare {
                iteration,
                detection,
            } => {
                let now = self.now();
                if let Some(b) = self.buddy {
                    self.monitor.heard_from(b, now);
                }
                self.pending_remote = Some((iteration, detection));
                if let Some((round, _)) = self.awaiting_verdict {
                    self.try_compare(round);
                }
            }
            Net::CompareResult { iteration, clean } => {
                // β sample: bytes shipped for this compare, seconds until
                // the verdict came back (deterministic under the virtual
                // clock — pumps advance it between send and receipt).
                if let Some((it, sent_at, bytes)) = self.delta.ship_in_flight {
                    if it == iteration {
                        self.delta.ship_in_flight = None;
                        let rtt = self.now() - sent_at;
                        self.delta.estimator.observe_beta(bytes, rtt);
                    }
                }
                if let Some((round, it)) = self.awaiting_verdict {
                    if it == iteration {
                        self.awaiting_verdict = None;
                        self.port.send_event(Event::CheckpointDone {
                            node: self.cfg.index,
                            round,
                            iteration,
                            verified: Some(clean),
                        });
                    }
                }
            }
            Net::Install { checkpoint } => {
                let iteration = checkpoint.iteration;
                let payload = checkpoint.payload.clone();
                // A wholesale install is a recovery path: any delta chain
                // spanning it is meaningless on both sides.
                self.reset_delta_state();
                self.store.install_verified(checkpoint);
                self.unpack_tasks(&payload);
                self.rebuild_engines(self.floor);
                self.port.send_event(Event::Installed {
                    node: self.cfg.index,
                    iteration,
                });
            }
            Net::Heartbeat { from } => {
                let now = self.now();
                self.monitor.heard_from(from, now);
            }
            Net::Ctrl(ctrl) => return self.handle_ctrl(ctrl),
        }
        false
    }

    /// The per-iteration housekeeping every scheduler pass runs after
    /// message delivery: scripted faults, heartbeats, task stepping.
    fn tick(&mut self) {
        if self.crashed {
            return;
        }
        self.poll_scheduled_faults();
        if self.crashed {
            return;
        }
        self.heartbeat_tick();
        self.step_tasks();
    }

    /// Threaded scheduler loop: block briefly for messages, then tick.
    pub(crate) fn run(mut self) {
        loop {
            let msg = match self.backlog.pop_front() {
                Some(m) => Ok(m),
                None => self.inbox.recv_timeout(Duration::from_millis(1)),
            };
            if self.crashed {
                // §6.1 "no-response scheme": the process on that node stops
                // responding to any communication — it only leaves when the
                // job tears down.
                match msg {
                    Ok(Net::Ctrl(Ctrl::Shutdown)) => {
                        self.report_final_state();
                        return;
                    }
                    _ => continue,
                }
            }
            match msg {
                Ok(m) => {
                    if self.handle_net(m) {
                        return;
                    }
                }
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
            }
            self.tick();
        }
    }

    /// One non-blocking scheduler pass, for the virtual-time executor: drain
    /// a bounded batch of pending messages, then tick once. The executor
    /// round-robins `pump` across all workers on one thread and advances the
    /// virtual clock between passes, which makes the whole job's event order
    /// deterministic.
    pub(crate) fn pump(&mut self) -> Pump {
        const BATCH: usize = 64;
        if self.crashed {
            loop {
                let msg = match self.backlog.pop_front() {
                    Some(m) => m,
                    None => match self.inbox.try_recv() {
                        Ok(m) => m,
                        Err(_) => return Pump::Idle,
                    },
                };
                if matches!(msg, Net::Ctrl(Ctrl::Shutdown)) {
                    self.report_final_state();
                    return Pump::Exited;
                }
            }
        }
        let mut processed = 0;
        while processed < BATCH && !self.crashed {
            let msg = match self.backlog.pop_front() {
                Some(m) => m,
                None => match self.inbox.try_recv() {
                    Ok(m) => m,
                    Err(_) => break,
                },
            };
            if self.handle_net(msg) {
                return Pump::Exited;
            }
            processed += 1;
        }
        self.tick();
        if processed > 0 {
            Pump::Busy
        } else {
            Pump::Idle
        }
    }
}

/// Outcome of one [`NodeWorker::pump`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Pump {
    /// No messages were waiting.
    Idle,
    /// At least one message was processed.
    Busy,
    /// The node exited (shutdown).
    Exited,
}

#[cfg(test)]
mod tests {
    use super::*;
    use acr_pup::{chunk_digests, fletcher64, Pup, PupResult};

    /// A task with a deliberately unaligned packed size (the `tail` bytes),
    /// so segment padding is actually exercised.
    struct Blob {
        iter: u64,
        data: Vec<f64>,
        tail: Vec<u8>,
    }

    impl Task for Blob {
        fn try_step(&mut self, _ctx: &mut TaskCtx<'_>) -> bool {
            false
        }
        fn on_message(&mut self, _m: AppMsg, _c: &mut TaskCtx<'_>) {}
        fn progress(&self) -> u64 {
            self.iter
        }
        fn done(&self) -> bool {
            true
        }
        fn pup(&mut self, p: &mut dyn Puper) -> PupResult {
            p.pup_u64(&mut self.iter)?;
            self.data.pup(p)?;
            self.tail.pup(p)
        }
    }

    fn blobs(n: usize) -> Vec<Box<dyn Task>> {
        (0..n)
            .map(|i| {
                Box::new(Blob {
                    iter: i as u64,
                    data: (0..40 + 13 * i)
                        .map(|k| (i * 1000 + k) as f64 * 0.5)
                        .collect(),
                    tail: (0..(i * 3) % 7).map(|k| k as u8).collect(),
                }) as Box<dyn Task>
            })
            .collect()
    }

    #[test]
    fn parallel_pack_is_worker_count_invariant_and_digest_exact() {
        const CHUNK: usize = 64;
        let (reference_buf, reference_digest) = pack_tasks_parallel(&mut blobs(5), CHUNK, 1);
        assert_eq!(reference_digest.digest, fletcher64(&reference_buf));
        let two_pass = chunk_digests(&reference_buf, CHUNK);
        assert_eq!(reference_digest.chunk_digests, two_pass.chunk_digests);
        assert_eq!(
            reference_buf.len() % SEGMENT_ALIGN,
            0,
            "payload is segment-padded"
        );

        for workers in [2, 3, 7] {
            let (buf, digest) = pack_tasks_parallel(&mut blobs(5), CHUNK, workers);
            assert_eq!(buf, reference_buf, "{workers} workers changed the payload");
            assert_eq!(
                digest, reference_digest,
                "{workers} workers changed the digests"
            );
        }
    }

    #[test]
    fn padded_payload_round_trips_through_unpack() {
        let mut tasks = blobs(4);
        let (buf, _) = pack_tasks_parallel(&mut tasks, 64, 2);

        // Mirror NodeWorker::unpack_tasks: one Unpacker over the whole
        // payload, consuming each task's zero padding after its fields.
        let mut restored = blobs(4);
        for t in restored.iter_mut() {
            // Wipe to prove the bytes restore the state.
            let blob = unsafe { &mut *(t.as_mut() as *mut dyn Task as *mut Blob) };
            blob.iter = 999;
            blob.data.clear();
            blob.tail.clear();
        }
        let mut u = Unpacker::new(&buf);
        for task in restored.iter_mut() {
            task.pup(&mut u).expect("payload matches task set");
            let mut pad = [0u8; SEGMENT_ALIGN];
            let n = padding_after(u.offset());
            u.pup_u8_slice(&mut pad[..n]).expect("padding present");
            assert_eq!(pad[..n], [0u8; SEGMENT_ALIGN][..n], "padding is zero");
        }
        u.finish().expect("payload fully consumed");

        let (again, _) = pack_tasks_parallel(&mut restored, 64, 1);
        assert_eq!(again, buf, "restored tasks repack identically");
    }
}
